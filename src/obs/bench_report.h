// Machine-readable bench artifacts: BENCH_<name>.json.
//
// Every bench binary prints its human-readable table AND writes one of these
// so the perf trajectory can be populated and diffed mechanically. A report
// carries:
//   * a config map + a sha256 fingerprint over (bench name + sorted config),
//     so two artifacts are comparable only when their fingerprints match,
//   * value metrics (single numbers: counts, shape checks, byte totals),
//   * distribution metrics (exact nearest-rank percentiles over the raw
//     sample vector: min/p50/p95/p99/max/mean/sum/count).
// Each metric is tagged with provenance: "sim" values are bit-reproducible
// across runs (simulated clock / event counts), "wall" values are real CPU
// time and vary by machine. The schema is documented in EXPERIMENTS.md and
// enforced by ValidateBenchReportJson (scripts/ci.sh runs it on every
// artifact the gate bench emits).
#ifndef SRC_OBS_BENCH_REPORT_H_
#define SRC_OBS_BENCH_REPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/json.h"
#include "src/util/status.h"

namespace rcb {
namespace obs {

// The version ValidateBenchReportJson accepts; bump on breaking changes.
inline constexpr int kBenchReportSchemaVersion = 1;

class BenchReport {
 public:
  // `name` becomes the artifact filename: BENCH_<name>.json.
  explicit BenchReport(std::string name);

  void SetConfig(const std::string& key, const std::string& value);

  // Embeds a /host/health snapshot (the exact endpoint JSON) as the
  // artifact's "health" member, so scale-class benches ship the health plane
  // alongside their metrics — exemplar trace ids in it must resolve against
  // the bench's trace dump (ci.sh check_health). Empty = no health section.
  void SetHealthJson(std::string health_json);

  void AddValue(const std::string& name, const std::string& unit,
                Provenance provenance, double value);
  // Exact sample statistics; `samples` need not be sorted. Empty sample sets
  // are recorded with count 0 and zeroed statistics.
  void AddDistribution(const std::string& name, const std::string& unit,
                       Provenance provenance, std::vector<double> samples);

  const std::string& name() const { return name_; }
  size_t metric_count() const { return metrics_.size(); }

  // Canonical fingerprint input: "<name>\n" + sorted "key=value" lines.
  std::string ConfigFingerprint() const;

  std::string ToJson() const;

  // Writes BENCH_<name>.json under $RCB_BENCH_JSON_DIR (default: the current
  // directory) and reports the path on stdout so bench logs show where the
  // artifact went.
  Status WriteFile(std::string* path_out = nullptr) const;

 private:
  struct Metric {
    std::string name;
    std::string unit;
    Provenance provenance;
    bool is_distribution = false;
    double value = 0.0;  // kind == "value"
    // kind == "distribution":
    uint64_t count = 0;
    double min = 0.0, max = 0.0, mean = 0.0, sum = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Metric> metrics_;
  std::string health_json_;
};

// Checks a parsed BENCH_*.json document against the schema documented in
// EXPERIMENTS.md. Returns the first violation found.
Status ValidateBenchReportJson(const JsonValue& document);

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_BENCH_REPORT_H_
