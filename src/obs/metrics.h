// Deterministic metrics for the RCB reproduction.
//
// The paper's evaluation (§5) is a measurement story; this registry makes
// every number the repro produces exportable and regression-checkable. Three
// instrument kinds — counters, gauges, fixed-bucket histograms — are grouped
// into families and rendered in the Prometheus text exposition format
// (served by RcbAgent's /metrics endpoint).
//
// Determinism contract: every instrument carries a *provenance*.
//   * kSim  — the value is a pure function of the simulated event schedule
//             (event counts, simulated durations, payload bytes). Two
//             identical simulated runs produce bit-identical values.
//   * kWall — the value comes from the real CPU clock (the paper's M5/M6
//             style measurements: Fig. 3 generation stages, Fig. 5 apply
//             stages, HMAC verification). It varies across runs and machines.
// RenderOptions::include_wall=false renders only the reproducible subset,
// which must be byte-identical across identical runs (obs_test asserts it).
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rcb {
namespace obs {

enum class Provenance { kSim, kWall };

std::string_view ProvenanceName(Provenance provenance);

// Monotonically increasing count. Either owned (Add) or callback-backed —
// the migration path for pre-existing ad-hoc counters (AgentMetrics,
// ObjectCache stats): the struct field stays the source of truth and the
// registry reads it at render time, so /status semantics are untouched.
class Counter {
 public:
  void Add(uint64_t delta = 1) { owned_ += delta; }
  uint64_t value() const { return read_ ? read_() : owned_; }

 private:
  friend class MetricsRegistry;
  uint64_t owned_ = 0;
  std::function<uint64_t()> read_;  // non-null for callback-backed counters
};

// Point-in-time value, settable or callback-backed.
class Gauge {
 public:
  void Set(double value) { owned_ = value; }
  double value() const { return read_ ? read_() : owned_; }

 private:
  friend class MetricsRegistry;
  double owned_ = 0.0;
  std::function<double()> read_;
};

// Fixed-bucket histogram over int64 values (microseconds, bytes, counts).
// Bucket math is plain integer counting, so sim-provenance histograms are
// bit-reproducible. Percentiles are estimated by linear interpolation inside
// the bucket containing the rank, clamped to the observed [min, max].
// A trace exemplar: the worst recent observation a histogram bucket has
// seen, linked to its causal trace so a tail-latency spike resolves to a
// retained trace (tools/trace_report --trace-id). Exposition format is
// unchanged — exemplars surface through the /health JSON endpoints.
struct TraceExemplar {
  int64_t value = 0;
  int64_t sim_time_us = 0;
  std::string trace_id;
};

class Histogram {
 public:
  // `bounds` are ascending inclusive upper bounds; values above the last
  // bound land in an implicit overflow bucket.
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t value);
  // Record() plus an exemplar offer: the bucket keeps `trace_id` when the
  // value is the worst it has seen or the incumbent exemplar is older than
  // exemplar_ttl_us — so exemplars track *recent* worst cases whose traces
  // are still in the bounded span ring. Empty trace ids record only.
  void RecordExemplar(int64_t value, std::string_view trace_id,
                      int64_t sim_now_us);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // p in (0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }

  const std::vector<int64_t>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  // nullptr when bucket `i` holds no exemplar; `i` indexes like
  // bucket_counts(). Allocated lazily on the first RecordExemplar.
  const TraceExemplar* BucketExemplar(size_t i) const;
  void set_exemplar_ttl_us(int64_t ttl_us) { exemplar_ttl_us_ = ttl_us; }

  // {start, start*factor, ...} — `n` bounds for latency/size scales.
  static std::vector<int64_t> ExponentialBounds(int64_t start, double factor,
                                                size_t n);

 private:
  size_t BucketOf(int64_t value) const;

  std::vector<int64_t> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  std::vector<TraceExemplar> exemplars_;  // empty until RecordExemplar
  int64_t exemplar_ttl_us_ = 30'000'000;  // 30 s sim
};

// Preset bucket scales: 1µs…~100s for CPU/simulated durations, 64B…~64MB
// for payload sizes, 1…~16k for small event counts (patch ops per patch).
const std::vector<int64_t>& LatencyBoundsUs();
const std::vector<int64_t>& SizeBoundsBytes();
const std::vector<int64_t>& CountBounds();

struct RenderOptions {
  // When false, families with Provenance::kWall are omitted — the remaining
  // body is the deterministic subset (/metrics?view=sim).
  bool include_wall = true;
};

// Families keyed by (name, labels). Registration rejects (returns nullptr):
//   * an invalid metric name,
//   * a (name, labels) pair registered twice,
//   * a name reused with a different kind, help text, or provenance.
// Rendering walks families in registration order, so the exposition body is
// deterministic for a deterministic registration + update sequence.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // `labels` is a pre-rendered Prometheus label body without braces, e.g.
  // `stage="clone"`; empty for an unlabelled instrument.
  Counter* AddCounter(std::string_view name, std::string_view help,
                      Provenance provenance, std::string_view labels = "");
  Counter* AddCallbackCounter(std::string_view name, std::string_view help,
                              Provenance provenance,
                              std::function<uint64_t()> read,
                              std::string_view labels = "");
  Gauge* AddGauge(std::string_view name, std::string_view help,
                  Provenance provenance, std::string_view labels = "");
  Gauge* AddCallbackGauge(std::string_view name, std::string_view help,
                          Provenance provenance, std::function<double()> read,
                          std::string_view labels = "");
  Histogram* AddHistogram(std::string_view name, std::string_view help,
                          Provenance provenance, std::vector<int64_t> bounds,
                          std::string_view labels = "");

  std::string RenderPrometheus(const RenderOptions& options = {}) const;

  // Removes every instrument whose label body contains `label` as a complete
  // `key="value"` token (e.g. `session="s3"`), dropping families left empty.
  // This is how a shared registry sheds a reaped session's callback-backed
  // instruments before their backing object is destroyed. Returns the number
  // of instruments removed.
  size_t RemoveLabeled(std::string_view label);

  // Lookup for tests/tools; nullptr when absent or of another kind.
  const Counter* FindCounter(std::string_view name,
                             std::string_view labels = "") const;
  const Gauge* FindGauge(std::string_view name,
                         std::string_view labels = "") const;
  const Histogram* FindHistogram(std::string_view name,
                                 std::string_view labels = "") const;

  size_t family_count() const { return families_.size(); }

  static bool IsValidMetricName(std::string_view name);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    Provenance provenance;
    std::vector<Instrument> instruments;
  };

  // Returns the family for (name, kind, provenance, help), creating it if
  // new; nullptr on any collision rule violation (including a duplicate
  // (name, labels) instrument).
  Family* PrepareFamily(std::string_view name, std::string_view help,
                        Kind kind, Provenance provenance,
                        std::string_view labels);
  const Instrument* FindInstrument(std::string_view name, Kind kind,
                                   std::string_view labels) const;

  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_METRICS_H_
