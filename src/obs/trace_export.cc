#include "src/obs/trace_export.h"

#include <cstdio>
#include <map>

#include "src/util/json.h"
#include "src/util/strings.h"

namespace rcb {
namespace obs {
namespace {

void AppendAttrsJson(std::string* out, const TraceAttrs& attrs) {
  out->append("{");
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) {
      out->append(",");
    }
    out->append("\"");
    out->append(JsonEscape(attrs[i].first));
    out->append("\":\"");
    out->append(JsonEscape(attrs[i].second));
    out->append("\"");
  }
  out->append("}");
}

}  // namespace

std::string TraceEventJsonLine(const TraceEvent& event,
                               std::string_view component) {
  std::string out;
  out.reserve(160);
  out.append("{\"type\":\"span\",\"component\":\"");
  out.append(JsonEscape(component));
  out.append("\",\"name\":\"");
  out.append(JsonEscape(event.name));
  out.append(StrFormat(
      "\",\"prov\":\"%s\",\"sim_start_us\":%lld,\"duration_us\":%lld,"
      "\"seq\":%llu",
      std::string(ProvenanceName(event.provenance)).c_str(),
      static_cast<long long>(event.sim_start_us),
      static_cast<long long>(event.duration_us),
      static_cast<unsigned long long>(event.seq)));
  if (!event.trace_id.empty()) {
    out.append(",\"trace\":\"");
    out.append(JsonEscape(event.trace_id));
    out.append(StrFormat(
        "\",\"span\":%llu,\"parent\":%llu",
        static_cast<unsigned long long>(event.span_id),
        static_cast<unsigned long long>(event.parent_span_id)));
    if (!event.attrs.empty()) {
      out.append(",\"attrs\":");
      AppendAttrsJson(&out, event.attrs);
    }
  }
  out.append("}");
  return out;
}

std::string ExportTraceJsonl(const TraceLog& log, std::string_view component) {
  std::string out;
  for (const TraceEvent& event : log.Events()) {
    out.append(TraceEventJsonLine(event, component));
    out.push_back('\n');
  }
  return out;
}

std::string ExportChromeTrace(
    const std::vector<std::pair<std::string, std::vector<TraceEvent>>>&
        components) {
  std::string out = "[";
  bool first = true;
  auto emit = [&out, &first](const std::string& entry) {
    if (!first) {
      out.append(",\n");
    } else {
      out.append("\n");
      first = false;
    }
    out.append(entry);
  };
  int next_pid = 1;
  for (const auto& [component, events] : components) {
    int pid = next_pid++;
    emit(StrFormat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                   "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                   pid, JsonEscape(component).c_str()));
    // tid per trace id, first-seen order; context-free spans share tid 0.
    std::map<std::string, int> tids;
    int next_tid = 1;
    for (const TraceEvent& event : events) {
      int tid = 0;
      if (!event.trace_id.empty()) {
        auto [it, inserted] = tids.emplace(event.trace_id, next_tid);
        if (inserted) {
          ++next_tid;
          emit(StrFormat(
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
              "\"tid\":%d,\"args\":{\"name\":\"trace %s\"}}",
              pid, it->second, JsonEscape(event.trace_id).c_str()));
        }
        tid = it->second;
      }
      std::string args = StrFormat(
          "{\"prov\":\"%s\",\"seq\":%llu",
          std::string(ProvenanceName(event.provenance)).c_str(),
          static_cast<unsigned long long>(event.seq));
      if (!event.trace_id.empty()) {
        args += StrFormat(",\"span\":%llu,\"parent\":%llu",
                          static_cast<unsigned long long>(event.span_id),
                          static_cast<unsigned long long>(event.parent_span_id));
        for (const auto& [key, value] : event.attrs) {
          args += StrFormat(",\"%s\":\"%s\"", JsonEscape(key).c_str(),
                            JsonEscape(value).c_str());
        }
      }
      args += "}";
      emit(StrFormat("{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
                     "\"dur\":%lld,\"pid\":%d,\"tid\":%d,\"args\":%s}",
                     JsonEscape(event.name).c_str(),
                     static_cast<long long>(event.sim_start_us),
                     static_cast<long long>(event.duration_us), pid, tid,
                     args.c_str()));
    }
  }
  out.append("\n]\n");
  return out;
}

namespace {

Status WriteWithMode(const std::string& path, std::string_view content,
                     const char* mode) {
  std::FILE* file = std::fopen(path.c_str(), mode);
  if (file == nullptr) {
    return InternalError("cannot open " + path);
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), file);
  int close_rc = std::fclose(file);
  if (written != content.size() || close_rc != 0) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

Status AppendToFile(const std::string& path, std::string_view content) {
  return WriteWithMode(path, content, "a");
}

Status WriteFile(const std::string& path, std::string_view content) {
  return WriteWithMode(path, content, "w");
}

}  // namespace obs
}  // namespace rcb
