#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/strings.h"

namespace rcb {
namespace obs {

std::string_view ProvenanceName(Provenance provenance) {
  return provenance == Provenance::kSim ? "sim" : "wall";
}

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(int64_t value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++counts_[BucketOf(value)];
}

size_t Histogram::BucketOf(int64_t value) const {
  // First bucket whose inclusive upper bound admits the value.
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::RecordExemplar(int64_t value, std::string_view trace_id,
                               int64_t sim_now_us) {
  Record(value);
  if (trace_id.empty()) {
    return;
  }
  if (exemplars_.empty()) {
    exemplars_.resize(counts_.size());
  }
  TraceExemplar& slot = exemplars_[BucketOf(value)];
  bool stale = !slot.trace_id.empty() &&
               sim_now_us - slot.sim_time_us >= exemplar_ttl_us_;
  if (slot.trace_id.empty() || stale || value >= slot.value) {
    slot.value = value;
    slot.sim_time_us = sim_now_us;
    slot.trace_id.assign(trace_id.data(), trace_id.size());
  }
}

const TraceExemplar* Histogram::BucketExemplar(size_t i) const {
  if (i >= exemplars_.size() || exemplars_[i].trace_id.empty()) {
    return nullptr;
  }
  return &exemplars_[i];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  // Nearest-rank target, then linear interpolation inside the rank's bucket.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t bucket = 0; bucket < counts_.size(); ++bucket) {
    if (counts_[bucket] == 0) {
      continue;
    }
    if (cumulative + counts_[bucket] >= rank) {
      double lower = bucket == 0 ? 0.0
                                 : static_cast<double>(bounds_[bucket - 1]);
      double upper = bucket < bounds_.size()
                         ? static_cast<double>(bounds_[bucket])
                         : static_cast<double>(max_);
      double fraction = static_cast<double>(rank - cumulative) /
                        static_cast<double>(counts_[bucket]);
      double estimate = lower + (upper - lower) * fraction;
      return std::clamp(estimate, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    cumulative += counts_[bucket];
  }
  return static_cast<double>(max_);
}

std::vector<int64_t> Histogram::ExponentialBounds(int64_t start, double factor,
                                                  size_t n) {
  std::vector<int64_t> bounds;
  bounds.reserve(n);
  double bound = static_cast<double>(start);
  int64_t previous = 0;
  for (size_t i = 0; i < n; ++i) {
    int64_t rounded = static_cast<int64_t>(std::llround(bound));
    if (rounded <= previous) {
      rounded = previous + 1;  // keep bounds strictly ascending
    }
    bounds.push_back(rounded);
    previous = rounded;
    bound *= factor;
  }
  return bounds;
}

const std::vector<int64_t>& LatencyBoundsUs() {
  // 1µs … ~100s, ~4 buckets per decade.
  static const std::vector<int64_t> kBounds =
      Histogram::ExponentialBounds(1, 1.7782794, 33);
  return kBounds;
}

const std::vector<int64_t>& SizeBoundsBytes() {
  // 64B … 64MB, powers of two.
  static const std::vector<int64_t> kBounds =
      Histogram::ExponentialBounds(64, 2.0, 21);
  return kBounds;
}

const std::vector<int64_t>& CountBounds() {
  // 1 … 16384, powers of two.
  static const std::vector<int64_t> kBounds =
      Histogram::ExponentialBounds(1, 2.0, 15);
  return kBounds;
}

bool MetricsRegistry::IsValidMetricName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head_ok(name[0])) {
    return false;
  }
  for (char c : name.substr(1)) {
    if (!head_ok(c) && !(c >= '0' && c <= '9')) {
      return false;
    }
  }
  return true;
}

MetricsRegistry::Family* MetricsRegistry::PrepareFamily(
    std::string_view name, std::string_view help, Kind kind,
    Provenance provenance, std::string_view labels) {
  if (!IsValidMetricName(name)) {
    return nullptr;
  }
  for (auto& family : families_) {
    if (family->name != name) {
      continue;
    }
    // Same family name: kind, help, and provenance must all agree, and the
    // label set must be new.
    if (family->kind != kind || family->help != help ||
        family->provenance != provenance) {
      return nullptr;
    }
    for (const Instrument& instrument : family->instruments) {
      if (instrument.labels == labels) {
        return nullptr;
      }
    }
    return family.get();
  }
  auto family = std::make_unique<Family>();
  family->name = std::string(name);
  family->help = std::string(help);
  family->kind = kind;
  family->provenance = provenance;
  families_.push_back(std::move(family));
  return families_.back().get();
}

Counter* MetricsRegistry::AddCounter(std::string_view name,
                                     std::string_view help,
                                     Provenance provenance,
                                     std::string_view labels) {
  return AddCallbackCounter(name, help, provenance, nullptr, labels);
}

Counter* MetricsRegistry::AddCallbackCounter(std::string_view name,
                                             std::string_view help,
                                             Provenance provenance,
                                             std::function<uint64_t()> read,
                                             std::string_view labels) {
  Family* family = PrepareFamily(name, help, Kind::kCounter, provenance, labels);
  if (family == nullptr) {
    return nullptr;
  }
  Instrument instrument;
  instrument.labels = std::string(labels);
  instrument.counter = std::make_unique<Counter>();
  instrument.counter->read_ = std::move(read);
  family->instruments.push_back(std::move(instrument));
  return family->instruments.back().counter.get();
}

Gauge* MetricsRegistry::AddGauge(std::string_view name, std::string_view help,
                                 Provenance provenance,
                                 std::string_view labels) {
  return AddCallbackGauge(name, help, provenance, nullptr, labels);
}

Gauge* MetricsRegistry::AddCallbackGauge(std::string_view name,
                                         std::string_view help,
                                         Provenance provenance,
                                         std::function<double()> read,
                                         std::string_view labels) {
  Family* family = PrepareFamily(name, help, Kind::kGauge, provenance, labels);
  if (family == nullptr) {
    return nullptr;
  }
  Instrument instrument;
  instrument.labels = std::string(labels);
  instrument.gauge = std::make_unique<Gauge>();
  instrument.gauge->read_ = std::move(read);
  family->instruments.push_back(std::move(instrument));
  return family->instruments.back().gauge.get();
}

Histogram* MetricsRegistry::AddHistogram(std::string_view name,
                                         std::string_view help,
                                         Provenance provenance,
                                         std::vector<int64_t> bounds,
                                         std::string_view labels) {
  Family* family =
      PrepareFamily(name, help, Kind::kHistogram, provenance, labels);
  if (family == nullptr) {
    return nullptr;
  }
  Instrument instrument;
  instrument.labels = std::string(labels);
  instrument.histogram = std::make_unique<Histogram>(std::move(bounds));
  family->instruments.push_back(std::move(instrument));
  return family->instruments.back().histogram.get();
}

const MetricsRegistry::Instrument* MetricsRegistry::FindInstrument(
    std::string_view name, Kind kind, std::string_view labels) const {
  for (const auto& family : families_) {
    if (family->name != name || family->kind != kind) {
      continue;
    }
    for (const Instrument& instrument : family->instruments) {
      if (instrument.labels == labels) {
        return &instrument;
      }
    }
  }
  return nullptr;
}

size_t MetricsRegistry::RemoveLabeled(std::string_view label) {
  if (label.empty()) {
    return 0;
  }
  size_t removed = 0;
  for (auto family_it = families_.begin(); family_it != families_.end();) {
    auto& instruments = (*family_it)->instruments;
    for (auto it = instruments.begin(); it != instruments.end();) {
      if (it->labels.find(label) != std::string::npos) {
        it = instruments.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    if (instruments.empty()) {
      family_it = families_.erase(family_it);
    } else {
      ++family_it;
    }
  }
  return removed;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name,
                                            std::string_view labels) const {
  const Instrument* instrument = FindInstrument(name, Kind::kCounter, labels);
  return instrument == nullptr ? nullptr : instrument->counter.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name,
                                        std::string_view labels) const {
  const Instrument* instrument = FindInstrument(name, Kind::kGauge, labels);
  return instrument == nullptr ? nullptr : instrument->gauge.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name,
                                                std::string_view labels) const {
  const Instrument* instrument = FindInstrument(name, Kind::kHistogram, labels);
  return instrument == nullptr ? nullptr : instrument->histogram.get();
}

namespace {

std::string FormatDouble(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.6g", value);
}

std::string SeriesName(const std::string& name, const std::string& suffix,
                       const std::string& labels,
                       const std::string& extra_label = "") {
  std::string out = name + suffix;
  std::string body = labels;
  if (!extra_label.empty()) {
    if (!body.empty()) {
      body += ",";
    }
    body += extra_label;
  }
  if (!body.empty()) {
    out += "{" + body + "}";
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus(
    const RenderOptions& options) const {
  std::string out;
  for (const auto& family : families_) {
    if (!options.include_wall && family->provenance == Provenance::kWall) {
      continue;
    }
    const char* type = family->kind == Kind::kCounter    ? "counter"
                       : family->kind == Kind::kGauge    ? "gauge"
                                                         : "histogram";
    out += "# HELP " + family->name + " " + family->help + "\n";
    out += "# TYPE " + family->name + " " + std::string(type) + "\n";
    for (const Instrument& instrument : family->instruments) {
      switch (family->kind) {
        case Kind::kCounter:
          out += SeriesName(family->name, "", instrument.labels) + " " +
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       instrument.counter->value())) +
                 "\n";
          break;
        case Kind::kGauge:
          out += SeriesName(family->name, "", instrument.labels) + " " +
                 FormatDouble(instrument.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& histogram = *instrument.histogram;
          uint64_t cumulative = 0;
          const auto& counts = histogram.bucket_counts();
          for (size_t i = 0; i < histogram.bounds().size(); ++i) {
            cumulative += counts[i];
            out += SeriesName(family->name, "_bucket", instrument.labels,
                              StrFormat("le=\"%lld\"",
                                        static_cast<long long>(
                                            histogram.bounds()[i]))) +
                   " " +
                   StrFormat("%llu",
                             static_cast<unsigned long long>(cumulative)) +
                   "\n";
          }
          out += SeriesName(family->name, "_bucket", instrument.labels,
                            "le=\"+Inf\"") +
                 " " +
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       histogram.count())) +
                 "\n";
          out += SeriesName(family->name, "_sum", instrument.labels) + " " +
                 StrFormat("%lld", static_cast<long long>(histogram.sum())) +
                 "\n";
          out += SeriesName(family->name, "_count", instrument.labels) + " " +
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       histogram.count())) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace rcb
