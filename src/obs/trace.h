// Lightweight span tracing over a bounded ring buffer.
//
// Request handling in the discrete-event simulation consumes zero simulated
// time, so a span records *where on the simulated timeline* work happened
// (sim_start_us, always deterministic) plus *how long it took*:
//   * Provenance::kSim  — duration measured on the simulated clock (e.g. a
//     poll round trip); bit-reproducible,
//   * Provenance::kWall — duration measured on the CPU clock (Fig. 3 / Fig. 5
//     pipeline stages, HMAC verification); machine-dependent.
// The log keeps the most recent `capacity` events and counts what it
// dropped, so tracing can stay always-on without unbounded growth.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace rcb {
namespace obs {

struct TraceEvent {
  std::string name;       // dotted path, e.g. "agent.generate.clone"
  Provenance provenance;  // what duration_us was measured with
  int64_t sim_start_us;   // simulated instant the span began
  int64_t duration_us;
  uint64_t seq;           // global append order (monotone, never wraps)
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 1024);

  void Append(std::string name, Provenance provenance, int64_t sim_start_us,
              int64_t duration_us);

  size_t capacity() const { return capacity_; }
  size_t size() const { return events_.size(); }
  uint64_t total_appended() const { return next_seq_; }
  uint64_t dropped() const {
    return next_seq_ - static_cast<uint64_t>(events_.size());
  }

  // Oldest-to-newest copy of the retained window.
  std::vector<TraceEvent> Events() const;

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;  // ring; head_ is the oldest slot
  size_t head_ = 0;
  uint64_t next_seq_ = 0;
};

// RAII wall-clock span: measures CPU time from construction to destruction,
// then appends a kWall trace event (when `log` is non-null) and records the
// elapsed microseconds into `histogram` (when non-null).
class WallSpan {
 public:
  WallSpan(TraceLog* log, const char* name, int64_t sim_now_us,
           Histogram* histogram = nullptr)
      : log_(log),
        name_(name),
        sim_now_us_(sim_now_us),
        histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~WallSpan() {
    int64_t elapsed = ElapsedUs();
    if (histogram_ != nullptr) {
      histogram_->Record(elapsed);
    }
    if (log_ != nullptr) {
      log_->Append(name_, Provenance::kWall, sim_now_us_, elapsed);
    }
  }
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  int64_t ElapsedUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  TraceLog* log_;
  const char* name_;
  int64_t sim_now_us_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_TRACE_H_
