// Lightweight span tracing over a bounded ring buffer.
//
// Request handling in the discrete-event simulation consumes zero simulated
// time, so a span records *where on the simulated timeline* work happened
// (sim_start_us, always deterministic) plus *how long it took*:
//   * Provenance::kSim  — duration measured on the simulated clock (e.g. a
//     poll round trip); bit-reproducible,
//   * Provenance::kWall — duration measured on the CPU clock (Fig. 3 / Fig. 5
//     pipeline stages, HMAC verification); machine-dependent.
// The log keeps the most recent `capacity` events and counts what it
// dropped, so tracing can stay always-on without unbounded growth.
//
// Causal model (DESIGN.md §11): a span may additionally carry a trace id —
// the identity of one poll round trip, stamped by Ajax-Snippet and
// propagated over the wire — plus a span id / parent span id pair forming a
// tree within that trace, and a small key=value attribute set (participant
// id, doc_time, bytes). Span ids are reserved from a per-log monotone
// counter, so id assignment is a pure function of the simulated schedule and
// trace-derived critical paths stay bit-reproducible. Spans appended without
// a context (TraceContext::active() == false) are exactly the pre-causal
// flat spans: no ids, no attrs, unchanged wire and metrics behavior.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace rcb {
namespace obs {

// Small ordered attribute set carried by a causal span.
using TraceAttrs = std::vector<std::pair<std::string, std::string>>;

// The causal chain a new span joins: the trace id of the round trip and the
// span id of the parent span (0 = the new span is the trace root). An empty
// trace id means "no causal context" and spans append exactly as before.
struct TraceContext {
  std::string trace_id;
  uint64_t parent_span_id = 0;

  bool active() const { return !trace_id.empty(); }
};

struct TraceEvent {
  std::string name;       // dotted path, e.g. "agent.generate.clone"
  Provenance provenance;  // what duration_us was measured with
  int64_t sim_start_us;   // simulated instant the span began
  int64_t duration_us;
  uint64_t seq;           // global append order (monotone, never wraps)
  // --- Causal fields (empty / 0 for context-free spans). ---
  std::string trace_id;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  TraceAttrs attrs;
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 1024);

  void Append(std::string name, Provenance provenance, int64_t sim_start_us,
              int64_t duration_us);

  // Causal append: stamps the event with `context` and a span id (the
  // reserved one when non-zero, else a freshly reserved id). Returns the
  // span id used, so callers can parent further children to this span.
  // An inactive context degrades to the flat Append above (returns 0).
  uint64_t Append(std::string name, Provenance provenance,
                  int64_t sim_start_us, int64_t duration_us,
                  const TraceContext& context, TraceAttrs attrs = {},
                  uint64_t reserved_span_id = 0);

  // Hands out the next span id (1-based, monotone). Reserving ahead of the
  // append lets an enclosing span parent its children before it closes.
  uint64_t ReserveSpanId() { return ++last_span_id_; }

  size_t capacity() const { return capacity_; }
  size_t size() const { return events_.size(); }
  uint64_t total_appended() const { return next_seq_; }
  uint64_t dropped() const {
    return next_seq_ - static_cast<uint64_t>(events_.size());
  }

  // Oldest-to-newest copy of the retained window.
  std::vector<TraceEvent> Events() const;

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;  // ring; head_ is the oldest slot
  size_t head_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t last_span_id_ = 0;
};

// RAII wall-clock span: measures CPU time from construction to destruction,
// then appends a kWall trace event (when `log` is non-null) and records the
// elapsed microseconds into `histogram` (when non-null). With a non-null
// active `context` the span id is reserved at construction — read it with
// span_id() to parent child spans created while this one is open.
class WallSpan {
 public:
  WallSpan(TraceLog* log, const char* name, int64_t sim_now_us,
           Histogram* histogram = nullptr,
           const TraceContext* context = nullptr, TraceAttrs attrs = {})
      : log_(log),
        name_(name),
        sim_now_us_(sim_now_us),
        histogram_(histogram),
        context_(context),
        attrs_(std::move(attrs)),
        start_(std::chrono::steady_clock::now()) {
    if (log_ != nullptr && context_ != nullptr && context_->active()) {
      span_id_ = log_->ReserveSpanId();
    }
  }
  ~WallSpan() {
    int64_t elapsed = ElapsedUs();
    if (histogram_ != nullptr) {
      histogram_->Record(elapsed);
    }
    if (log_ == nullptr) {
      return;
    }
    if (span_id_ != 0) {
      log_->Append(name_, Provenance::kWall, sim_now_us_, elapsed, *context_,
                   std::move(attrs_), span_id_);
    } else {
      log_->Append(name_, Provenance::kWall, sim_now_us_, elapsed);
    }
  }
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  int64_t ElapsedUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  // 0 unless an active context was supplied at construction.
  uint64_t span_id() const { return span_id_; }

 private:
  TraceLog* log_;
  const char* name_;
  int64_t sim_now_us_;
  Histogram* histogram_;
  const TraceContext* context_;
  TraceAttrs attrs_;
  uint64_t span_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_TRACE_H_
