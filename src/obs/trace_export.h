// Trace dump formats (DESIGN.md §11).
//
// Two exports over the same TraceEvent stream:
//   * JSONL — one `{"type":"span",...}` object per line. This is the
//     interchange format `tools/trace_report` ingests and what the flight
//     recorder and the bench RCB_TRACE_DIR hook write. Sim-provenance lines
//     are a pure function of the simulated schedule, so a dump filtered to
//     them is bit-reproducible.
//   * Chrome trace-event JSON — the `[{"ph":"X",...}]` complete-event array
//     understood by chrome://tracing and Perfetto (ui.perfetto.dev). Each
//     component becomes a process, each trace id a thread, so one poll round
//     trip reads as one lane of nested slices.
#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/status.h"

namespace rcb {
namespace obs {

// One JSONL span line (no trailing newline). `component` names the emitting
// side ("agent", "snippet-p1", ...).
std::string TraceEventJsonLine(const TraceEvent& event,
                               std::string_view component);

// Newline-terminated JSONL body for every retained event of `log`.
std::string ExportTraceJsonl(const TraceLog& log, std::string_view component);

// Chrome trace-event / Perfetto JSON document. Components map to pids (in
// first-seen order), trace ids to tids within their component's pid (the
// empty trace id shares tid 0); process_name/thread_name metadata records
// the mapping. Deterministic for a deterministic event sequence.
std::string ExportChromeTrace(
    const std::vector<std::pair<std::string, std::vector<TraceEvent>>>&
        components);

// Appends `content` to `path`, creating the file if needed.
Status AppendToFile(const std::string& path, std::string_view content);

// Truncate-writes `content` to `path`.
Status WriteFile(const std::string& path, std::string_view content);

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_TRACE_EXPORT_H_
