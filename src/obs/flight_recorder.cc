#include "src/obs/flight_recorder.h"

#include <cstdio>

#include "src/obs/trace_export.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rcb {
namespace obs {

void FlightRecorder::Trigger(std::string_view reason, int64_t sim_now_us) {
  ++total_triggers_;
  bool found = false;
  for (auto& [name, count] : trigger_counts_) {
    if (name == reason) {
      ++count;
      found = true;
      break;
    }
  }
  if (!found) {
    trigger_counts_.emplace_back(std::string(reason), 1);
  }
  if (options_.dir.empty() || dumps_written_ >= options_.max_dumps) {
    return;
  }
  if (options_.dedup_window_us > 0) {
    for (auto& [name, dumped_us] : last_dump_us_) {
      if (name == reason) {
        if (sim_now_us - dumped_us < options_.dedup_window_us) {
          ++dumps_suppressed_;
          return;
        }
        break;
      }
    }
  }

  std::string path = StrFormat(
      "%s/FLIGHT_%s_%llu_%s.jsonl", options_.dir.c_str(),
      options_.component.c_str(),
      static_cast<unsigned long long>(dumps_written_ + 1),
      std::string(reason).c_str());
  std::string body = StrFormat(
      "{\"type\":\"flight\",\"component\":\"%s\",\"reason\":\"%s\","
      "\"sim_now_us\":%lld,\"trigger_seq\":%llu,\"trace_retained\":%zu,"
      "\"trace_dropped\":%llu}\n",
      JsonEscape(options_.component).c_str(),
      JsonEscape(reason).c_str(), static_cast<long long>(sim_now_us),
      static_cast<unsigned long long>(total_triggers_),
      trace_ != nullptr ? trace_->size() : size_t{0},
      static_cast<unsigned long long>(trace_ != nullptr ? trace_->dropped()
                                                        : 0));
  if (trace_ != nullptr) {
    body += ExportTraceJsonl(*trace_, options_.component);
  }
  if (registry_ != nullptr) {
    RenderOptions render;
    render.include_wall = false;  // deterministic snapshot
    body += "{\"type\":\"metrics\",\"view\":\"sim\",\"prometheus\":\"";
    body += JsonEscape(registry_->RenderPrometheus(render));
    body += "\"}\n";
  }
  // Truncate-then-write: a re-fired trigger index never appends to a stale
  // artifact from an earlier process in the same directory.
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    RCB_LOG(kWarning) << "flight-recorder: cannot write " << path;
    return;
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (written != body.size()) {
    RCB_LOG(kWarning) << "flight-recorder: short write to " << path;
    return;
  }
  ++dumps_written_;
  last_dump_path_ = path;
  for (auto& [name, dumped_us] : last_dump_us_) {
    if (name == reason) {
      dumped_us = sim_now_us;
      return;
    }
  }
  last_dump_us_.emplace_back(std::string(reason), sim_now_us);
}

uint64_t FlightRecorder::triggers(std::string_view reason) const {
  for (const auto& [name, count] : trigger_counts_) {
    if (name == reason) {
      return count;
    }
  }
  return 0;
}

}  // namespace obs
}  // namespace rcb
