#include "src/obs/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/crypto/sha256.h"
#include "src/util/strings.h"

namespace rcb {
namespace obs {
namespace {

// Shortest representation that round-trips typical values; integral values
// print without a fraction so sim-provenance numbers diff cleanly.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.9g", value);
}

// Exact nearest-rank percentile over a sorted sample vector.
double NearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetConfig(const std::string& key, const std::string& value) {
  for (auto& [existing_key, existing_value] : config_) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  config_.emplace_back(key, value);
}

void BenchReport::SetHealthJson(std::string health_json) {
  health_json_ = std::move(health_json);
  // The endpoint body ends with a newline; embedded JSON must not.
  while (!health_json_.empty() &&
         (health_json_.back() == '\n' || health_json_.back() == '\r')) {
    health_json_.pop_back();
  }
}

void BenchReport::AddValue(const std::string& name, const std::string& unit,
                           Provenance provenance, double value) {
  Metric metric;
  metric.name = name;
  metric.unit = unit;
  metric.provenance = provenance;
  metric.is_distribution = false;
  metric.value = value;
  metrics_.push_back(std::move(metric));
}

void BenchReport::AddDistribution(const std::string& name,
                                  const std::string& unit,
                                  Provenance provenance,
                                  std::vector<double> samples) {
  Metric metric;
  metric.name = name;
  metric.unit = unit;
  metric.provenance = provenance;
  metric.is_distribution = true;
  metric.count = samples.size();
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    metric.min = samples.front();
    metric.max = samples.back();
    for (double sample : samples) {
      metric.sum += sample;
    }
    metric.mean = metric.sum / static_cast<double>(samples.size());
    metric.p50 = NearestRank(samples, 50.0);
    metric.p95 = NearestRank(samples, 95.0);
    metric.p99 = NearestRank(samples, 99.0);
  }
  metrics_.push_back(std::move(metric));
}

std::string BenchReport::ConfigFingerprint() const {
  std::vector<std::string> lines;
  lines.reserve(config_.size());
  for (const auto& [key, value] : config_) {
    lines.push_back(key + "=" + value);
  }
  std::sort(lines.begin(), lines.end());
  std::string canonical = name_ + "\n";
  for (const std::string& line : lines) {
    canonical += line + "\n";
  }
  return Sha256::HexDigest(canonical);
}

std::string BenchReport::ToJson() const {
  std::string out = "{\n";
  out += StrFormat("  \"schema_version\": %d,\n", kBenchReportSchemaVersion);
  out += "  \"bench\": \"" + JsonEscape(name_) + "\",\n";
  out += "  \"config\": {";
  for (size_t i = 0; i < config_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(config_[i].first) + "\": \"" +
           JsonEscape(config_[i].second) + "\"";
  }
  out += config_.empty() ? "},\n" : "\n  },\n";
  out += "  \"config_fingerprint\": \"" + ConfigFingerprint() + "\",\n";
  if (!health_json_.empty()) {
    out += "  \"health\": " + health_json_ + ",\n";
  }
  out += "  \"metrics\": [";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& metric = metrics_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + JsonEscape(metric.name) + "\", \"unit\": \"" +
           JsonEscape(metric.unit) + "\", \"provenance\": \"" +
           std::string(ProvenanceName(metric.provenance)) + "\", ";
    if (metric.is_distribution) {
      out += "\"kind\": \"distribution\", ";
      out += StrFormat("\"count\": %llu, ",
                       static_cast<unsigned long long>(metric.count));
      out += "\"min\": " + JsonNumber(metric.min) + ", ";
      out += "\"p50\": " + JsonNumber(metric.p50) + ", ";
      out += "\"p95\": " + JsonNumber(metric.p95) + ", ";
      out += "\"p99\": " + JsonNumber(metric.p99) + ", ";
      out += "\"max\": " + JsonNumber(metric.max) + ", ";
      out += "\"mean\": " + JsonNumber(metric.mean) + ", ";
      out += "\"sum\": " + JsonNumber(metric.sum) + "}";
    } else {
      out += "\"kind\": \"value\", \"value\": " + JsonNumber(metric.value) + "}";
    }
  }
  out += metrics_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Status BenchReport::WriteFile(std::string* path_out) const {
  const char* dir = std::getenv("RCB_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_" + name_ + ".json"
                         : "BENCH_" + name_ + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open " + path + " for writing");
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return UnavailableError("short write to " + path);
  }
  std::printf("bench artifact: %s\n", path.c_str());
  if (path_out != nullptr) {
    *path_out = path;
  }
  return Status::Ok();
}

namespace {

Status Violation(const std::string& message) {
  return InvalidArgumentError("bench report schema: " + message);
}

Status RequireNumber(const JsonValue& metric, const char* key) {
  const JsonValue* value = metric.Find(key);
  if (value == nullptr || !value->is_number()) {
    return Violation(StrFormat("distribution metric missing numeric \"%s\"", key));
  }
  return Status::Ok();
}

}  // namespace

Status ValidateBenchReportJson(const JsonValue& document) {
  if (!document.is_object()) {
    return Violation("document is not an object");
  }
  const JsonValue* version = document.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->number_value != kBenchReportSchemaVersion) {
    return Violation(StrFormat("schema_version must be %d",
                               kBenchReportSchemaVersion));
  }
  const JsonValue* bench = document.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string_value.empty()) {
    return Violation("\"bench\" must be a non-empty string");
  }
  const JsonValue* config = document.Find("config");
  if (config == nullptr || !config->is_object()) {
    return Violation("\"config\" must be an object");
  }
  for (const auto& [key, value] : config->members) {
    if (!value.is_string()) {
      return Violation("config value for \"" + key + "\" must be a string");
    }
  }
  const JsonValue* fingerprint = document.Find("config_fingerprint");
  if (fingerprint == nullptr || !fingerprint->is_string() ||
      fingerprint->string_value.size() != 64 ||
      fingerprint->string_value.find_first_not_of("0123456789abcdef") !=
          std::string::npos) {
    return Violation("\"config_fingerprint\" must be 64 lowercase hex chars");
  }
  if (const JsonValue* health = document.Find("health"); health != nullptr) {
    if (!health->is_object()) {
      return Violation("\"health\" must be an object");
    }
    const JsonValue* sessions = health->Find("sessions");
    if (sessions == nullptr || !sessions->is_array()) {
      return Violation("\"health\" must carry a \"sessions\" array");
    }
    for (const JsonValue& session : sessions->items) {
      if (!session.is_object()) {
        return Violation("health session entries must be objects");
      }
      const JsonValue* id = session.Find("id");
      if (id == nullptr || !id->is_string() || id->string_value.empty()) {
        return Violation("health session \"id\" must be a non-empty string");
      }
      const JsonValue* score = session.Find("score");
      if (score == nullptr || !score->is_string() ||
          (score->string_value != "green" &&
           score->string_value != "degraded" &&
           score->string_value != "unhealthy")) {
        return Violation("health session \"" + id->string_value +
                         "\" score must be green, degraded, or unhealthy");
      }
      if (const JsonValue* exemplars = session.Find("exemplars");
          exemplars != nullptr) {
        if (!exemplars->is_array()) {
          return Violation("health session \"" + id->string_value +
                           "\" exemplars must be an array");
        }
        for (const JsonValue& exemplar : exemplars->items) {
          const JsonValue* trace_id =
              exemplar.is_object() ? exemplar.Find("trace_id") : nullptr;
          if (trace_id == nullptr || !trace_id->is_string()) {
            return Violation("health session \"" + id->string_value +
                             "\" exemplars must carry string trace_ids");
          }
        }
      }
    }
  }
  const JsonValue* metrics = document.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return Violation("\"metrics\" must be an array");
  }
  if (metrics->items.empty()) {
    return Violation("\"metrics\" must not be empty");
  }
  for (const JsonValue& metric : metrics->items) {
    if (!metric.is_object()) {
      return Violation("metric entries must be objects");
    }
    const JsonValue* name = metric.Find("name");
    if (name == nullptr || !name->is_string() || name->string_value.empty()) {
      return Violation("metric \"name\" must be a non-empty string");
    }
    const JsonValue* unit = metric.Find("unit");
    if (unit == nullptr || !unit->is_string()) {
      return Violation("metric \"" + name->string_value + "\" missing \"unit\"");
    }
    const JsonValue* provenance = metric.Find("provenance");
    if (provenance == nullptr || !provenance->is_string() ||
        (provenance->string_value != "sim" &&
         provenance->string_value != "wall")) {
      return Violation("metric \"" + name->string_value +
                       "\" provenance must be \"sim\" or \"wall\"");
    }
    const JsonValue* kind = metric.Find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return Violation("metric \"" + name->string_value + "\" missing \"kind\"");
    }
    if (kind->string_value == "value") {
      const JsonValue* value = metric.Find("value");
      if (value == nullptr || !value->is_number()) {
        return Violation("value metric \"" + name->string_value +
                         "\" missing numeric \"value\"");
      }
    } else if (kind->string_value == "distribution") {
      const JsonValue* count = metric.Find("count");
      if (count == nullptr || !count->is_number() ||
          count->number_value < 0 ||
          count->number_value != std::floor(count->number_value)) {
        return Violation("distribution metric \"" + name->string_value +
                         "\" missing integral \"count\"");
      }
      for (const char* key : {"min", "p50", "p95", "p99", "max", "mean", "sum"}) {
        RCB_RETURN_IF_ERROR(RequireNumber(metric, key));
      }
    } else {
      return Violation("metric \"" + name->string_value +
                       "\" kind must be \"value\" or \"distribution\"");
    }
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace rcb
