// Sliding sim-time windows over the cumulative instruments of metrics.h.
//
// Everything in MetricsRegistry is cumulative-since-start, which answers
// "how much, ever" but not "is this healthy *right now*". This header adds
// the windowed layer the health plane (slo.h, /host/health, rcb_top) reads:
// a ring of fixed sim-time buckets that rolls counts through a fine window
// (the *fast* window, default 60 × 1 s) into a coarse window behind it (the
// *slow* window, default 5 min total).
//
// Determinism contract: windows advance lazily from the sim timestamps
// passed to every call — there are no timers and no wall-clock reads, so a
// windowed snapshot is a pure function of the simulated event schedule and
// two identical runs produce bit-identical window state (health_test pins
// this with a property test against a naive reference window).
//
// Granularity contract: the trailing edge of each window is bucket-aligned,
// so a "60 s" fast window covers between 59 and 60 one-second buckets of
// history plus the in-progress bucket, and the slow window covers between
// coarse_buckets and coarse_buckets+1 coarse periods. The edges are
// deterministic; they are not sub-bucket exact.
#ifndef SRC_OBS_WINDOW_H_
#define SRC_OBS_WINDOW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rcb {
namespace obs {

// Geometry of a two-tier window. The fast window spans
// fine_buckets × fine_bucket_us; expired fine buckets fold into coarse
// buckets of fine_buckets × fine_bucket_us each, and the slow window spans
// the fast window plus coarse_buckets coarse periods.
struct WindowConfig {
  int64_t fine_bucket_us = 1'000'000;  // 1 s buckets
  size_t fine_buckets = 60;            // fast window: 60 s
  size_t coarse_buckets = 4;           // slow window: 60 s + 4 × 60 s = 5 min

  int64_t fast_window_us() const {
    return fine_bucket_us * static_cast<int64_t>(fine_buckets);
  }
  int64_t slow_window_us() const {
    return fast_window_us() * static_cast<int64_t>(coarse_buckets + 1);
  }
};

// A compact geometry for per-session always-on tracking (survives the host's
// lite mode): 12 × 5 s fine buckets + 4 × 60 s coarse buckets keeps the same
// 1 min fast / 5 min slow spans at a quarter of the slots.
WindowConfig CompactWindowConfig();

// The shared ring engine: `lanes` parallel uint64 accumulators advanced in
// lockstep (a WindowedCounter is one lane; a WindowedHistogram is one lane
// per value bucket plus count and sum lanes). All mutating and reading calls
// take the current sim time and advance the ring first; sim time passed to a
// window must never decrease (earlier timestamps clamp to the current
// bucket).
class SlidingWindow {
 public:
  SlidingWindow(size_t lanes, const WindowConfig& config);

  void Add(size_t lane, uint64_t delta, int64_t sim_now_us);

  // Sum of `lane` over the fast (fine-ring) or slow (fine + coarse) window.
  uint64_t FastSum(size_t lane, int64_t sim_now_us);
  uint64_t SlowSum(size_t lane, int64_t sim_now_us);

  // All-lane variants amortize the ring walk; `out` is resized to lanes().
  void FastSums(int64_t sim_now_us, std::vector<uint64_t>* out);
  void SlowSums(int64_t sim_now_us, std::vector<uint64_t>* out);

  size_t lanes() const { return lanes_; }
  const WindowConfig& config() const { return config_; }

 private:
  void AdvanceTo(int64_t sim_now_us);
  void FoldFine(int64_t fine_index, size_t slot);
  bool CoarseLive(size_t slot) const;

  WindowConfig config_;
  size_t lanes_;
  // fine_[slot * lanes_ + lane]; slot = absolute fine index % fine_buckets.
  std::vector<uint64_t> fine_;
  std::vector<uint64_t> coarse_;
  // Absolute fine index each fine slot currently holds (-1 = never used) and
  // absolute coarse index per coarse slot, for staleness checks on read.
  std::vector<int64_t> coarse_index_;
  int64_t current_fine_ = -1;  // absolute index of the in-progress bucket
};

// Windowed event counter. Either add deltas directly (Add) or layer it over
// an existing cumulative counter (SampleCumulative) — the registry counters
// and AgentMetrics fields stay the source of truth and the window records
// the increments between deterministic sampling sites.
class WindowedCounter {
 public:
  explicit WindowedCounter(const WindowConfig& config = WindowConfig());

  void Add(uint64_t delta, int64_t sim_now_us) {
    window_.Add(0, delta, sim_now_us);
  }
  // Records cumulative - <previous cumulative> into the current bucket.
  // A cumulative value below the previous one (a reset) re-bases silently.
  void SampleCumulative(uint64_t cumulative, int64_t sim_now_us);

  uint64_t FastSum(int64_t sim_now_us) { return window_.FastSum(0, sim_now_us); }
  uint64_t SlowSum(int64_t sim_now_us) { return window_.SlowSum(0, sim_now_us); }

  const WindowConfig& config() const { return window_.config(); }

 private:
  SlidingWindow window_;
  uint64_t last_sample_ = 0;
};

// Windowed fixed-bucket histogram mirroring obs::Histogram's bucket math
// (ascending inclusive upper bounds + implicit overflow bucket) with
// windowed count/sum/percentiles, plus optional per-bucket trace exemplars:
// each value bucket remembers the trace id of its worst recent observation,
// so a windowed p99 spike links to a retained causal trace (DESIGN.md §16).
class WindowedHistogram {
 public:
  struct Exemplar {
    int64_t value = 0;
    int64_t sim_time_us = 0;
    std::string trace_id;
  };

  WindowedHistogram(std::vector<int64_t> bounds,
                    const WindowConfig& config = WindowConfig());

  // Records `value`; a non-empty `trace_id` also offers it as the bucket's
  // exemplar (kept when it is the worst seen, or when the incumbent is older
  // than exemplar_ttl_us — so exemplars decay toward *recent* worst cases
  // whose traces are still in the bounded span ring).
  void Record(int64_t value, int64_t sim_now_us,
              std::string_view trace_id = {});

  uint64_t FastCount(int64_t sim_now_us);
  uint64_t SlowCount(int64_t sim_now_us);
  uint64_t FastSum(int64_t sim_now_us);

  // Windowed count of observations strictly above `threshold` — the "bad
  // event" feed for latency SLO burn rates. Threshold bucketing is exact
  // only when `threshold` is one of the bounds; otherwise the smallest
  // bound >= threshold is used.
  uint64_t FastCountOver(int64_t threshold, int64_t sim_now_us);
  uint64_t SlowCountOver(int64_t threshold, int64_t sim_now_us);

  // p in (0, 100]; linear interpolation inside the rank's bucket, 0 when the
  // window is empty. Overflow-bucket ranks report the last bound.
  double FastPercentile(double p, int64_t sim_now_us);
  double SlowPercentile(double p, int64_t sim_now_us);

  // Exemplars for every bucket that currently holds one, bucket-ascending.
  // `bound` is the bucket's inclusive upper bound (INT64_MAX for overflow).
  struct BucketExemplar {
    int64_t bound = 0;
    Exemplar exemplar;
  };
  std::vector<BucketExemplar> Exemplars() const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  void set_exemplar_ttl_us(int64_t ttl_us) { exemplar_ttl_us_ = ttl_us; }

  // A short bound set (12 bounds, 100 µs … ~200 s) for always-on per-session
  // latency tracking; coarser than LatencyBoundsUs() but fixed-size cheap.
  static const std::vector<int64_t>& CompactLatencyBoundsUs();

 private:
  double WindowPercentile(double p, bool fast, int64_t sim_now_us);
  uint64_t CountOver(int64_t threshold, bool fast, int64_t sim_now_us);

  std::vector<int64_t> bounds_;
  SlidingWindow window_;  // lanes: one per bucket, then count, then sum
  size_t count_lane_;
  size_t sum_lane_;
  std::vector<Exemplar> exemplars_;  // one slot per bucket; empty trace = none
  int64_t exemplar_ttl_us_ = 30'000'000;  // 30 s sim
};

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_WINDOW_H_
