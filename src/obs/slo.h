// Declarative SLOs with multi-window burn-rate alerting over window.h.
//
// Four objectives cover the per-session health the paper's "practical"
// claim hinges on:
//   * sync_p99          — content sync latency p99 <= target (default 20 ms,
//                         the bench_scale Fig.-style SLO); the bad-event feed
//                         is the windowed count of observations over target
//                         against a 1% budget.
//   * resync_rate       — full-snapshot resyncs per poll (resyncs are the
//                         delta pipeline's failure escape hatch).
//   * auth_failure_rate — rejected request signatures per request.
//   * wasted_poll_ratio — empty polls + expired long polls per poll (the
//                         transport-efficiency SLO; src/transport's parked
//                         long-poll expiries feed it).
//
// Burn rate = (bad events / total events) / budget per window: burn 1.0
// consumes exactly the error budget, sustained. An alert goes active when
// BOTH the fast (1 min) and slow (5 min) windows burn above their thresholds
// — the classic multi-window rule: the slow window filters blips, the fast
// window makes the alert reset promptly once the cause stops. Alert edges
// (inactive -> active) fire the session's FlightRecorder with reason
// "slo_burn_<objective>", so a burst of bad polls freezes one trace+metrics
// dump instead of one per poll.
//
// Everything here is sim-clock pure: SessionHealth state and ToJson output
// are bit-identical across identical simulated runs (health_test pins it,
// scripts/ci.sh check_health double-runs the calm chaos scenario).
#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/window.h"

namespace rcb {
namespace obs {

class FlightRecorder;

enum class HealthScore { kGreen, kDegraded, kUnhealthy };

std::string_view HealthScoreName(HealthScore score);

struct SloConfig {
  // sync_p99: latency observations over this are bad events, against a 1%
  // budget (a p99 target restated as an error budget).
  int64_t sync_p99_target_us = 20'000;
  double sync_bad_budget = 0.01;
  double resync_budget = 0.02;        // resyncs per poll
  double auth_failure_budget = 0.01;  // auth failures per request
  double wasted_poll_budget = 0.90;   // empty/expired polls per poll; classic
                                      // idle polling wastes most polls, so
                                      // only near-total waste alerts
  // Multi-window thresholds: fast must burn hot AND slow must burn over
  // budget before an alert goes active.
  double fast_burn_alert = 6.0;
  double slow_burn_alert = 1.0;
  // Below this many denominator events in the fast window an objective
  // reports burn 0 — a session's first poll can't trip a rate alert.
  uint64_t min_events = 8;
  WindowConfig window = CompactWindowConfig();
  int64_t exemplar_ttl_us = 30'000'000;
};

struct ObjectiveStatus {
  std::string_view name;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool alerting = false;
};

struct HealthStatus {
  HealthScore score = HealthScore::kGreen;
  // Fast-window sync latency view (microseconds; 0 when the window is empty).
  uint64_t sync_count = 0;
  double sync_p50_us = 0.0;
  double sync_p99_us = 0.0;
  uint64_t fast_polls = 0;
  std::vector<ObjectiveStatus> objectives;
  std::vector<WindowedHistogram::BucketExemplar> exemplars;

  // Worst slow burn across objectives — the host's worst-first sort key.
  double MaxSlowBurn() const;
  std::vector<std::string_view> ActiveAlerts() const;
};

// Cumulative counters sampled into the windows at deterministic event sites
// (the agent samples at the end of every request it handles). Fields mirror
// AgentMetrics; deltas between samples land in the current window bucket.
struct HealthSample {
  uint64_t requests = 0;  // every request the agent handled
  uint64_t polls_received = 0;
  // Pre-composed by the caller via transport::WastedPolls() — the transport
  // layer owns what counts as a wasted round trip.
  uint64_t wasted_polls = 0;
  uint64_t resyncs = 0;
  uint64_t auth_failures = 0;
};

// Always-on per-session health tracker. Fixed-size (compact window geometry,
// compact latency bounds), so the host keeps one per session even past the
// lite-mode metrics cap. Not thread-safe; lives on the session's event loop
// like everything else.
class SessionHealth {
 public:
  explicit SessionHealth(const SloConfig& config = SloConfig(),
                         FlightRecorder* flight = nullptr);

  // Content sync latency observation (document update -> content served).
  // `trace_id` (when tracing is on) feeds the bucket exemplar.
  void RecordSyncLatency(int64_t latency_us, int64_t sim_now_us,
                         std::string_view trace_id = {});

  // Folds cumulative counter deltas into the current window bucket, then
  // re-evaluates alerts and fires the flight recorder on rising edges.
  void Sample(const HealthSample& cumulative, int64_t sim_now_us);

  HealthStatus Evaluate(int64_t sim_now_us);

  // {"score":"green",...} — deterministic JSON for /health endpoints and the
  // bench artifacts' health section.
  std::string ToJson(int64_t sim_now_us);

  const SloConfig& config() const { return config_; }

 private:
  enum Objective { kSyncP99, kResyncRate, kAuthFailureRate, kWastedPollRatio };
  static constexpr size_t kObjectives = 4;

  ObjectiveStatus EvaluateObjective(size_t objective, int64_t sim_now_us);
  double Burn(uint64_t bad, uint64_t total, double budget) const;
  void UpdateAlerts(int64_t sim_now_us);

  SloConfig config_;
  FlightRecorder* flight_;
  WindowedHistogram sync_latency_;
  WindowedCounter polls_;
  WindowedCounter wasted_polls_;
  WindowedCounter resyncs_;
  WindowedCounter auth_failures_;
  WindowedCounter requests_;
  bool alert_active_[kObjectives] = {};
};

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_SLO_H_
