// Anomaly-triggered flight recorder (DESIGN.md §11).
//
// A component (RCB-Agent, Ajax-Snippet) registers its trace ring and metrics
// registry here; when an anomaly fires — resync, HMAC failure, overload
// shedding, poll deadline miss — Trigger() freezes the moment: it counts the
// trigger (always, deterministically) and, when a dump directory is
// configured, writes a JSONL artifact holding the retained trace window plus
// a deterministic metrics snapshot. The counting happens whether or not
// dumping is enabled, so trigger counters stay bit-identical between a run
// that records artifacts and one that does not.
//
// Dump layout (FLIGHT_<component>_<n>_<reason>.jsonl):
//   {"type":"flight","component":...,"reason":...,"sim_now_us":...,...}
//   {"type":"span",...}            one line per retained trace event
//   {"type":"metrics","view":"sim","prometheus":"..."}
// The metrics line renders the sim-provenance registry subset (the
// /metrics?view=sim body), so the whole artifact is reproducible except for
// wall-provenance span durations.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rcb {
namespace obs {

class FlightRecorder {
 public:
  struct Options {
    // Dump directory; empty counts triggers without writing artifacts.
    std::string dir;
    // Component tag used in artifact names and span lines.
    std::string component = "component";
    // Hard cap on artifacts per recorder, so a trigger storm (an overloaded
    // agent shedding every poll) cannot fill the disk.
    size_t max_dumps = 16;
    // When > 0, a repeat of a reason within this sim window after its last
    // dump is counted but not dumped (dumps_suppressed()): one anomaly burst
    // collapses to one artifact. 0 preserves the historical dump-per-trigger
    // behavior up to max_dumps.
    int64_t dedup_window_us = 0;
  };

  FlightRecorder(const TraceLog* trace, const MetricsRegistry* registry,
                 Options options)
      : trace_(trace), registry_(registry), options_(std::move(options)) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // The component tag is often only known after a handshake (a snippet
  // learns its participant id when it joins).
  void set_component(std::string component) {
    options_.component = std::move(component);
  }
  const std::string& component() const { return options_.component; }
  bool dumping_enabled() const { return !options_.dir.empty(); }

  // Records one anomaly. Counting is unconditional; the JSONL artifact is
  // written only when a dump directory is set and max_dumps not yet reached.
  void Trigger(std::string_view reason, int64_t sim_now_us);

  uint64_t total_triggers() const { return total_triggers_; }
  uint64_t dumps_written() const { return dumps_written_; }
  // Dumps skipped by the dedup window (counted only while dumping is
  // enabled and the cap not yet reached, so the number means "bursts
  // collapsed", not "dumping was off").
  uint64_t dumps_suppressed() const { return dumps_suppressed_; }
  uint64_t triggers(std::string_view reason) const;
  // (reason, count), in first-trigger order.
  const std::vector<std::pair<std::string, uint64_t>>& trigger_counts() const {
    return trigger_counts_;
  }
  const std::string& last_dump_path() const { return last_dump_path_; }

 private:
  const TraceLog* trace_;
  const MetricsRegistry* registry_;
  Options options_;
  uint64_t total_triggers_ = 0;
  uint64_t dumps_written_ = 0;
  uint64_t dumps_suppressed_ = 0;
  std::vector<std::pair<std::string, uint64_t>> trigger_counts_;
  // (reason, sim time of its last written dump), for dedup_window_us.
  std::vector<std::pair<std::string, int64_t>> last_dump_us_;
  std::string last_dump_path_;
};

}  // namespace obs
}  // namespace rcb

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
