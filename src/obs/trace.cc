#include "src/obs/trace.h"

namespace rcb {
namespace obs {

TraceLog::TraceLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  events_.reserve(capacity_);
}

void TraceLog::Append(std::string name, Provenance provenance,
                      int64_t sim_start_us, int64_t duration_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.provenance = provenance;
  event.sim_start_us = sim_start_us;
  event.duration_us = duration_us;
  event.seq = next_seq_++;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  events_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceLog::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

}  // namespace obs
}  // namespace rcb
