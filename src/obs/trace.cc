#include "src/obs/trace.h"

namespace rcb {
namespace obs {

TraceLog::TraceLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  events_.reserve(capacity_);
}

void TraceLog::Append(std::string name, Provenance provenance,
                      int64_t sim_start_us, int64_t duration_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.provenance = provenance;
  event.sim_start_us = sim_start_us;
  event.duration_us = duration_us;
  event.seq = next_seq_++;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  events_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

uint64_t TraceLog::Append(std::string name, Provenance provenance,
                          int64_t sim_start_us, int64_t duration_us,
                          const TraceContext& context, TraceAttrs attrs,
                          uint64_t reserved_span_id) {
  if (!context.active()) {
    Append(std::move(name), provenance, sim_start_us, duration_us);
    return 0;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.provenance = provenance;
  event.sim_start_us = sim_start_us;
  event.duration_us = duration_us;
  event.seq = next_seq_++;
  event.trace_id = context.trace_id;
  event.span_id = reserved_span_id != 0 ? reserved_span_id : ReserveSpanId();
  event.parent_span_id = context.parent_span_id;
  event.attrs = std::move(attrs);
  uint64_t span_id = event.span_id;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  return span_id;
}

std::vector<TraceEvent> TraceLog::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

}  // namespace obs
}  // namespace rcb
