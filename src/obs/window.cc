#include "src/obs/window.h"

#include <algorithm>
#include <limits>

namespace rcb {
namespace obs {

WindowConfig CompactWindowConfig() {
  WindowConfig config;
  config.fine_bucket_us = 5'000'000;  // 5 s buckets
  config.fine_buckets = 12;           // fast window: 60 s
  config.coarse_buckets = 4;          // slow window: 5 min
  return config;
}

SlidingWindow::SlidingWindow(size_t lanes, const WindowConfig& config)
    : config_(config),
      lanes_(lanes),
      fine_(config.fine_buckets * lanes, 0),
      coarse_(config.coarse_buckets * lanes, 0),
      coarse_index_(config.coarse_buckets, -1) {}

void SlidingWindow::FoldFine(int64_t fine_index, size_t slot) {
  int64_t coarse_idx = fine_index / static_cast<int64_t>(config_.fine_buckets);
  size_t coarse_slot = static_cast<size_t>(
      coarse_idx % static_cast<int64_t>(config_.coarse_buckets));
  uint64_t* coarse_row = &coarse_[coarse_slot * lanes_];
  if (coarse_index_[coarse_slot] != coarse_idx) {
    std::fill(coarse_row, coarse_row + lanes_, 0);
    coarse_index_[coarse_slot] = coarse_idx;
  }
  const uint64_t* fine_row = &fine_[slot * lanes_];
  for (size_t lane = 0; lane < lanes_; ++lane) {
    coarse_row[lane] += fine_row[lane];
  }
}

void SlidingWindow::AdvanceTo(int64_t sim_now_us) {
  int64_t target = sim_now_us / config_.fine_bucket_us;
  if (target <= current_fine_) {
    return;  // same bucket, or a (clamped) earlier timestamp
  }
  if (current_fine_ < 0) {
    current_fine_ = target;
    return;
  }
  int64_t steps = target - current_fine_;
  int64_t total_span = static_cast<int64_t>(
      config_.fine_buckets * (config_.coarse_buckets + 1));
  if (steps > total_span) {
    // Everything currently held is out of even the slow window.
    std::fill(fine_.begin(), fine_.end(), 0);
    std::fill(coarse_.begin(), coarse_.end(), 0);
    std::fill(coarse_index_.begin(), coarse_index_.end(), -1);
    current_fine_ = target;
    return;
  }
  for (int64_t index = current_fine_ + 1; index <= target; ++index) {
    // Claiming the slot for `index` evicts the bucket that lived there one
    // ring revolution ago; its counts age out of the fast window and fold
    // into the coarse period that covered its time.
    size_t slot = static_cast<size_t>(
        index % static_cast<int64_t>(config_.fine_buckets));
    int64_t evicted = index - static_cast<int64_t>(config_.fine_buckets);
    uint64_t* fine_row = &fine_[slot * lanes_];
    if (evicted >= 0) {
      FoldFine(evicted, slot);
    }
    std::fill(fine_row, fine_row + lanes_, 0);
  }
  current_fine_ = target;
}

bool SlidingWindow::CoarseLive(size_t slot) const {
  if (coarse_index_[slot] < 0) {
    return false;
  }
  int64_t current_coarse =
      current_fine_ / static_cast<int64_t>(config_.fine_buckets);
  return current_coarse - coarse_index_[slot] <=
         static_cast<int64_t>(config_.coarse_buckets);
}

void SlidingWindow::Add(size_t lane, uint64_t delta, int64_t sim_now_us) {
  AdvanceTo(sim_now_us);
  size_t slot = static_cast<size_t>(
      current_fine_ % static_cast<int64_t>(config_.fine_buckets));
  fine_[slot * lanes_ + lane] += delta;
}

uint64_t SlidingWindow::FastSum(size_t lane, int64_t sim_now_us) {
  AdvanceTo(sim_now_us);
  uint64_t sum = 0;
  for (size_t slot = 0; slot < config_.fine_buckets; ++slot) {
    sum += fine_[slot * lanes_ + lane];
  }
  return sum;
}

uint64_t SlidingWindow::SlowSum(size_t lane, int64_t sim_now_us) {
  uint64_t sum = FastSum(lane, sim_now_us);
  for (size_t slot = 0; slot < config_.coarse_buckets; ++slot) {
    if (CoarseLive(slot)) {
      sum += coarse_[slot * lanes_ + lane];
    }
  }
  return sum;
}

void SlidingWindow::FastSums(int64_t sim_now_us, std::vector<uint64_t>* out) {
  AdvanceTo(sim_now_us);
  out->assign(lanes_, 0);
  for (size_t slot = 0; slot < config_.fine_buckets; ++slot) {
    const uint64_t* row = &fine_[slot * lanes_];
    for (size_t lane = 0; lane < lanes_; ++lane) {
      (*out)[lane] += row[lane];
    }
  }
}

void SlidingWindow::SlowSums(int64_t sim_now_us, std::vector<uint64_t>* out) {
  FastSums(sim_now_us, out);
  for (size_t slot = 0; slot < config_.coarse_buckets; ++slot) {
    if (!CoarseLive(slot)) {
      continue;
    }
    const uint64_t* row = &coarse_[slot * lanes_];
    for (size_t lane = 0; lane < lanes_; ++lane) {
      (*out)[lane] += row[lane];
    }
  }
}

WindowedCounter::WindowedCounter(const WindowConfig& config)
    : window_(1, config) {}

void WindowedCounter::SampleCumulative(uint64_t cumulative,
                                       int64_t sim_now_us) {
  uint64_t delta = cumulative >= last_sample_ ? cumulative - last_sample_ : 0;
  last_sample_ = cumulative;
  window_.Add(0, delta, sim_now_us);
}

WindowedHistogram::WindowedHistogram(std::vector<int64_t> bounds,
                                     const WindowConfig& config)
    : bounds_(std::move(bounds)),
      window_(bounds_.size() + 3, config),
      count_lane_(bounds_.size() + 1),
      sum_lane_(bounds_.size() + 2),
      exemplars_(bounds_.size() + 1) {}

const std::vector<int64_t>& WindowedHistogram::CompactLatencyBoundsUs() {
  // 100 µs … ~100 s: 13 power-of-~3.16 bounds, coarse but fixed-size cheap.
  // 20 ms (the sync SLO target) is an exact bound so FastCountOver(20000) is
  // exact, not bucket-rounded.
  static const std::vector<int64_t> bounds = {
      100,     316,      1000,     3162,      10000,      20000,     31623,
      100000,  316228,   1000000,  3162278,   10000000,   100000000};
  return bounds;
}

void WindowedHistogram::Record(int64_t value, int64_t sim_now_us,
                               std::string_view trace_id) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  window_.Add(bucket, 1, sim_now_us);
  window_.Add(count_lane_, 1, sim_now_us);
  window_.Add(sum_lane_, value < 0 ? 0 : static_cast<uint64_t>(value),
              sim_now_us);
  if (!trace_id.empty()) {
    Exemplar& slot = exemplars_[bucket];
    bool stale = !slot.trace_id.empty() &&
                 sim_now_us - slot.sim_time_us >= exemplar_ttl_us_;
    if (slot.trace_id.empty() || stale || value >= slot.value) {
      slot.value = value;
      slot.sim_time_us = sim_now_us;
      slot.trace_id.assign(trace_id.data(), trace_id.size());
    }
  }
}

uint64_t WindowedHistogram::FastCount(int64_t sim_now_us) {
  return window_.FastSum(count_lane_, sim_now_us);
}

uint64_t WindowedHistogram::SlowCount(int64_t sim_now_us) {
  return window_.SlowSum(count_lane_, sim_now_us);
}

uint64_t WindowedHistogram::FastSum(int64_t sim_now_us) {
  return window_.FastSum(sum_lane_, sim_now_us);
}

uint64_t WindowedHistogram::CountOver(int64_t threshold, bool fast,
                                      int64_t sim_now_us) {
  // Observations in buckets whose entire range is above `threshold`: exact
  // when the threshold is a bound (values <= bound land at or below it).
  size_t first_over = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), threshold) -
      bounds_.begin());
  std::vector<uint64_t> sums;
  if (fast) {
    window_.FastSums(sim_now_us, &sums);
  } else {
    window_.SlowSums(sim_now_us, &sums);
  }
  uint64_t over = 0;
  for (size_t bucket = first_over + 1; bucket <= bounds_.size(); ++bucket) {
    over += sums[bucket];
  }
  return over;
}

uint64_t WindowedHistogram::FastCountOver(int64_t threshold,
                                          int64_t sim_now_us) {
  return CountOver(threshold, true, sim_now_us);
}

uint64_t WindowedHistogram::SlowCountOver(int64_t threshold,
                                          int64_t sim_now_us) {
  return CountOver(threshold, false, sim_now_us);
}

double WindowedHistogram::WindowPercentile(double p, bool fast,
                                           int64_t sim_now_us) {
  std::vector<uint64_t> sums;
  if (fast) {
    window_.FastSums(sim_now_us, &sums);
  } else {
    window_.SlowSums(sim_now_us, &sums);
  }
  uint64_t total = sums[count_lane_];
  if (total == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  rank = std::clamp<uint64_t>(rank, 1, total);
  uint64_t cumulative = 0;
  for (size_t bucket = 0; bucket <= bounds_.size(); ++bucket) {
    uint64_t in_bucket = sums[bucket];
    if (in_bucket == 0) {
      continue;
    }
    if (cumulative + in_bucket >= rank) {
      if (bucket == bounds_.size()) {
        return static_cast<double>(bounds_.back());  // overflow: last bound
      }
      double lower =
          bucket == 0 ? 0.0 : static_cast<double>(bounds_[bucket - 1]);
      double upper = static_cast<double>(bounds_[bucket]);
      double within = static_cast<double>(rank - cumulative) /
                      static_cast<double>(in_bucket);
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(bounds_.back());
}

double WindowedHistogram::FastPercentile(double p, int64_t sim_now_us) {
  return WindowPercentile(p, true, sim_now_us);
}

double WindowedHistogram::SlowPercentile(double p, int64_t sim_now_us) {
  return WindowPercentile(p, false, sim_now_us);
}

std::vector<WindowedHistogram::BucketExemplar> WindowedHistogram::Exemplars()
    const {
  std::vector<BucketExemplar> out;
  for (size_t bucket = 0; bucket < exemplars_.size(); ++bucket) {
    if (exemplars_[bucket].trace_id.empty()) {
      continue;
    }
    BucketExemplar entry;
    entry.bound = bucket < bounds_.size()
                      ? bounds_[bucket]
                      : std::numeric_limits<int64_t>::max();
    entry.exemplar = exemplars_[bucket];
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace obs
}  // namespace rcb
