#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/flight_recorder.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace rcb {
namespace obs {
namespace {

constexpr std::string_view kObjectiveNames[] = {
    "sync_p99", "resync_rate", "auth_failure_rate", "wasted_poll_ratio"};

// Shortest deterministic rendering (matches the registry's number style):
// integral values print without a fraction.
std::string Num(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.6g", value);
}

}  // namespace

std::string_view HealthScoreName(HealthScore score) {
  switch (score) {
    case HealthScore::kGreen:
      return "green";
    case HealthScore::kDegraded:
      return "degraded";
    case HealthScore::kUnhealthy:
      return "unhealthy";
  }
  return "unhealthy";
}

double HealthStatus::MaxSlowBurn() const {
  double max_burn = 0.0;
  for (const ObjectiveStatus& objective : objectives) {
    max_burn = std::max(max_burn, objective.slow_burn);
  }
  return max_burn;
}

std::vector<std::string_view> HealthStatus::ActiveAlerts() const {
  std::vector<std::string_view> alerts;
  for (const ObjectiveStatus& objective : objectives) {
    if (objective.alerting) {
      alerts.push_back(objective.name);
    }
  }
  return alerts;
}

SessionHealth::SessionHealth(const SloConfig& config, FlightRecorder* flight)
    : config_(config),
      flight_(flight),
      sync_latency_(WindowedHistogram::CompactLatencyBoundsUs(),
                    config.window),
      polls_(config.window),
      wasted_polls_(config.window),
      resyncs_(config.window),
      auth_failures_(config.window),
      requests_(config.window) {
  sync_latency_.set_exemplar_ttl_us(config.exemplar_ttl_us);
}

void SessionHealth::RecordSyncLatency(int64_t latency_us, int64_t sim_now_us,
                                      std::string_view trace_id) {
  if (latency_us < 0) {
    latency_us = 0;
  }
  sync_latency_.Record(latency_us, sim_now_us, trace_id);
}

void SessionHealth::Sample(const HealthSample& cumulative, int64_t sim_now_us) {
  requests_.SampleCumulative(cumulative.requests, sim_now_us);
  polls_.SampleCumulative(cumulative.polls_received, sim_now_us);
  wasted_polls_.SampleCumulative(cumulative.wasted_polls, sim_now_us);
  resyncs_.SampleCumulative(cumulative.resyncs, sim_now_us);
  auth_failures_.SampleCumulative(cumulative.auth_failures, sim_now_us);
  UpdateAlerts(sim_now_us);
}

double SessionHealth::Burn(uint64_t bad, uint64_t total, double budget) const {
  if (total < config_.min_events || bad == 0 || budget <= 0.0) {
    return 0.0;
  }
  double fraction = static_cast<double>(bad) / static_cast<double>(total);
  return fraction / budget;
}

ObjectiveStatus SessionHealth::EvaluateObjective(size_t objective,
                                                int64_t sim_now_us) {
  ObjectiveStatus status;
  status.name = kObjectiveNames[objective];
  uint64_t fast_bad = 0, fast_total = 0, slow_bad = 0, slow_total = 0;
  double budget = 1.0;
  switch (static_cast<Objective>(objective)) {
    case kSyncP99:
      fast_bad = sync_latency_.FastCountOver(config_.sync_p99_target_us,
                                             sim_now_us);
      fast_total = sync_latency_.FastCount(sim_now_us);
      slow_bad = sync_latency_.SlowCountOver(config_.sync_p99_target_us,
                                             sim_now_us);
      slow_total = sync_latency_.SlowCount(sim_now_us);
      budget = config_.sync_bad_budget;
      break;
    case kResyncRate:
      fast_bad = resyncs_.FastSum(sim_now_us);
      fast_total = polls_.FastSum(sim_now_us);
      slow_bad = resyncs_.SlowSum(sim_now_us);
      slow_total = polls_.SlowSum(sim_now_us);
      budget = config_.resync_budget;
      break;
    case kAuthFailureRate:
      fast_bad = auth_failures_.FastSum(sim_now_us);
      fast_total = requests_.FastSum(sim_now_us);
      slow_bad = auth_failures_.SlowSum(sim_now_us);
      slow_total = requests_.SlowSum(sim_now_us);
      budget = config_.auth_failure_budget;
      break;
    case kWastedPollRatio:
      fast_bad = wasted_polls_.FastSum(sim_now_us);
      fast_total = polls_.FastSum(sim_now_us);
      slow_bad = wasted_polls_.SlowSum(sim_now_us);
      slow_total = polls_.SlowSum(sim_now_us);
      budget = config_.wasted_poll_budget;
      break;
  }
  status.fast_burn = Burn(fast_bad, fast_total, budget);
  status.slow_burn = Burn(slow_bad, slow_total, budget);
  status.alerting = status.fast_burn >= config_.fast_burn_alert &&
                    status.slow_burn >= config_.slow_burn_alert;
  return status;
}

void SessionHealth::UpdateAlerts(int64_t sim_now_us) {
  for (size_t objective = 0; objective < kObjectives; ++objective) {
    ObjectiveStatus status = EvaluateObjective(objective, sim_now_us);
    if (status.alerting && !alert_active_[objective] && flight_ != nullptr) {
      std::string reason = "slo_burn_";
      reason += kObjectiveNames[objective];
      flight_->Trigger(reason, sim_now_us);
    }
    alert_active_[objective] = status.alerting;
  }
}

HealthStatus SessionHealth::Evaluate(int64_t sim_now_us) {
  HealthStatus health;
  health.sync_count = sync_latency_.FastCount(sim_now_us);
  health.sync_p50_us = sync_latency_.FastPercentile(50.0, sim_now_us);
  health.sync_p99_us = sync_latency_.FastPercentile(99.0, sim_now_us);
  health.fast_polls = polls_.FastSum(sim_now_us);
  bool any_alert = false;
  bool any_burning = false;
  for (size_t objective = 0; objective < kObjectives; ++objective) {
    ObjectiveStatus status = EvaluateObjective(objective, sim_now_us);
    // Alert state is edge-tracked in UpdateAlerts; Evaluate reports the
    // same instantaneous condition without mutating edges.
    any_alert |= status.alerting;
    any_burning |= status.fast_burn >= 1.0;
    health.objectives.push_back(status);
  }
  health.score = any_alert ? HealthScore::kUnhealthy
                 : any_burning ? HealthScore::kDegraded
                               : HealthScore::kGreen;
  health.exemplars = sync_latency_.Exemplars();
  return health;
}

std::string SessionHealth::ToJson(int64_t sim_now_us) {
  HealthStatus health = Evaluate(sim_now_us);
  std::string out = "{";
  out += "\"score\":\"";
  out += HealthScoreName(health.score);
  out += "\",";
  out += StrFormat("\"window\":{\"fast_us\":%lld,\"slow_us\":%lld},",
                   static_cast<long long>(config_.window.fast_window_us()),
                   static_cast<long long>(config_.window.slow_window_us()));
  out += StrFormat("\"sync\":{\"count\":%llu,\"p50_us\":",
                   static_cast<unsigned long long>(health.sync_count));
  out += Num(health.sync_p50_us);
  out += ",\"p99_us\":";
  out += Num(health.sync_p99_us);
  out += "},";
  out += StrFormat("\"fast_polls\":%llu,",
                   static_cast<unsigned long long>(health.fast_polls));
  out += "\"objectives\":[";
  for (size_t i = 0; i < health.objectives.size(); ++i) {
    const ObjectiveStatus& objective = health.objectives[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"name\":\"";
    out += objective.name;
    out += "\",\"fast_burn\":";
    out += Num(objective.fast_burn);
    out += ",\"slow_burn\":";
    out += Num(objective.slow_burn);
    out += ",\"alerting\":";
    out += objective.alerting ? "true" : "false";
    out += "}";
  }
  out += "],\"alerts\":[";
  bool first_alert = true;
  for (std::string_view alert : health.ActiveAlerts()) {
    if (!first_alert) {
      out += ",";
    }
    first_alert = false;
    out += "\"";
    out += alert;
    out += "\"";
  }
  out += "],\"exemplars\":[";
  for (size_t i = 0; i < health.exemplars.size(); ++i) {
    const auto& entry = health.exemplars[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"le_us\":";
    out += entry.bound == std::numeric_limits<int64_t>::max()
               ? "\"+Inf\""
               : StrFormat("%lld", static_cast<long long>(entry.bound));
    out += StrFormat(",\"value_us\":%lld,\"sim_time_us\":%lld,\"trace_id\":",
                     static_cast<long long>(entry.exemplar.value),
                     static_cast<long long>(entry.exemplar.sim_time_us));
    out += "\"" + JsonEscape(entry.exemplar.trace_id) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace rcb
