// Integrity-checked binary framing shared by the checkpoint and WAL codecs
// (DESIGN.md §13).
//
// Every persistent record travels in one frame:
//
//   [u32 payload_len][u8 type][payload bytes][u32 crc32(type || payload)]
//
// all integers little-endian. The CRC covers the type byte and the payload,
// so a bit flip anywhere inside the frame — or a torn write that truncates
// it — is detected at read time. Readers distinguish "clean end of stream"
// (offset exactly at the end) from "torn tail" (bytes remain but no whole
// valid frame does); the recovery ladder discards torn tails, never whole
// files, on that signal.
#ifndef SRC_PERSIST_FRAME_H_
#define SRC_PERSIST_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace rcb {
namespace persist {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
uint32_t Crc32(std::string_view data);

// Frames payloads larger than this are rejected at read time: a corrupt
// length prefix must not drive a multi-gigabyte allocation.
inline constexpr uint32_t kMaxFramePayload = 64u * 1024 * 1024;

struct Frame {
  uint8_t type = 0;
  std::string payload;
};

// Appends one encoded frame to `out`.
void AppendFrame(std::string* out, uint8_t type, std::string_view payload);
std::string EncodeFrame(uint8_t type, std::string_view payload);

// Reads the frame starting at `*offset`, advancing `*offset` past it on
// success. Errors:
//   kOutOfRange — *offset is exactly the end (clean end of stream),
//   kAborted    — torn (truncated mid-frame) or corrupt (CRC or length-bound
//                 violation); *offset is unchanged.
StatusOr<Frame> ReadFrame(std::string_view data, size_t* offset);

// Little-endian integer helpers used by both codecs.
void AppendU32(std::string* out, uint32_t value);
uint32_t ReadU32(std::string_view data, size_t offset);

}  // namespace persist
}  // namespace rcb

#endif  // SRC_PERSIST_FRAME_H_
