// Append-only session write-ahead log (DESIGN.md §13).
//
// File layout:
//
//   "RCBWAL01"                                  8-byte magic + version
//   frame kHeader      session id, epoch, base document version
//   frame k*           one per logged transition, in commit order
//
// The header's epoch must match the checkpoint the log extends; a WAL left
// over from an older generation (its checkpoint already superseded it) is
// discarded whole. Records after the header are replayed until the first
// torn or corrupt frame — everything from that frame on is the discarded
// tail. Tail discard loses only transitions that were never durably acked,
// so recovery stays consistent with what participants observed.
//
// kAction records are an audit trail, not a redo log: actions are already
// folded into the document the checkpoint captured, and replaying one that
// navigates would fire async page loads during recovery. Replay uses
// kDocVersion / kSeq / kJoin / kLeave to rebuild the roster's anti-replay
// state; actions logged after the last checkpoint are surfaced as a loss
// count instead.
#ifndef SRC_PERSIST_WAL_H_
#define SRC_PERSIST_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/actions.h"
#include "src/util/status.h"

namespace rcb {
namespace persist {

inline constexpr char kWalMagic[] = "RCBWAL01";  // 8 bytes, v1

enum class WalRecordType : uint8_t {
  kHeader = 1,
  kDocVersion = 2,  // document advanced to doc_time_ms
  kSeq = 3,         // pid's anti-replay high-water mark advanced to seq
  kAction = 4,      // audit: pid's action was merged
  kJoin = 5,        // pid entered the roster
  kLeave = 6,       // pid left the roster (goodbye or reap)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kDocVersion;
  int64_t doc_time_ms = 0;  // kDocVersion
  std::string pid;          // kSeq, kAction, kJoin, kLeave
  uint64_t seq = 0;         // kSeq
  UserAction action;        // kAction

  bool operator==(const WalRecord&) const = default;
};

// The whole file prefix a fresh log starts with: magic + header frame.
std::string EncodeWalFileHeader(const std::string& session_id, uint64_t epoch,
                                int64_t base_doc_time_ms);

// One encoded frame, ready to append to an open log.
std::string EncodeWalRecord(const WalRecord& record);

struct WalReplay {
  std::string session_id;
  uint64_t epoch = 0;
  int64_t base_doc_time_ms = 0;
  std::vector<WalRecord> records;
  // True when a torn or corrupt frame cut the scan short; `records` holds
  // everything before it and `bytes_replayed` is where the valid prefix ends.
  bool tail_discarded = false;
  size_t bytes_replayed = 0;
};

// Decodes a WAL file. kAborted means the file is unusable as a unit (bad
// magic, bad or missing header) — per the recovery ladder the caller keeps
// the checkpoint and drops the log. A torn tail is NOT an error: it comes
// back as tail_discarded with the valid prefix intact.
StatusOr<WalReplay> DecodeWal(std::string_view bytes);

}  // namespace persist
}  // namespace rcb

#endif  // SRC_PERSIST_WAL_H_
