#include "src/persist/checkpoint.h"

#include <map>
#include <utility>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/http/form.h"
#include "src/persist/frame.h"
#include "src/util/strings.h"

namespace rcb {
namespace persist {
namespace {

constexpr size_t kMagicSize = 8;

std::string U64(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

std::string I64(int64_t value) {
  return StrFormat("%lld", static_cast<long long>(value));
}

bool ParseI64(std::string_view s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  bool negative = s.front() == '-';
  std::string_view digits = negative ? s.substr(1) : s;
  uint64_t magnitude = 0;
  if (!ParseUint64(digits, &magnitude)) {
    return false;
  }
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

// Field lookup over a decoded form payload; every miss is an integrity
// failure (the encoder always writes every field).
class Fields {
 public:
  explicit Fields(std::string_view payload)
      : fields_(ParseFormUrlEncoded(payload)) {}

  Status Get(const std::string& key, std::string* out) const {
    auto it = fields_.find(key);
    if (it == fields_.end()) {
      return AbortedError("checkpoint: missing field " + key);
    }
    *out = it->second;
    return Status::Ok();
  }
  Status GetU64(const std::string& key, uint64_t* out) const {
    std::string raw;
    RCB_RETURN_IF_ERROR(Get(key, &raw));
    if (!ParseUint64(raw, out)) {
      return AbortedError("checkpoint: bad integer field " + key);
    }
    return Status::Ok();
  }
  Status GetI64(const std::string& key, int64_t* out) const {
    std::string raw;
    RCB_RETURN_IF_ERROR(Get(key, &raw));
    if (!ParseI64(raw, out)) {
      return AbortedError("checkpoint: bad integer field " + key);
    }
    return Status::Ok();
  }
  Status GetBool(const std::string& key, bool* out) const {
    std::string raw;
    RCB_RETURN_IF_ERROR(Get(key, &raw));
    if (raw != "0" && raw != "1") {
      return AbortedError("checkpoint: bad bool field " + key);
    }
    *out = raw == "1";
    return Status::Ok();
  }

 private:
  std::map<std::string, std::string> fields_;
};

std::string EncodeParticipant(const ParticipantExport& participant) {
  return EncodeFormUrlEncoded(
      std::vector<std::pair<std::string, std::string>>{
          {"pid", participant.pid},
          {"ts", I64(participant.doc_time_ms)},
          {"seq", U64(participant.last_seq)},
          {"timeouts", U64(participant.timeouts_reported)},
          {"polls", U64(participant.polls)},
      });
}

StatusOr<ParticipantExport> DecodeParticipant(std::string_view payload) {
  Fields fields(payload);
  ParticipantExport participant;
  RCB_RETURN_IF_ERROR(fields.Get("pid", &participant.pid));
  if (participant.pid.empty()) {
    return AbortedError("checkpoint: empty participant id");
  }
  RCB_RETURN_IF_ERROR(fields.GetI64("ts", &participant.doc_time_ms));
  RCB_RETURN_IF_ERROR(fields.GetU64("seq", &participant.last_seq));
  RCB_RETURN_IF_ERROR(fields.GetU64("timeouts", &participant.timeouts_reported));
  RCB_RETURN_IF_ERROR(fields.GetU64("polls", &participant.polls));
  return participant;
}

std::string EncodePending(const PendingActionExport& pending) {
  return EncodeFormUrlEncoded(
      std::vector<std::pair<std::string, std::string>>{
          {"pid", pending.pid},
          {"action", EncodeActions({pending.action})},
      });
}

StatusOr<PendingActionExport> DecodePending(std::string_view payload) {
  Fields fields(payload);
  PendingActionExport pending;
  std::string encoded_action;
  RCB_RETURN_IF_ERROR(fields.Get("pid", &pending.pid));
  RCB_RETURN_IF_ERROR(fields.Get("action", &encoded_action));
  auto actions = DecodeActions(encoded_action);
  if (!actions.ok() || actions->size() != 1) {
    return AbortedError("checkpoint: bad pending action payload");
  }
  pending.action = std::move(actions->front());
  return pending;
}

}  // namespace

std::string EncodeCheckpoint(const SessionCheckpoint& checkpoint) {
  std::string body(kCheckpointMagic, kMagicSize);
  std::string meta = EncodeFormUrlEncoded(
      std::vector<std::pair<std::string, std::string>>{
          {"v", StrFormat("%d", kCheckpointVersion)},
          {"session", checkpoint.session_id},
          {"epoch", U64(checkpoint.epoch)},
          {"created_us", I64(checkpoint.created_at_us)},
          {"doc_time_ms", I64(checkpoint.state.doc_time_ms)},
          {"has_version", checkpoint.state.has_version ? "1" : "0"},
          {"next_pid", U64(checkpoint.state.next_pid)},
          {"url", checkpoint.state.document_url},
          {"doc_sha256", Sha256::HexDigest(checkpoint.state.document_html)},
          {"participants", U64(checkpoint.state.participants.size())},
          {"pending", U64(checkpoint.state.pending_actions.size())},
          {"key", checkpoint.config.session_key},
          {"poll_ms", I64(checkpoint.config.poll_interval_ms)},
          {"cache", checkpoint.config.cache_mode ? "1" : "0"},
          {"delta", checkpoint.config.enable_delta ? "1" : "0"},
          {"trace", checkpoint.config.enable_trace ? "1" : "0"},
          {"sync", StrFormat("%d", checkpoint.config.sync_model)},
          {"port", U64(checkpoint.config.port)},
      });
  AppendFrame(&body, static_cast<uint8_t>(CheckpointFrame::kMeta), meta);
  AppendFrame(&body, static_cast<uint8_t>(CheckpointFrame::kDocument),
              checkpoint.state.document_html);
  for (const ParticipantExport& participant : checkpoint.state.participants) {
    AppendFrame(&body, static_cast<uint8_t>(CheckpointFrame::kParticipant),
                EncodeParticipant(participant));
  }
  for (const PendingActionExport& pending : checkpoint.state.pending_actions) {
    AppendFrame(&body, static_cast<uint8_t>(CheckpointFrame::kPending),
                EncodePending(pending));
  }
  AppendFrame(&body, static_cast<uint8_t>(CheckpointFrame::kDigest),
              Sha256::HexDigest(body));
  return body;
}

StatusOr<SessionCheckpoint> DecodeCheckpoint(std::string_view bytes) {
  // Gate 1: magic.
  if (bytes.size() < kMagicSize ||
      bytes.substr(0, kMagicSize) != std::string_view(kCheckpointMagic,
                                                      kMagicSize)) {
    return AbortedError("checkpoint: bad magic");
  }
  // Gate 2: walk the frames (each read CRC-gated), remembering where each
  // one started so the digest frame can cover everything before itself.
  size_t offset = kMagicSize;
  std::vector<Frame> frames;
  bool digest_seen = false;
  while (offset < bytes.size()) {
    if (digest_seen) {
      return AbortedError("checkpoint: trailing bytes after digest frame");
    }
    size_t frame_start = offset;
    auto frame = ReadFrame(bytes, &offset);
    if (!frame.ok()) {
      return AbortedError("checkpoint: " + frame.status().message());
    }
    if (frame->type == static_cast<uint8_t>(CheckpointFrame::kDigest)) {
      // Gate 3: whole-file SHA-256 trailer.
      if (frame->payload != Sha256::HexDigest(bytes.substr(0, frame_start))) {
        return AbortedError("checkpoint: SHA-256 trailer mismatch");
      }
      digest_seen = true;
      continue;
    }
    frames.push_back(std::move(*frame));
  }
  if (!digest_seen) {
    return AbortedError("checkpoint: missing digest trailer");
  }
  // Gate 4: structure. First frame is the meta record; exactly one document.
  if (frames.empty() ||
      frames.front().type != static_cast<uint8_t>(CheckpointFrame::kMeta)) {
    return AbortedError("checkpoint: missing meta frame");
  }
  Fields meta(frames.front().payload);
  uint64_t version = 0;
  RCB_RETURN_IF_ERROR(meta.GetU64("v", &version));
  if (version != static_cast<uint64_t>(kCheckpointVersion)) {
    return InvalidArgumentError(
        StrFormat("checkpoint: unsupported version %llu",
                  static_cast<unsigned long long>(version)));
  }

  SessionCheckpoint checkpoint;
  RCB_RETURN_IF_ERROR(meta.Get("session", &checkpoint.session_id));
  if (checkpoint.session_id.empty()) {
    return AbortedError("checkpoint: empty session id");
  }
  RCB_RETURN_IF_ERROR(meta.GetU64("epoch", &checkpoint.epoch));
  RCB_RETURN_IF_ERROR(meta.GetI64("created_us", &checkpoint.created_at_us));
  RCB_RETURN_IF_ERROR(
      meta.GetI64("doc_time_ms", &checkpoint.state.doc_time_ms));
  RCB_RETURN_IF_ERROR(meta.GetBool("has_version", &checkpoint.state.has_version));
  RCB_RETURN_IF_ERROR(meta.GetU64("next_pid", &checkpoint.state.next_pid));
  RCB_RETURN_IF_ERROR(meta.Get("url", &checkpoint.state.document_url));
  RCB_RETURN_IF_ERROR(meta.Get("key", &checkpoint.config.session_key));
  RCB_RETURN_IF_ERROR(
      meta.GetI64("poll_ms", &checkpoint.config.poll_interval_ms));
  RCB_RETURN_IF_ERROR(meta.GetBool("cache", &checkpoint.config.cache_mode));
  RCB_RETURN_IF_ERROR(meta.GetBool("delta", &checkpoint.config.enable_delta));
  RCB_RETURN_IF_ERROR(meta.GetBool("trace", &checkpoint.config.enable_trace));
  int64_t sync_model = 0;
  RCB_RETURN_IF_ERROR(meta.GetI64("sync", &sync_model));
  checkpoint.config.sync_model = static_cast<int>(sync_model);
  uint64_t port = 0;
  RCB_RETURN_IF_ERROR(meta.GetU64("port", &port));
  if (port > 65535) {
    return AbortedError("checkpoint: port out of range");
  }
  checkpoint.config.port = static_cast<uint16_t>(port);

  uint64_t expected_participants = 0;
  uint64_t expected_pending = 0;
  RCB_RETURN_IF_ERROR(meta.GetU64("participants", &expected_participants));
  RCB_RETURN_IF_ERROR(meta.GetU64("pending", &expected_pending));
  std::string expected_doc_sha;
  RCB_RETURN_IF_ERROR(meta.Get("doc_sha256", &expected_doc_sha));

  bool document_seen = false;
  for (size_t i = 1; i < frames.size(); ++i) {
    const Frame& frame = frames[i];
    switch (static_cast<CheckpointFrame>(frame.type)) {
      case CheckpointFrame::kDocument: {
        if (document_seen) {
          return AbortedError("checkpoint: duplicate document frame");
        }
        document_seen = true;
        // Gate 5: the document's own digest (DOMtegrity discipline) — the
        // restored DOM is provably the DOM that was checkpointed.
        if (Sha256::HexDigest(frame.payload) != expected_doc_sha) {
          return AbortedError("checkpoint: document digest mismatch");
        }
        checkpoint.state.document_html = frame.payload;
        break;
      }
      case CheckpointFrame::kParticipant: {
        auto participant = DecodeParticipant(frame.payload);
        if (!participant.ok()) {
          return participant.status();
        }
        checkpoint.state.participants.push_back(std::move(*participant));
        break;
      }
      case CheckpointFrame::kPending: {
        auto pending = DecodePending(frame.payload);
        if (!pending.ok()) {
          return pending.status();
        }
        checkpoint.state.pending_actions.push_back(std::move(*pending));
        break;
      }
      case CheckpointFrame::kMeta:
      case CheckpointFrame::kDigest:
        return AbortedError("checkpoint: misplaced frame");
      default:
        return AbortedError("checkpoint: unknown frame type");
    }
  }
  if (!document_seen) {
    return AbortedError("checkpoint: missing document frame");
  }
  if (checkpoint.state.participants.size() != expected_participants ||
      checkpoint.state.pending_actions.size() != expected_pending) {
    return AbortedError("checkpoint: roster count mismatch");
  }
  return checkpoint;
}

}  // namespace persist
}  // namespace rcb
