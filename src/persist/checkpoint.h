// Versioned, digest-gated session checkpoint codec (DESIGN.md §13).
//
// File layout:
//
//   "RCBCKPT1"                                  8-byte magic + version
//   frame kMeta        form-urlencoded scalars (ids, versions, config,
//                      participant/pending counts, document SHA-256)
//   frame kDocument    serialized document HTML (raw bytes)
//   frame kParticipant one per roster entry, form-urlencoded
//   frame kPending     one per held action, form-urlencoded
//   frame kDigest      lowercase-hex SHA-256 over every preceding byte
//                      (magic through the last data frame)
//
// Decoding applies the DOMtegrity-style integrity ladder: magic gate, per
// frame CRC gate, structural gates (first frame is kMeta, counts match,
// digest frame is last), document digest gate, and the whole-file SHA-256
// trailer gate. Any violation rejects the checkpoint as a unit — a torn or
// bit-flipped checkpoint never yields a half-restored session.
#ifndef SRC_PERSIST_CHECKPOINT_H_
#define SRC_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/agent_state.h"
#include "src/util/status.h"

namespace rcb {
namespace persist {

inline constexpr char kCheckpointMagic[] = "RCBCKPT1";  // 8 bytes, v1
inline constexpr int kCheckpointVersion = 1;

// Frame types used inside a checkpoint file.
enum class CheckpointFrame : uint8_t {
  kMeta = 1,
  kDocument = 2,
  kParticipant = 3,
  kPending = 4,
  kDigest = 15,
};

// The per-session agent configuration a recovered session must run under.
// Persisted because snippets negotiated against it (the session key signs
// their polls; the poll interval and cache/delta modes shaped their state) —
// recovering under host defaults would strand every existing participant.
struct SessionConfigExport {
  std::string session_key;
  int64_t poll_interval_ms = 1000;
  bool cache_mode = true;
  bool enable_delta = false;
  bool enable_trace = false;
  int sync_model = 0;  // SyncModel enum value
  // The port the session listened on. Snippets poll it directly, so recovery
  // must reopen the same one.
  uint16_t port = 0;

  bool operator==(const SessionConfigExport&) const = default;
};

struct SessionCheckpoint {
  std::string session_id;
  // WAL generation this checkpoint supersedes; the live WAL's header must
  // carry the same epoch for its records to apply on top.
  uint64_t epoch = 0;
  int64_t created_at_us = 0;  // sim time of the checkpoint write
  SessionConfigExport config;
  AgentStateExport state;
};

std::string EncodeCheckpoint(const SessionCheckpoint& checkpoint);

// Rejects with kAborted on any integrity-gate violation; the message names
// the gate that fired. kInvalidArgument for structurally valid files of an
// unsupported version.
StatusOr<SessionCheckpoint> DecodeCheckpoint(std::string_view bytes);

}  // namespace persist
}  // namespace rcb

#endif  // SRC_PERSIST_CHECKPOINT_H_
