// Per-session durable storage: one checkpoint file plus one write-ahead log,
// with checkpoint-and-truncate to bound log growth (DESIGN.md §13).
//
// Layout under PersistOptions::dir:
//
//   <session_id>.ckpt       last durable checkpoint (RCBCKPT1)
//   <session_id>.ckpt.tmp   in-flight checkpoint (atomic-rename staging)
//   <session_id>.wal        log of transitions since that checkpoint
//
// Every write funnels through the process-fault injector's crash sites, so
// the chaos matrix can cut a write at any defined point; after a simulated
// crash the store goes inert (a dead process writes nothing), and tests
// restart a new host over the same directory to exercise recovery.
//
// All I/O is plain buffered file I/O driven by the deterministic event loop:
// given the same schedule, two runs produce byte-identical files.
#ifndef SRC_PERSIST_SESSION_STORE_H_
#define SRC_PERSIST_SESSION_STORE_H_

#include <cstdint>
#include <string>

#include "src/net/fault_injector.h"
#include "src/persist/checkpoint.h"
#include "src/persist/wal.h"
#include "src/util/status.h"

namespace rcb {
namespace persist {

struct PersistOptions {
  // Directory for checkpoint + WAL files. Empty disables persistence.
  std::string dir;
  // A session checkpoints (and truncates its log) once this many WAL records
  // or bytes have accumulated since the last checkpoint, whichever first.
  uint64_t checkpoint_dirty_records = 64;
  uint64_t checkpoint_dirty_bytes = 256 * 1024;

  bool enabled() const { return !dir.empty(); }
};

// Shared across all of a host's stores; surfaced as rcb_persist_* metrics.
struct PersistCounters {
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_truncations = 0;
  // Crash-injected partial writes actually emitted to disk.
  uint64_t torn_writes = 0;
  // Recovery-side outcomes.
  uint64_t wal_tail_discards = 0;
  uint64_t wals_discarded = 0;
  uint64_t checkpoints_rejected = 0;
};

class SessionStore {
 public:
  // `counters` must outlive the store; `faults` may be null (no injection).
  SessionStore(std::string session_id, PersistOptions options,
               PersistCounters* counters, ProcessFaultInjector* faults);

  // Appends one record to the log, flushing it durably before returning —
  // the caller acks the client only after this returns. No-op after a
  // simulated crash.
  Status Append(const WalRecord& record);

  // Writes `checkpoint` via tmp-file + atomic rename, advances the epoch,
  // and truncates the log to a fresh header. Stamps checkpoint.epoch itself.
  Status WriteCheckpoint(SessionCheckpoint checkpoint);

  // Deletes this session's files (session closed cleanly; nothing to
  // recover).
  void RemoveFiles();

  // Epoch of the last durable checkpoint. AdoptEpoch seeds it from a
  // recovered checkpoint so the re-baseline write supersedes it.
  uint64_t epoch() const { return epoch_; }
  void AdoptEpoch(uint64_t epoch) { epoch_ = epoch; }

  // Dirty accounting since the last checkpoint.
  uint64_t dirty_records() const { return dirty_records_; }
  uint64_t dirty_bytes() const { return dirty_bytes_; }
  bool ShouldCheckpoint() const {
    return dirty_records_ >= options_.checkpoint_dirty_records ||
           dirty_bytes_ >= options_.checkpoint_dirty_bytes;
  }

  const std::string& session_id() const { return session_id_; }
  std::string CheckpointPath() const;
  std::string WalPath() const;

 private:
  bool Crashed() const;
  bool Crash(CrashPoint site);
  // Appends `bytes` (possibly a torn prefix) to the log file on disk.
  Status AppendToWalFile(std::string_view bytes);

  std::string session_id_;
  PersistOptions options_;
  PersistCounters* counters_;
  ProcessFaultInjector* faults_;
  uint64_t epoch_ = 0;
  uint64_t dirty_records_ = 0;
  uint64_t dirty_bytes_ = 0;
  // Records appended but not yet flushed (the pre-fsync window the
  // kBeforeWalFlush / kPartialFlush crash sites target).
  std::string pending_;
};

// What recovery hands the host for one session, after the full ladder ran:
// checkpoint integrity gates, WAL header/epoch gate, torn-tail truncation,
// and record replay onto the checkpointed state.
struct LoadResult {
  // state already reflects replayed kSeq / kJoin / kLeave records.
  SessionCheckpoint checkpoint;
  // Epoch to continue under (the checkpoint's; the re-baseline supersedes it).
  uint64_t epoch = 0;
  bool wal_present = false;
  bool wal_tail_discarded = false;
  // Whole log dropped: unreadable, bad header, or epoch mismatch.
  bool wal_discarded = false;
  // kDocVersion records whose document bytes were never checkpointed; the
  // session restarts at the checkpointed document and these are gone.
  uint64_t doc_versions_lost = 0;
  // Post-checkpoint audit (kAction) records observed.
  uint64_t actions_logged = 0;
};

// Loads one session from its files, applying the recovery ladder. kAborted
// (or any error) means the checkpoint itself is unusable — per the ladder
// the caller quarantines the files and drops the session, never the host.
StatusOr<LoadResult> LoadSession(const std::string& checkpoint_path,
                                 const std::string& wal_path,
                                 PersistCounters* counters);

}  // namespace persist
}  // namespace rcb

#endif  // SRC_PERSIST_SESSION_STORE_H_
