#include "src/persist/frame.h"

#include <array>

namespace rcb {
namespace persist {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t ReadU32(std::string_view data, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[offset + 3]))
             << 24;
}

void AppendFrame(std::string* out, uint8_t type, std::string_view payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(type));
  out->append(payload);
  std::string covered;
  covered.reserve(payload.size() + 1);
  covered.push_back(static_cast<char>(type));
  covered.append(payload);
  AppendU32(out, Crc32(covered));
}

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 9);
  AppendFrame(&out, type, payload);
  return out;
}

StatusOr<Frame> ReadFrame(std::string_view data, size_t* offset) {
  if (*offset == data.size()) {
    return OutOfRangeError("end of stream");
  }
  if (data.size() - *offset < 4) {
    return AbortedError("torn frame: truncated length prefix");
  }
  uint32_t len = ReadU32(data, *offset);
  if (len > kMaxFramePayload) {
    return AbortedError("corrupt frame: payload length out of bounds");
  }
  size_t total = 4 + 1 + static_cast<size_t>(len) + 4;
  if (data.size() - *offset < total) {
    return AbortedError("torn frame: truncated payload");
  }
  Frame frame;
  frame.type = static_cast<uint8_t>(data[*offset + 4]);
  frame.payload = std::string(data.substr(*offset + 5, len));
  uint32_t stored = ReadU32(data, *offset + 5 + len);
  uint32_t computed = Crc32(data.substr(*offset + 4, 1 + len));
  if (stored != computed) {
    return AbortedError("corrupt frame: CRC mismatch");
  }
  *offset += total;
  return frame;
}

}  // namespace persist
}  // namespace rcb
