#include "src/persist/session_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/util/strings.h"

namespace rcb {
namespace persist {
namespace {

namespace fs = std::filesystem;

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

Status WriteFileBytes(const std::string& path, std::string_view bytes,
                      bool truncate) {
  std::ofstream out(path, truncate ? std::ios::binary | std::ios::trunc
                                   : std::ios::binary | std::ios::app);
  if (!out) {
    return InternalError("cannot open " + path + " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

// Replays one log onto the checkpointed state. Only roster / anti-replay
// records mutate state; document versions and actions past the checkpoint
// have no durable content and are counted as losses instead.
void ApplyWal(const WalReplay& wal, LoadResult* result) {
  auto& state = result->checkpoint.state;
  auto find = [&state](const std::string& pid) -> ParticipantExport* {
    for (ParticipantExport& participant : state.participants) {
      if (participant.pid == pid) {
        return &participant;
      }
    }
    return nullptr;
  };
  for (const WalRecord& record : wal.records) {
    switch (record.type) {
      case WalRecordType::kDocVersion:
        ++result->doc_versions_lost;
        break;
      case WalRecordType::kSeq: {
        ParticipantExport* participant = find(record.pid);
        if (participant == nullptr) {
          state.participants.push_back(ParticipantExport{record.pid});
          participant = &state.participants.back();
        }
        participant->last_seq = std::max(participant->last_seq, record.seq);
        break;
      }
      case WalRecordType::kAction:
        ++result->actions_logged;
        break;
      case WalRecordType::kJoin: {
        if (find(record.pid) == nullptr) {
          state.participants.push_back(ParticipantExport{record.pid});
        }
        // Agent-assigned pids are "p<N>"; keep the allocator ahead of every
        // pid that ever joined so recovery never re-issues one.
        uint64_t n = 0;
        if (record.pid.size() > 1 && record.pid.front() == 'p' &&
            ParseUint64(std::string_view(record.pid).substr(1), &n)) {
          state.next_pid = std::max(state.next_pid, n + 1);
        }
        break;
      }
      case WalRecordType::kLeave: {
        auto it = std::find_if(
            state.participants.begin(), state.participants.end(),
            [&](const ParticipantExport& p) { return p.pid == record.pid; });
        if (it != state.participants.end()) {
          state.participants.erase(it);
        }
        break;
      }
      case WalRecordType::kHeader:
        break;  // DecodeWal never emits one as a record
    }
  }
}

}  // namespace

SessionStore::SessionStore(std::string session_id, PersistOptions options,
                           PersistCounters* counters,
                           ProcessFaultInjector* faults)
    : session_id_(std::move(session_id)),
      options_(std::move(options)),
      counters_(counters),
      faults_(faults) {}

std::string SessionStore::CheckpointPath() const {
  return (fs::path(options_.dir) / (session_id_ + ".ckpt")).string();
}

std::string SessionStore::WalPath() const {
  return (fs::path(options_.dir) / (session_id_ + ".wal")).string();
}

bool SessionStore::Crashed() const {
  return faults_ != nullptr && faults_->crashed();
}

bool SessionStore::Crash(CrashPoint site) {
  return faults_ != nullptr && faults_->ShouldCrash(site, session_id_);
}

Status SessionStore::AppendToWalFile(std::string_view bytes) {
  return WriteFileBytes(WalPath(), bytes, /*truncate=*/false);
}

Status SessionStore::Append(const WalRecord& record) {
  if (!options_.enabled() || Crashed()) {
    return Status::Ok();  // a dead process writes nothing
  }
  std::string frame = EncodeWalRecord(record);
  if (Crash(CrashPoint::kTornWalFrame)) {
    // The process dies mid-write: whatever was buffered plus the front half
    // of this frame reaches disk, leaving a torn tail for recovery to cut.
    ++counters_->torn_writes;
    std::string torn = pending_ + frame.substr(0, frame.size() / 2);
    return AppendToWalFile(torn);
  }
  pending_ += frame;
  ++counters_->wal_records;
  counters_->wal_bytes += frame.size();
  ++dirty_records_;
  dirty_bytes_ += frame.size();
  if (Crash(CrashPoint::kBeforeWalFlush)) {
    return Status::Ok();  // buffered bytes never reach disk
  }
  if (Crash(CrashPoint::kPartialFlush)) {
    // The flush itself is cut short: a whole-frame prefix plus half of the
    // final frame lands on disk.
    ++counters_->torn_writes;
    return AppendToWalFile(
        std::string_view(pending_).substr(0, pending_.size() / 2));
  }
  RCB_RETURN_IF_ERROR(AppendToWalFile(pending_));
  pending_.clear();
  if (Crash(CrashPoint::kAfterWalAppend)) {
    return Status::Ok();  // record is durable; the ack it backs is not sent
  }
  return Status::Ok();
}

Status SessionStore::WriteCheckpoint(SessionCheckpoint checkpoint) {
  if (!options_.enabled() || Crashed()) {
    return Status::Ok();
  }
  checkpoint.session_id = session_id_;
  checkpoint.epoch = epoch_ + 1;
  std::string bytes = EncodeCheckpoint(checkpoint);
  std::string final_path = CheckpointPath();
  std::string tmp_path = final_path + ".tmp";
  if (Crash(CrashPoint::kTornCheckpointTmp)) {
    // Died while staging: the tmp file is torn but the previous checkpoint
    // and its log are untouched — recovery proceeds from them.
    ++counters_->torn_writes;
    return WriteFileBytes(tmp_path, bytes.substr(0, bytes.size() / 2),
                          /*truncate=*/true);
  }
  RCB_RETURN_IF_ERROR(WriteFileBytes(tmp_path, bytes, /*truncate=*/true));
  if (Crash(CrashPoint::kTornCheckpointSwap)) {
    // Models a non-atomic swap (overwrite-in-place): the old checkpoint is
    // destroyed and the new one is torn — the worst defined crash, which the
    // integrity gates must turn into a per-session discard, never a crash.
    ++counters_->torn_writes;
    return WriteFileBytes(final_path, bytes.substr(0, bytes.size() / 2),
                          /*truncate=*/true);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return InternalError("checkpoint rename failed: " + ec.message());
  }
  epoch_ = checkpoint.epoch;
  ++counters_->checkpoints_written;
  counters_->checkpoint_bytes += bytes.size();
  // Truncate the log: everything it held is folded into this checkpoint.
  RCB_RETURN_IF_ERROR(WriteFileBytes(
      WalPath(),
      EncodeWalFileHeader(session_id_, epoch_, checkpoint.state.doc_time_ms),
      /*truncate=*/true));
  ++counters_->wal_truncations;
  dirty_records_ = 0;
  dirty_bytes_ = 0;
  pending_.clear();
  return Status::Ok();
}

void SessionStore::RemoveFiles() {
  if (!options_.enabled() || Crashed()) {
    return;
  }
  std::error_code ec;
  fs::remove(CheckpointPath(), ec);
  fs::remove(CheckpointPath() + ".tmp", ec);
  fs::remove(WalPath(), ec);
}

StatusOr<LoadResult> LoadSession(const std::string& checkpoint_path,
                                 const std::string& wal_path,
                                 PersistCounters* counters) {
  auto bytes = ReadFileBytes(checkpoint_path);
  if (!bytes.ok()) {
    ++counters->checkpoints_rejected;
    return bytes.status();
  }
  auto checkpoint = DecodeCheckpoint(*bytes);
  if (!checkpoint.ok()) {
    ++counters->checkpoints_rejected;
    return checkpoint.status();
  }
  LoadResult result;
  result.checkpoint = std::move(*checkpoint);
  result.epoch = result.checkpoint.epoch;

  auto wal_bytes = ReadFileBytes(wal_path);
  if (!wal_bytes.ok()) {
    return result;  // no log: the checkpoint alone is the session
  }
  result.wal_present = true;
  auto replay = DecodeWal(*wal_bytes);
  if (!replay.ok()) {
    // Unusable as a unit (bad magic / header): rung two of the ladder —
    // keep the checkpoint, drop the log.
    result.wal_discarded = true;
    ++counters->wals_discarded;
    return result;
  }
  if (replay->session_id != result.checkpoint.session_id ||
      replay->epoch != result.checkpoint.epoch) {
    // A log from another generation (or another session's file moved into
    // place) must not replay onto this checkpoint.
    result.wal_discarded = true;
    ++counters->wals_discarded;
    return result;
  }
  if (replay->tail_discarded) {
    result.wal_tail_discarded = true;
    ++counters->wal_tail_discards;
  }
  ApplyWal(*replay, &result);
  return result;
}

}  // namespace persist
}  // namespace rcb
