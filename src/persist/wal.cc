#include "src/persist/wal.h"

#include <map>
#include <utility>

#include "src/http/form.h"
#include "src/persist/frame.h"
#include "src/util/strings.h"

namespace rcb {
namespace persist {
namespace {

constexpr size_t kMagicSize = 8;

std::string U64(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

std::string I64(int64_t value) {
  return StrFormat("%lld", static_cast<long long>(value));
}

bool ParseI64(std::string_view s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  bool negative = s.front() == '-';
  uint64_t magnitude = 0;
  if (!ParseUint64(negative ? s.substr(1) : s, &magnitude) ||
      magnitude > static_cast<uint64_t>(INT64_MAX)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

bool Lookup(const std::map<std::string, std::string>& fields,
            const std::string& key, std::string* out) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

// Decodes one post-header record frame. Returns false on any malformed
// payload — the caller treats that exactly like a torn frame and discards
// the tail from there.
bool DecodeRecord(const Frame& frame, WalRecord* record) {
  record->type = static_cast<WalRecordType>(frame.type);
  auto fields = ParseFormUrlEncoded(frame.payload);
  std::string raw;
  switch (record->type) {
    case WalRecordType::kDocVersion:
      return Lookup(fields, "ts", &raw) && ParseI64(raw, &record->doc_time_ms);
    case WalRecordType::kSeq: {
      if (!Lookup(fields, "pid", &record->pid) || record->pid.empty() ||
          !Lookup(fields, "seq", &raw)) {
        return false;
      }
      return ParseUint64(raw, &record->seq);
    }
    case WalRecordType::kAction: {
      if (!Lookup(fields, "pid", &record->pid) || record->pid.empty() ||
          !Lookup(fields, "action", &raw)) {
        return false;
      }
      auto actions = DecodeActions(raw);
      if (!actions.ok() || actions->size() != 1) {
        return false;
      }
      record->action = std::move(actions->front());
      return true;
    }
    case WalRecordType::kJoin:
    case WalRecordType::kLeave:
      return Lookup(fields, "pid", &record->pid) && !record->pid.empty();
    case WalRecordType::kHeader:
      return false;  // a second header is corruption
  }
  return false;  // unknown type byte under a valid CRC: treat as corrupt
}

}  // namespace

std::string EncodeWalFileHeader(const std::string& session_id, uint64_t epoch,
                                int64_t base_doc_time_ms) {
  std::string out(kWalMagic, kMagicSize);
  std::string payload = EncodeFormUrlEncoded(
      std::vector<std::pair<std::string, std::string>>{
          {"session", session_id},
          {"epoch", U64(epoch)},
          {"base_ts", I64(base_doc_time_ms)},
      });
  AppendFrame(&out, static_cast<uint8_t>(WalRecordType::kHeader), payload);
  return out;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::vector<std::pair<std::string, std::string>> fields;
  switch (record.type) {
    case WalRecordType::kDocVersion:
      fields.emplace_back("ts", I64(record.doc_time_ms));
      break;
    case WalRecordType::kSeq:
      fields.emplace_back("pid", record.pid);
      fields.emplace_back("seq", U64(record.seq));
      break;
    case WalRecordType::kAction:
      fields.emplace_back("pid", record.pid);
      fields.emplace_back("action", EncodeActions({record.action}));
      break;
    case WalRecordType::kJoin:
    case WalRecordType::kLeave:
      fields.emplace_back("pid", record.pid);
      break;
    case WalRecordType::kHeader:
      break;  // never encoded through this path
  }
  return EncodeFrame(static_cast<uint8_t>(record.type),
                     EncodeFormUrlEncoded(fields));
}

StatusOr<WalReplay> DecodeWal(std::string_view bytes) {
  if (bytes.size() < kMagicSize ||
      bytes.substr(0, kMagicSize) != std::string_view(kWalMagic, kMagicSize)) {
    return AbortedError("wal: bad magic");
  }
  size_t offset = kMagicSize;
  auto header = ReadFrame(bytes, &offset);
  if (!header.ok() ||
      header->type != static_cast<uint8_t>(WalRecordType::kHeader)) {
    return AbortedError("wal: missing header frame");
  }
  auto fields = ParseFormUrlEncoded(header->payload);
  WalReplay replay;
  std::string raw;
  if (!Lookup(fields, "session", &replay.session_id) ||
      replay.session_id.empty() || !Lookup(fields, "epoch", &raw) ||
      !ParseUint64(raw, &replay.epoch) || !Lookup(fields, "base_ts", &raw) ||
      !ParseI64(raw, &replay.base_doc_time_ms)) {
    return AbortedError("wal: malformed header");
  }
  replay.bytes_replayed = offset;
  while (true) {
    auto frame = ReadFrame(bytes, &offset);
    if (!frame.ok()) {
      // kOutOfRange is the clean end; anything else is the torn tail.
      replay.tail_discarded = frame.status().code() != StatusCode::kOutOfRange;
      break;
    }
    WalRecord record;
    if (!DecodeRecord(*frame, &record)) {
      replay.tail_discarded = true;
      break;
    }
    replay.records.push_back(std::move(record));
    replay.bytes_replayed = offset;
  }
  return replay;
}

}  // namespace persist
}  // namespace rcb
