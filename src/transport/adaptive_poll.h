// Adaptive poll-interval policy (DESIGN.md §15).
//
// Clients that stay on classic polling can still shed most of the idle-poll
// tax: after `idle_threshold` consecutive empty responses the interval grows
// geometrically (×`growth`, capped at `max`), and any sign of activity — a
// content or actions response, or a local user gesture — snaps it back to the
// base interval so update-visible latency is unaffected while the session is
// live. The policy is pure arithmetic over observed events (no randomness, no
// wall clock), so schedules are bit-identical across runs under sim time.
#ifndef SRC_TRANSPORT_ADAPTIVE_POLL_H_
#define SRC_TRANSPORT_ADAPTIVE_POLL_H_

#include <cstdint>

#include "src/util/sim_time.h"

namespace rcb {
namespace transport {

struct AdaptivePollConfig {
  Duration base = Duration::Seconds(1.0);
  Duration max = Duration::Seconds(8.0);
  // Interval multiplier applied per idle step once the threshold is crossed.
  double growth = 2.0;
  // Consecutive empty responses tolerated at the base interval before the
  // interval starts growing.
  uint32_t idle_threshold = 2;
};

class AdaptivePollPolicy {
 public:
  explicit AdaptivePollPolicy(AdaptivePollConfig config);

  // Interval to use for the next poll.
  Duration Current() const { return current_; }

  // An empty poll response arrived: one more idle observation.
  void OnEmpty();
  // Content, actions, or a local gesture: the session is live again.
  void OnActivity();

  uint64_t snapbacks() const { return snapbacks_; }
  uint32_t idle_streak() const { return idle_streak_; }

 private:
  AdaptivePollConfig config_;
  Duration current_;
  uint32_t idle_streak_ = 0;
  uint64_t snapbacks_ = 0;
};

}  // namespace transport
}  // namespace rcb

#endif  // SRC_TRANSPORT_ADAPTIVE_POLL_H_
