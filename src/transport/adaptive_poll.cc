#include "src/transport/adaptive_poll.h"

namespace rcb {
namespace transport {

AdaptivePollPolicy::AdaptivePollPolicy(AdaptivePollConfig config)
    : config_(config), current_(config.base) {
  if (config_.growth < 1.0) {
    config_.growth = 1.0;
  }
  if (config_.max < config_.base) {
    config_.max = config_.base;
  }
}

void AdaptivePollPolicy::OnEmpty() {
  ++idle_streak_;
  if (idle_streak_ < config_.idle_threshold) {
    return;
  }
  int64_t grown =
      static_cast<int64_t>(static_cast<double>(current_.micros()) *
                           config_.growth);
  current_ = Duration::Micros(grown);
  if (current_ > config_.max) {
    current_ = config_.max;
  }
}

void AdaptivePollPolicy::OnActivity() {
  if (current_ != config_.base) {
    ++snapbacks_;
  }
  idle_streak_ = 0;
  current_ = config_.base;
}

}  // namespace transport
}  // namespace rcb
