#include "src/transport/capabilities.h"

#include "src/util/strings.h"

namespace rcb {
namespace transport {

std::string FormatTransportGrant(const TransportGrant& grant) {
  if (grant.mode == GrantMode::kFrames) {
    return StrFormat("frames; hb=%lld",
                     static_cast<long long>(grant.heartbeat_ms));
  }
  return StrFormat("longpoll; hold=%lld",
                   static_cast<long long>(grant.hold_ms));
}

std::optional<TransportGrant> ParseTransportGrant(std::string_view value) {
  std::vector<std::string> parts = StrSplitSkipEmpty(value, ';');
  if (parts.empty()) {
    return std::nullopt;
  }
  TransportGrant grant;
  std::string_view mode = StripWhitespace(parts[0]);
  if (mode == "frames") {
    grant.mode = GrantMode::kFrames;
  } else if (mode == "longpoll") {
    grant.mode = GrantMode::kLongPoll;
  } else {
    return std::nullopt;
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    std::string_view param = StripWhitespace(parts[i]);
    size_t eq = param.find('=');
    if (eq == std::string_view::npos) {
      continue;  // unknown bare token: ignore for forward compatibility
    }
    std::string_view name = param.substr(0, eq);
    uint64_t number = 0;
    if (!ParseUint64(param.substr(eq + 1), &number)) {
      return std::nullopt;
    }
    if (name == "hb") {
      grant.heartbeat_ms = static_cast<int64_t>(number);
    } else if (name == "hold") {
      grant.hold_ms = static_cast<int64_t>(number);
    }
  }
  if (grant.mode == GrantMode::kFrames && grant.heartbeat_ms <= 0) {
    return std::nullopt;
  }
  if (grant.mode == GrantMode::kLongPoll && grant.hold_ms <= 0) {
    return std::nullopt;
  }
  return grant;
}

}  // namespace transport
}  // namespace rcb
