// Transport capability negotiation (DESIGN.md §15).
//
// The negotiation rides the existing poll exchange, following the patch=/
// trace= downgrade contract exactly:
//
//  - A streaming-capable snippet adds `stream=<mode>` to its poll body
//    (1 = long-poll capable, 2 = framed-stream capable). A snippet with the
//    capability off sends nothing — byte-identical to the pre-transport wire.
//  - An agent with the transport enabled answers a capable poll with an
//    `RCB-Transport:` response header naming the granted mode; with the
//    transport off (or the client silent) the header is never added, so the
//    response bytes are untouched.
//
// Grant wire format (parsed leniently, emitted canonically):
//
//   RCB-Transport: frames; hb=<heartbeat interval ms>
//   RCB-Transport: longpoll; hold=<max hold ms>
#ifndef SRC_TRANSPORT_CAPABILITIES_H_
#define SRC_TRANSPORT_CAPABILITIES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/util/sim_time.h"

namespace rcb {
namespace transport {

// Poll-body `stream=` capability levels, in increasing order.
inline constexpr uint32_t kStreamNone = 0;
inline constexpr uint32_t kStreamLongPoll = 1;
inline constexpr uint32_t kStreamFrames = 2;

enum class GrantMode { kLongPoll, kFrames };

struct TransportGrant {
  GrantMode mode = GrantMode::kLongPoll;
  // frames: heartbeat cadence the agent commits to.
  int64_t heartbeat_ms = 0;
  // longpoll: longest time the agent may hold a parked poll.
  int64_t hold_ms = 0;
};

std::string FormatTransportGrant(const TransportGrant& grant);

// Parses an RCB-Transport header value; nullopt on anything malformed (the
// client then stays on classic polling — downgrade, never an error).
std::optional<TransportGrant> ParseTransportGrant(std::string_view value);

// Agent-side transport knobs (AgentConfig::transport). Everything defaults
// off/conservative so the seed wire behavior is untouched until a deployment
// opts in on both sides.
struct TransportConfig {
  // Master switch: off never grants, never parks, rejects GET /frames.
  bool enable_stream = false;
  // Heartbeat cadence committed to framed streams.
  Duration heartbeat_interval = Duration::Seconds(5.0);
  // Longest a long-poll is parked before an empty response is released.
  Duration long_poll_hold = Duration::Seconds(10.0);
  // Cap on concurrently held framed streams + parked long-polls (overload
  // discipline, DESIGN.md §8); over the cap new upgrades are denied and the
  // client gracefully stays on classic polling.
  size_t max_held = 64;
};

// --- Wasted-poll accounting (health plane, DESIGN.md §16) ---
// The transport layer owns the definition of a *wasted* poll — a round trip
// that moved no content: an empty classic poll reply, or a parked long-poll
// released empty by its hold deadline. A parked poll that flushes with data
// is NOT wasted (that is the point of parking), so the transport's win shows
// up directly in the wasted_poll_ratio SLO (src/obs/slo.h).
struct WastedPollInputs {
  uint64_t polls_empty = 0;         // classic empty replies
  uint64_t long_poll_expiries = 0;  // parked polls released empty
};

inline uint64_t WastedPolls(const WastedPollInputs& inputs) {
  return inputs.polls_empty + inputs.long_poll_expiries;
}

}  // namespace transport
}  // namespace rcb

#endif  // SRC_TRANSPORT_CAPABILITIES_H_
