#include "src/transport/frame.h"

#include "src/crypto/hmac.h"
#include "src/util/strings.h"

namespace rcb {
namespace transport {
namespace {

constexpr char kMagic[] = "RCBF1";

// Canonical MAC input. The type and seq are folded in so a frame cannot be
// replayed under a different identity, mirroring the poll path's
// "METHOD path\nbody" canonicalization.
std::string MacMessage(std::string_view type, uint64_t seq,
                       std::string_view body) {
  std::string message = "frame\n";
  message += type;
  message += '\n';
  message += StrFormat("%llu", static_cast<unsigned long long>(seq));
  message += '\n';
  message += body;
  return message;
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kData:
      return "data";
    case FrameType::kHeartbeat:
      return "hb";
  }
  return "data";
}

std::string EncodeFrame(const Frame& frame, std::string_view key) {
  std::string_view type = FrameTypeName(frame.type);
  std::string head = kMagic;
  head += ' ';
  head += type;
  head += StrFormat(" %llu %zu", static_cast<unsigned long long>(frame.seq),
                    frame.body.size());
  if (!key.empty()) {
    head += ' ';
    head += HmacSha256Hex(key, MacMessage(type, frame.seq, frame.body));
  }
  head += "\r\n";
  head += frame.body;
  head += "\r\n";
  return head;
}

StatusOr<std::optional<Frame>> FrameParser::Next() {
  if (!error_.ok()) {
    return error_;
  }
  size_t eol = buffer_.find("\r\n");
  if (eol == std::string::npos) {
    // An unbounded header line is itself an attack; bound it by the longest
    // legal header (magic + type + two u64s + hex MAC + spaces < 128 bytes).
    if (buffer_.size() > 128) {
      error_ = InvalidArgumentError("frame header overlong");
      return error_;
    }
    return std::optional<Frame>();
  }
  std::vector<std::string> parts = StrSplit(buffer_.substr(0, eol), ' ');
  if (parts.size() < 4 || parts.size() > 5 || parts[0] != kMagic) {
    error_ = InvalidArgumentError("malformed frame header");
    return error_;
  }
  Frame frame;
  if (parts[1] == "hello") {
    frame.type = FrameType::kHello;
  } else if (parts[1] == "data") {
    frame.type = FrameType::kData;
  } else if (parts[1] == "hb") {
    frame.type = FrameType::kHeartbeat;
  } else {
    error_ = InvalidArgumentError("unknown frame type");
    return error_;
  }
  uint64_t seq = 0;
  uint64_t len = 0;
  if (!ParseUint64(parts[2], &seq) || !ParseUint64(parts[3], &len)) {
    error_ = InvalidArgumentError("non-numeric frame seq/length");
    return error_;
  }
  frame.seq = seq;
  if (len > kMaxBodyBytes) {
    error_ = InvalidArgumentError("frame body over the size cap");
    return error_;
  }
  // Whole frame = header line + body + trailing CRLF.
  size_t total = eol + 2 + len + 2;
  if (buffer_.size() < total) {
    return std::optional<Frame>();
  }
  frame.body = buffer_.substr(eol + 2, len);
  if (buffer_.compare(eol + 2 + len, 2, "\r\n") != 0) {
    error_ = InvalidArgumentError("frame missing body terminator");
    return error_;
  }
  // MAC discipline is all-or-nothing, like hmac= on the poll path: a keyed
  // parser rejects unsigned frames, an unkeyed parser rejects signed ones.
  if (key_.empty() != (parts.size() == 4)) {
    error_ = PermissionDeniedError("frame MAC presence mismatch");
    return error_;
  }
  if (!key_.empty()) {
    std::string expected =
        HmacSha256Hex(key_, MacMessage(parts[1], frame.seq, frame.body));
    if (!ConstantTimeEquals(expected, parts[4])) {
      error_ = PermissionDeniedError("frame MAC verification failed");
      return error_;
    }
  }
  // Anti-replay: seq must be strictly monotone within the stream.
  if (frame.seq <= last_seq_) {
    error_ = PermissionDeniedError("replayed or regressing frame seq");
    return error_;
  }
  last_seq_ = frame.seq;
  ++frames_parsed_;
  buffer_.erase(0, total);
  return std::optional<Frame>(std::move(frame));
}

}  // namespace transport
}  // namespace rcb
