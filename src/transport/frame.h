// Streamed-sync frame codec (DESIGN.md §15).
//
// A framed stream replaces the poll loop with a single held TCP connection
// over which the agent pushes sequence-stamped frames:
//
//   RCBF1 <type> <seq> <len>[ <mac>]\r\n<body>\r\n
//
// - `type` is one of `hello` (stream parameters), `data` (a newContent
//   snapshot, full or actions-only), or `hb` (heartbeat, empty body).
// - `seq` is a per-stream monotone counter starting at 1; the parser rejects
//   any frame whose seq is not strictly greater than the last accepted one,
//   reusing the anti-replay discipline of the poll path (§3.4).
// - `mac` is HmacSha256Hex(session_key, "frame\n<type>\n<seq>\n<body>") and
//   is present exactly when the session has a key — the same all-or-nothing
//   contract as the hmac= request parameter. Verification is constant-time.
//
// The codec is deliberately line-oriented and self-delimiting so the client
// can consume frames from arbitrary TCP fragmentation, and deterministic so
// chaos tests can fingerprint byte streams across runs.
#ifndef SRC_TRANSPORT_FRAME_H_
#define SRC_TRANSPORT_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace rcb {
namespace transport {

enum class FrameType { kHello, kData, kHeartbeat };

std::string_view FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kData;
  uint64_t seq = 0;
  std::string body;
};

// Serializes one frame; appends a MAC field iff `key` is non-empty.
std::string EncodeFrame(const Frame& frame, std::string_view key);

// Incremental frame parser for one stream direction. Feed it raw TCP bytes
// with Append(); drain complete frames with Next(). A verification failure
// (bad MAC, replayed/regressing seq, malformed or oversized header) is
// sticky: the stream is compromised and must be torn down and re-established
// through the signed resume handshake.
class FrameParser {
 public:
  // `key` empty disables MAC verification (unauthenticated sessions).
  explicit FrameParser(std::string key) : key_(std::move(key)) {}

  void Append(std::string_view data) { buffer_.append(data); }

  // Returns the next complete, verified frame; std::nullopt when the buffer
  // holds no complete frame yet. Once an error status is returned every
  // subsequent call returns the same error.
  StatusOr<std::optional<Frame>> Next();

  uint64_t last_seq() const { return last_seq_; }
  uint64_t frames_parsed() const { return frames_parsed_; }

  // Frames larger than this are rejected as malformed (DoS guard; a snapshot
  // frame is page-sized, far below this).
  static constexpr size_t kMaxBodyBytes = 16 * 1024 * 1024;

 private:
  std::string key_;
  std::string buffer_;
  uint64_t last_seq_ = 0;
  uint64_t frames_parsed_ = 0;
  Status error_ = Status::Ok();
};

}  // namespace transport
}  // namespace rcb

#endif  // SRC_TRANSPORT_FRAME_H_
