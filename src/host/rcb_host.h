// RcbHost: a multi-session agent host on one event loop.
//
// The paper runs one RCB-Agent inside one host browser; the production gap
// (ROADMAP item 1) is a host that serves many concurrent co-browsing
// sessions. RcbHost owns a registry of sessions keyed by session id — each
// session gets its own Browser + RcbAgent (state fully isolated: actions,
// HMAC keys, doc_time, rosters never cross sessions) listening on its own
// port of the host machine, so unmodified Ajax-Snippets join a session by
// URL. Shared across sessions:
//   * one ObjectCache (Browser::UseSharedCache) under a host byte budget,
//   * one MetricsRegistry, per-session families labelled session="<id>",
//     plus host-level rcb_host_* aggregates,
//   * the event loop and network.
//
// Inside each session the generate-once broadcast buffer (src/core/
// broadcast.h) amortizes the Fig. 3 pipeline across the session's N pollers:
// generate + delta-diff run once per doc_time, and the identical encoded
// bytes fan out to every matching poller. Host-level admission limits layer
// on PR 2's per-agent caps: past max_sessions, session creation sheds with
// 503 + Retry-After.
//
// A front door listens on base_port and routes:
//   * POST /host/sessions?id=<id>   create a session (503/409/400 on
//                                   cap/collision/invalid id),
//   * /s/<id>/<rest>                forward <rest> to that session's agent
//                                   (404 unknown, 410 reaped, 400 invalid),
//   * GET /host/status              session table + counters,
//   * GET /host/metrics             shared-registry Prometheus exposition.
// Push streams (GET /stream) hold their connection open and cannot pass
// through the request/response front door; they connect to the session's own
// port directly.
#ifndef SRC_HOST_RCB_HOST_H_
#define SRC_HOST_RCB_HOST_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/rcb_agent.h"
#include "src/persist/session_store.h"

namespace rcb {

class RcbHost;

// The durability binding for one hosted session (DESIGN.md §13): implements
// the agent's AgentStateObserver by appending each reported transition to
// the session's WAL, and schedules a host checkpoint (zero-delay, so it runs
// between events with the agent quiescent) once the store crosses its dirty
// thresholds. Owned by the HostSession; destroying it cancels any scheduled
// checkpoint, so a torn-down session never leaves a dangling event.
class SessionPersist : public AgentStateObserver {
 public:
  SessionPersist(RcbHost* host, std::string session_id,
                 std::unique_ptr<persist::SessionStore> store);
  ~SessionPersist() override;

  persist::SessionStore* store() { return store_.get(); }

  void OnDocVersion(int64_t doc_time_ms) override;
  void OnSeqAdvance(const std::string& pid, uint64_t seq) override;
  void OnActionMerged(const std::string& pid,
                      const UserAction& action) override;
  void OnParticipantJoined(const std::string& pid) override;
  void OnParticipantLeft(const std::string& pid) override;

 private:
  void Append(persist::WalRecord record);

  RcbHost* host_;
  std::string session_id_;
  std::unique_ptr<persist::SessionStore> store_;
  bool checkpoint_scheduled_ = false;
  uint64_t checkpoint_event_id_ = 0;
};

// Host-level admission limits, layered on the per-agent AgentLimits.
struct HostLimits {
  // Concurrent sessions; creation past the cap sheds with 503 + Retry-After.
  // 0 disables the cap.
  size_t max_sessions = 256;
  // A session with no request activity for this long is reaped (lazily, on
  // create/route/ReapIdleSessions — a recurring timer would keep the event
  // loop's pending count nonzero and break drain-based waits). Zero: never.
  Duration session_idle_timeout = Duration::Zero();
  // Byte budget for the host-wide shared ObjectCache. 0 = unbounded.
  uint64_t shared_cache_byte_budget = 0;
  // Retry-After hint on 503s.
  Duration retry_after = Duration::Seconds(1.0);
  // Deterministic jitter added to front-door Retry-After values (same scheme
  // as AgentLimits::retry_after_jitter), keyed per rejected request, so shed
  // creators do not retry in lockstep. Zero() disables.
  Duration retry_after_jitter = Duration::Seconds(3.0);
  // Reaped/closed session ids remembered for 410 Gone answers (FIFO).
  size_t reaped_id_memory = 256;
  // Only the first this-many sessions register per-session instrument
  // families (session="<id>" labels). Registration is O(families) per
  // session, so a 10k-session bench keeps the registry lean while the
  // rcb_host_* aggregates still cover every session. 0 = none.
  size_t metrics_sessions = 64;
};

struct HostConfig {
  // Network host the front door and every session listen on. Must be
  // registered with the Network before Start().
  std::string machine = "host-pc";
  // Front door port; sessions get base_port+1, base_port+2, ... (reaped
  // ports are reused).
  uint16_t base_port = 3000;
  HostLimits limits;
  // Template for per-session agents: CreateSession(id) copies this and
  // overrides port/registry wiring. Per-session keys, policies, delta knobs,
  // and hot-path generator tuning (AgentConfig::generator_tuning — arena
  // block size, serialization-cache budget; docs/PERF_MODEL.md) go through
  // CreateSession(id, config) or apply host-wide when set here.
  AgentConfig agent_defaults;
  // --- Durability (src/persist, DESIGN.md §13). persist.dir empty keeps the
  // host fully in-memory (the pre-PR-7 behavior, byte for byte). With a dir
  // set, every session checkpoints + WALs its protocol state there, Start()
  // recovers whatever a previous host left behind, and Stop() writes a final
  // checkpoint per session so a clean shutdown is recoverable too. ---
  persist::PersistOptions persist;
  // Recovered sessions stagger resync readmission across this window: each
  // gets a deterministic slot hash(session_id) % window, and polls before
  // its slot get 503 + jittered Retry-After through the overload layer.
  // Zero() admits everyone immediately.
  Duration recovery_storm_window = Duration::Seconds(5.0);
  // Host flight-recorder dump directory (anomaly: host_recovery). Empty
  // falls back to $RCB_FLIGHT_DIR; with neither, triggers only count.
  std::string flight_dir;
  // Crash-point injector driving the process-fault chaos matrix (not owned;
  // may be null). Sessions consult it on every persist write.
  ProcessFaultInjector* process_faults = nullptr;
};

// Host-level counters (all sim-provenance), exported as rcb_host_*.
struct HostMetrics {
  uint64_t sessions_created = 0;
  uint64_t sessions_closed = 0;    // explicit CloseSession
  uint64_t sessions_reaped = 0;    // idle-timeout reaps
  uint64_t sessions_rejected = 0;  // 503s at the session cap
  uint64_t session_id_collisions = 0;   // 409s creating an existing id
  uint64_t invalid_session_ids = 0;     // 400s for malformed ids
  uint64_t unknown_session_requests = 0;  // 404s routing to absent ids
  uint64_t expired_session_requests = 0;  // 410s routing to reaped ids
  uint64_t front_door_requests = 0;       // every request Route() saw
  // --- Recovery (DESIGN.md §13) ---
  uint64_t sessions_recovered = 0;      // restored from checkpoint on Start
  uint64_t sessions_unrecoverable = 0;  // quarantined: failed integrity gates
  uint64_t wal_tails_discarded = 0;     // torn log tails cut during recovery
  uint64_t doc_versions_lost = 0;       // post-checkpoint versions not restored
};

// One hosted co-browsing session: an isolated Browser + RcbAgent pair on its
// own port. The browser's document is the session's shared state; drive it
// with Navigate/MutateDocument exactly like a standalone host browser.
struct HostSession {
  std::string id;
  uint16_t port = 0;
  SimTime created_at;
  bool lite = false;  // past metrics_sessions: no per-session families
  bool recovered = false;  // restored from a checkpoint on host Start
  // Declared before browser/agent so it is destroyed last: the agent holds a
  // raw AgentStateObserver pointer into it. nullptr when persistence is off.
  std::unique_ptr<SessionPersist> persist;
  std::unique_ptr<Browser> browser;
  std::unique_ptr<RcbAgent> agent;
};

class RcbHost {
 public:
  RcbHost(EventLoop* loop, Network* network, HostConfig config);
  ~RcbHost();
  RcbHost(const RcbHost&) = delete;
  RcbHost& operator=(const RcbHost&) = delete;

  // Opens the front door and applies the shared-cache budget.
  Status Start();
  void Stop();
  bool running() const { return running_; }

  // The URL of the front door (status/metrics/create/route).
  Url FrontDoorUrl() const;

  // Creates a session under the default agent template. Fails with
  // kInvalidArgument (malformed id), kAlreadyExists (live id collision), or
  // kUnavailable (session cap, after attempting an idle reap).
  StatusOr<HostSession*> CreateSession(const std::string& id);
  // Same, with an explicit per-session agent config (port and registry
  // wiring are overridden by the host).
  StatusOr<HostSession*> CreateSession(const std::string& id,
                                       AgentConfig config);
  // nullptr when absent.
  HostSession* FindSession(const std::string& id);
  // Stops and destroys the session; its id answers 410 until it ages out of
  // the reaped-id memory (or is re-created).
  Status CloseSession(const std::string& id);
  // Reaps every session idle past session_idle_timeout; returns the count.
  // Runs implicitly before admission checks in CreateSession and on every
  // routed request.
  size_t ReapIdleSessions();

  size_t session_count() const { return sessions_.size(); }
  std::vector<std::string> SessionIds() const;

  // The front-door router, also callable in-process (tests fuzz it
  // directly; bench harnesses skip the HTTP hop).
  HttpResponse Route(const HttpRequest& request);

  const HostMetrics& metrics() const { return host_metrics_; }
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }
  ObjectCache& shared_cache() { return shared_cache_; }
  const HostConfig& config() const { return config_; }

  // True iff `id` is nonempty, at most 64 chars, all [A-Za-z0-9_-].
  static bool IsValidSessionId(const std::string& id);

  // --- Durability (DESIGN.md §13) ---
  // Writes a checkpoint for one session (truncating its WAL). No-op when the
  // session is absent or persistence is off. SessionPersist schedules this
  // lazily on dirty thresholds; tests call it to force a baseline.
  Status CheckpointSession(const std::string& id);
  // Checkpoints every live session (Stop() does this before teardown).
  void CheckpointAllSessions();
  const persist::PersistCounters& persist_counters() const {
    return persist_counters_;
  }
  const obs::FlightRecorder& flight_recorder() const { return flight_; }
  const obs::TraceLog& trace_log() const { return trace_; }
  EventLoop* loop() { return loop_; }

 private:
  struct HostConn {
    NetEndpoint* endpoint = nullptr;
    HttpRequestParser parser;
  };
  // AgentMetrics totals of destroyed sessions, folded into the rcb_host_*
  // aggregates so they stay monotone across reaps.
  struct RetiredTotals {
    uint64_t doc_updates = 0;
    uint64_t generations = 0;
    uint64_t snapshot_reuses = 0;
    uint64_t polls_received = 0;
    uint64_t polls_with_content = 0;
    uint64_t content_bytes_sent = 0;
    Duration total_generation_time;
  };

  void OnAccept(NetEndpoint* endpoint);
  void OnConnData(HostConn* conn, std::string_view data);
  void RemoveConnection(HostConn* conn);

  HttpResponse HandleCreateSession(const HttpRequest& request);
  HttpResponse HandleSessionRequest(const HttpRequest& request);
  HttpResponse HandleHostStatus() const;
  HttpResponse HandleHostMetrics(const HttpRequest& request) const;
  // GET /host/health: health-plane snapshot over every live session, worst
  // first (DESIGN.md §16). HMAC-gated like the agents' /metrics when the
  // agent template carries a session key.
  HttpResponse HandleHostHealth(const HttpRequest& request);
  // Same canonical "<METHOD> <target-minus-hmac>\n<body>" check the agents
  // apply, keyed by agent_defaults.session_key (empty key = open).
  bool VerifyHostAuth(const HttpRequest& request) const;

  // Tears down one session and folds its counters into retired_. Persist
  // files are removed when the session ends on purpose (close/reap) and kept
  // when the host is merely shutting down (Stop checkpoints first).
  void DestroySession(const std::string& id, bool remove_persist);
  void RememberReaped(const std::string& id);
  uint16_t AllocatePort();

  // Recovery-on-start (DESIGN.md §13): scans persist.dir for checkpoints,
  // runs the integrity ladder on each, resurrects the survivors, and
  // quarantines the rest — degradation is always per-session.
  void RecoverSessions();
  Status RecoverOne(const std::string& checkpoint_path,
                    const std::string& wal_path);
  // Builds the checkpoint payload for a live session.
  persist::SessionCheckpoint BuildCheckpoint(HostSession* session) const;
  Duration JitteredRetryAfter(Duration base, std::string_view key) const;

  void RegisterHostMetrics();
  // Sums `field` over live sessions (plus the retired base).
  uint64_t SumAgents(uint64_t AgentMetrics::*field, uint64_t retired) const;

  EventLoop* loop_;
  Network* network_;
  HostConfig config_;
  bool running_ = false;

  std::map<std::string, std::unique_ptr<HostSession>> sessions_;
  std::vector<uint16_t> free_ports_;  // reaped session ports, reusable
  uint16_t next_port_offset_ = 1;
  size_t metric_sessions_registered_ = 0;

  std::deque<std::string> reaped_order_;  // FIFO for 410 memory
  std::set<std::string> reaped_ids_;

  std::vector<std::unique_ptr<HostConn>> connections_;

  ObjectCache shared_cache_;
  obs::MetricsRegistry registry_;
  HostMetrics host_metrics_;
  RetiredTotals retired_;
  persist::PersistCounters persist_counters_;
  // Host-level observability: recovery spans land in the trace ring, and
  // every recovery (clean or degraded) fires the host_recovery anomaly.
  obs::TraceLog trace_;
  obs::FlightRecorder flight_;
};

}  // namespace rcb

#endif  // SRC_HOST_RCB_HOST_H_
