#include "src/host/rcb_host.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "src/crypto/hmac.h"
#include "src/http/form.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/rand.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

obs::FlightRecorder::Options HostFlightOptions(const HostConfig& config) {
  obs::FlightRecorder::Options options;
  options.component = "host";
  options.dir = config.flight_dir;
  if (options.dir.empty()) {
    if (const char* env = std::getenv("RCB_FLIGHT_DIR"); env != nullptr) {
      options.dir = env;
    }
  }
  return options;
}

// 409/410 have no HttpResponse factory (nothing else in the repo sheds with
// them); build them in place.
HttpResponse Conflict(std::string_view detail) {
  HttpResponse response;
  response.status_code = 409;
  response.reason = std::string(ReasonPhraseFor(409));
  response.headers.Set("Content-Type", "text/plain");
  response.body = std::string(detail);
  return response;
}

HttpResponse Gone(std::string_view detail) {
  HttpResponse response;
  response.status_code = 410;
  response.reason = std::string(ReasonPhraseFor(410));
  response.headers.Set("Content-Type", "text/plain");
  response.body = std::string(detail);
  return response;
}

}  // namespace

RcbHost::RcbHost(EventLoop* loop, Network* network, HostConfig config)
    : loop_(loop),
      network_(network),
      config_(std::move(config)),
      flight_(&trace_, &registry_, HostFlightOptions(config_)) {
  RegisterHostMetrics();
}

// --- SessionPersist: the agent-to-store durability binding ---

SessionPersist::SessionPersist(RcbHost* host, std::string session_id,
                               std::unique_ptr<persist::SessionStore> store)
    : host_(host),
      session_id_(std::move(session_id)),
      store_(std::move(store)) {}

SessionPersist::~SessionPersist() {
  if (checkpoint_scheduled_) {
    host_->loop()->Cancel(checkpoint_event_id_);
  }
}

void SessionPersist::Append(persist::WalRecord record) {
  Status appended = store_->Append(record);
  if (!appended.ok()) {
    RCB_LOG(kWarning) << "rcb-host: WAL append for " << session_id_
                      << " failed: " << appended;
  }
  // Checkpoint lazily, one event later: the append happens mid-request, and
  // the checkpoint must see the agent quiescent (and not stall the response).
  if (store_->ShouldCheckpoint() && !checkpoint_scheduled_) {
    checkpoint_scheduled_ = true;
    checkpoint_event_id_ = host_->loop()->Schedule(Duration::Zero(), [this] {
      checkpoint_scheduled_ = false;
      Status written = host_->CheckpointSession(session_id_);
      if (!written.ok()) {
        RCB_LOG(kWarning) << "rcb-host: checkpoint for " << session_id_
                          << " failed: " << written;
      }
    });
  }
}

void SessionPersist::OnDocVersion(int64_t doc_time_ms) {
  persist::WalRecord record;
  record.type = persist::WalRecordType::kDocVersion;
  record.doc_time_ms = doc_time_ms;
  Append(std::move(record));
}

void SessionPersist::OnSeqAdvance(const std::string& pid, uint64_t seq) {
  persist::WalRecord record;
  record.type = persist::WalRecordType::kSeq;
  record.pid = pid;
  record.seq = seq;
  Append(std::move(record));
}

void SessionPersist::OnActionMerged(const std::string& pid,
                                    const UserAction& action) {
  persist::WalRecord record;
  record.type = persist::WalRecordType::kAction;
  record.pid = pid;
  record.action = action;
  Append(std::move(record));
}

void SessionPersist::OnParticipantJoined(const std::string& pid) {
  persist::WalRecord record;
  record.type = persist::WalRecordType::kJoin;
  record.pid = pid;
  Append(std::move(record));
}

void SessionPersist::OnParticipantLeft(const std::string& pid) {
  persist::WalRecord record;
  record.type = persist::WalRecordType::kLeave;
  record.pid = pid;
  Append(std::move(record));
}

RcbHost::~RcbHost() { Stop(); }

bool RcbHost::IsValidSessionId(const std::string& id) {
  if (id.empty() || id.size() > 64) {
    return false;
  }
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

Status RcbHost::Start() {
  if (running_) {
    return FailedPreconditionError("host already running");
  }
  RCB_RETURN_IF_ERROR(network_->Listen(
      config_.machine, config_.base_port,
      [this](NetEndpoint* endpoint) { OnAccept(endpoint); }));
  if (config_.limits.shared_cache_byte_budget > 0) {
    shared_cache_.set_byte_budget(config_.limits.shared_cache_byte_budget);
  }
  running_ = true;
  if (config_.persist.enabled()) {
    RecoverSessions();
  }
  return Status::Ok();
}

void RcbHost::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  network_->StopListening(config_.machine, config_.base_port);
  for (auto& conn : connections_) {
    if (conn->endpoint != nullptr) {
      conn->endpoint->Close();
    }
  }
  connections_.clear();
  // Checkpoint-on-close: a cleanly stopped host leaves every session
  // recoverable (no-op with persistence off or after a simulated crash).
  CheckpointAllSessions();
  // Destroy sessions deterministically (map order) and fold their counters.
  // Persist files are kept — shutdown is not session end.
  std::vector<std::string> ids = SessionIds();
  for (const std::string& id : ids) {
    DestroySession(id, /*remove_persist=*/false);
  }
}

Url RcbHost::FrontDoorUrl() const {
  return Url::Make("http", config_.machine, config_.base_port, "/");
}

uint16_t RcbHost::AllocatePort() {
  if (!free_ports_.empty()) {
    // Lowest free port first: allocation order is deterministic regardless
    // of reap order.
    auto it = std::min_element(free_ports_.begin(), free_ports_.end());
    uint16_t port = *it;
    free_ports_.erase(it);
    return port;
  }
  return static_cast<uint16_t>(config_.base_port + next_port_offset_++);
}

StatusOr<HostSession*> RcbHost::CreateSession(const std::string& id) {
  return CreateSession(id, config_.agent_defaults);
}

StatusOr<HostSession*> RcbHost::CreateSession(const std::string& id,
                                              AgentConfig agent_config) {
  if (!IsValidSessionId(id)) {
    ++host_metrics_.invalid_session_ids;
    return InvalidArgumentError("invalid session id");
  }
  if (sessions_.contains(id)) {
    ++host_metrics_.session_id_collisions;
    return AlreadyExistsError("session id already exists: " + id);
  }
  // Admission: try to free capacity before shedding.
  if (config_.limits.max_sessions > 0 &&
      sessions_.size() >= config_.limits.max_sessions) {
    ReapIdleSessions();
  }
  if (config_.limits.max_sessions > 0 &&
      sessions_.size() >= config_.limits.max_sessions) {
    ++host_metrics_.sessions_rejected;
    return UnavailableError("session limit reached");
  }
  // A re-created id is a fresh session, not an expired one.
  if (reaped_ids_.erase(id) > 0) {
    reaped_order_.erase(
        std::find(reaped_order_.begin(), reaped_order_.end(), id));
  }

  auto session = std::make_unique<HostSession>();
  session->id = id;
  session->port = AllocatePort();
  session->created_at = loop_->now();
  if (config_.persist.enabled()) {
    auto store = std::make_unique<persist::SessionStore>(
        id, config_.persist, &persist_counters_, config_.process_faults);
    session->persist =
        std::make_unique<SessionPersist>(this, id, std::move(store));
    agent_config.state_observer = session->persist.get();
  }
  session->browser = std::make_unique<Browser>(loop_, network_, config_.machine);
  session->browser->UseSharedCache(&shared_cache_);

  agent_config.port = session->port;
  agent_config.shared_registry = &registry_;
  agent_config.metrics_label = StrFormat("session=\"%s\"", id.c_str());
  agent_config.register_cache_metrics = false;  // host registers the shared one
  session->lite = metric_sessions_registered_ >= config_.limits.metrics_sessions;
  agent_config.register_metrics = !session->lite;
  // The shared cache budget is host-owned; a per-session budget would
  // clobber it for everyone.
  agent_config.limits.cache_byte_budget = 0;
  session->agent =
      std::make_unique<RcbAgent>(session->browser.get(), agent_config);
  Status started = session->agent->Start();
  if (!started.ok()) {
    registry_.RemoveLabeled(StrFormat("session=\"%s\"", id.c_str()));
    free_ports_.push_back(session->port);
    return started;
  }
  if (!session->lite) {
    ++metric_sessions_registered_;
  }
  ++host_metrics_.sessions_created;
  HostSession* raw = session.get();
  sessions_.emplace(id, std::move(session));
  // Baseline checkpoint: a session is recoverable from the moment it exists.
  if (raw->persist != nullptr) {
    Status baseline = raw->persist->store()->WriteCheckpoint(BuildCheckpoint(raw));
    if (!baseline.ok()) {
      RCB_LOG(kWarning) << "rcb-host: baseline checkpoint for " << id
                        << " failed: " << baseline;
    }
  }
  return raw;
}

HostSession* RcbHost::FindSession(const std::string& id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<std::string> RcbHost::SessionIds() const {
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    ids.push_back(id);
  }
  return ids;
}

void RcbHost::RememberReaped(const std::string& id) {
  if (config_.limits.reaped_id_memory == 0) {
    return;
  }
  if (reaped_ids_.insert(id).second) {
    reaped_order_.push_back(id);
    while (reaped_order_.size() > config_.limits.reaped_id_memory) {
      reaped_ids_.erase(reaped_order_.front());
      reaped_order_.pop_front();
    }
  }
}

void RcbHost::DestroySession(const std::string& id, bool remove_persist) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return;
  }
  HostSession* session = it->second.get();
  if (remove_persist && session->persist != nullptr) {
    session->persist->store()->RemoveFiles();
  }
  const AgentMetrics& m = session->agent->metrics();
  retired_.doc_updates += m.doc_updates;
  retired_.generations += m.generations;
  retired_.snapshot_reuses += m.snapshot_reuses;
  retired_.polls_received += m.polls_received;
  retired_.polls_with_content += m.polls_with_content;
  retired_.content_bytes_sent += m.content_bytes_sent;
  retired_.total_generation_time += m.total_generation_time;
  session->agent->Stop();
  // Shed the session's callback-backed families before their backing agent
  // dies; lite sessions registered none, and RemoveLabeled is a no-op then.
  registry_.RemoveLabeled(StrFormat("session=\"%s\"", id.c_str()));
  if (!session->lite && metric_sessions_registered_ > 0) {
    --metric_sessions_registered_;
  }
  free_ports_.push_back(session->port);
  sessions_.erase(it);
  RememberReaped(id);
}

Status RcbHost::CloseSession(const std::string& id) {
  if (!sessions_.contains(id)) {
    return NotFoundError("no such session: " + id);
  }
  DestroySession(id, /*remove_persist=*/true);
  ++host_metrics_.sessions_closed;
  return Status::Ok();
}

size_t RcbHost::ReapIdleSessions() {
  if (config_.limits.session_idle_timeout <= Duration::Zero()) {
    return 0;
  }
  SimTime now = loop_->now();
  std::vector<std::string> idle;
  for (const auto& [id, session] : sessions_) {
    // A held push stream keeps the session alive regardless of request
    // activity (streams receive without issuing further requests).
    if (session->agent->stream_count() > 0) {
      continue;
    }
    if (now - session->agent->last_activity() >
        config_.limits.session_idle_timeout) {
      idle.push_back(id);
    }
  }
  for (const std::string& id : idle) {
    DestroySession(id, /*remove_persist=*/true);
    ++host_metrics_.sessions_reaped;
  }
  return idle.size();
}

Duration RcbHost::JitteredRetryAfter(Duration base, std::string_view key) const {
  int64_t window_ms = config_.limits.retry_after_jitter.millis();
  if (window_ms <= 0) {
    return base;
  }
  return base + Duration::Millis(static_cast<int64_t>(
                    StableHash64(key) % static_cast<uint64_t>(window_ms + 1)));
}

persist::SessionCheckpoint RcbHost::BuildCheckpoint(HostSession* session) const {
  persist::SessionCheckpoint checkpoint;
  checkpoint.session_id = session->id;
  checkpoint.created_at_us = loop_->now().micros();
  const AgentConfig& agent_config = session->agent->config();
  checkpoint.config.session_key = agent_config.session_key;
  checkpoint.config.poll_interval_ms = agent_config.poll_interval.millis();
  checkpoint.config.cache_mode = agent_config.cache_mode;
  checkpoint.config.enable_delta = agent_config.enable_delta;
  checkpoint.config.enable_trace = agent_config.enable_trace;
  checkpoint.config.sync_model = static_cast<int>(agent_config.sync_model);
  checkpoint.config.port = session->port;
  checkpoint.state = session->agent->ExportState();
  return checkpoint;
}

Status RcbHost::CheckpointSession(const std::string& id) {
  HostSession* session = FindSession(id);
  if (session == nullptr || session->persist == nullptr) {
    return Status::Ok();
  }
  return session->persist->store()->WriteCheckpoint(BuildCheckpoint(session));
}

void RcbHost::CheckpointAllSessions() {
  for (const auto& [id, session] : sessions_) {
    if (session->persist == nullptr) {
      continue;
    }
    Status written =
        session->persist->store()->WriteCheckpoint(BuildCheckpoint(session.get()));
    if (!written.ok()) {
      RCB_LOG(kWarning) << "rcb-host: shutdown checkpoint for " << id
                        << " failed: " << written;
    }
  }
}

void RcbHost::RecoverSessions() {
  namespace fs = std::filesystem;
  std::error_code ec;
  // Stale staging files are dead on arrival (the rename never happened).
  for (const auto& entry : fs::directory_iterator(config_.persist.dir, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }
  std::vector<std::string> checkpoints;
  for (const auto& entry : fs::directory_iterator(config_.persist.dir, ec)) {
    if (entry.path().extension() == ".ckpt") {
      checkpoints.push_back(entry.path().string());
    }
  }
  // Deterministic recovery order regardless of directory iteration order.
  std::sort(checkpoints.begin(), checkpoints.end());
  for (const std::string& checkpoint_path : checkpoints) {
    std::string wal_path =
        checkpoint_path.substr(0, checkpoint_path.size() - 5) + ".wal";
    int64_t start_us = loop_->now().micros();
    Status recovered = RecoverOne(checkpoint_path, wal_path);
    if (!recovered.ok()) {
      // The ladder's last rung: quarantine this session's files and move on.
      // A corrupt checkpoint degrades one session, never the host.
      ++host_metrics_.sessions_unrecoverable;
      std::error_code rename_ec;
      fs::rename(checkpoint_path, checkpoint_path + ".corrupt", rename_ec);
      fs::rename(wal_path, wal_path + ".corrupt", rename_ec);
      RCB_LOG(kWarning) << "rcb-host: session quarantined during recovery: "
                        << recovered;
    }
    trace_.Append(recovered.ok() ? "host.recovery.session"
                                 : "host.recovery.quarantine",
                  obs::Provenance::kSim, start_us,
                  loop_->now().micros() - start_us);
    // Every recovery, clean or degraded, freezes the moment (trace ring +
    // metrics snapshot) for post-hoc forensics.
    flight_.Trigger("host_recovery", loop_->now().micros());
  }
}

Status RcbHost::RecoverOne(const std::string& checkpoint_path,
                           const std::string& wal_path) {
  auto loaded =
      persist::LoadSession(checkpoint_path, wal_path, &persist_counters_);
  RCB_RETURN_IF_ERROR(loaded.status());
  const persist::SessionCheckpoint& checkpoint = loaded->checkpoint;
  const std::string& id = checkpoint.session_id;
  if (!IsValidSessionId(id)) {
    return AbortedError("recovered checkpoint carries an invalid session id");
  }
  // The file must be the session it claims to be: a checkpoint copied over
  // another session's slot passes its own digests but not this gate.
  if (std::filesystem::path(checkpoint_path).stem().string() != id) {
    return AbortedError("checkpoint file name does not match its session id");
  }
  if (sessions_.contains(id)) {
    return AlreadyExistsError("recovered session id already live: " + id);
  }
  uint16_t port = checkpoint.config.port;
  if (port <= config_.base_port) {
    return AbortedError("checkpoint port outside the host's range");
  }
  // Snippets poll the session port directly, so recovery must reopen the
  // same one; keep the allocator clear of it.
  free_ports_.erase(std::remove(free_ports_.begin(), free_ports_.end(), port),
                    free_ports_.end());
  if (port >= config_.base_port + next_port_offset_) {
    next_port_offset_ = static_cast<uint16_t>(port - config_.base_port + 1);
  }

  // The session must run under the configuration its participants negotiated
  // against (key above all: their polls are signed with it).
  AgentConfig agent_config = config_.agent_defaults;
  agent_config.session_key = checkpoint.config.session_key;
  agent_config.poll_interval =
      Duration::Millis(checkpoint.config.poll_interval_ms);
  agent_config.cache_mode = checkpoint.config.cache_mode;
  agent_config.enable_delta = checkpoint.config.enable_delta;
  agent_config.enable_trace = checkpoint.config.enable_trace;
  agent_config.sync_model =
      static_cast<SyncModel>(checkpoint.config.sync_model);

  auto session = std::make_unique<HostSession>();
  session->id = id;
  session->port = port;
  session->created_at = loop_->now();
  session->recovered = true;
  auto store = std::make_unique<persist::SessionStore>(
      id, config_.persist, &persist_counters_, config_.process_faults);
  store->AdoptEpoch(loaded->epoch);
  session->persist =
      std::make_unique<SessionPersist>(this, id, std::move(store));
  agent_config.state_observer = session->persist.get();
  session->browser = std::make_unique<Browser>(loop_, network_, config_.machine);
  session->browser->UseSharedCache(&shared_cache_);
  agent_config.port = port;
  agent_config.shared_registry = &registry_;
  agent_config.metrics_label = StrFormat("session=\"%s\"", id.c_str());
  agent_config.register_cache_metrics = false;
  session->lite = metric_sessions_registered_ >= config_.limits.metrics_sessions;
  agent_config.register_metrics = !session->lite;
  agent_config.limits.cache_byte_budget = 0;
  session->agent =
      std::make_unique<RcbAgent>(session->browser.get(), agent_config);

  auto fail = [&](const Status& status) {
    registry_.RemoveLabeled(StrFormat("session=\"%s\"", id.c_str()));
    free_ports_.push_back(port);
    return status;
  };
  Status restored = session->agent->RestoreState(checkpoint.state);
  if (!restored.ok()) {
    return fail(restored);
  }
  Status started = session->agent->Start();
  if (!started.ok()) {
    return fail(started);
  }
  if (loaded->wal_tail_discarded) {
    ++host_metrics_.wal_tails_discarded;
  }
  host_metrics_.doc_versions_lost += loaded->doc_versions_lost;
  // Restart-storm protection: spread resync readmission across the window,
  // each session at a deterministic slot derived from its id.
  if (config_.recovery_storm_window > Duration::Zero()) {
    uint64_t slot_ms =
        StableHash64(id) %
        static_cast<uint64_t>(config_.recovery_storm_window.millis() + 1);
    session->agent->DeferResyncAdmissionUntil(
        loop_->now() + Duration::Millis(static_cast<int64_t>(slot_ms)));
  }
  if (!session->lite) {
    ++metric_sessions_registered_;
  }
  HostSession* raw = session.get();
  sessions_.emplace(id, std::move(session));
  ++host_metrics_.sessions_recovered;
  // Re-baseline: fold the replayed WAL into a fresh checkpoint so the
  // superseded epoch's log cannot replay twice.
  Status baseline = raw->persist->store()->WriteCheckpoint(BuildCheckpoint(raw));
  if (!baseline.ok()) {
    RCB_LOG(kWarning) << "rcb-host: recovery re-baseline for " << id
                      << " failed: " << baseline;
  }
  return Status::Ok();
}

void RcbHost::OnAccept(NetEndpoint* endpoint) {
  auto conn = std::make_unique<HostConn>();
  conn->endpoint = endpoint;
  HostConn* raw = conn.get();
  endpoint->SetDataHandler(
      [this, raw](std::string_view data) { OnConnData(raw, data); });
  endpoint->SetCloseHandler([this, raw] { RemoveConnection(raw); });
  connections_.push_back(std::move(conn));
}

void RcbHost::RemoveConnection(HostConn* conn) {
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (it->get() == conn) {
      connections_.erase(it);
      return;
    }
  }
}

void RcbHost::OnConnData(HostConn* conn, std::string_view data) {
  std::string_view remaining = data;
  while (true) {
    auto result = conn->parser.Feed(remaining);
    remaining = {};
    if (!result.ok()) {
      RCB_LOG(kWarning) << "rcb-host: malformed request: " << result.status();
      NetEndpoint* endpoint = conn->endpoint;
      RemoveConnection(conn);  // `conn` is destroyed here
      endpoint->Close();
      return;
    }
    if (!result->has_value()) {
      return;  // partial request buffered
    }
    HttpResponse response = Route(**result);
    conn->endpoint->Send(response.Serialize());
  }
}

HttpResponse RcbHost::Route(const HttpRequest& request) {
  ++host_metrics_.front_door_requests;
  ReapIdleSessions();
  std::string path = request.Path();
  if (path == "/host/status" && request.method == HttpMethod::kGet) {
    return HandleHostStatus();
  }
  if (path == "/host/metrics" && request.method == HttpMethod::kGet) {
    return HandleHostMetrics(request);
  }
  if (path == "/host/health" && request.method == HttpMethod::kGet) {
    return HandleHostHealth(request);
  }
  if (path == "/host/sessions") {
    if (request.method != HttpMethod::kPost) {
      return HttpResponse::BadRequest("session creation is POST");
    }
    return HandleCreateSession(request);
  }
  if (StartsWith(path, "/s/")) {
    return HandleSessionRequest(request);
  }
  return HttpResponse::NotFound(path);
}

HttpResponse RcbHost::HandleCreateSession(const HttpRequest& request) {
  auto params = request.QueryParams();
  auto id_it = params.find("id");
  std::string id = id_it == params.end() ? "" : id_it->second;
  StatusOr<HostSession*> session = CreateSession(id);
  if (!session.ok()) {
    switch (session.status().code()) {
      case StatusCode::kInvalidArgument:
        return HttpResponse::BadRequest(session.status().message());
      case StatusCode::kAlreadyExists:
        return Conflict(session.status().message());
      case StatusCode::kUnavailable:
        return HttpResponse::ServiceUnavailable(
            JitteredRetryAfter(config_.limits.retry_after,
                               id.empty() ? "create" : id),
            session.status().message());
      default:
        return HttpResponse::InternalError(session.status().message());
    }
  }
  return HttpResponse::Ok(
      "text/plain",
      StrFormat("id=%s&port=%u", (*session)->id.c_str(),
                static_cast<unsigned>((*session)->port)));
}

HttpResponse RcbHost::HandleSessionRequest(const HttpRequest& request) {
  // /s/<id><rest>: split the id, validate, forward <rest> to the session's
  // agent with the query string intact.
  std::string path = request.Path();
  std::string after = path.substr(3);  // past "/s/"
  size_t slash = after.find('/');
  std::string id = slash == std::string::npos ? after : after.substr(0, slash);
  std::string rest = slash == std::string::npos ? "/" : after.substr(slash);
  if (!IsValidSessionId(id)) {
    ++host_metrics_.invalid_session_ids;
    return HttpResponse::BadRequest("invalid session id");
  }
  HostSession* session = FindSession(id);
  if (session == nullptr) {
    if (reaped_ids_.contains(id)) {
      ++host_metrics_.expired_session_requests;
      return Gone("session expired: " + id);
    }
    ++host_metrics_.unknown_session_requests;
    return HttpResponse::NotFound("no such session: " + id);
  }
  if (rest == "/stream") {
    // A held multipart stream cannot pass through the request/response front
    // door; push participants connect to the session port directly.
    return HttpResponse::BadRequest(
        "push streams must connect to the session port");
  }
  HttpRequest forwarded = request;
  forwarded.target = rest;
  std::string query = request.QueryString();
  if (!query.empty()) {
    forwarded.target += "?" + query;
  }
  return session->agent->HandleHostRequest(forwarded);
}

HttpResponse RcbHost::HandleHostStatus() const {
  std::string body = "<h1>RCB host</h1>";
  body += StrFormat(
      "<p id=\"summary\">sessions %zu/%zu | created %llu, closed %llu, "
      "reaped %llu, rejected %llu | collisions %llu, invalid ids %llu | "
      "routed: unknown %llu, expired %llu | requests %llu</p>",
      sessions_.size(), config_.limits.max_sessions,
      static_cast<unsigned long long>(host_metrics_.sessions_created),
      static_cast<unsigned long long>(host_metrics_.sessions_closed),
      static_cast<unsigned long long>(host_metrics_.sessions_reaped),
      static_cast<unsigned long long>(host_metrics_.sessions_rejected),
      static_cast<unsigned long long>(host_metrics_.session_id_collisions),
      static_cast<unsigned long long>(host_metrics_.invalid_session_ids),
      static_cast<unsigned long long>(host_metrics_.unknown_session_requests),
      static_cast<unsigned long long>(host_metrics_.expired_session_requests),
      static_cast<unsigned long long>(host_metrics_.front_door_requests));
  body += "<table id=\"sessions\"><tr><th>session</th><th>port</th>"
          "<th>participants</th><th>doc updates</th><th>generations</th>"
          "<th>reuses</th></tr>";
  for (const auto& [id, session] : sessions_) {
    const AgentMetrics& m = session->agent->metrics();
    body += StrFormat(
        "<tr><td>%s</td><td>%u</td><td>%zu</td><td>%llu</td><td>%llu</td>"
        "<td>%llu</td></tr>",
        id.c_str(), static_cast<unsigned>(session->port),
        session->agent->participant_count(),
        static_cast<unsigned long long>(m.doc_updates),
        static_cast<unsigned long long>(m.generations),
        static_cast<unsigned long long>(m.snapshot_reuses));
  }
  body += "</table>";
  body += StrFormat(
      "<p id=\"persist\">persist: recovered %llu, unrecoverable %llu | "
      "checkpoints %llu (%llu bytes), wal records %llu (%llu bytes), "
      "truncations %llu | torn writes %llu, tails cut %llu, wals dropped "
      "%llu, checkpoints rejected %llu | doc versions lost %llu | "
      "recovery triggers %llu (dumps %llu)</p>",
      static_cast<unsigned long long>(host_metrics_.sessions_recovered),
      static_cast<unsigned long long>(host_metrics_.sessions_unrecoverable),
      static_cast<unsigned long long>(persist_counters_.checkpoints_written),
      static_cast<unsigned long long>(persist_counters_.checkpoint_bytes),
      static_cast<unsigned long long>(persist_counters_.wal_records),
      static_cast<unsigned long long>(persist_counters_.wal_bytes),
      static_cast<unsigned long long>(persist_counters_.wal_truncations),
      static_cast<unsigned long long>(persist_counters_.torn_writes),
      static_cast<unsigned long long>(persist_counters_.wal_tail_discards),
      static_cast<unsigned long long>(persist_counters_.wals_discarded),
      static_cast<unsigned long long>(persist_counters_.checkpoints_rejected),
      static_cast<unsigned long long>(host_metrics_.doc_versions_lost),
      static_cast<unsigned long long>(flight_.triggers("host_recovery")),
      static_cast<unsigned long long>(flight_.dumps_written()));
  body += StrFormat(
      "<p id=\"cache\">shared cache: %zu objects, %llu bytes, "
      "%llu hits, %llu misses, %llu evictions</p>",
      shared_cache_.size(),
      static_cast<unsigned long long>(shared_cache_.total_bytes()),
      static_cast<unsigned long long>(shared_cache_.hits()),
      static_cast<unsigned long long>(shared_cache_.misses()),
      static_cast<unsigned long long>(shared_cache_.evictions()));
  return HttpResponse::Ok(
      "text/html", "<!DOCTYPE html><html><head><title>RCB host</title>"
                   "</head><body>" +
                       body + "</body></html>");
}

HttpResponse RcbHost::HandleHostMetrics(const HttpRequest& request) const {
  obs::RenderOptions options;
  auto params = request.QueryParams();
  auto view = params.find("view");
  if (view != params.end() && view->second == "sim") {
    options.include_wall = false;
  }
  return HttpResponse::Ok("text/plain; version=0.0.4; charset=utf-8",
                          registry_.RenderPrometheus(options));
}

bool RcbHost::VerifyHostAuth(const HttpRequest& request) const {
  const std::string& key = config_.agent_defaults.session_key;
  if (key.empty()) {
    return true;
  }
  // Same canonical message as RcbAgent::VerifyRequestAuth: the hmac query
  // parameter is lifted out, the MAC covers method + remaining target + body.
  auto params = ParseFormUrlEncodedOrdered(request.QueryString());
  std::string provided;
  std::vector<std::pair<std::string, std::string>> rest;
  for (auto& [name, value] : params) {
    if (name == "hmac") {
      provided = value;
    } else {
      rest.emplace_back(name, value);
    }
  }
  if (provided.empty()) {
    return false;
  }
  std::string canonical_target = request.Path();
  std::string rest_query = EncodeFormUrlEncoded(rest);
  if (!rest_query.empty()) {
    canonical_target += "?" + rest_query;
  }
  std::string message = std::string(HttpMethodName(request.method)) + " " +
                        canonical_target + "\n" + request.body;
  return ConstantTimeEquals(HmacSha256Hex(key, message), provided);
}

HttpResponse RcbHost::HandleHostHealth(const HttpRequest& request) {
  if (!VerifyHostAuth(request)) {
    flight_.Trigger("auth_failure", loop_->now().micros());
    return HttpResponse::Forbidden("request authentication failed");
  }
  int64_t now_us = loop_->now().micros();
  struct Row {
    const std::string* id;
    int severity;  // HealthScore rank: unhealthy=2 sorts first
    double slow_burn;
    std::string json;
  };
  size_t counts[3] = {0, 0, 0};
  std::vector<Row> rows;
  rows.reserve(sessions_.size());
  std::vector<std::string> alerts;  // "<session>:<objective>", id order
  for (auto& [id, session] : sessions_) {
    obs::SessionHealth& health = session->agent->session_health();
    obs::HealthStatus status = health.Evaluate(now_us);
    int severity = static_cast<int>(status.score);
    ++counts[severity];
    for (std::string_view alert : status.ActiveAlerts()) {
      alerts.push_back(id + ":" + std::string(alert));
    }
    // Splice the session id into the per-session health object:
    // {"id":"<id>",<health fields>}.
    rows.push_back(Row{&id, severity, status.MaxSlowBurn(),
                       "{\"id\":\"" + JsonEscape(id) + "\"," +
                           health.ToJson(now_us).substr(1)});
  }
  // Worst first: score severity, then the hottest slow burn, id as the
  // deterministic tiebreak (rcb_top renders the array as-is).
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.severity != b.severity) return a.severity > b.severity;
    if (a.slow_burn != b.slow_burn) return a.slow_burn > b.slow_burn;
    return *a.id < *b.id;
  });
  std::string body = StrFormat(
      "{\"sim_time_us\":%lld,\"sessions_total\":%zu,"
      "\"summary\":{\"green\":%zu,\"degraded\":%zu,\"unhealthy\":%zu}",
      static_cast<long long>(now_us), rows.size(), counts[0], counts[1],
      counts[2]);
  body += ",\"alerts\":[";
  for (size_t i = 0; i < alerts.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + JsonEscape(alerts[i]) + "\"";
  }
  body += "],\"sessions\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) body += ",";
    body += rows[i].json;
  }
  body += "]}";
  return HttpResponse::Ok("application/json", body + "\n");
}

uint64_t RcbHost::SumAgents(uint64_t AgentMetrics::*field,
                            uint64_t retired) const {
  uint64_t total = retired;
  for (const auto& [id, session] : sessions_) {
    total += session->agent->metrics().*field;
  }
  return total;
}

void RcbHost::RegisterHostMetrics() {
  auto field = [this](std::string_view name, std::string_view help,
                      const uint64_t& source) {
    registry_.AddCallbackCounter(name, help, obs::Provenance::kSim,
                                 [&source] { return source; });
  };
  field("rcb_host_sessions_created", "Sessions created",
        host_metrics_.sessions_created);
  field("rcb_host_sessions_closed", "Sessions closed explicitly",
        host_metrics_.sessions_closed);
  field("rcb_host_sessions_reaped", "Sessions reaped by the idle timeout",
        host_metrics_.sessions_reaped);
  field("rcb_host_sessions_rejected", "503s at the session cap",
        host_metrics_.sessions_rejected);
  field("rcb_host_session_id_collisions", "409s creating an existing id",
        host_metrics_.session_id_collisions);
  field("rcb_host_invalid_session_ids", "400s for malformed session ids",
        host_metrics_.invalid_session_ids);
  field("rcb_host_unknown_session_requests", "404s routing to absent ids",
        host_metrics_.unknown_session_requests);
  field("rcb_host_expired_session_requests", "410s routing to reaped ids",
        host_metrics_.expired_session_requests);
  field("rcb_host_front_door_requests", "Requests seen by the front door",
        host_metrics_.front_door_requests);
  field("rcb_host_recovered_sessions_total",
        "Sessions restored from checkpoints on host start",
        host_metrics_.sessions_recovered);
  field("rcb_host_unrecoverable_sessions_total",
        "Sessions quarantined by recovery integrity gates",
        host_metrics_.sessions_unrecoverable);
  field("rcb_host_wal_tails_discarded_total",
        "Torn WAL tails cut during recovery",
        host_metrics_.wal_tails_discarded);
  field("rcb_host_doc_versions_lost_total",
        "Post-checkpoint document versions not restorable after a crash",
        host_metrics_.doc_versions_lost);

  // Durability plumbing (src/persist), shared across all session stores.
  field("rcb_persist_checkpoints_written_total", "Checkpoints written",
        persist_counters_.checkpoints_written);
  field("rcb_persist_checkpoint_bytes_total", "Checkpoint bytes written",
        persist_counters_.checkpoint_bytes);
  field("rcb_persist_wal_records_total", "WAL records appended",
        persist_counters_.wal_records);
  field("rcb_persist_wal_bytes_total", "WAL bytes appended",
        persist_counters_.wal_bytes);
  field("rcb_persist_wal_truncations_total",
        "WAL truncations by checkpoint-and-truncate",
        persist_counters_.wal_truncations);
  field("rcb_persist_torn_writes_total",
        "Crash-injected partial writes reaching disk",
        persist_counters_.torn_writes);
  field("rcb_persist_wal_tail_discards_total",
        "Recovery scans that cut a torn WAL tail",
        persist_counters_.wal_tail_discards);
  field("rcb_persist_wals_discarded_total",
        "Whole WALs dropped at recovery (header or epoch gate)",
        persist_counters_.wals_discarded);
  field("rcb_persist_checkpoints_rejected_total",
        "Checkpoints rejected by recovery integrity gates",
        persist_counters_.checkpoints_rejected);

  // Host anomaly recorder: recovery is the trigger; the counters stay
  // deterministic whether or not artifacts are written.
  registry_.AddCallbackCounter(
      "rcb_flight_triggers_total", "Flight-recorder trigger firings",
      obs::Provenance::kSim,
      [this] { return flight_.triggers("host_recovery"); },
      "component=\"host\",trigger=\"host_recovery\"");
  registry_.AddCallbackCounter(
      "rcb_flight_dumps_written", "Flight-recorder JSONL artifacts written",
      obs::Provenance::kSim, [this] { return flight_.dumps_written(); },
      "component=\"host\"");
  registry_.AddCallbackCounter(
      "rcb_host_recovery_deferrals_total",
      "503s staggering post-recovery resync admission, across all sessions",
      obs::Provenance::kSim, [this] {
        return SumAgents(&AgentMetrics::recovery_deferrals, 0);
      });

  registry_.AddCallbackGauge(
      "rcb_host_sessions", "Live sessions", obs::Provenance::kSim,
      [this] { return static_cast<double>(sessions_.size()); });
  registry_.AddCallbackGauge(
      "rcb_host_participants", "Participants across all live sessions",
      obs::Provenance::kSim, [this] {
        size_t total = 0;
        for (const auto& [id, session] : sessions_) {
          total += session->agent->participant_count();
        }
        return static_cast<double>(total);
      });

  // The generate-once proof (ISSUE 6): pipeline runs track document updates,
  // fan-out sends track updates x participants. bench_scale and host_test
  // assert runs ~= updates.
  registry_.AddCallbackCounter(
      "rcb_host_doc_updates_total", "Document versions across all sessions",
      obs::Provenance::kSim, [this] {
        return SumAgents(&AgentMetrics::doc_updates, retired_.doc_updates);
      });
  registry_.AddCallbackCounter(
      "rcb_host_pipeline_runs_total",
      "Fig. 3 generate+diff pipeline executions across all sessions",
      obs::Provenance::kSim, [this] {
        return SumAgents(&AgentMetrics::generations, retired_.generations);
      });
  registry_.AddCallbackCounter(
      "rcb_host_snapshot_reuses_total",
      "Broadcast-buffer reuses across all sessions", obs::Provenance::kSim,
      [this] {
        return SumAgents(&AgentMetrics::snapshot_reuses,
                         retired_.snapshot_reuses);
      });
  registry_.AddCallbackCounter(
      "rcb_host_polls_total", "Polls received across all sessions",
      obs::Provenance::kSim, [this] {
        return SumAgents(&AgentMetrics::polls_received,
                         retired_.polls_received);
      });
  registry_.AddCallbackCounter(
      "rcb_host_fanout_sends_total",
      "Content-bearing responses fanned out across all sessions",
      obs::Provenance::kSim, [this] {
        return SumAgents(&AgentMetrics::polls_with_content,
                         retired_.polls_with_content);
      });
  registry_.AddCallbackCounter(
      "rcb_host_content_bytes_total",
      "Content-bearing response bytes across all sessions",
      obs::Provenance::kSim, [this] {
        return SumAgents(&AgentMetrics::content_bytes_sent,
                         retired_.content_bytes_sent);
      });
  registry_.AddCallbackGauge(
      "rcb_host_generation_us_total",
      "Cumulative Fig. 3 pipeline CPU time across all sessions",
      obs::Provenance::kWall, [this] {
        Duration total = retired_.total_generation_time;
        for (const auto& [id, session] : sessions_) {
          total += session->agent->metrics().total_generation_time;
        }
        return static_cast<double>(total.micros());
      });

  // Shared ObjectCache, registered once host-side (session agents skip it).
  ObjectCache* cache = &shared_cache_;
  registry_.AddCallbackCounter("rcb_cache_hits", "Object cache lookup hits",
                               obs::Provenance::kSim,
                               [cache] { return cache->hits(); });
  registry_.AddCallbackCounter("rcb_cache_misses", "Object cache lookup misses",
                               obs::Provenance::kSim,
                               [cache] { return cache->misses(); });
  registry_.AddCallbackCounter("rcb_cache_evictions",
                               "Objects evicted by the cache byte budget",
                               obs::Provenance::kSim,
                               [cache] { return cache->evictions(); });
  registry_.AddCallbackCounter("rcb_cache_evicted_bytes",
                               "Bytes evicted by the cache byte budget",
                               obs::Provenance::kSim,
                               [cache] { return cache->evicted_bytes(); });
  registry_.AddCallbackGauge(
      "rcb_cache_bytes", "Bytes currently held by the object cache",
      obs::Provenance::kSim,
      [cache] { return static_cast<double>(cache->total_bytes()); });
  registry_.AddCallbackGauge(
      "rcb_cache_objects", "Objects currently held by the object cache",
      obs::Provenance::kSim,
      [cache] { return static_cast<double>(cache->size()); });
}

}  // namespace rcb
