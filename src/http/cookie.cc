#include "src/http/cookie.h"

#include <algorithm>

#include "src/util/strings.h"

namespace rcb {

bool CookieJar::PathMatches(const std::string& cookie_path,
                            const std::string& request_path) {
  if (cookie_path == request_path) {
    return true;
  }
  if (!StartsWith(request_path, cookie_path)) {
    return false;
  }
  // "/shop" matches "/shop/cart" and (with trailing slash) "/shop/"; it must
  // not match "/shopping".
  return cookie_path.back() == '/' || request_path[cookie_path.size()] == '/';
}

void CookieJar::ApplySetCookie(const Url& origin, std::string_view set_cookie_value,
                               SimTime now) {
  auto pieces = StrSplitSkipEmpty(set_cookie_value, ';');
  if (pieces.empty()) {
    return;
  }
  std::string_view pair = pieces[0];
  size_t eq = pair.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return;  // malformed; browsers drop these too
  }
  Cookie cookie;
  cookie.name = std::string(StripWhitespace(pair.substr(0, eq)));
  cookie.value = std::string(StripWhitespace(pair.substr(eq + 1)));

  for (size_t i = 1; i < pieces.size(); ++i) {
    std::string_view attribute = pieces[i];
    size_t attr_eq = attribute.find('=');
    std::string name = AsciiToLower(StripWhitespace(
        attr_eq == std::string_view::npos ? attribute
                                          : attribute.substr(0, attr_eq)));
    std::string value =
        attr_eq == std::string_view::npos
            ? ""
            : std::string(StripWhitespace(attribute.substr(attr_eq + 1)));
    if (name == "path" && !value.empty() && value[0] == '/') {
      cookie.path = value;
    } else if (name == "secure") {
      cookie.secure = true;
    } else if (name == "max-age") {
      int64_t seconds = std::atoll(value.c_str());
      cookie.has_expiry = true;
      if (seconds <= 0) {
        cookie.expires_at = now;  // expires immediately = deletion
      } else {
        cookie.expires_at = now + Duration::Seconds(static_cast<double>(seconds));
      }
    }
  }

  std::vector<Cookie>& host_cookies = cookies_[origin.host()];
  // Replace an existing cookie with the same (name, path).
  std::erase_if(host_cookies, [&](const Cookie& existing) {
    return existing.name == cookie.name && existing.path == cookie.path;
  });
  // A cookie expiring now-or-earlier is a deletion order; don't store it.
  if (cookie.has_expiry && cookie.expires_at <= now) {
    return;
  }
  host_cookies.push_back(std::move(cookie));
}

std::string CookieJar::CookieHeaderFor(const Url& url, SimTime now) const {
  auto it = cookies_.find(url.host());
  if (it == cookies_.end()) {
    return "";
  }
  std::vector<const Cookie*> matching;
  for (const Cookie& cookie : it->second) {
    if (!Usable(cookie, now)) {
      continue;
    }
    if (cookie.secure && !url.is_https()) {
      continue;
    }
    if (!PathMatches(cookie.path, url.path())) {
      continue;
    }
    matching.push_back(&cookie);
  }
  // RFC 6265 §5.4: longer paths first; ties keep insertion order.
  std::stable_sort(matching.begin(), matching.end(),
                   [](const Cookie* a, const Cookie* b) {
                     return a->path.size() > b->path.size();
                   });
  std::string out;
  for (const Cookie* cookie : matching) {
    if (!out.empty()) {
      out += "; ";
    }
    out += cookie->name;
    out += '=';
    out += cookie->value;
  }
  return out;
}

std::string CookieJar::Get(const Url& origin, std::string_view name,
                           SimTime now) const {
  auto it = cookies_.find(origin.host());
  if (it == cookies_.end()) {
    return "";
  }
  for (const Cookie& cookie : it->second) {
    if (cookie.name == name && Usable(cookie, now)) {
      return cookie.value;
    }
  }
  return "";
}

size_t CookieJar::CountFor(const Url& origin, SimTime now) const {
  auto it = cookies_.find(origin.host());
  if (it == cookies_.end()) {
    return 0;
  }
  size_t count = 0;
  for (const Cookie& cookie : it->second) {
    if (Usable(cookie, now)) {
      ++count;
    }
  }
  return count;
}

}  // namespace rcb
