// URL model with RFC 3986 relative-reference resolution.
//
// RCB-Agent's content-generation pipeline (Fig. 3, step 2) converts every
// relative URL in the cloned document to an absolute URL of the origin
// server; in cache mode (step 3) absolute URLs are rewritten again to
// RCB-Agent URLs. Both rewrites go through this type.
#ifndef SRC_HTTP_URL_H_
#define SRC_HTTP_URL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace rcb {

class Url {
 public:
  Url() = default;

  // Parses an absolute URL ("http://host[:port]/path[?query][#fragment]").
  // Only http/https schemes are accepted; others are kInvalidArgument.
  static StatusOr<Url> Parse(std::string_view input);

  // Builds from parts; `path` must start with '/' (or be empty -> "/").
  static Url Make(std::string_view scheme, std::string_view host, uint16_t port,
                  std::string_view path, std::string_view query = "");

  // Resolves `reference` (relative or absolute) against this base URL per
  // RFC 3986 §5. Handles "//authority", absolute-path, relative-path, "."
  // and ".." segments, query-only, and fragment-only references.
  StatusOr<Url> Resolve(std::string_view reference) const;

  const std::string& scheme() const { return scheme_; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  const std::string& path() const { return path_; }
  const std::string& query() const { return query_; }
  const std::string& fragment() const { return fragment_; }

  bool is_https() const { return scheme_ == "https"; }
  bool IsDefaultPort() const {
    return (scheme_ == "http" && port_ == 80) || (scheme_ == "https" && port_ == 443);
  }

  // "host" or "host:port" (port omitted when default for the scheme).
  std::string Authority() const;
  // "/path?query" — what goes into an HTTP request-line.
  std::string PathAndQuery() const;
  // Full serialization (without fragment, which is client-side only).
  std::string ToString() const;
  // Full serialization including fragment.
  std::string ToStringWithFragment() const;

  // Origin equality: scheme + host + port.
  bool SameOrigin(const Url& other) const;

  bool operator==(const Url& other) const;

 private:
  std::string scheme_ = "http";
  std::string host_;
  uint16_t port_ = 80;
  std::string path_ = "/";
  std::string query_;
  std::string fragment_;
};

// True for references that already carry a scheme ("http://...").
bool IsAbsoluteUrl(std::string_view reference);

// Collapses "." and ".." segments of an absolute path (RFC 3986 §5.2.4).
std::string RemoveDotSegments(std::string_view path);

}  // namespace rcb

#endif  // SRC_HTTP_URL_H_
