#include "src/http/url.h"

#include <cctype>

#include "src/util/strings.h"

namespace rcb {
namespace {

bool IsSchemeChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
         c == '.';
}

// Splits "host[:port]"; returns false on a bad port.
bool SplitAuthority(std::string_view authority, std::string* host, uint16_t* port,
                    uint16_t default_port) {
  size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    *host = std::string(authority);
    *port = default_port;
    return !host->empty();
  }
  std::string_view port_part = authority.substr(colon + 1);
  uint64_t parsed = 0;
  if (!ParseUint64(port_part, &parsed) || parsed == 0 || parsed > 65535) {
    return false;
  }
  *host = std::string(authority.substr(0, colon));
  *port = static_cast<uint16_t>(parsed);
  return !host->empty();
}

void SplitPathQueryFragment(std::string_view rest, std::string* path,
                            std::string* query, std::string* fragment) {
  size_t frag = rest.find('#');
  if (frag != std::string_view::npos) {
    *fragment = std::string(rest.substr(frag + 1));
    rest = rest.substr(0, frag);
  }
  size_t q = rest.find('?');
  if (q != std::string_view::npos) {
    *query = std::string(rest.substr(q + 1));
    rest = rest.substr(0, q);
  }
  *path = std::string(rest);
}

}  // namespace

bool IsAbsoluteUrl(std::string_view reference) {
  size_t colon = reference.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return false;
  }
  if (!std::isalpha(static_cast<unsigned char>(reference[0]))) {
    return false;
  }
  for (size_t i = 1; i < colon; ++i) {
    if (!IsSchemeChar(reference[i])) {
      return false;
    }
  }
  // A colon inside a path segment ("/a:b") is not a scheme; schemes are
  // followed by "//" for the URL forms we accept.
  return reference.substr(colon + 1, 2) == "//";
}

std::string RemoveDotSegments(std::string_view path) {
  std::vector<std::string> stack;
  bool last_was_dot = false;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;  // collapses duplicate slashes
    }
    if (i >= path.size()) {
      break;
    }
    size_t j = path.find('/', i);
    std::string_view segment =
        (j == std::string_view::npos) ? path.substr(i) : path.substr(i, j - i);
    i = (j == std::string_view::npos) ? path.size() : j;
    if (segment == ".") {
      last_was_dot = true;
    } else if (segment == "..") {
      if (!stack.empty()) {
        stack.pop_back();
      }
      last_was_dot = true;
    } else {
      stack.emplace_back(segment);
      last_was_dot = false;
    }
  }
  if (stack.empty()) {
    return "/";
  }
  bool trailing_slash = last_was_dot || (!path.empty() && path.back() == '/');
  std::string result;
  for (const auto& segment : stack) {
    result += '/';
    result += segment;
  }
  if (trailing_slash) {
    result += '/';
  }
  return result;
}

StatusOr<Url> Url::Parse(std::string_view input) {
  size_t scheme_end = input.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return InvalidArgumentError("not an absolute URL: " + std::string(input));
  }
  Url url;
  url.scheme_ = AsciiToLower(input.substr(0, scheme_end));
  if (url.scheme_ != "http" && url.scheme_ != "https") {
    return InvalidArgumentError("unsupported scheme: " + url.scheme_);
  }
  uint16_t default_port = url.scheme_ == "https" ? 443 : 80;

  std::string_view rest = input.substr(scheme_end + 3);
  size_t path_start = rest.find_first_of("/?#");
  std::string_view authority =
      (path_start == std::string_view::npos) ? rest : rest.substr(0, path_start);
  if (!SplitAuthority(authority, &url.host_, &url.port_, default_port)) {
    return InvalidArgumentError("bad authority in URL: " + std::string(input));
  }
  url.host_ = AsciiToLower(url.host_);

  if (path_start == std::string_view::npos) {
    url.path_ = "/";
    return url;
  }
  std::string_view tail = rest.substr(path_start);
  std::string path;
  SplitPathQueryFragment(tail, &path, &url.query_, &url.fragment_);
  url.path_ = path.empty() || path[0] != '/' ? "/" + path : path;
  return url;
}

Url Url::Make(std::string_view scheme, std::string_view host, uint16_t port,
              std::string_view path, std::string_view query) {
  Url url;
  url.scheme_ = AsciiToLower(scheme);
  url.host_ = AsciiToLower(host);
  url.port_ = port;
  url.path_ = path.empty() ? "/" : std::string(path);
  if (url.path_[0] != '/') {
    url.path_.insert(url.path_.begin(), '/');
  }
  url.query_ = std::string(query);
  return url;
}

StatusOr<Url> Url::Resolve(std::string_view reference) const {
  if (reference.empty()) {
    return *this;
  }
  if (IsAbsoluteUrl(reference)) {
    return Parse(reference);
  }
  Url result = *this;
  result.fragment_.clear();

  if (StartsWith(reference, "//")) {
    // Network-path reference: keep scheme, replace authority onward.
    return Parse(scheme_ + ":" + std::string(reference));
  }
  if (reference[0] == '#') {
    result.fragment_ = std::string(reference.substr(1));
    return result;
  }
  if (reference[0] == '?') {
    std::string query;
    std::string fragment;
    size_t frag = reference.find('#');
    if (frag != std::string_view::npos) {
      fragment = std::string(reference.substr(frag + 1));
      query = std::string(reference.substr(1, frag - 1));
    } else {
      query = std::string(reference.substr(1));
    }
    result.query_ = query;
    result.fragment_ = fragment;
    return result;
  }

  std::string ref_path;
  std::string ref_query;
  std::string ref_fragment;
  SplitPathQueryFragment(reference, &ref_path, &ref_query, &ref_fragment);
  result.query_ = ref_query;
  result.fragment_ = ref_fragment;

  if (!ref_path.empty() && ref_path[0] == '/') {
    result.path_ = RemoveDotSegments(ref_path);
  } else {
    // Merge with the base path: drop the last segment of the base.
    size_t last_slash = path_.rfind('/');
    std::string merged =
        (last_slash == std::string::npos ? "/" : path_.substr(0, last_slash + 1)) +
        ref_path;
    result.path_ = RemoveDotSegments(merged);
  }
  return result;
}

std::string Url::Authority() const {
  if (IsDefaultPort()) {
    return host_;
  }
  return StrFormat("%s:%u", host_.c_str(), port_);
}

std::string Url::PathAndQuery() const {
  if (query_.empty()) {
    return path_;
  }
  return path_ + "?" + query_;
}

std::string Url::ToString() const {
  return scheme_ + "://" + Authority() + PathAndQuery();
}

std::string Url::ToStringWithFragment() const {
  std::string out = ToString();
  if (!fragment_.empty()) {
    out += "#" + fragment_;
  }
  return out;
}

bool Url::SameOrigin(const Url& other) const {
  return scheme_ == other.scheme_ && host_ == other.host_ && port_ == other.port_;
}

bool Url::operator==(const Url& other) const {
  return SameOrigin(other) && path_ == other.path_ && query_ == other.query_ &&
         fragment_ == other.fragment_;
}

}  // namespace rcb
