// application/x-www-form-urlencoded codec.
//
// Both the co-filled form payloads piggybacked on Ajax polling requests and
// the shop site's checkout forms travel in this encoding.
#ifndef SRC_HTTP_FORM_H_
#define SRC_HTTP_FORM_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rcb {

// Ordered form encoding (preserves insertion order like a real form submit).
std::string EncodeFormUrlEncoded(
    const std::vector<std::pair<std::string, std::string>>& fields);

// Map convenience overload (alphabetical key order).
std::string EncodeFormUrlEncoded(const std::map<std::string, std::string>& fields);

// Decodes into a last-wins map. Keys without '=' map to "".
std::map<std::string, std::string> ParseFormUrlEncoded(std::string_view body);

// Decodes preserving order and duplicates.
std::vector<std::pair<std::string, std::string>> ParseFormUrlEncodedOrdered(
    std::string_view body);

}  // namespace rcb

#endif  // SRC_HTTP_FORM_H_
