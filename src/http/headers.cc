#include "src/http/headers.h"

#include "src/util/strings.h"

namespace rcb {

void Headers::Set(std::string_view name, std::string_view value) {
  Remove(name);
  entries_.emplace_back(std::string(name), std::string(value));
}

void Headers::Add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string> Headers::Get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (EqualsIgnoreCase(key, name)) {
      return value;
    }
  }
  return std::nullopt;
}

std::vector<std::string> Headers::GetAll(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : entries_) {
    if (EqualsIgnoreCase(key, name)) {
      out.push_back(value);
    }
  }
  return out;
}

bool Headers::Has(std::string_view name) const { return Get(name).has_value(); }

void Headers::Remove(std::string_view name) {
  std::erase_if(entries_, [name](const auto& entry) {
    return EqualsIgnoreCase(entry.first, name);
  });
}

std::string Headers::Serialize() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  return out;
}

}  // namespace rcb
