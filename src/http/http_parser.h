// Incremental HTTP/1.1 message parsers.
//
// RCB-Agent receives request bytes asynchronously (the paper's
// nsIStreamListener); these parsers accept arbitrary byte chunks and emit
// complete messages once the head and Content-Length-delimited body have
// arrived. Pipelined messages on one connection are handled: each Feed may
// complete at most one message, and leftover bytes stay buffered.
#ifndef SRC_HTTP_HTTP_PARSER_H_
#define SRC_HTTP_HTTP_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/http/message.h"
#include "src/util/status.h"

namespace rcb {

namespace http_internal {

// Shared head-then-body state machine.
class MessageAssembler {
 public:
  // Appends bytes; returns true once head+body of the current message are
  // complete. Call Reset() after consuming a message to continue with any
  // pipelined leftover.
  void Append(std::string_view data) { buffer_.append(data); }

  // Looks for the end-of-head marker; returns the head (without the blank
  // line) once present.
  std::optional<std::string> TakeHeadIfComplete();

  // After the head is consumed, extracts `length` body bytes when available.
  std::optional<std::string> TakeBodyIfComplete(size_t length);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace http_internal

// Size caps enforced while a request is assembled. 0 disables a cap (the
// absolute 64MiB Content-Length ceiling always applies). Violations surface
// as kResourceExhausted so the server can answer 413 instead of buffering
// unboundedly.
struct HttpParserLimits {
  size_t max_head_bytes = 0;
  size_t max_body_bytes = 0;
};

class HttpRequestParser {
 public:
  // Feeds bytes from the connection. Returns:
  //  - a complete HttpRequest once one is fully buffered,
  //  - std::nullopt if more bytes are needed,
  //  - an error Status on malformed input (connection should be dropped);
  //    kResourceExhausted specifically means a configured size cap was hit.
  StatusOr<std::optional<HttpRequest>> Feed(std::string_view data);

  void set_limits(HttpParserLimits limits) { limits_ = limits; }

  // Bytes buffered for the in-progress message (0 when idle between
  // pipelined requests). Lets the server arm a read deadline only while a
  // partial request is pending.
  size_t buffered_bytes() const { return assembler_.buffered_bytes(); }
  bool mid_message() const {
    return pending_.has_value() || assembler_.buffered_bytes() > 0;
  }

 private:
  http_internal::MessageAssembler assembler_;
  HttpParserLimits limits_;
  std::optional<HttpRequest> pending_;  // head parsed, waiting for body
  size_t pending_body_length_ = 0;
};

class HttpResponseParser {
 public:
  StatusOr<std::optional<HttpResponse>> Feed(std::string_view data);

 private:
  http_internal::MessageAssembler assembler_;
  std::optional<HttpResponse> pending_;
  size_t pending_body_length_ = 0;
};

// One-shot conveniences for tests.
StatusOr<HttpRequest> ParseHttpRequest(std::string_view wire);
StatusOr<HttpResponse> ParseHttpResponse(std::string_view wire);

}  // namespace rcb

#endif  // SRC_HTTP_HTTP_PARSER_H_
