// HTTP/1.1 request and response value types.
//
// RCB-Agent distinguishes three request types by method token and request-URI
// (Fig. 2): new-connection GET /, object GET /rcb-object/..., and Ajax POST.
// These types model exactly the HTTP/1.1 subset that flow needs.
#ifndef SRC_HTTP_MESSAGE_H_
#define SRC_HTTP_MESSAGE_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/http/headers.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace rcb {

enum class HttpMethod { kGet, kPost, kHead };

std::string_view HttpMethodName(HttpMethod method);
StatusOr<HttpMethod> ParseHttpMethod(std::string_view token);

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  std::string target = "/";  // origin-form request-URI: /path?query
  Headers headers;
  std::string body;

  // Path portion of the target (before '?').
  std::string Path() const;
  // Raw query string (after '?', empty if none).
  std::string QueryString() const;
  // Decoded query parameters, last-wins per key.
  std::map<std::string, std::string> QueryParams() const;

  // Serializes to wire format; sets Content-Length iff body is non-empty or
  // method is POST.
  std::string Serialize() const;
};

struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  std::string Serialize() const;

  static HttpResponse Ok(std::string content_type, std::string body);
  static HttpResponse NotFound(std::string_view detail = "");
  static HttpResponse BadRequest(std::string_view detail = "");
  static HttpResponse Forbidden(std::string_view detail = "");
  static HttpResponse InternalError(std::string_view detail = "");
  static HttpResponse PayloadTooLarge(std::string_view detail = "");
  // Overload responses carry a Retry-After hint (whole seconds, rounded up,
  // minimum 1) that AjaxSnippet folds into its poll scheduling.
  static HttpResponse TooManyRequests(Duration retry_after,
                                      std::string_view detail = "");
  static HttpResponse ServiceUnavailable(Duration retry_after,
                                         std::string_view detail = "");

  // Parsed Retry-After header in whole seconds, if present and numeric.
  std::optional<Duration> RetryAfter() const;
};

std::string_view ReasonPhraseFor(int status_code);

}  // namespace rcb

#endif  // SRC_HTTP_MESSAGE_H_
