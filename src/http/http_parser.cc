#include "src/http/http_parser.h"

#include "src/http/url.h"
#include "src/util/strings.h"

namespace rcb {
namespace http_internal {

std::optional<std::string> MessageAssembler::TakeHeadIfComplete() {
  size_t pos = buffer_.find("\r\n\r\n");
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  std::string head = buffer_.substr(0, pos);
  buffer_.erase(0, pos + 4);
  return head;
}

std::optional<std::string> MessageAssembler::TakeBodyIfComplete(size_t length) {
  if (buffer_.size() < length) {
    return std::nullopt;
  }
  std::string body = buffer_.substr(0, length);
  buffer_.erase(0, length);
  return body;
}

}  // namespace http_internal

namespace {

// Parses "Name: value" lines into `headers`.
Status ParseHeaderLines(const std::vector<std::string>& lines, size_t first,
                        Headers* headers) {
  for (size_t i = first; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) {
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return InvalidArgumentError("malformed header line: " + line);
    }
    std::string_view name = StripWhitespace(std::string_view(line).substr(0, colon));
    std::string_view value = StripWhitespace(std::string_view(line).substr(colon + 1));
    headers->Add(std::string(name), std::string(value));
  }
  return Status::Ok();
}

StatusOr<size_t> BodyLengthFrom(const Headers& headers) {
  auto cl = headers.Get("Content-Length");
  if (!cl.has_value()) {
    return size_t{0};
  }
  uint64_t length = 0;
  if (!ParseUint64(StripWhitespace(*cl), &length)) {
    return InvalidArgumentError("bad Content-Length: " + *cl);
  }
  if (length > (64ull << 20)) {
    return ResourceExhaustedError("Content-Length exceeds 64MiB limit");
  }
  return static_cast<size_t>(length);
}

}  // namespace

StatusOr<std::optional<HttpRequest>> HttpRequestParser::Feed(std::string_view data) {
  assembler_.Append(data);
  if (!pending_.has_value()) {
    auto head = assembler_.TakeHeadIfComplete();
    if (!head.has_value()) {
      // Cap what an unterminated head may buffer: without this a client can
      // drip header bytes forever and grow the buffer unboundedly.
      if (limits_.max_head_bytes > 0 &&
          assembler_.buffered_bytes() > limits_.max_head_bytes) {
        return ResourceExhaustedError(
            StrFormat("request head exceeds %zu bytes", limits_.max_head_bytes));
      }
      return std::optional<HttpRequest>{};
    }
    if (limits_.max_head_bytes > 0 && head->size() > limits_.max_head_bytes) {
      return ResourceExhaustedError(
          StrFormat("request head exceeds %zu bytes", limits_.max_head_bytes));
    }
    std::vector<std::string> lines = StrSplit(*head, '\n');
    for (auto& line : lines) {
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
    }
    if (lines.empty()) {
      return InvalidArgumentError("empty request head");
    }
    // Request-line: METHOD SP request-URI SP HTTP-version.
    std::vector<std::string> parts = StrSplitSkipEmpty(lines[0], ' ');
    if (parts.size() != 3) {
      return InvalidArgumentError("malformed request line: " + lines[0]);
    }
    HttpRequest request;
    RCB_ASSIGN_OR_RETURN(request.method, ParseHttpMethod(parts[0]));
    request.target = parts[1];
    if (request.target.empty() ||
        (request.target[0] != '/' && !IsAbsoluteUrl(request.target))) {
      return InvalidArgumentError("malformed request target: " + request.target);
    }
    if (!StartsWith(parts[2], "HTTP/1.")) {
      return InvalidArgumentError("unsupported HTTP version: " + parts[2]);
    }
    RCB_RETURN_IF_ERROR(ParseHeaderLines(lines, 1, &request.headers));
    RCB_ASSIGN_OR_RETURN(pending_body_length_, BodyLengthFrom(request.headers));
    // Reject an oversized declared body before buffering a single byte of it;
    // the caller answers 413 instead of waiting for data it will discard.
    if (limits_.max_body_bytes > 0 &&
        pending_body_length_ > limits_.max_body_bytes) {
      return ResourceExhaustedError(
          StrFormat("Content-Length %zu exceeds body limit of %zu bytes",
                    pending_body_length_, limits_.max_body_bytes));
    }
    pending_ = std::move(request);
  }
  auto body = assembler_.TakeBodyIfComplete(pending_body_length_);
  if (!body.has_value()) {
    return std::optional<HttpRequest>{};
  }
  HttpRequest complete = std::move(*pending_);
  complete.body = std::move(*body);
  pending_.reset();
  pending_body_length_ = 0;
  return std::optional<HttpRequest>(std::move(complete));
}

StatusOr<std::optional<HttpResponse>> HttpResponseParser::Feed(std::string_view data) {
  assembler_.Append(data);
  if (!pending_.has_value()) {
    auto head = assembler_.TakeHeadIfComplete();
    if (!head.has_value()) {
      return std::optional<HttpResponse>{};
    }
    std::vector<std::string> lines = StrSplit(*head, '\n');
    for (auto& line : lines) {
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
    }
    if (lines.empty()) {
      return InvalidArgumentError("empty response head");
    }
    // Status-line: HTTP-version SP status-code SP reason-phrase.
    const std::string& status_line = lines[0];
    if (!StartsWith(status_line, "HTTP/1.")) {
      return InvalidArgumentError("malformed status line: " + status_line);
    }
    size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos || sp1 + 4 > status_line.size()) {
      return InvalidArgumentError("malformed status line: " + status_line);
    }
    std::string code_str = status_line.substr(sp1 + 1, 3);
    uint64_t code = 0;
    if (!ParseUint64(code_str, &code) || code < 100 || code > 599) {
      return InvalidArgumentError("bad status code: " + code_str);
    }
    HttpResponse response;
    response.status_code = static_cast<int>(code);
    size_t reason_start = sp1 + 4;
    response.reason = reason_start < status_line.size()
                          ? std::string(StripWhitespace(
                                std::string_view(status_line).substr(reason_start)))
                          : "";
    RCB_RETURN_IF_ERROR(ParseHeaderLines(lines, 1, &response.headers));
    RCB_ASSIGN_OR_RETURN(pending_body_length_, BodyLengthFrom(response.headers));
    pending_ = std::move(response);
  }
  auto body = assembler_.TakeBodyIfComplete(pending_body_length_);
  if (!body.has_value()) {
    return std::optional<HttpResponse>{};
  }
  HttpResponse complete = std::move(*pending_);
  complete.body = std::move(*body);
  pending_.reset();
  pending_body_length_ = 0;
  return std::optional<HttpResponse>(std::move(complete));
}

StatusOr<HttpRequest> ParseHttpRequest(std::string_view wire) {
  HttpRequestParser parser;
  RCB_ASSIGN_OR_RETURN(std::optional<HttpRequest> request, parser.Feed(wire));
  if (!request.has_value()) {
    return InvalidArgumentError("incomplete HTTP request");
  }
  return std::move(*request);
}

StatusOr<HttpResponse> ParseHttpResponse(std::string_view wire) {
  HttpResponseParser parser;
  RCB_ASSIGN_OR_RETURN(std::optional<HttpResponse> response, parser.Feed(wire));
  if (!response.has_value()) {
    return InvalidArgumentError("incomplete HTTP response");
  }
  return std::move(*response);
}

}  // namespace rcb
