// Cookie jar with the attribute subset that mattered in 2009: Path scoping,
// Max-Age / immediate-deletion, and Secure.
//
// Session-protected co-browsing (§5.2.2) works in RCB because the *host*
// browser owns the session cookies and participants never talk to the origin
// for HTML. The shop site in src/sites depends on this jar for its login and
// cart sessions; the paper notes RCB-Agent deliberately does NOT replicate
// cookies to participants (§4.1.2), which we reproduce.
#ifndef SRC_HTTP_COOKIE_H_
#define SRC_HTTP_COOKIE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/http/url.h"
#include "src/util/sim_time.h"

namespace rcb {

class CookieJar {
 public:
  // Applies one Set-Cookie header value ("name=value[; attrs...]").
  // Supported attributes: Path (default "/"), Max-Age (seconds on the
  // simulated clock; <= 0 deletes the cookie), Secure. Unknown attributes
  // are ignored. Cookies are scoped per host + path.
  void ApplySetCookie(const Url& origin, std::string_view set_cookie_value,
                      SimTime now = SimTime());

  // Builds the Cookie header value for a request to `url` at `now`:
  // path-matching, unexpired cookies; Secure cookies only over https.
  // Longer (more specific) paths are listed first, per RFC 6265.
  std::string CookieHeaderFor(const Url& url, SimTime now = SimTime()) const;

  // Direct lookup by name against the origin's root path.
  std::string Get(const Url& origin, std::string_view name,
                  SimTime now = SimTime()) const;

  void Clear() { cookies_.clear(); }
  // Number of unexpired cookies stored for the host (any path).
  size_t CountFor(const Url& origin, SimTime now = SimTime()) const;

 private:
  struct Cookie {
    std::string name;
    std::string value;
    std::string path = "/";
    bool secure = false;
    bool has_expiry = false;
    SimTime expires_at;
  };

  static bool PathMatches(const std::string& cookie_path,
                          const std::string& request_path);
  bool Usable(const Cookie& cookie, SimTime now) const {
    return !cookie.has_expiry || now < cookie.expires_at;
  }

  std::map<std::string, std::vector<Cookie>> cookies_;  // host -> cookies
};

}  // namespace rcb

#endif  // SRC_HTTP_COOKIE_H_
