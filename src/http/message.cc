#include "src/http/message.h"

#include "src/http/form.h"
#include "src/util/strings.h"

namespace rcb {

std::string_view HttpMethodName(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet:
      return "GET";
    case HttpMethod::kPost:
      return "POST";
    case HttpMethod::kHead:
      return "HEAD";
  }
  return "GET";
}

StatusOr<HttpMethod> ParseHttpMethod(std::string_view token) {
  if (token == "GET") {
    return HttpMethod::kGet;
  }
  if (token == "POST") {
    return HttpMethod::kPost;
  }
  if (token == "HEAD") {
    return HttpMethod::kHead;
  }
  return InvalidArgumentError("unsupported HTTP method: " + std::string(token));
}

std::string HttpRequest::Path() const {
  size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::QueryString() const {
  size_t q = target.find('?');
  return q == std::string::npos ? std::string() : target.substr(q + 1);
}

std::map<std::string, std::string> HttpRequest::QueryParams() const {
  return ParseFormUrlEncoded(QueryString());
}

std::string HttpRequest::Serialize() const {
  std::string out;
  out += HttpMethodName(method);
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\n";
  Headers hdrs = headers;
  if (!body.empty() || method == HttpMethod::kPost) {
    hdrs.Set("Content-Length", StrFormat("%zu", body.size()));
  }
  out += hdrs.Serialize();
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", status_code, reason.c_str());
  Headers hdrs = headers;
  hdrs.Set("Content-Length", StrFormat("%zu", body.size()));
  out += hdrs.Serialize();
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::Ok(std::string content_type, std::string body) {
  HttpResponse resp;
  resp.status_code = 200;
  resp.reason = "OK";
  resp.headers.Set("Content-Type", content_type);
  resp.body = std::move(body);
  return resp;
}

namespace {
HttpResponse ErrorResponse(int code, std::string_view detail) {
  HttpResponse resp;
  resp.status_code = code;
  resp.reason = std::string(ReasonPhraseFor(code));
  resp.headers.Set("Content-Type", "text/plain");
  resp.body = resp.reason;
  if (!detail.empty()) {
    resp.body += ": ";
    resp.body += detail;
  }
  return resp;
}
}  // namespace

HttpResponse HttpResponse::NotFound(std::string_view detail) {
  return ErrorResponse(404, detail);
}
HttpResponse HttpResponse::BadRequest(std::string_view detail) {
  return ErrorResponse(400, detail);
}
HttpResponse HttpResponse::Forbidden(std::string_view detail) {
  return ErrorResponse(403, detail);
}
HttpResponse HttpResponse::InternalError(std::string_view detail) {
  return ErrorResponse(500, detail);
}
HttpResponse HttpResponse::PayloadTooLarge(std::string_view detail) {
  return ErrorResponse(413, detail);
}

namespace {
// Retry-After is whole seconds on the wire; round up so a hint of 250ms does
// not collapse to "retry immediately", and never advertise less than 1s.
int64_t RetryAfterSeconds(Duration retry_after) {
  int64_t secs = (retry_after.micros() + 999999) / 1000000;
  return secs < 1 ? 1 : secs;
}
}  // namespace

HttpResponse HttpResponse::TooManyRequests(Duration retry_after,
                                           std::string_view detail) {
  HttpResponse resp = ErrorResponse(429, detail);
  resp.headers.Set("Retry-After",
                   StrFormat("%lld", static_cast<long long>(
                                         RetryAfterSeconds(retry_after))));
  return resp;
}

HttpResponse HttpResponse::ServiceUnavailable(Duration retry_after,
                                              std::string_view detail) {
  HttpResponse resp = ErrorResponse(503, detail);
  resp.headers.Set("Retry-After",
                   StrFormat("%lld", static_cast<long long>(
                                         RetryAfterSeconds(retry_after))));
  return resp;
}

std::optional<Duration> HttpResponse::RetryAfter() const {
  std::optional<std::string> value = headers.Get("Retry-After");
  if (!value.has_value() || value->empty()) {
    return std::nullopt;
  }
  int64_t secs = 0;
  for (char c : *value) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    secs = secs * 10 + (c - '0');
    if (secs > 86400) {  // clamp absurd hints to a day
      secs = 86400;
      break;
    }
  }
  return Duration::Seconds(static_cast<double>(secs));
}

std::string_view ReasonPhraseFor(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 301:
      return "Moved Permanently";
    case 302:
      return "Found";
    case 304:
      return "Not Modified";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 409:
      return "Conflict";
    case 410:
      return "Gone";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace rcb
