#include "src/http/form.h"

#include "src/util/escape.h"
#include "src/util/strings.h"

namespace rcb {

std::string EncodeFormUrlEncoded(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out;
  for (const auto& [key, value] : fields) {
    if (!out.empty()) {
      out += '&';
    }
    out += PercentEncode(key);
    out += '=';
    out += PercentEncode(value);
  }
  return out;
}

std::string EncodeFormUrlEncoded(const std::map<std::string, std::string>& fields) {
  std::vector<std::pair<std::string, std::string>> ordered(fields.begin(),
                                                           fields.end());
  return EncodeFormUrlEncoded(ordered);
}

std::vector<std::pair<std::string, std::string>> ParseFormUrlEncodedOrdered(
    std::string_view body) {
  std::vector<std::pair<std::string, std::string>> out;
  if (body.empty()) {
    return out;
  }
  for (const auto& piece : StrSplit(body, '&')) {
    if (piece.empty()) {
      continue;
    }
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(PercentDecode(piece, /*plus_as_space=*/true), "");
    } else {
      out.emplace_back(PercentDecode(piece.substr(0, eq), /*plus_as_space=*/true),
                       PercentDecode(piece.substr(eq + 1), /*plus_as_space=*/true));
    }
  }
  return out;
}

std::map<std::string, std::string> ParseFormUrlEncoded(std::string_view body) {
  std::map<std::string, std::string> out;
  for (auto& [key, value] : ParseFormUrlEncodedOrdered(body)) {
    out[key] = value;
  }
  return out;
}

}  // namespace rcb
