// Ordered, case-insensitive HTTP header map.
#ifndef SRC_HTTP_HEADERS_H_
#define SRC_HTTP_HEADERS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rcb {

class Headers {
 public:
  // Replaces all existing values of `name`.
  void Set(std::string_view name, std::string_view value);
  // Appends a value (Set-Cookie style repeated headers).
  void Add(std::string_view name, std::string_view value);
  // First value for `name`, if any. Lookup is case-insensitive.
  std::optional<std::string> Get(std::string_view name) const;
  // All values for `name`.
  std::vector<std::string> GetAll(std::string_view name) const;
  bool Has(std::string_view name) const;
  void Remove(std::string_view name);

  size_t size() const { return entries_.size(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  // Serializes as "Name: value\r\n" lines (no trailing blank line).
  std::string Serialize() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace rcb

#endif  // SRC_HTTP_HEADERS_H_
