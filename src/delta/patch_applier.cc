#include "src/delta/patch_applier.h"

#include "src/html/parser.h"
#include "src/util/strings.h"

namespace rcb::delta {
namespace {

Node* NodeAtPath(Element* root, const std::vector<uint32_t>& path) {
  Node* node = root;
  for (uint32_t index : path) {
    if (index >= node->child_count()) {
      return nullptr;
    }
    node = node->child_at(index);
  }
  return node;
}

StatusOr<std::unique_ptr<Node>> ParseSingleNode(const std::string& html) {
  auto nodes = ParseFragment(html);
  if (nodes.size() != 1) {
    return InvalidArgumentError(
        StrFormat("patch payload parsed to %zu nodes, want 1", nodes.size()));
  }
  return std::move(nodes[0]);
}

// Swaps the verified patched tree into the live document: the live root's
// children are replaced by the canonical children, and the bootstrap script
// the Fig. 5 procedure preserves is re-attached at the head's front.
void CommitCanonicalTree(Document* document,
                         std::unique_ptr<Element> canonical) {
  Element* root = document->document_element();
  std::unique_ptr<Node> snippet_script;
  if (Element* live_head = root->ChildByTag("head")) {
    Node* found = nullptr;
    for (const auto& child : live_head->children()) {
      if (IsSnippetBootstrapScript(*child)) {
        found = child.get();
        break;
      }
    }
    if (found != nullptr) {
      snippet_script = found->Detach();
    }
  }
  root->RemoveAllChildren();
  while (canonical->first_child() != nullptr) {
    root->AppendChild(canonical->first_child()->Detach());
  }
  Element* head = root->ChildByTag("head");
  if (head == nullptr) {
    head = root->InsertBefore(MakeElement("head"), root->first_child())
               ->AsElement();
  }
  if (snippet_script != nullptr) {
    head->InsertBefore(std::move(snippet_script), head->first_child());
  }
}

}  // namespace

bool NeedsResync(ApplyResult result) {
  switch (result) {
    case ApplyResult::kApplied:
    case ApplyResult::kStaleIgnored:
      return false;
    case ApplyResult::kBaseTimeMismatch:
    case ApplyResult::kBaseDigestMismatch:
    case ApplyResult::kTargetDigestMismatch:
    case ApplyResult::kApplyError:
      return true;
  }
  return true;
}

std::string_view ApplyResultName(ApplyResult result) {
  switch (result) {
    case ApplyResult::kApplied:
      return "applied";
    case ApplyResult::kStaleIgnored:
      return "stale_ignored";
    case ApplyResult::kBaseTimeMismatch:
      return "base_time_mismatch";
    case ApplyResult::kBaseDigestMismatch:
      return "base_digest_mismatch";
    case ApplyResult::kTargetDigestMismatch:
      return "target_digest_mismatch";
    case ApplyResult::kApplyError:
      return "apply_error";
  }
  return "apply_error";
}

Status ApplyPatchOps(Element* root, const std::vector<PatchOp>& ops) {
  for (const PatchOp& op : ops) {
    switch (op.type) {
      case PatchOpType::kInsert: {
        Node* parent = NodeAtPath(root, op.path);
        if (parent == nullptr || op.index > parent->child_count()) {
          return InvalidArgumentError("patch insert out of range");
        }
        RCB_ASSIGN_OR_RETURN(auto node, ParseSingleNode(op.html));
        Node* reference = op.index < parent->child_count()
                              ? parent->child_at(op.index)
                              : nullptr;
        parent->InsertBefore(std::move(node), reference);
        break;
      }
      case PatchOpType::kRemove: {
        Node* parent = NodeAtPath(root, op.path);
        if (parent == nullptr || op.index >= parent->child_count()) {
          return InvalidArgumentError("patch remove out of range");
        }
        parent->RemoveChild(parent->child_at(op.index));
        break;
      }
      case PatchOpType::kMove: {
        Node* parent = NodeAtPath(root, op.path);
        if (parent == nullptr || op.from >= parent->child_count() ||
            op.to >= parent->child_count()) {
          return InvalidArgumentError("patch move out of range");
        }
        std::unique_ptr<Node> moving =
            parent->RemoveChild(parent->child_at(op.from));
        Node* reference = op.to < parent->child_count()
                              ? parent->child_at(op.to)
                              : nullptr;
        parent->InsertBefore(std::move(moving), reference);
        break;
      }
      case PatchOpType::kReplace: {
        if (op.path.empty()) {
          return InvalidArgumentError("patch cannot replace the root");
        }
        Node* target = NodeAtPath(root, op.path);
        if (target == nullptr) {
          return InvalidArgumentError("patch replace path out of range");
        }
        RCB_ASSIGN_OR_RETURN(auto node, ParseSingleNode(op.html));
        Node* parent = target->parent();
        parent->InsertBefore(std::move(node), target);
        parent->RemoveChild(target);
        break;
      }
      case PatchOpType::kSetAttr: {
        Node* target = NodeAtPath(root, op.path);
        Element* element = target != nullptr ? target->AsElement() : nullptr;
        if (element == nullptr) {
          return InvalidArgumentError("patch set-attr target is not an element");
        }
        element->SetAttribute(op.name, op.value);
        break;
      }
      case PatchOpType::kRemoveAttr: {
        Node* target = NodeAtPath(root, op.path);
        Element* element = target != nullptr ? target->AsElement() : nullptr;
        if (element == nullptr) {
          return InvalidArgumentError(
              "patch remove-attr target is not an element");
        }
        element->RemoveAttribute(op.name);
        break;
      }
      case PatchOpType::kSetText: {
        Node* target = NodeAtPath(root, op.path);
        if (target == nullptr || target->type() != NodeType::kText) {
          return InvalidArgumentError("patch set-text target is not text");
        }
        static_cast<Text*>(target)->set_data(op.value);
        break;
      }
    }
  }
  return Status::Ok();
}

ApplyResult ApplyPatchToDocument(Document* document,
                                 int64_t current_doc_time_ms,
                                 const Patch& patch) {
  if (patch.target_doc_time_ms <= current_doc_time_ms) {
    return ApplyResult::kStaleIgnored;
  }
  if (patch.base_doc_time_ms != current_doc_time_ms) {
    return ApplyResult::kBaseTimeMismatch;
  }
  std::unique_ptr<Element> canonical = CanonicalizeDocument(*document);
  if (canonical == nullptr) {
    return ApplyResult::kBaseDigestMismatch;
  }
  if (TreeDigest(*canonical) != patch.base_digest) {
    return ApplyResult::kBaseDigestMismatch;
  }
  if (!ApplyPatchOps(canonical.get(), patch.ops).ok()) {
    return ApplyResult::kApplyError;
  }
  if (TreeDigest(*canonical) != patch.target_digest) {
    return ApplyResult::kTargetDigestMismatch;
  }
  CommitCanonicalTree(document, std::move(canonical));
  return ApplyResult::kApplied;
}

}  // namespace rcb::delta
