// Keyed DOM tree diff — the engine behind delta snapshots.
//
// Instead of shipping the full Fig. 4 snapshot on every document change, the
// agent can diff the previous and current generated content and ship only a
// patch (src/delta/patch_codec.h). Both sides of the wire reduce their
// document to the same *canonical tree* — an attribute-less <html> holding
// the head children (minus the Ajax-Snippet bootstrap script) and the
// body/frameset/noframes elements, with text nodes normalized — so a digest
// over the canonical serialization agrees between the agent's generated
// content and the participant's live page.
//
// Node identity during child reconciliation:
//   * elements carrying data-rcb-id (assigned by the Fig. 3 event-rewriting
//     pass) are keyed by it — stable across attribute edits, which is what
//     turns a form co-fill into a one-op set-attr patch,
//   * other elements are keyed by tag + attribute hash,
//   * all text nodes share one key (edits become set-text, not churn),
//   * comments and doctypes each share a per-type key.
#ifndef SRC_DELTA_TREE_DIFF_H_
#define SRC_DELTA_TREE_DIFF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/html/dom.h"

namespace rcb::delta {

// One mutation step. `path` addresses a node as a child-index chain from the
// canonical <html> root (empty path = the root itself); for insert/remove/
// move the path names the *parent*. DiffTrees orders ops so that each op's
// path is valid once all preceding ops have been applied.
enum class PatchOpType {
  kInsert,      // insert serialized subtree under `path` at `index`
  kRemove,      // remove child `index` of `path`
  kMove,        // move child of `path` from index `from` to index `to`
  kReplace,     // replace the node at `path` with a serialized subtree
  kSetAttr,     // set attribute `name`=`value` on the element at `path`
  kRemoveAttr,  // remove attribute `name` from the element at `path`
  kSetText,     // replace the text-node data at `path` with `value`
};

struct PatchOp {
  PatchOpType type = PatchOpType::kInsert;
  std::vector<uint32_t> path;
  uint32_t index = 0;          // insert/remove position
  uint32_t from = 0;           // move source (>= to by construction)
  uint32_t to = 0;             // move destination
  std::string name;            // attribute name
  std::string value;           // attribute value / set-text data
  std::string html;            // insert/replace payload (serialized subtree)

  bool operator==(const PatchOp&) const = default;
};

// True for the <script id="rcb-snippet"> bootstrap element the Fig. 5 apply
// procedure preserves; canonicalization excludes it on both sides.
bool IsSnippetBootstrapScript(const Node& node);

// Merges adjacent text nodes and drops empty ones, recursively. Canonical
// trees are normalized so agent-side materialization and participant-side
// live documents serialize identically.
void NormalizeTextNodes(Element* root);

// Canonicalizes a live document (see file comment). Returns nullptr when the
// document has no root element.
std::unique_ptr<Element> CanonicalizeDocument(const Document& document);

// Reconciliation key for one node (see file comment).
std::string NodeKey(const Node& node);

// Hex SHA-256 over the canonical serialization — the integrity digest the
// patch header carries as baseDigest/docDigest.
std::string TreeDigest(const Element& canonical_root);

// Diffs two canonical trees: the returned ops transform `base` into a tree
// that serializes identically to `target`.
std::vector<PatchOp> DiffTrees(const Element& base, const Element& target);

// Compact per-kind op tally, e.g. "ins=1,attr=2" (kinds in PatchOpType
// order, zero counts omitted; empty ops -> "none"). The patch-shape summary
// causal trace spans carry (DESIGN.md §11).
std::string SummarizeOps(const std::vector<PatchOp>& ops);

}  // namespace rcb::delta

#endif  // SRC_DELTA_TREE_DIFF_H_
