// Patch wire format: the <newPatch> XML envelope.
//
// The delta counterpart of the Fig. 4 newContent document, built with the
// same idioms: a versioned header (format version, base and target
// doc_time_ms, base and post-apply canonical-tree digests), the op list
// JsEscape()d inside a CDATA section (newline-separated, form-urlencoded per
// op — the EncodeActions idiom), and an optional userActions CDATA section so
// broadcasts keep piggybacking on content responses.
#ifndef SRC_DELTA_PATCH_CODEC_H_
#define SRC_DELTA_PATCH_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/actions.h"
#include "src/delta/tree_diff.h"
#include "src/util/status.h"

namespace rcb::delta {

inline constexpr int kPatchFormatVersion = 1;

struct Patch {
  int version = kPatchFormatVersion;
  int64_t base_doc_time_ms = 0;    // version the ops apply against (§4.1.1)
  int64_t target_doc_time_ms = 0;  // version the participant holds afterwards
  std::string base_digest;         // TreeDigest of the base canonical tree
  std::string target_digest;       // expected TreeDigest after apply
  std::vector<PatchOp> ops;

  bool operator==(const Patch&) const = default;
};

struct PatchEnvelope {
  Patch patch;
  std::vector<UserAction> user_actions;

  bool operator==(const PatchEnvelope&) const = default;
};

std::string_view PatchOpTypeName(PatchOpType type);
StatusOr<PatchOpType> ParsePatchOpType(std::string_view name);

// Newline-separated op list; one form-urlencoded line per op. Decoding
// validates op names, numeric ranges, path depth, and attribute-name shape
// so garbage input fails with a Status instead of corrupting a tree.
std::string EncodePatchOps(const std::vector<PatchOp>& ops);
StatusOr<std::vector<PatchOp>> DecodePatchOps(std::string_view encoded);

std::string SerializePatchXml(const PatchEnvelope& envelope);
StatusOr<PatchEnvelope> ParsePatchXml(std::string_view xml);

// Cheap discriminator so the snippet can route a poll response body to the
// patch or the snapshot parser without trial-parsing both.
bool LooksLikePatchXml(std::string_view body);

}  // namespace rcb::delta

#endif  // SRC_DELTA_PATCH_CODEC_H_
