#include "src/delta/patch_codec.h"

#include <cstdlib>

#include "src/http/form.h"
#include "src/util/escape.h"
#include "src/util/strings.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace rcb::delta {
namespace {

// Sanity caps applied while decoding: far above anything a real diff
// produces, low enough that garbage op lists cannot drive quadratic work or
// absurd allocations in the applier.
constexpr size_t kMaxPathDepth = 512;
constexpr uint64_t kMaxIndex = 1000000;

bool ParseBoundedUint32(std::string_view s, uint32_t* out) {
  uint64_t value = 0;
  if (!ParseUint64(s, &value) || value > kMaxIndex) {
    return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

Status ParsePath(std::string_view encoded, std::vector<uint32_t>* out) {
  out->clear();
  if (encoded.empty()) {
    return Status::Ok();
  }
  for (const auto& part : StrSplit(encoded, '.')) {
    uint32_t component = 0;
    if (!ParseBoundedUint32(part, &component)) {
      return InvalidArgumentError("bad patch path component: " + part);
    }
    out->push_back(component);
    if (out->size() > kMaxPathDepth) {
      return InvalidArgumentError("patch path too deep");
    }
  }
  return Status::Ok();
}

std::string EncodePath(const std::vector<uint32_t>& path) {
  std::vector<std::string> parts;
  parts.reserve(path.size());
  for (uint32_t component : path) {
    parts.push_back(StrFormat("%u", component));
  }
  return StrJoin(parts, ".");
}

bool ValidAttributeName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':' ||
              c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

bool ValidHexDigest(std::string_view digest) {
  if (digest.size() != 64) {
    return false;
  }
  for (char c : digest) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return false;
    }
  }
  return true;
}

// Field-presence bits used to decode ops strictly: every field may appear at
// most once, and only the fields meaningful for the op type may appear at
// all. Anything looser would make decoding lossy — extraneous fields would
// parse into the op but be dropped on re-encode, so a patch would no longer
// round-trip through its own codec.
enum FieldBit : uint32_t {
  kFieldOp = 1u << 0,
  kFieldPath = 1u << 1,
  kFieldIndex = 1u << 2,
  kFieldFrom = 1u << 3,
  kFieldTo = 1u << 4,
  kFieldName = 1u << 5,
  kFieldValue = 1u << 6,
  kFieldHtml = 1u << 7,
};

uint32_t RequiredFieldsFor(PatchOpType type) {
  switch (type) {
    case PatchOpType::kInsert:
      return kFieldIndex | kFieldHtml;
    case PatchOpType::kRemove:
      return kFieldIndex;
    case PatchOpType::kMove:
      return kFieldFrom | kFieldTo;
    case PatchOpType::kReplace:
      return kFieldHtml;
    case PatchOpType::kSetAttr:
      return kFieldName | kFieldValue;
    case PatchOpType::kRemoveAttr:
      return kFieldName;
    case PatchOpType::kSetText:
      return kFieldValue;
  }
  return 0;
}

// Per-op structural validation after field parsing.
Status ValidateOp(const PatchOp& op) {
  switch (op.type) {
    case PatchOpType::kInsert:
    case PatchOpType::kReplace:
      if (op.html.empty()) {
        return InvalidArgumentError("patch op missing html payload");
      }
      break;
    case PatchOpType::kMove:
      if (op.from < op.to) {
        return InvalidArgumentError("patch move must be backward (from >= to)");
      }
      break;
    case PatchOpType::kSetAttr:
    case PatchOpType::kRemoveAttr:
      if (!ValidAttributeName(op.name)) {
        return InvalidArgumentError("bad patch attribute name: " + op.name);
      }
      break;
    case PatchOpType::kRemove:
    case PatchOpType::kSetText:
      break;
  }
  return Status::Ok();
}

}  // namespace

std::string_view PatchOpTypeName(PatchOpType type) {
  switch (type) {
    case PatchOpType::kInsert:
      return "insert";
    case PatchOpType::kRemove:
      return "remove";
    case PatchOpType::kMove:
      return "move";
    case PatchOpType::kReplace:
      return "replace";
    case PatchOpType::kSetAttr:
      return "setattr";
    case PatchOpType::kRemoveAttr:
      return "rmattr";
    case PatchOpType::kSetText:
      return "settext";
  }
  return "insert";
}

StatusOr<PatchOpType> ParsePatchOpType(std::string_view name) {
  if (name == "insert") {
    return PatchOpType::kInsert;
  }
  if (name == "remove") {
    return PatchOpType::kRemove;
  }
  if (name == "move") {
    return PatchOpType::kMove;
  }
  if (name == "replace") {
    return PatchOpType::kReplace;
  }
  if (name == "setattr") {
    return PatchOpType::kSetAttr;
  }
  if (name == "rmattr") {
    return PatchOpType::kRemoveAttr;
  }
  if (name == "settext") {
    return PatchOpType::kSetText;
  }
  return InvalidArgumentError("unknown patch op: " + std::string(name));
}

std::string EncodePatchOps(const std::vector<PatchOp>& ops) {
  std::vector<std::string> lines;
  lines.reserve(ops.size());
  for (const PatchOp& op : ops) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("op", std::string(PatchOpTypeName(op.type)));
    if (!op.path.empty()) {
      fields.emplace_back("path", EncodePath(op.path));
    }
    switch (op.type) {
      case PatchOpType::kInsert:
        fields.emplace_back("index", StrFormat("%u", op.index));
        fields.emplace_back("html", op.html);
        break;
      case PatchOpType::kRemove:
        fields.emplace_back("index", StrFormat("%u", op.index));
        break;
      case PatchOpType::kMove:
        fields.emplace_back("from", StrFormat("%u", op.from));
        fields.emplace_back("to", StrFormat("%u", op.to));
        break;
      case PatchOpType::kReplace:
        fields.emplace_back("html", op.html);
        break;
      case PatchOpType::kSetAttr:
        fields.emplace_back("name", op.name);
        fields.emplace_back("value", op.value);
        break;
      case PatchOpType::kRemoveAttr:
        fields.emplace_back("name", op.name);
        break;
      case PatchOpType::kSetText:
        fields.emplace_back("value", op.value);
        break;
    }
    lines.push_back(EncodeFormUrlEncoded(fields));
  }
  return StrJoin(lines, "\n");
}

StatusOr<std::vector<PatchOp>> DecodePatchOps(std::string_view encoded) {
  std::vector<PatchOp> ops;
  if (StripWhitespace(encoded).empty()) {
    return ops;
  }
  for (const auto& line : StrSplit(encoded, '\n')) {
    if (line.empty()) {
      continue;
    }
    PatchOp op;
    uint32_t seen = 0;
    for (const auto& [name, value] : ParseFormUrlEncodedOrdered(line)) {
      uint32_t bit = 0;
      if (name == "op") {
        bit = kFieldOp;
        RCB_ASSIGN_OR_RETURN(op.type, ParsePatchOpType(value));
      } else if (name == "path") {
        bit = kFieldPath;
        RCB_RETURN_IF_ERROR(ParsePath(value, &op.path));
      } else if (name == "index") {
        bit = kFieldIndex;
        if (!ParseBoundedUint32(value, &op.index)) {
          return InvalidArgumentError("bad patch index: " + value);
        }
      } else if (name == "from") {
        bit = kFieldFrom;
        if (!ParseBoundedUint32(value, &op.from)) {
          return InvalidArgumentError("bad patch from: " + value);
        }
      } else if (name == "to") {
        bit = kFieldTo;
        if (!ParseBoundedUint32(value, &op.to)) {
          return InvalidArgumentError("bad patch to: " + value);
        }
      } else if (name == "name") {
        bit = kFieldName;
        op.name = value;
      } else if (name == "value") {
        bit = kFieldValue;
        op.value = value;
      } else if (name == "html") {
        bit = kFieldHtml;
        op.html = value;
      } else {
        return InvalidArgumentError("unknown patch op field: " + name);
      }
      if (seen & bit) {
        return InvalidArgumentError("duplicate patch op field: " + name);
      }
      seen |= bit;
    }
    if (!(seen & kFieldOp)) {
      return InvalidArgumentError("patch op line missing op: " + line);
    }
    const uint32_t required = RequiredFieldsFor(op.type);
    const uint32_t allowed = required | kFieldOp | kFieldPath;
    if ((seen & required) != required || (seen & ~allowed) != 0) {
      return InvalidArgumentError("patch op fields do not match type: " + line);
    }
    RCB_RETURN_IF_ERROR(ValidateOp(op));
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string SerializePatchXml(const PatchEnvelope& envelope) {
  const Patch& patch = envelope.patch;
  XmlWriter writer;
  writer.WriteDeclaration();
  writer.StartElement("newPatch");
  writer.WriteTextElement("version", StrFormat("%d", patch.version));
  writer.WriteTextElement(
      "baseTime",
      StrFormat("%lld", static_cast<long long>(patch.base_doc_time_ms)));
  writer.WriteTextElement(
      "docTime",
      StrFormat("%lld", static_cast<long long>(patch.target_doc_time_ms)));
  writer.WriteTextElement("baseDigest", patch.base_digest);
  writer.WriteTextElement("docDigest", patch.target_digest);
  writer.WriteCdataElement("patchOps", JsEscape(EncodePatchOps(patch.ops)));
  if (!envelope.user_actions.empty()) {
    writer.WriteCdataElement("userActions",
                             JsEscape(EncodeActions(envelope.user_actions)));
  }
  writer.EndElement();  // newPatch
  return writer.TakeString();
}

StatusOr<PatchEnvelope> ParsePatchXml(std::string_view xml) {
  RCB_ASSIGN_OR_RETURN(auto root, ParseXml(xml));
  if (root->name != "newPatch") {
    return InvalidArgumentError("expected newPatch root, got " + root->name);
  }
  PatchEnvelope envelope;
  Patch& patch = envelope.patch;
  const XmlNode* version = root->FindChild("version");
  if (version == nullptr) {
    return InvalidArgumentError("patch missing version");
  }
  patch.version = std::atoi(version->text.c_str());
  if (patch.version != kPatchFormatVersion) {
    return InvalidArgumentError("unsupported patch version: " + version->text);
  }
  const XmlNode* base_time = root->FindChild("baseTime");
  const XmlNode* doc_time = root->FindChild("docTime");
  if (base_time == nullptr || doc_time == nullptr) {
    return InvalidArgumentError("patch missing baseTime/docTime");
  }
  patch.base_doc_time_ms = std::atoll(base_time->text.c_str());
  patch.target_doc_time_ms = std::atoll(doc_time->text.c_str());
  const XmlNode* base_digest = root->FindChild("baseDigest");
  const XmlNode* doc_digest = root->FindChild("docDigest");
  if (base_digest == nullptr || doc_digest == nullptr) {
    return InvalidArgumentError("patch missing digests");
  }
  if (!ValidHexDigest(base_digest->text) || !ValidHexDigest(doc_digest->text)) {
    return InvalidArgumentError("patch digest is not 64 hex chars");
  }
  patch.base_digest = base_digest->text;
  patch.target_digest = doc_digest->text;
  if (const XmlNode* ops = root->FindChild("patchOps")) {
    RCB_ASSIGN_OR_RETURN(patch.ops, DecodePatchOps(JsUnescape(ops->text)));
  }
  if (const XmlNode* actions = root->FindChild("userActions")) {
    RCB_ASSIGN_OR_RETURN(envelope.user_actions,
                         DecodeActions(JsUnescape(actions->text)));
  }
  return envelope;
}

bool LooksLikePatchXml(std::string_view body) {
  return body.substr(0, 256).find("<newPatch>") != std::string_view::npos;
}

}  // namespace rcb::delta
