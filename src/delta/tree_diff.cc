#include "src/delta/tree_diff.h"

#include <algorithm>
#include <map>

#include "src/crypto/sha256.h"
#include "src/html/serializer.h"

namespace rcb::delta {
namespace {

// The attribute-order contract of SetAttribute: existing names keep their
// position, new names append. An attribute diff can therefore only reproduce
// `target`'s order when [base∩target in base order] + [target-only names in
// target order] equals the target order; otherwise the differ falls back to
// replacing the whole element so the digest still matches.
bool AttributeOrderCompatible(const Element& base, const Element& target) {
  std::vector<std::string> predicted;
  for (const auto& [name, value] : base.attributes()) {
    if (target.HasAttribute(name)) {
      predicted.push_back(name);
    }
  }
  for (const auto& [name, value] : target.attributes()) {
    if (!base.HasAttribute(name)) {
      predicted.push_back(name);
    }
  }
  if (predicted.size() != target.attributes().size()) {
    return false;
  }
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] != target.attributes()[i].first) {
      return false;
    }
  }
  return true;
}

void DiffAttributes(const Element& base, const Element& target,
                    const std::vector<uint32_t>& path,
                    std::vector<PatchOp>* ops) {
  for (const auto& [name, value] : base.attributes()) {
    if (!target.HasAttribute(name)) {
      PatchOp op;
      op.type = PatchOpType::kRemoveAttr;
      op.path = path;
      op.name = name;
      ops->push_back(std::move(op));
    }
  }
  for (const auto& [name, value] : target.attributes()) {
    auto base_value = base.GetAttribute(name);
    if (!base_value.has_value() || *base_value != value) {
      PatchOp op;
      op.type = PatchOpType::kSetAttr;
      op.path = path;
      op.name = name;
      op.value = value;
      ops->push_back(std::move(op));
    }
  }
}

void EmitReplace(const Node& target, const std::vector<uint32_t>& path,
                 std::vector<PatchOp>* ops) {
  PatchOp op;
  op.type = PatchOpType::kReplace;
  op.path = path;
  op.html = SerializeNode(target);
  ops->push_back(std::move(op));
}

void DiffNodePair(const Node& base, const Node& target,
                  std::vector<uint32_t>* path, std::vector<PatchOp>* ops);

// Reconciles the children of one matched element pair: keyed LCS keeps the
// stable spine, leftovers are re-paired by key (moves) and then by tag
// (attribute-drifted elements), the rest become removals/insertions.
// Removals run in descending index order, then moves/insertions finalize
// positions left to right (so every move satisfies from >= to), and only
// then does the differ recurse into the matched pairs at their final
// indexes — keeping every emitted path valid at apply time.
void ReconcileChildren(const Element& base, const Element& target,
                       std::vector<uint32_t>* path, std::vector<PatchOp>* ops) {
  const size_t m = base.child_count();
  const size_t n = target.child_count();
  std::vector<std::string> base_keys(m), target_keys(n);
  for (size_t i = 0; i < m; ++i) {
    base_keys[i] = NodeKey(*base.child_at(i));
  }
  for (size_t j = 0; j < n; ++j) {
    target_keys[j] = NodeKey(*target.child_at(j));
  }

  // Longest common subsequence over keys.
  std::vector<std::vector<uint32_t>> lcs(m + 1,
                                         std::vector<uint32_t>(n + 1, 0));
  for (size_t i = m; i-- > 0;) {
    for (size_t j = n; j-- > 0;) {
      lcs[i][j] = base_keys[i] == target_keys[j]
                      ? lcs[i + 1][j + 1] + 1
                      : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::vector<int> pair_of_target(n, -1);  // base index matched to target j
  std::vector<bool> base_matched(m, false);
  {
    size_t i = 0, j = 0;
    while (i < m && j < n) {
      if (base_keys[i] == target_keys[j]) {
        pair_of_target[j] = static_cast<int>(i);
        base_matched[i] = true;
        ++i;
        ++j;
      } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
        ++i;
      } else {
        ++j;
      }
    }
  }

  // Crossing pairs the LCS dropped: re-pair leftovers by key (becomes a
  // move), then element leftovers by tag (attribute churn on unkeyed
  // elements — the recursion emits the attr ops).
  std::map<std::string, std::vector<size_t>> spare_by_key;
  for (size_t i = 0; i < m; ++i) {
    if (!base_matched[i]) {
      spare_by_key[base_keys[i]].push_back(i);
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (pair_of_target[j] >= 0) {
      continue;
    }
    auto it = spare_by_key.find(target_keys[j]);
    if (it != spare_by_key.end() && !it->second.empty()) {
      size_t i = it->second.front();
      it->second.erase(it->second.begin());
      pair_of_target[j] = static_cast<int>(i);
      base_matched[i] = true;
    }
  }
  std::map<std::string, std::vector<size_t>> spare_by_tag;
  for (size_t i = 0; i < m; ++i) {
    if (!base_matched[i]) {
      if (const Element* el = base.child_at(i)->AsElement()) {
        spare_by_tag[el->tag_name()].push_back(i);
      }
    }
  }
  for (size_t j = 0; j < n; ++j) {
    if (pair_of_target[j] >= 0) {
      continue;
    }
    const Element* el = target.child_at(j)->AsElement();
    if (el == nullptr) {
      continue;
    }
    auto it = spare_by_tag.find(el->tag_name());
    if (it != spare_by_tag.end() && !it->second.empty()) {
      size_t i = it->second.front();
      it->second.erase(it->second.begin());
      pair_of_target[j] = static_cast<int>(i);
      base_matched[i] = true;
    }
  }

  // Phase 1: removals, highest index first so earlier indexes stay valid.
  for (size_t i = m; i-- > 0;) {
    if (base_matched[i]) {
      continue;
    }
    PatchOp op;
    op.type = PatchOpType::kRemove;
    op.path = *path;
    op.index = static_cast<uint32_t>(i);
    ops->push_back(std::move(op));
  }

  // Working order of the surviving base children after the removals.
  std::vector<int> work;
  work.reserve(n);
  for (size_t i = 0; i < m; ++i) {
    if (base_matched[i]) {
      work.push_back(static_cast<int>(i));
    }
  }

  // Phase 2: left-to-right, put the right node at each target position.
  // Positions < j are already final, so a paired node always sits at >= j
  // and every move is backward (from >= to).
  for (size_t j = 0; j < n; ++j) {
    int paired = pair_of_target[j];
    if (paired >= 0) {
      size_t p = j;
      while (p < work.size() && work[p] != paired) {
        ++p;
      }
      if (p != j) {
        PatchOp op;
        op.type = PatchOpType::kMove;
        op.path = *path;
        op.from = static_cast<uint32_t>(p);
        op.to = static_cast<uint32_t>(j);
        ops->push_back(std::move(op));
        work.erase(work.begin() + static_cast<long>(p));
        work.insert(work.begin() + static_cast<long>(j), paired);
      }
    } else {
      PatchOp op;
      op.type = PatchOpType::kInsert;
      op.path = *path;
      op.index = static_cast<uint32_t>(j);
      op.html = SerializeNode(*target.child_at(j));
      ops->push_back(std::move(op));
      work.insert(work.begin() + static_cast<long>(j), -1);
    }
  }

  // Phase 3: recurse into matched pairs at their final positions.
  for (size_t j = 0; j < n; ++j) {
    int paired = pair_of_target[j];
    if (paired < 0) {
      continue;
    }
    path->push_back(static_cast<uint32_t>(j));
    DiffNodePair(*base.child_at(static_cast<size_t>(paired)),
                 *target.child_at(j), path, ops);
    path->pop_back();
  }
}

void DiffNodePair(const Node& base, const Node& target,
                  std::vector<uint32_t>* path, std::vector<PatchOp>* ops) {
  const Element* base_el = base.AsElement();
  const Element* target_el = target.AsElement();
  if (base_el != nullptr && target_el != nullptr) {
    if (base_el->tag_name() != target_el->tag_name() ||
        !AttributeOrderCompatible(*base_el, *target_el)) {
      // Same data-rcb-id can land on a different element across generations;
      // attribute reordering cannot be expressed with set-attr ops. Both are
      // rare — replace the subtree wholesale.
      EmitReplace(target, *path, ops);
      return;
    }
    DiffAttributes(*base_el, *target_el, *path, ops);
    ReconcileChildren(*base_el, *target_el, path, ops);
    return;
  }
  if (base.type() == NodeType::kText && target.type() == NodeType::kText) {
    const auto& base_text = static_cast<const Text&>(base);
    const auto& target_text = static_cast<const Text&>(target);
    if (base_text.data() != target_text.data()) {
      PatchOp op;
      op.type = PatchOpType::kSetText;
      op.path = *path;
      op.value = target_text.data();
      ops->push_back(std::move(op));
    }
    return;
  }
  // Comment / doctype pairs: replace when their serialization differs.
  if (SerializeNode(base) != SerializeNode(target)) {
    EmitReplace(target, *path, ops);
  }
}

}  // namespace

bool IsSnippetBootstrapScript(const Node& node) {
  const Element* element = node.AsElement();
  return element != nullptr && element->tag_name() == "script" &&
         element->AttrOr("id") == "rcb-snippet";
}

void NormalizeTextNodes(Element* root) {
  size_t i = 0;
  while (i < root->child_count()) {
    Node* child = root->child_at(i);
    if (child->type() == NodeType::kText) {
      Text* text = static_cast<Text*>(child);
      while (i + 1 < root->child_count() &&
             root->child_at(i + 1)->type() == NodeType::kText) {
        text->set_data(text->data() +
                       static_cast<Text*>(root->child_at(i + 1))->data());
        root->RemoveChild(root->child_at(i + 1));
      }
      if (text->data().empty()) {
        root->RemoveChild(text);
        continue;  // the next child slid into index i
      }
    } else if (Element* element = child->AsElement()) {
      NormalizeTextNodes(element);
    }
    ++i;
  }
}

std::unique_ptr<Element> CanonicalizeDocument(const Document& document) {
  const Element* root = document.document_element();
  if (root == nullptr) {
    return nullptr;
  }
  auto canonical = MakeElement("html");
  auto head = MakeElement("head");
  if (const Element* live_head = root->ChildByTag("head")) {
    for (const auto& child : live_head->children()) {
      if (IsSnippetBootstrapScript(*child)) {
        continue;
      }
      head->AppendChild(child->Clone());
    }
  }
  canonical->AppendChild(std::move(head));
  for (const char* tag : {"body", "frameset", "noframes"}) {
    if (const Element* element = root->ChildByTag(tag)) {
      canonical->AppendChild(element->Clone());
    }
  }
  NormalizeTextNodes(canonical.get());
  return canonical;
}

std::string NodeKey(const Node& node) {
  switch (node.type()) {
    case NodeType::kText:
      return "t";
    case NodeType::kComment:
      return "c";
    case NodeType::kDoctype:
      return "d";
    case NodeType::kDocument:
      return "D";
    case NodeType::kElement:
      break;
  }
  const Element& element = *node.AsElement();
  if (auto id = element.GetAttribute("data-rcb-id"); id.has_value()) {
    return "i:" + *id;
  }
  std::string material = element.tag_name();
  for (const auto& [name, value] : element.attributes()) {
    material += '\x1f';
    material += name;
    material += '=';
    material += value;
  }
  return "e:" + element.tag_name() + ':' +
         Sha256::HexDigest(material).substr(0, 12);
}

std::string TreeDigest(const Element& canonical_root) {
  // One digest runs per document version per mode; the serialization is the
  // page-sized allocation on that path, so the buffer keeps its capacity
  // across calls instead of growing from empty every time.
  static thread_local std::string scratch;
  scratch.clear();
  SerializeNodeInto(canonical_root, &scratch);
  return Sha256::HexDigest(scratch);
}

std::vector<PatchOp> DiffTrees(const Element& base, const Element& target) {
  std::vector<PatchOp> ops;
  std::vector<uint32_t> path;
  DiffNodePair(base, target, &path, &ops);
  return ops;
}

std::string SummarizeOps(const std::vector<PatchOp>& ops) {
  static constexpr const char* kKindNames[] = {
      "ins", "rm", "mv", "repl", "attr", "rmattr", "text"};
  size_t counts[7] = {};
  for (const PatchOp& op : ops) {
    ++counts[static_cast<size_t>(op.type)];
  }
  std::string out;
  for (size_t i = 0; i < 7; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ',';
    }
    out += kKindNames[i];
    out += '=';
    out += std::to_string(counts[i]);
  }
  return out.empty() ? "none" : out;
}

}  // namespace rcb::delta
