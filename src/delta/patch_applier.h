// Participant-side patch application with integrity checking.
//
// A patch is only committed to the live document after the full §4.1.1-style
// freshness and integrity pipeline passes:
//   1. target newer than the participant's current content (else ignore),
//   2. base doc_time_ms equals the current content version (else resync —
//      a stale or out-of-order patch must never apply),
//   3. the canonicalized live tree hashes to the patch's baseDigest,
//   4. the ops apply cleanly to a scratch clone,
//   5. the patched clone hashes to the patch's docDigest,
// and only then is the result swapped into the live document (preserving the
// Ajax-Snippet bootstrap script). Any failure leaves the live document
// untouched; outcomes 2-5 make the snippet request a full-snapshot resync
// via the PR-1 recovery path.
#ifndef SRC_DELTA_PATCH_APPLIER_H_
#define SRC_DELTA_PATCH_APPLIER_H_

#include <cstdint>
#include <string_view>

#include "src/delta/patch_codec.h"
#include "src/html/dom.h"
#include "src/util/status.h"

namespace rcb::delta {

enum class ApplyResult {
  kApplied,               // committed to the live document
  kStaleIgnored,          // target not newer than current content: no-op
  kBaseTimeMismatch,      // base version != current content: resync
  kBaseDigestMismatch,    // live tree drifted from the base: resync
  kTargetDigestMismatch,  // post-apply digest check failed: resync
  kApplyError,            // op list failed structurally: resync
};

// True when the outcome requires a full-snapshot resync (§3.2.3).
bool NeedsResync(ApplyResult result);
std::string_view ApplyResultName(ApplyResult result);

// Applies `ops` to a canonical tree in place. Fails on out-of-range paths or
// indexes, type-mismatched targets, and payloads that do not parse to
// exactly one node; the tree may be partially mutated on failure, which is
// why ApplyPatchToDocument works on a scratch clone.
Status ApplyPatchOps(Element* root, const std::vector<PatchOp>& ops);

// The full pipeline described in the file comment. `current_doc_time_ms` is
// the version of the content the participant currently displays.
ApplyResult ApplyPatchToDocument(Document* document,
                                 int64_t current_doc_time_ms,
                                 const Patch& patch);

}  // namespace rcb::delta

#endif  // SRC_DELTA_PATCH_APPLIER_H_
