#include "src/util/base64.h"

namespace rcb {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int DecodeChar(char c) {
  if (c >= 'A' && c <= 'Z') {
    return c - 'A';
  }
  if (c >= 'a' && c <= 'z') {
    return c - 'a' + 26;
  }
  if (c >= '0' && c <= '9') {
    return c - '0' + 52;
  }
  if (c == '+') {
    return 62;
  }
  if (c == '/') {
    return 63;
  }
  return -1;
}

}  // namespace

std::string Base64Encode(std::string_view input) {
  std::string out;
  out.reserve((input.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= input.size()) {
    uint32_t n = (static_cast<unsigned char>(input[i]) << 16) |
                 (static_cast<unsigned char>(input[i + 1]) << 8) |
                 static_cast<unsigned char>(input[i + 2]);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
    i += 3;
  }
  size_t rem = input.size() - i;
  if (rem == 1) {
    uint32_t n = static_cast<unsigned char>(input[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    uint32_t n = (static_cast<unsigned char>(input[i]) << 16) |
                 (static_cast<unsigned char>(input[i + 1]) << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

StatusOr<std::string> Base64Decode(std::string_view input) {
  if (input.size() % 4 != 0) {
    return InvalidArgumentError("base64 length not a multiple of 4");
  }
  std::string out;
  out.reserve(input.size() / 4 * 3);
  for (size_t i = 0; i < input.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int k = 0; k < 4; ++k) {
      char c = input[i + k];
      if (c == '=') {
        // Padding only allowed in the last two positions of the final group.
        if (i + 4 != input.size() || k < 2) {
          return InvalidArgumentError("unexpected base64 padding");
        }
        vals[k] = 0;
        ++pad;
      } else {
        if (pad > 0) {
          return InvalidArgumentError("data after base64 padding");
        }
        vals[k] = DecodeChar(c);
        if (vals[k] < 0) {
          return InvalidArgumentError("invalid base64 character");
        }
      }
    }
    uint32_t n = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
    out.push_back(static_cast<char>((n >> 16) & 0xFF));
    if (pad < 2) {
      out.push_back(static_cast<char>((n >> 8) & 0xFF));
    }
    if (pad < 1) {
      out.push_back(static_cast<char>(n & 0xFF));
    }
  }
  return out;
}

std::string HexEncode(std::string_view input) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(input.size() * 2);
  for (char ch : input) {
    unsigned char c = static_cast<unsigned char>(ch);
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

StatusOr<std::string> HexDecode(std::string_view input) {
  if (input.size() % 2 != 0) {
    return InvalidArgumentError("odd-length hex string");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
      return c - 'A' + 10;
    }
    return -1;
  };
  std::string out;
  out.reserve(input.size() / 2);
  for (size_t i = 0; i < input.size(); i += 2) {
    int hi = nibble(input[i]);
    int lo = nibble(input[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("invalid hex character");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace rcb
