#include "src/util/rand.h"

#include <cassert>

namespace rcb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 as the xoshiro authors recommend.
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    return static_cast<int64_t>(NextU64());  // full 64-bit range
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::string Rng::NextBytes(size_t n) {
  std::string out;
  out.reserve(n);
  while (out.size() < n) {
    uint64_t r = NextU64();
    for (int k = 0; k < 8 && out.size() < n; ++k) {
      out.push_back(static_cast<char>(r & 0xFF));
      r >>= 8;
    }
  }
  return out;
}

uint64_t StableHash64(std::string_view data, uint64_t seed) {
  uint64_t hash = 0xcbf29ce484222325ULL ^ seed;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  // One final avalanche round (splitmix64 tail) so short keys that differ in
  // one trailing character still land far apart.
  hash ^= hash >> 30;
  hash *= 0xbf58476d1ce4e5b9ULL;
  hash ^= hash >> 27;
  hash *= 0x94d049bb133111ebULL;
  hash ^= hash >> 31;
  return hash;
}

std::string Rng::NextToken(size_t n) {
  static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kChars[NextBelow(sizeof(kChars) - 1)]);
  }
  return out;
}

}  // namespace rcb
