// Minimal leveled logging. Off by default in tests/benches; examples enable
// kInfo to narrate sessions.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rcb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define RCB_LOG(level)                                                 \
  if (::rcb::LogLevel::level < ::rcb::GetLogLevel()) {                 \
  } else                                                               \
    ::rcb::log_internal::LogMessage(::rcb::LogLevel::level, __FILE__,  \
                                    __LINE__)                          \
        .stream()

}  // namespace rcb

#endif  // SRC_UTIL_LOGGING_H_
