#include "src/util/token_bucket.h"

namespace rcb {

void TokenBucket::Refill(SimTime now) {
  if (now <= last_refill_) {
    return;
  }
  double elapsed_sec =
      static_cast<double>((now - last_refill_).micros()) / 1e6;
  tokens_ += elapsed_sec * rate_per_sec_;
  if (tokens_ > burst_) {
    tokens_ = burst_;
  }
  last_refill_ = now;
}

bool TokenBucket::TryTake(SimTime now, double cost) {
  if (!enabled()) {
    return true;
  }
  Refill(now);
  if (tokens_ + 1e-9 < cost) {
    return false;
  }
  tokens_ -= cost;
  return true;
}

Duration TokenBucket::TimeUntilAvailable(SimTime now, double cost) const {
  if (!enabled()) {
    return Duration::Zero();
  }
  TokenBucket copy = *this;
  copy.Refill(now);
  if (copy.tokens_ + 1e-9 >= cost) {
    return Duration::Zero();
  }
  double deficit = cost - copy.tokens_;
  return Duration::Micros(
      static_cast<int64_t>(deficit / rate_per_sec_ * 1e6) + 1);
}

double TokenBucket::tokens_at(SimTime now) const {
  TokenBucket copy = *this;
  copy.Refill(now);
  return copy.tokens_;
}

}  // namespace rcb
