#include "src/util/escape.h"

#include <cctype>
#include <cstdint>

#include "src/util/strings.h"

namespace rcb {
namespace {

constexpr char kHexDigits[] = "0123456789ABCDEF";

bool IsJsSafe(unsigned char c) {
  if (std::isalnum(c)) {
    return true;
  }
  switch (c) {
    case '@':
    case '*':
    case '_':
    case '+':
    case '-':
    case '.':
    case '/':
      return true;
    default:
      return false;
  }
}

bool IsUnreserved(unsigned char c) {
  return std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string JsEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  JsEscapeAppend(input, &out);
  return out;
}

void JsEscapeAppend(std::string_view input, std::string* out) {
  for (char ch : input) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (IsJsSafe(c)) {
      out->push_back(ch);
    } else {
      out->push_back('%');
      out->push_back(kHexDigits[c >> 4]);
      out->push_back(kHexDigits[c & 0xF]);
    }
  }
}

std::string JsUnescape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (size_t i = 0; i < input.size();) {
    if (input[i] == '%' && i + 5 < input.size() &&
        (input[i + 1] == 'u' || input[i + 1] == 'U')) {
      int h1 = HexValue(input[i + 2]);
      int h2 = HexValue(input[i + 3]);
      int h3 = HexValue(input[i + 4]);
      int h4 = HexValue(input[i + 5]);
      if (h1 >= 0 && h2 >= 0 && h3 >= 0 && h4 >= 0) {
        int cp = (h1 << 12) | (h2 << 8) | (h3 << 4) | h4;
        if (cp <= 0xFF) {
          out.push_back(static_cast<char>(cp));
        } else {
          // Encode as UTF-8 for code points above Latin-1; our DOM stores
          // bytes, so this is the round-trippable representation.
          out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        i += 6;
        continue;
      }
    }
    if (input[i] == '%' && i + 2 < input.size()) {
      int hi = HexValue(input[i + 1]);
      int lo = HexValue(input[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 3;
        continue;
      }
    }
    out.push_back(input[i]);
    ++i;
  }
  return out;
}

std::string PercentEncode(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char ch : input) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (IsUnreserved(c)) {
      out.push_back(ch);
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[c >> 4]);
      out.push_back(kHexDigits[c & 0xF]);
    }
  }
  return out;
}

std::string PercentDecode(std::string_view input, bool plus_as_space) {
  std::string out;
  out.reserve(input.size());
  for (size_t i = 0; i < input.size();) {
    if (input[i] == '%' && i + 2 < input.size()) {
      int hi = HexValue(input[i + 1]);
      int lo = HexValue(input[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 3;
        continue;
      }
    }
    if (plus_as_space && input[i] == '+') {
      out.push_back(' ');
    } else {
      out.push_back(input[i]);
    }
    ++i;
  }
  return out;
}

std::string HtmlEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  HtmlEscapeAppend(input, &out);
  return out;
}

void HtmlEscapeAppend(std::string_view input, std::string* out) {
  for (char c : input) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      case '\'':
        out->append("&#39;");
        break;
      default:
        out->push_back(c);
    }
  }
}

namespace {

// Common named character references of 2009-era HTML (HTML 4.01 subset).
// Code points map to Latin-1 bytes when <= 0xFF, UTF-8 otherwise, matching
// the numeric-reference behaviour below.
struct NamedEntity {
  std::string_view name;
  uint32_t code_point;
};
constexpr NamedEntity kNamedEntities[] = {
    {"nbsp", 0xA0},    {"iexcl", 0xA1},  {"cent", 0xA2},   {"pound", 0xA3},
    {"curren", 0xA4},  {"yen", 0xA5},    {"brvbar", 0xA6}, {"sect", 0xA7},
    {"uml", 0xA8},     {"copy", 0xA9},   {"ordf", 0xAA},   {"laquo", 0xAB},
    {"not", 0xAC},     {"shy", 0xAD},    {"reg", 0xAE},    {"macr", 0xAF},
    {"deg", 0xB0},     {"plusmn", 0xB1}, {"sup2", 0xB2},   {"sup3", 0xB3},
    {"acute", 0xB4},   {"micro", 0xB5},  {"para", 0xB6},   {"middot", 0xB7},
    {"cedil", 0xB8},   {"sup1", 0xB9},   {"ordm", 0xBA},   {"raquo", 0xBB},
    {"frac14", 0xBC},  {"frac12", 0xBD}, {"frac34", 0xBE}, {"iquest", 0xBF},
    {"Agrave", 0xC0},  {"Aacute", 0xC1}, {"Auml", 0xC4},   {"Aring", 0xC5},
    {"AElig", 0xC6},   {"Ccedil", 0xC7}, {"Egrave", 0xC8}, {"Eacute", 0xC9},
    {"Ntilde", 0xD1},  {"Ouml", 0xD6},   {"times", 0xD7},  {"Oslash", 0xD8},
    {"Uuml", 0xDC},    {"szlig", 0xDF},  {"agrave", 0xE0}, {"aacute", 0xE1},
    {"auml", 0xE4},    {"aring", 0xE5},  {"aelig", 0xE6},  {"ccedil", 0xE7},
    {"egrave", 0xE8},  {"eacute", 0xE9}, {"iuml", 0xEF},   {"ntilde", 0xF1},
    {"ouml", 0xF6},    {"divide", 0xF7}, {"oslash", 0xF8}, {"uuml", 0xFC},
    {"euro", 0x20AC},  {"ndash", 0x2013},{"mdash", 0x2014},{"lsquo", 0x2018},
    {"rsquo", 0x2019}, {"ldquo", 0x201C},{"rdquo", 0x201D},{"bull", 0x2022},
    {"hellip", 0x2026},{"dagger", 0x2020},{"permil", 0x2030},{"trade", 0x2122},
    {"larr", 0x2190},  {"uarr", 0x2191}, {"rarr", 0x2192}, {"darr", 0x2193},
};

// Emits a code point: a raw byte for the Latin-1 range (our DOM stores
// bytes), UTF-8 for anything above it.
void AppendCodePoint(uint32_t cp, std::string* out) {
  if (cp <= 0xFF) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

std::string HtmlUnescape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (size_t i = 0; i < input.size();) {
    if (input[i] != '&') {
      out.push_back(input[i]);
      ++i;
      continue;
    }
    size_t semi = input.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(input[i]);
      ++i;
      continue;
    }
    std::string_view entity = input.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (const NamedEntity* named = [&]() -> const NamedEntity* {
                 for (const NamedEntity& candidate : kNamedEntities) {
                   if (candidate.name == entity) {
                     return &candidate;
                   }
                 }
                 return nullptr;
               }()) {
      AppendCodePoint(named->code_point, &out);
    } else if (!entity.empty() && entity[0] == '#') {
      int cp = 0;
      bool valid = false;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        for (size_t k = 2; k < entity.size(); ++k) {
          int v = HexValue(entity[k]);
          if (v < 0) {
            cp = -1;
            break;
          }
          cp = cp * 16 + v;
        }
        valid = entity.size() > 2 && cp >= 0;
      } else {
        valid = entity.size() > 1;
        for (size_t k = 1; k < entity.size(); ++k) {
          if (entity[k] < '0' || entity[k] > '9') {
            valid = false;
            break;
          }
          cp = cp * 10 + (entity[k] - '0');
        }
      }
      if (valid && cp >= 0 && cp <= 0x10FFFF) {
        AppendCodePoint(static_cast<uint32_t>(cp), &out);
      } else {
        out.append(input.substr(i, semi - i + 1));
      }
    } else {
      out.append(input.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace rcb
