// Standard base64 (RFC 4648) encode/decode, used for session keys and for
// binary supplementary-object payloads carried through text channels.
#ifndef SRC_UTIL_BASE64_H_
#define SRC_UTIL_BASE64_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace rcb {

std::string Base64Encode(std::string_view input);

// Rejects inputs with invalid characters or bad padding.
StatusOr<std::string> Base64Decode(std::string_view input);

// Lowercase hex of arbitrary bytes.
std::string HexEncode(std::string_view input);
StatusOr<std::string> HexDecode(std::string_view input);

}  // namespace rcb

#endif  // SRC_UTIL_BASE64_H_
