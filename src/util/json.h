// Minimal JSON: a value model, a strict recursive-descent parser, and string
// escaping for writers.
//
// Exists for the BENCH_*.json perf artifacts (src/obs/bench_report.h): the
// bench binaries write them and scripts/ci.sh validates them with a plain
// C++ checker, so the schema gate runs anywhere the toolchain does — no
// external JSON dependency. Numbers are doubles (ints up to 2^53 round-trip
// exactly); object member order is preserved.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace rcb {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                                // kArray
  std::vector<std::pair<std::string, JsonValue>> members;      // kObject

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  // Object member lookup (first match); nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses exactly one JSON document (trailing non-whitespace is an error).
StatusOr<JsonValue> ParseJson(std::string_view text);

// Escapes `s` for inclusion inside a double-quoted JSON string literal.
std::string JsonEscape(std::string_view s);

}  // namespace rcb

#endif  // SRC_UTIL_JSON_H_
