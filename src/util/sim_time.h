// Simulated-time types for the discrete-event network simulator.
//
// The paper's timestamp mechanism (§4.1.1) uses milliseconds since the epoch;
// we keep microsecond resolution internally so bandwidth/latency arithmetic
// stays exact for small objects, and expose millisecond accessors where the
// protocol needs them.
#ifndef SRC_UTIL_SIM_TIME_H_
#define SRC_UTIL_SIM_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace rcb {

// A span of simulated time. Value type, totally ordered, saturating-free:
// arithmetic is plain int64 microseconds.
class Duration {
 public:
  constexpr Duration() : micros_(0) {}

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t micros() const { return micros_; }
  constexpr int64_t millis() const { return micros_ / 1000; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr Duration operator+(Duration other) const {
    return Duration(micros_ + other.micros_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(micros_ - other.micros_);
  }
  constexpr Duration operator*(int64_t k) const { return Duration(micros_ * k); }
  Duration& operator+=(Duration other) {
    micros_ += other.micros_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;  // e.g. "12.345ms"

 private:
  explicit constexpr Duration(int64_t us) : micros_(us) {}
  int64_t micros_;
};

// An absolute instant on the simulated clock (microseconds since sim start).
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}
  static constexpr SimTime FromMicros(int64_t us) { return SimTime(us); }

  constexpr int64_t micros() const { return micros_; }
  constexpr int64_t millis() const { return micros_ / 1000; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr SimTime operator+(Duration d) const {
    return SimTime(micros_ + d.micros());
  }
  constexpr Duration operator-(SimTime other) const {
    return Duration::Micros(micros_ - other.micros_);
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t us) : micros_(us) {}
  int64_t micros_;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace rcb

#endif  // SRC_UTIL_SIM_TIME_H_
