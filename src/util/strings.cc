#include "src/util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rcb {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> StrSplitSkipEmpty(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (auto& piece : StrSplit(input, sep)) {
    std::string_view trimmed = StripWhitespace(piece);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string AsciiToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

std::string StrReplaceAll(std::string_view input, std::string_view from,
                          std::string_view to) {
  if (from.empty()) {
    return std::string(input);
  }
  std::string out;
  out.reserve(input.size());
  size_t start = 0;
  while (true) {
    size_t pos = input.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(input.substr(start));
      break;
    }
    out.append(input.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

}  // namespace rcb
