// Deterministic token bucket driven by simulated time.
//
// Refill is computed lazily from the elapsed sim-time delta on each call, so
// the bucket never schedules events of its own and two runs of the same
// simulation observe bit-identical admit/deny decisions.
#ifndef SRC_UTIL_TOKEN_BUCKET_H_
#define SRC_UTIL_TOKEN_BUCKET_H_

#include "src/util/sim_time.h"

namespace rcb {

class TokenBucket {
 public:
  TokenBucket() = default;
  // A bucket with `rate_per_sec` <= 0 is disabled: TryTake always succeeds.
  TokenBucket(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec),
        burst_(burst),
        tokens_(burst) {}

  bool enabled() const { return rate_per_sec_ > 0.0; }

  // Takes `cost` tokens if available at `now`. Returns false (and takes
  // nothing) when the bucket is too empty.
  bool TryTake(SimTime now, double cost = 1.0);

  // Sim-time until `cost` tokens will be available (Zero if already
  // available). Used to populate Retry-After hints.
  Duration TimeUntilAvailable(SimTime now, double cost = 1.0) const;

  double tokens_at(SimTime now) const;

 private:
  void Refill(SimTime now);

  double rate_per_sec_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  SimTime last_refill_;
};

}  // namespace rcb

#endif  // SRC_UTIL_TOKEN_BUCKET_H_
