// Encoding helpers used by the RCB wire formats.
//
// JsEscape/JsUnescape mirror the semantics of the legacy JavaScript
// escape()/unescape() functions that the paper's Ajax-Snippet relies on to
// carry innerHTML payloads inside CDATA sections (Fig. 4). PercentEncode
// implements RFC 3986 component encoding for request-URIs; HtmlEscape covers
// attribute/text emission in the HTML serializer.
#ifndef SRC_UTIL_ESCAPE_H_
#define SRC_UTIL_ESCAPE_H_

#include <string>
#include <string_view>

namespace rcb {

// JavaScript escape(): alphanumerics and @*_+-./ pass through; other bytes
// become %XX; code points above 0xFF become %uXXXX. Our transport is byte
// oriented, so input is treated as Latin-1 bytes (matching how the original
// snippet saw single-byte document encodings).
//
// Both escapes are stateless per byte, so escaping a concatenation equals
// concatenating the escapes. The serialization cache (src/core) depends on
// that to splice cached pre-escaped spans byte-identically.
std::string JsEscape(std::string_view input);
void JsEscapeAppend(std::string_view input, std::string* out);

// Inverse of JsEscape. Malformed %-sequences are passed through verbatim,
// matching browser behaviour.
std::string JsUnescape(std::string_view input);

// RFC 3986 percent-encoding of a URI component (keeps unreserved chars).
std::string PercentEncode(std::string_view input);

// Percent-decoding; '+' optionally decodes to space (form-urlencoded mode).
std::string PercentDecode(std::string_view input, bool plus_as_space = false);

// Escapes &<>"' for HTML text/attribute contexts.
std::string HtmlEscape(std::string_view input);
void HtmlEscapeAppend(std::string_view input, std::string* out);

// Decodes the five named entities produced by HtmlEscape plus decimal/hex
// numeric character references for the Latin-1 range.
std::string HtmlUnescape(std::string_view input);

}  // namespace rcb

#endif  // SRC_UTIL_ESCAPE_H_
