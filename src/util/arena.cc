#include "src/util/arena.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define RCB_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RCB_ARENA_ASAN 1
#endif
#endif
#ifndef RCB_ARENA_ASAN
#define RCB_ARENA_ASAN 0
#endif

namespace rcb {

namespace {

constexpr size_t kAlign = 16;

size_t AlignUp(size_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }

struct Block {
  Block* next = nullptr;
  size_t capacity = 0;
  size_t used = 0;
  // Payload follows the header, already 16-byte aligned because the header
  // is padded to kAlign below.
};

constexpr size_t kBlockHeader = (sizeof(Block) + kAlign - 1) & ~(kAlign - 1);

Block* NewBlock(size_t payload_bytes) {
  void* raw = std::malloc(kBlockHeader + payload_bytes);
  if (!raw) throw std::bad_alloc();
  Block* b = new (raw) Block();
  b->capacity = payload_bytes;
  return b;
}

void FreeChain(Block* b) {
  while (b) {
    Block* next = b->next;
    std::free(b);
    b = next;
  }
}

thread_local Arena* g_current_arena = nullptr;

// Every ArenaAllocRaw/malloc allocation is prefixed with this header so
// ArenaFreeRaw can tell the two apart and find the owning control record.
struct AllocHeader {
  void* ctrl;  // Arena::Control* for arena allocations, nullptr for malloc
  size_t size;
};
static_assert(sizeof(AllocHeader) <= kAlign, "header must fit the alignment");

}  // namespace

// Shared owner of the arena's memory. The Arena holds one reference; each
// outstanding allocation holds one logical reference via `live`. Whichever
// of {Arena destructor, last deallocation} runs second frees the blocks —
// that is what makes an allocation outliving its Arena survivable.
struct Arena::Control {
  Block* blocks = nullptr;       // active chain; head is the bump target
  Block* quarantined = nullptr;  // chains parked by Reset() while live > 0
  size_t live = 0;
  bool arena_dead = false;
#if RCB_ARENA_ASAN
  // ASan mode: every allocation is its own malloc so dangling pointers into
  // a reset arena trip a real heap-use-after-free. `pending` are the blocks
  // a Reset couldn't free because they were still live at the time.
  std::vector<void*> mallocs;
  std::vector<void*> pending;
#endif

  void ReleaseIfUnreachable() {
    if (arena_dead && live == 0) {
      FreeChain(blocks);
      FreeChain(quarantined);
#if RCB_ARENA_ASAN
      for (void* p : mallocs) std::free(p);
      for (void* p : pending) std::free(p);
#endif
      delete this;
    }
  }
};

Arena::Arena(size_t block_bytes)
    : ctrl_(new Control()),
      block_bytes_(block_bytes < 1024 ? 1024 : block_bytes) {}

Arena::~Arena() {
  ctrl_->arena_dead = true;
  ctrl_->ReleaseIfUnreachable();
}

void* Arena::Alloc(size_t n) {
  ++allocations_;
  allocated_bytes_ += n;
  n = AlignUp(n);
#if RCB_ARENA_ASAN
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  ctrl_->mallocs.push_back(p);
  ++ctrl_->live;
  return p;
#else
  Block* head = ctrl_->blocks;
  if (!head || head->capacity - head->used < n) {
    size_t payload = n > block_bytes_ ? n : block_bytes_;
    Block* b = NewBlock(payload);
    b->next = ctrl_->blocks;
    ctrl_->blocks = b;
    head = b;
  }
  char* base = reinterpret_cast<char*>(head) + kBlockHeader;
  void* p = base + head->used;
  head->used += n;
  ++ctrl_->live;
  return p;
#endif
}

void Arena::Reset() {
  ++resets_;
  if (ctrl_->live > 0) {
    // Escapees exist: park the current blocks where they stay valid until
    // the last holder deletes, and start fresh. Never reuse under them.
    ++quarantines_;
#if RCB_ARENA_ASAN
    quarantined_bytes_ += ctrl_->mallocs.size() * kAlign;
    ctrl_->pending.insert(ctrl_->pending.end(), ctrl_->mallocs.begin(),
                          ctrl_->mallocs.end());
    ctrl_->mallocs.clear();
#else
    for (Block* b = ctrl_->blocks; b; b = b->next) {
      quarantined_bytes_ += b->capacity;
    }
    Block* chain = ctrl_->blocks;
    while (chain && chain->next) chain = chain->next;
    if (chain) {
      chain->next = ctrl_->quarantined;
      ctrl_->quarantined = ctrl_->blocks;
    }
    ctrl_->blocks = nullptr;
#endif
    return;
  }
#if RCB_ARENA_ASAN
  for (void* p : ctrl_->mallocs) std::free(p);
  ctrl_->mallocs.clear();
  for (void* p : ctrl_->pending) std::free(p);
  ctrl_->pending.clear();
#else
  // Keep the largest block for reuse, free the rest: steady state is one
  // block sized to the page, without hoarding after a transient spike.
  Block* keep = nullptr;
  Block* b = ctrl_->blocks;
  while (b) {
    Block* next = b->next;
    if (!keep || b->capacity > keep->capacity) {
      if (keep) std::free(keep);
      keep = b;
    } else {
      std::free(b);
    }
    b = next;
  }
  if (keep) {
    keep->next = nullptr;
    keep->used = 0;
  }
  ctrl_->blocks = keep;
  FreeChain(ctrl_->quarantined);
  ctrl_->quarantined = nullptr;
#endif
}

Arena::Stats Arena::stats() const {
  Stats s;
  s.allocations = allocations_;
  s.allocated_bytes = allocated_bytes_;
  s.resets = resets_;
  s.quarantines = quarantines_;
  s.quarantined_bytes = quarantined_bytes_;
  s.live = ctrl_->live;
#if RCB_ARENA_ASAN
  s.blocks = ctrl_->mallocs.size();
  s.block_bytes = 0;
#else
  for (Block* b = ctrl_->blocks; b; b = b->next) {
    ++s.blocks;
    s.block_bytes += b->capacity;
  }
#endif
  return s;
}

ArenaScope::ArenaScope(Arena* arena) : previous_(g_current_arena) {
  g_current_arena = arena;
}

ArenaScope::~ArenaScope() { g_current_arena = previous_; }

Arena* ArenaScope::Current() { return g_current_arena; }

void* ArenaAllocRaw(size_t n) {
  Arena* arena = g_current_arena;
  if (arena) {
    char* p = static_cast<char*>(arena->Alloc(n + kAlign));
    AllocHeader* h = reinterpret_cast<AllocHeader*>(p);
    h->ctrl = arena->ctrl_;
    h->size = n;
    return p + kAlign;
  }
  char* p = static_cast<char*>(std::malloc(n + kAlign));
  if (!p) throw std::bad_alloc();
  AllocHeader* h = reinterpret_cast<AllocHeader*>(p);
  h->ctrl = nullptr;
  h->size = n;
  return p + kAlign;
}

void ArenaFreeRaw(void* p) {
  if (!p) return;
  char* base = static_cast<char*>(p) - kAlign;
  AllocHeader* h = reinterpret_cast<AllocHeader*>(base);
  if (!h->ctrl) {
    std::free(base);
    return;
  }
  auto* ctrl = static_cast<Arena::Control*>(h->ctrl);
  --ctrl->live;
  ctrl->ReleaseIfUnreachable();
}

}  // namespace rcb
