#include "src/util/sim_time.h"

#include "src/util/strings.h"

namespace rcb {

std::string Duration::ToString() const {
  if (micros_ % 1000000 == 0) {
    return StrFormat("%llds", static_cast<long long>(micros_ / 1000000));
  }
  if (micros_ % 1000 == 0) {
    return StrFormat("%lldms", static_cast<long long>(micros_ / 1000));
  }
  return StrFormat("%.3fms", static_cast<double>(micros_) / 1000.0);
}

std::string SimTime::ToString() const {
  return StrFormat("t=%.6fs", seconds());
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToString();
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.ToString();
}

}  // namespace rcb
