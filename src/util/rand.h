// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed:
// corpus generation, session keys, jittered latencies. Seeded explicitly so
// every simulation run and test is reproducible.
#ifndef SRC_UTIL_RAND_H_
#define SRC_UTIL_RAND_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rcb {

// Stable 64-bit FNV-1a hash of `data`, folded with `seed`. Deterministic
// across runs and platforms — used wherever a value must be *spread* but
// reproducible (Retry-After jitter keyed by participant id, restart-storm
// admission slots keyed by session id).
uint64_t StableHash64(std::string_view data, uint64_t seed = 0);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over [0, 2^64).
  uint64_t NextU64();

  // Uniform over [0, bound); bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform over [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // `n` random bytes.
  std::string NextBytes(size_t n);

  // Lowercase alphanumeric token of length `n` (session keys, cache keys).
  std::string NextToken(size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace rcb

#endif  // SRC_UTIL_RAND_H_
