// Lightweight Status / StatusOr error-handling primitives.
//
// The RCB stack never throws across module boundaries: fallible operations
// return Status (or StatusOr<T> when they produce a value). This mirrors the
// error discipline of the os-systems codebases this project follows.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace rcb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // HMAC failures, policy denials
  kUnauthenticated,    // missing/garbled credentials
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,        // peer not reachable / connection refused
  kDeadlineExceeded,
  kAborted,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

// Human-readable name of a status code ("kOk" -> "OK", etc.).
std::string_view StatusCodeName(StatusCode code);

// A Status is a cheap (code, message) value. The OK status carries no message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, one per non-OK code.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status UnauthenticatedError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status AbortedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

// StatusOr<T> holds either a T or a non-OK Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}          // NOLINT(google-explicit-constructor)
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define RCB_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::rcb::Status rcb_status__ = (expr);   \
    if (!rcb_status__.ok()) {              \
      return rcb_status__;                 \
    }                                      \
  } while (0)

// Assigns the value of a StatusOr expression or propagates its error.
#define RCB_ASSIGN_OR_RETURN(lhs, expr)      \
  RCB_ASSIGN_OR_RETURN_IMPL_(                \
      RCB_STATUS_CONCAT_(or__, __LINE__), lhs, expr)

#define RCB_STATUS_CONCAT_INNER_(a, b) a##b
#define RCB_STATUS_CONCAT_(a, b) RCB_STATUS_CONCAT_INNER_(a, b)
#define RCB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

}  // namespace rcb

#endif  // SRC_UTIL_STATUS_H_
