// Bump allocator for transient DOM trees (docs/PERF_MODEL.md).
//
// The Fig. 3 pipeline clones the documentElement, rewrites the clone, and
// throws it away — thousands of short-lived Node allocations per update.
// An Arena turns that churn into pointer bumps: allocation advances a cursor
// inside a block, deallocation is a counted no-op, and Reset() rewinds the
// cursor so the next pipeline run reuses the same blocks.
//
// Lifetime rules (the part that must never be folklore):
//   * An allocation may not outlive the Reset() that follows it. Escape is a
//     bug, but a *survivable and observable* one: Reset() with live
//     allocations quarantines every current block (memory stays valid, the
//     escapee keeps working) and counts a quarantine in stats(). It never
//     frees memory out from under a live object.
//   * The Arena object itself may die before a quarantined escapee: block
//     ownership lives in a control record that the last outstanding
//     deallocation releases, so there is no use-after-free on either path.
//   * Under AddressSanitizer every allocation is an individual malloc freed
//     at Reset() (when nothing is live), so a dangling pointer into a reset
//     arena is a hard ASan report instead of silent reuse — this is what the
//     RCB_SANITIZE CI pass leans on (see serialize_cache_test).
//
// Allocation is routed class-side: rcb::Node overrides operator new/delete to
// call ArenaAllocRaw/ArenaFreeRaw, which use the ArenaScope-installed
// thread-local arena when one is active and plain malloc otherwise. Every
// allocation carries a 16-byte header naming its owner, so delete works
// identically for arena and heap nodes.
#ifndef SRC_UTIL_ARENA_H_
#define SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace rcb {

class Arena {
 public:
  struct Stats {
    uint64_t allocations = 0;      // cumulative Alloc calls
    uint64_t allocated_bytes = 0;  // cumulative requested bytes (pre-header)
    uint64_t resets = 0;           // Reset() calls
    uint64_t quarantines = 0;      // Reset()s that found live allocations
    uint64_t quarantined_bytes = 0;  // block bytes parked by those resets
    size_t blocks = 0;             // current reusable blocks
    size_t block_bytes = 0;        // their total capacity
    size_t live = 0;               // allocations not yet deleted
  };

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // 16-byte aligned storage; the caller's header convention is its own
  // business (ArenaAllocRaw prepends one naming this arena's control record).
  void* Alloc(size_t n);

  // Rewinds the cursor for reuse; quarantines the blocks instead when
  // allocations are still live (see file comment).
  void Reset();

  Stats stats() const;
  size_t block_bytes() const { return block_bytes_; }

  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

 private:
  friend void* ArenaAllocRaw(size_t n);
  friend void ArenaFreeRaw(void* p);
  struct Control;  // shared block owner; outlives the Arena while live > 0
  Control* ctrl_;
  size_t block_bytes_;
  uint64_t allocations_ = 0;
  uint64_t allocated_bytes_ = 0;
  uint64_t resets_ = 0;
  uint64_t quarantines_ = 0;
  uint64_t quarantined_bytes_ = 0;
};

// Installs `arena` as the thread's active arena for Node allocation; restores
// the previous one (usually none) on destruction. Scopes nest.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  static Arena* Current();

 private:
  Arena* previous_;
};

// Headered allocation: from the active ArenaScope arena when one is
// installed, malloc otherwise. ArenaFreeRaw dispatches on the header, so the
// pair is safe for objects that outlive the scope (they just should not
// outlive the arena's Reset — see the quarantine rules above).
void* ArenaAllocRaw(size_t n);
void ArenaFreeRaw(void* p);

}  // namespace rcb

#endif  // SRC_UTIL_ARENA_H_
