#include "src/util/json.h"

#include <cctype>
#include <cstdlib>

#include "src/util/strings.h"

namespace rcb {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

// Strict recursive-descent parser over a string_view with a depth cap.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    SkipWhitespace();
    RCB_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(std::string_view message) const {
    return InvalidArgumentError(StrFormat("json: %.*s at offset %zu",
                                          static_cast<int>(message.size()),
                                          message.data(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(depth);
    }
    if (c == '[') {
      return ParseArray(depth);
    }
    if (c == '"') {
      JsonValue value;
      value.type = JsonValue::Type::kString;
      RCB_ASSIGN_OR_RETURN(value.string_value, ParseString());
      return value;
    }
    if (c == 't' || c == 'f') {
      JsonValue value;
      value.type = JsonValue::Type::kBool;
      if (ConsumeLiteral("true")) {
        value.bool_value = true;
        return value;
      }
      if (ConsumeLiteral("false")) {
        value.bool_value = false;
        return value;
      }
      return Error("bad literal");
    }
    if (c == 'n') {
      if (ConsumeLiteral("null")) {
        return JsonValue{};
      }
      return Error("bad literal");
    }
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      RCB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      RCB_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      value.members.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) {
      return value;
    }
    while (true) {
      RCB_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      value.items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return Error("unterminated escape");
      }
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("short \\u escape");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — fine for this tool's inputs,
          // which are ASCII metric names and config strings).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("bad number");
    }
    bool leading_zero = text_[pos_] == '0';
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (leading_zero && pos_ - start > (text_[start] == '-' ? 2u : 1u)) {
      return Error("leading zero in number");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number_value =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace rcb
