// String helpers shared across the RCB stack.
#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rcb {

// Splits `input` on `sep`. Adjacent separators yield empty pieces; an empty
// input yields a single empty piece (matching the common absl::StrSplit shape).
std::vector<std::string> StrSplit(std::string_view input, char sep);

// Splits on `sep` and drops empty pieces after trimming whitespace.
std::vector<std::string> StrSplitSkipEmpty(std::string_view input, char sep);

// Joins `parts` with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view input);

// ASCII case mapping (locale-independent).
std::string AsciiToLower(std::string_view input);
std::string AsciiToUpper(std::string_view input);

// Case-insensitive ASCII comparison (header names, tag names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string StrReplaceAll(std::string_view input, std::string_view from,
                          std::string_view to);

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow. Used by the HTTP parser (Content-Length) where leniency is a bug.
bool ParseUint64(std::string_view s, uint64_t* out);

// Formats with printf semantics into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// True if every char is an ASCII digit (and s is non-empty).
bool IsDigits(std::string_view s);

}  // namespace rcb

#endif  // SRC_UTIL_STRINGS_H_
