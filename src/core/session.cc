#include "src/core/session.h"

#include "src/crypto/session_key.h"
#include "src/util/strings.h"

namespace rcb {

CoBrowsingSession::CoBrowsingSession(EventLoop* loop, Network* network,
                                     SessionOptions options)
    : loop_(loop), network_(network), options_(std::move(options)) {
  network_->AddHost(options_.host_machine, options_.profile.host_interface);
  host_browser_ = std::make_unique<Browser>(loop_, network_, options_.host_machine);

  for (size_t i = 0; i < options_.participant_count; ++i) {
    auto participant = std::make_unique<Participant>();
    participant->machine =
        StrFormat("%s-%zu", options_.participant_machine_prefix.c_str(), i + 1);
    network_->AddHost(participant->machine, options_.profile.participant_interface);
    network_->SetLatency(options_.host_machine, participant->machine,
                         options_.profile.host_participant_latency);
    participant->browser =
        std::make_unique<Browser>(loop_, network_, participant->machine);
    participants_.push_back(std::move(participant));
  }

  if (options_.enable_auth) {
    SessionKeyGenerator generator(0xCB0B5 + options_.participant_count);
    session_key_ = generator.Generate();
  }

  AgentConfig agent_config;
  agent_config.port = options_.agent_port;
  agent_config.cache_mode = options_.cache_mode;
  agent_config.session_key = session_key_;
  agent_config.poll_interval = options_.poll_interval;
  agent_config.sync_model = options_.sync_model;
  agent_config.limits = options_.agent_limits;
  agent_config.enable_delta = options_.enable_delta;
  agent_config.transport.enable_stream = options_.enable_transport;
  agent_config.transport.heartbeat_interval = options_.transport_heartbeat;
  agent_config.transport.long_poll_hold = options_.transport_hold;
  agent_config.transport.max_held = options_.max_held_streams;
  agent_config.enable_trace = options_.enable_trace;
  agent_config.flight_dir = options_.flight_dir;
  agent_ = std::make_unique<RcbAgent>(host_browser_.get(), agent_config);

  uint64_t participant_index = 0;
  for (auto& participant : participants_) {
    SnippetConfig snippet_config;
    snippet_config.session_key = session_key_;
    snippet_config.poll_interval_override = options_.poll_interval;
    snippet_config.poll_timeout = options_.poll_timeout;
    snippet_config.reconnect_after = options_.reconnect_after;
    snippet_config.backoff_base = options_.backoff_base;
    snippet_config.backoff_max = options_.backoff_max;
    snippet_config.backoff_jitter = options_.backoff_jitter;
    snippet_config.backoff_seed = options_.backoff_seed + participant_index++;
    snippet_config.stream_reconnect = options_.stream_reconnect;
    snippet_config.enable_delta = options_.enable_delta;
    snippet_config.stream_mode = options_.snippet_stream_mode;
    snippet_config.heartbeat_timeout = options_.heartbeat_timeout;
    snippet_config.stream_downgrade_after = options_.stream_downgrade_after;
    snippet_config.adaptive_poll = options_.adaptive_poll;
    snippet_config.adaptive_max = options_.adaptive_max;
    snippet_config.adaptive_growth = options_.adaptive_growth;
    snippet_config.adaptive_idle_threshold = options_.adaptive_idle_threshold;
    snippet_config.enable_trace = options_.enable_trace;
    snippet_config.flight_dir = options_.flight_dir;
    participant->snippet = std::make_unique<AjaxSnippet>(
        participant->browser.get(), snippet_config);
  }
}

CoBrowsingSession::~CoBrowsingSession() {
  for (auto& participant : participants_) {
    participant->snippet->Leave();
  }
  if (agent_ != nullptr) {
    agent_->Stop();
  }
}

Status CoBrowsingSession::Start() {
  RCB_RETURN_IF_ERROR(agent_->Start());
  size_t joined = 0;
  Status join_error;
  for (auto& participant : participants_) {
    participant->snippet->Join(agent_->AgentUrl(),
                               [&joined, &join_error](Status status) {
                                 if (!status.ok()) {
                                   join_error = status;
                                 }
                                 ++joined;
                               });
  }
  bool all_joined = loop_->RunUntilCondition(
      [&] { return joined == participants_.size(); });
  if (!all_joined) {
    return DeadlineExceededError("event loop drained before all joins completed");
  }
  if (join_error.ok() && options_.sync_model == SyncModel::kPush) {
    // Joins complete when the initial page is loaded; the push streams are
    // still being established. Wait until the agent holds all of them.
    bool streams_ready = loop_->RunUntilCondition(
        [&] { return agent_->stream_count() == participants_.size(); });
    if (!streams_ready) {
      return DeadlineExceededError("push streams failed to establish");
    }
  }
  return join_error;
}

StatusOr<CoBrowsingSession::CoNavStats> CoBrowsingSession::CoNavigate(
    const Url& url, Duration timeout) {
  CoNavStats stats;
  stats.participant_content_time.resize(participants_.size());
  stats.participant_objects_time.resize(participants_.size());
  stats.participant_objects_from_host.resize(participants_.size());

  SimTime start = loop_->now();
  SimTime deadline = start + timeout;

  bool host_loaded = false;
  Status host_status;
  std::vector<bool> participant_done(participants_.size(), false);
  SimTime last_done = start;

  for (size_t i = 0; i < participants_.size(); ++i) {
    AjaxSnippet* snippet = participants_[i]->snippet.get();
    snippet->SetObjectsLoadedListener(
        [this, i, &stats, &participant_done, &last_done,
         snippet](Duration object_time) {
          stats.participant_content_time[i] =
              snippet->metrics().last_content_download;
          stats.participant_objects_time[i] = object_time;
          stats.participant_objects_from_host[i] =
              snippet->metrics().last_objects_from_host;
          participant_done[i] = true;
          last_done = loop_->now();
        });
  }

  host_browser_->Navigate(url, [&](const Status& status,
                                   const PageLoadStats& load_stats) {
    host_status = status;
    host_loaded = true;
    stats.host_html_time = load_stats.html_time;
    stats.host_objects_time = load_stats.objects_time;
  });

  auto all_done = [&] {
    if (!host_loaded) {
      return false;
    }
    if (!host_status.ok()) {
      return true;  // abort the wait on navigation failure
    }
    for (bool done : participant_done) {
      if (!done) {
        return false;
      }
    }
    return true;
  };
  while (!all_done() && loop_->now() < deadline && loop_->pending_events() > 0) {
    loop_->RunFor(Duration::Millis(50));
  }
  for (auto& participant : participants_) {
    participant->snippet->SetObjectsLoadedListener(nullptr);
  }
  if (!host_loaded) {
    return DeadlineExceededError("host navigation did not complete");
  }
  if (!host_status.ok()) {
    return host_status;
  }
  if (!all_done()) {
    return DeadlineExceededError("participants did not synchronize in time");
  }
  stats.total_sync_time = last_done - start;
  return stats;
}

Status CoBrowsingSession::WaitForSync(Duration timeout) {
  SimTime deadline = loop_->now() + timeout;
  // Run until every snippet's doc time reaches the agent's current snapshot
  // version.
  while (loop_->now() < deadline) {
    int64_t agent_time = agent_->CurrentSnapshotForTest().doc_time_ms;
    bool all = true;
    for (auto& participant : participants_) {
      if (participant->snippet->doc_time_ms() < agent_time) {
        all = false;
        break;
      }
    }
    if (all) {
      return Status::Ok();
    }
    if (loop_->pending_events() == 0) {
      return DeadlineExceededError("event loop drained before sync");
    }
    loop_->RunFor(Duration::Millis(50));
  }
  return DeadlineExceededError("participants did not reach the host version");
}

}  // namespace rcb
