#include "src/core/actions.h"

#include <cstdlib>

#include "src/http/form.h"
#include "src/util/strings.h"

namespace rcb {

std::string_view ActionTypeName(ActionType type) {
  switch (type) {
    case ActionType::kClick:
      return "click";
    case ActionType::kFormFill:
      return "fill";
    case ActionType::kFormSubmit:
      return "submit";
    case ActionType::kMouseMove:
      return "mouse";
    case ActionType::kNavigate:
      return "navigate";
    case ActionType::kPresence:
      return "presence";
  }
  return "click";
}

StatusOr<ActionType> ParseActionType(std::string_view name) {
  if (name == "click") {
    return ActionType::kClick;
  }
  if (name == "fill") {
    return ActionType::kFormFill;
  }
  if (name == "submit") {
    return ActionType::kFormSubmit;
  }
  if (name == "mouse") {
    return ActionType::kMouseMove;
  }
  if (name == "navigate") {
    return ActionType::kNavigate;
  }
  if (name == "presence") {
    return ActionType::kPresence;
  }
  return InvalidArgumentError("unknown action type: " + std::string(name));
}

std::string EncodeActions(const std::vector<UserAction>& actions) {
  std::vector<std::string> lines;
  lines.reserve(actions.size());
  for (const UserAction& action : actions) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("type", std::string(ActionTypeName(action.type)));
    if (action.target >= 0) {
      fields.emplace_back("target", StrFormat("%d", action.target));
    }
    if (action.type == ActionType::kMouseMove) {
      fields.emplace_back("x", StrFormat("%d", action.x));
      fields.emplace_back("y", StrFormat("%d", action.y));
    }
    if (!action.data.empty()) {
      fields.emplace_back("data", action.data);
    }
    if (!action.origin.empty()) {
      fields.emplace_back("origin", action.origin);
    }
    for (const auto& [name, value] : action.fields) {
      fields.emplace_back("f." + name, value);
    }
    lines.push_back(EncodeFormUrlEncoded(fields));
  }
  return StrJoin(lines, "\n");
}

StatusOr<std::vector<UserAction>> DecodeActions(std::string_view encoded) {
  std::vector<UserAction> actions;
  if (StripWhitespace(encoded).empty()) {
    return actions;
  }
  for (const auto& line : StrSplit(encoded, '\n')) {
    if (line.empty()) {
      continue;
    }
    UserAction action;
    bool have_type = false;
    for (const auto& [name, value] : ParseFormUrlEncodedOrdered(line)) {
      if (name == "type") {
        RCB_ASSIGN_OR_RETURN(action.type, ParseActionType(value));
        have_type = true;
      } else if (name == "target") {
        uint64_t target = 0;
        if (!ParseUint64(value, &target)) {
          return InvalidArgumentError("bad action target: " + value);
        }
        action.target = static_cast<int>(target);
      } else if (name == "x") {
        action.x = std::atoi(value.c_str());
      } else if (name == "y") {
        action.y = std::atoi(value.c_str());
      } else if (name == "data") {
        action.data = value;
      } else if (name == "origin") {
        action.origin = value;
      } else if (StartsWith(name, "f.")) {
        action.fields.emplace_back(name.substr(2), value);
      }
    }
    if (!have_type) {
      return InvalidArgumentError("action line missing type: " + line);
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

}  // namespace rcb
