#include "src/core/broadcast.h"

#include <chrono>
#include <utility>

#include "src/delta/tree_diff.h"
#include "src/util/strings.h"

namespace rcb {

SnapshotBroadcast::Slot& SnapshotBroadcast::Refresh(
    bool cache_mode, bool count_reuse, int64_t doc_time_ms,
    const Url& agent_url, const obs::TraceContext& trace_ctx) {
  if (dirty_) {
    slots_[0].valid = false;
    slots_[1].valid = false;
    dirty_ = false;
  }
  Slot& slot = slots_[cache_mode ? 1 : 0];
  if (slot.valid) {
    if (count_reuse) {
      ++counters_.snapshot_reuses;
    }
    return slot;
  }
  ContentGenOptions options;
  options.cache_mode = cache_mode;
  options.agent_url = agent_url;
  options.cache_object_filter = options_.cache_object_filter;
  int64_t sim_now_us = loop_->now().micros();
  // When the generation happens inside a traced poll, the five Fig. 3 stage
  // events (plus serialize) parent to one "agent.generate" span whose id is
  // reserved up front so children can reference it before it is appended.
  obs::TraceLog* trace = instruments_.trace;
  const bool traced_gen = trace != nullptr && trace_ctx.active();
  const uint64_t gen_span_id = traced_gen ? trace->ReserveSpanId() : 0;
  const obs::TraceContext stage_ctx{trace_ctx.trace_id, gen_span_id};
  GenerationResult result = generator_->Generate(doc_time_ms, options);
  slot.snapshot = std::move(result.snapshot);
  slot.escaped = std::move(result.escaped);
  SnapshotSerializeStats serialize_stats;
  {
    obs::WallSpan span(trace, "agent.generate.serialize", sim_now_us,
                       instruments_.stage_hist[5],
                       traced_gen ? &stage_ctx : nullptr);
    slot.xml = SerializeSnapshotXml(
        slot.snapshot, &serialize_stats,
        slot.escaped.has_content ? &slot.escaped : nullptr, nullptr);
  }
  slot.valid = true;
  if (options_.enable_delta) {
    // Retire the previous materialized tree into the base history and
    // materialize the new version the same way a participant's live document
    // will look after applying it (so digests agree by construction).
    BaseVersion previous = std::move(slot.current);
    slot.current.doc_time_ms = doc_time_ms;
    slot.current.tree = MaterializeSnapshotTree(slot.snapshot);
    slot.current.digest = delta::TreeDigest(*slot.current.tree);
    slot.patch_cache.clear();
    if (previous.tree != nullptr &&
        previous.doc_time_ms != slot.current.doc_time_ms) {
      slot.history.push_back(std::move(previous));
      while (slot.history.size() > options_.delta_history) {
        slot.history.pop_front();
      }
    }
  }
  ++counters_.generations;
  counters_.last_generation_time = result.wall_time;
  counters_.total_generation_time += result.wall_time;
  counters_.last_snapshot_bytes = slot.xml.size();
  counters_.snapshot_bytes_raw += serialize_stats.payload_raw_bytes;
  counters_.snapshot_bytes_escaped += serialize_stats.payload_escaped_bytes;
  // Feed the generator's per-stage breakdown into the stage histograms and
  // the trace ring (the generator itself stays observability-free).
  const std::pair<const char*, Duration> stages[5] = {
      {"agent.generate.clone", result.stage_clone},
      {"agent.generate.absolutize", result.stage_absolutize},
      {"agent.generate.cache_rewrite", result.stage_cache_rewrite},
      {"agent.generate.event_rewrite", result.stage_event_rewrite},
      {"agent.generate.extract", result.stage_extract}};
  for (size_t i = 0; i < 5; ++i) {
    if (instruments_.stage_hist[i] != nullptr) {
      instruments_.stage_hist[i]->Record(stages[i].second.micros());
    }
    if (trace == nullptr) {
      continue;
    }
    if (traced_gen) {
      trace->Append(stages[i].first, obs::Provenance::kWall, sim_now_us,
                    stages[i].second.micros(), stage_ctx);
    } else {
      trace->Append(stages[i].first, obs::Provenance::kWall, sim_now_us,
                    stages[i].second.micros());
    }
  }
  if (traced_gen) {
    trace->Append(
        "agent.generate", obs::Provenance::kWall, sim_now_us,
        result.wall_time.micros(), trace_ctx,
        {{"ts", StrFormat("%lld", static_cast<long long>(doc_time_ms))},
         {"cache_mode", cache_mode ? "1" : "0"},
         {"bytes", StrFormat("%zu", slot.xml.size())}},
        gen_span_id);
  }
  if (instruments_.generation_us != nullptr) {
    instruments_.generation_us->Record(result.wall_time.micros());
  }
  if (instruments_.snapshot_bytes != nullptr) {
    instruments_.snapshot_bytes->Record(static_cast<int64_t>(slot.xml.size()));
  }
  return slot;
}

std::optional<std::string> SnapshotBroadcast::MaybeBuildPatchResponse(
    Slot& slot, int64_t base_time, std::vector<UserAction>* outbox,
    const obs::TraceContext& trace_ctx) {
  if (slot.current.tree == nullptr || base_time >= slot.current.doc_time_ms) {
    return std::nullopt;  // nothing newer than what the participant acks
  }
  auto cached_it = slot.patch_cache.find(base_time);
  if (cached_it == slot.patch_cache.end()) {
    CachedPatch cached;
    const BaseVersion* base = nullptr;
    for (const BaseVersion& version : slot.history) {
      if (version.doc_time_ms == base_time) {
        base = &version;
        break;
      }
    }
    if (base == nullptr) {
      // The acked version aged out of the history (or predates delta being
      // enabled): only a full snapshot can resynchronize the participant.
      ++counters_.patch_fallback_no_base;
      cached.fallback = true;
    } else {
      cached.envelope.patch.version = delta::kPatchFormatVersion;
      cached.envelope.patch.base_doc_time_ms = base->doc_time_ms;
      cached.envelope.patch.target_doc_time_ms = slot.current.doc_time_ms;
      cached.envelope.patch.base_digest = base->digest;
      cached.envelope.patch.target_digest = slot.current.digest;
      auto diff_start = std::chrono::steady_clock::now();
      cached.envelope.patch.ops =
          delta::DiffTrees(*base->tree, *slot.current.tree);
      cached.xml = delta::SerializePatchXml(cached.envelope);
      if (instruments_.trace != nullptr && trace_ctx.active()) {
        auto diff_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - diff_start)
                           .count();
        instruments_.trace->Append(
            "agent.delta.diff", obs::Provenance::kWall, loop_->now().micros(),
            diff_us, trace_ctx,
            {{"base_ts", StrFormat("%lld", static_cast<long long>(base_time))},
             {"target_ts",
              StrFormat("%lld",
                        static_cast<long long>(slot.current.doc_time_ms))},
             {"ops", delta::SummarizeOps(cached.envelope.patch.ops)},
             {"bytes", StrFormat("%zu", cached.xml.size())}});
      }
      if (cached.xml.size() >
          options_.patch_size_cutoff * static_cast<double>(slot.xml.size())) {
        // A patch near snapshot size buys nothing but apply-time risk.
        ++counters_.patch_fallback_oversize;
        cached.fallback = true;
      }
    }
    cached_it = slot.patch_cache.emplace(base_time, std::move(cached)).first;
  }
  const CachedPatch& cached = cached_it->second;
  if (cached.fallback) {
    return std::nullopt;
  }
  if (instruments_.patch_ops != nullptr) {
    instruments_.patch_ops->Record(
        static_cast<int64_t>(cached.envelope.patch.ops.size()));
  }
  if (outbox == nullptr || outbox->empty()) {
    return cached.xml;
  }
  // Pending broadcast actions ride along in the patch envelope, exactly as
  // they would in the full snapshot's userActions element.
  delta::PatchEnvelope with_actions = cached.envelope;
  with_actions.user_actions = std::move(*outbox);
  outbox->clear();
  return delta::SerializePatchXml(with_actions);
}

}  // namespace rcb
