// RCB-Agent: the in-browser HTTP server that hosts a co-browsing session.
//
// The agent listens on an open TCP port of the host browser's machine and
// processes three request types (Fig. 2):
//   * new connection requests (GET /)            -> initial HTML page with
//                                                   Ajax-Snippet embedded,
//   * object requests (GET /obj/<cache-key>)     -> cached supplementary
//                                                   objects, cache mode only,
//   * Ajax polling requests (POST /)             -> data merge, timestamp
//                                                   inspection, response
//                                                   sending (§4.1.1).
// Content generation (Fig. 3) runs once per document change and the result
// is reused for every participant (§4.1.2). Requests from Ajax-Snippet are
// authenticated with an HMAC over the request when a session key is set
// (§3.4). Action coordination policies (§3.3) decide whether participant
// clicks/submits are applied immediately, held for host confirmation, or
// denied.
#ifndef SRC_CORE_RCB_AGENT_H_
#define SRC_CORE_RCB_AGENT_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/browser/browser.h"
#include "src/core/agent_state.h"
#include "src/core/broadcast.h"
#include "src/core/content_generator.h"
#include "src/core/protocol.h"
#include "src/delta/patch_codec.h"
#include "src/http/http_parser.h"
#include "src/net/network.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/transport/capabilities.h"
#include "src/transport/frame.h"
#include "src/util/token_bucket.h"

namespace rcb {

// What the agent does with a participant-initiated action class (§3.3).
enum class ActionPolicy { kAutoApply, kConfirm, kDeny };

struct AgentPolicies {
  ActionPolicy click = ActionPolicy::kAutoApply;
  ActionPolicy form_submit = ActionPolicy::kAutoApply;
  ActionPolicy form_fill = ActionPolicy::kAutoApply;
  ActionPolicy navigate = ActionPolicy::kAutoApply;
  // Mirror pointer movement to the other participants.
  bool broadcast_mouse = true;
  // §3.3: "it is up to the high-level policy enforced on RCB-Agent to decide
  // whom are allowed to perform certain interactions". When set, actions from
  // participants this predicate rejects are denied before the per-type
  // policies run. nullptr allows everyone.
  std::function<bool(const std::string& pid, const UserAction& action)>
      participant_filter;
};

// Overload-protection knobs. The agent is an HTTP server inside one host
// browser, so a handful of misbehaving or merely numerous participants can
// exhaust it long before the network fails; these limits make it shed load
// deterministically instead of stalling the event loop. Defaults are generous
// enough that a well-behaved session never hits them; 0 (or Zero()) disables
// an individual limit.
struct AgentLimits {
  // Admission control.
  size_t max_connections = 256;   // concurrent sockets, held push streams incl.
  size_t max_participants = 64;   // roster size; excess joins/polls get 503
  size_t max_request_head_bytes = 64 * 1024;   // request-line + headers
  size_t max_request_body_bytes = 1 << 20;     // declared Content-Length
  // Slow-loris defense: read deadline for one request's bytes, armed when the
  // first byte arrives and NOT extended by further drip-fed bytes; the
  // connection is closed unless the request completes in time.
  Duration idle_read_timeout = Duration::Zero();
  // Per-participant token buckets, refilled deterministically from sim time.
  // rate <= 0 disables the bucket. Rejected polls get 429 + Retry-After;
  // rejected piggybacked actions are dropped (and counted).
  double poll_rate_per_sec = 0.0;
  double poll_burst = 8.0;
  double action_rate_per_sec = 0.0;
  double action_burst = 32.0;
  // Bounded queues, reject-newest: once full, new entries are shed and the
  // queued ones kept (the oldest actions are closest to delivery).
  size_t max_outbox_actions = 1024;   // per-participant broadcast outbox
  size_t max_pending_actions = 256;   // host confirmation queue (kConfirm)
  // Byte budget applied to the host browser's ObjectCache on Start();
  // exceeding it evicts least-recently-used objects. 0 = unbounded.
  uint64_t cache_byte_budget = 0;
  // Deterministic jitter added to every Retry-After this agent sends (503s
  // and 429s): base + StableHash64(key) % (jitter + 1ms), keyed per rejected
  // participant. Spreads retries so one overload burst does not come back as
  // one synchronized retry burst. Zero() disables (exact base values).
  Duration retry_after_jitter = Duration::Seconds(3.0);
};

struct AgentConfig {
  uint16_t port = 3000;
  bool cache_mode = true;
  // Non-empty key enables HMAC request authentication for Ajax polls.
  std::string session_key;
  // Poll interval advertised to participants in the initial page.
  Duration poll_interval = Duration::Seconds(1.0);
  SyncModel sync_model = SyncModel::kPoll;
  // Optional per-object cache-mode selection (§4.1.2); see
  // ContentGenOptions::cache_object_filter.
  std::function<bool(const Url& url, const std::string& kind)>
      cache_object_filter;
  // Optional per-participant cache-mode selection (§4.1.2: "allow different
  // participant browsers to use different modes"). Overrides `cache_mode`
  // for the given pid; the agent keeps one generated snapshot per mode, so
  // reuse still holds within each mode.
  std::function<bool(const std::string& pid)> participant_cache_mode;
  AgentPolicies policies;
  AgentLimits limits;
  // Hot-path knobs for this agent's content generator (arena block size,
  // serialization-cache budget, intern cap; see docs/PERF_MODEL.md). The
  // defaults keep incremental serialization on.
  GeneratorTuning generator_tuning;
  // --- Delta snapshots (src/delta). Off by default: unless BOTH the agent
  // enables delta and the participant advertises patch support on its polls,
  // behavior (and wire bytes) stay identical to full snapshots. ---
  bool enable_delta = false;
  // Fall back to the full snapshot when the serialized patch exceeds this
  // fraction of the snapshot XML (a patch barely smaller than the snapshot
  // is not worth the apply risk).
  double patch_size_cutoff = 0.6;
  // Base versions retained per cache-mode slot for patch generation; polls
  // acking an older version than the window holds get a full snapshot.
  size_t delta_history = 8;
  // --- Causal tracing (DESIGN.md §11). Off by default: the agent ignores
  // the optional trace= poll field and appends exactly the pre-causal flat
  // spans, so responses, counters, and the trace ring stay unchanged. ---
  bool enable_trace = false;
  // --- Streamed transport (src/transport, DESIGN.md §15). Off by default:
  // the agent ignores the optional stream= poll field, never adds the
  // RCB-Transport response header, and rejects GET /frames — responses stay
  // byte-identical to classic polling. Grants apply to poll-mode sessions on
  // the agent's own port; front-door (RcbHost) requests are answered but
  // never upgraded, since the synchronous router cannot hold a connection. ---
  transport::TransportConfig transport;
  // Flight-recorder dump directory. Empty falls back to $RCB_FLIGHT_DIR;
  // with neither set, triggers are counted but no artifact is written.
  std::string flight_dir;
  // --- Health plane (src/obs/slo.h, DESIGN.md §16). SLO targets and window
  // geometry for the always-on per-session health tracker behind GET /health
  // and /host/health; fixed-size, so it survives the host's lite mode. ---
  obs::SloConfig health_slo;
  // --- Multi-session hosting (src/host). Defaults keep the standalone
  // behavior: the agent owns its registry and registers everything. ---
  // When set, instruments register on this registry (not owned; must outlive
  // the agent) instead of the agent's own; metrics_registry() returns it.
  obs::MetricsRegistry* shared_registry = nullptr;
  // Label body prepended to every registered instrument, e.g. `session="s3"`.
  // Required for shared registries (two label-less agents would collide on
  // every family); composed before per-instrument labels like stage="clone".
  std::string metrics_label;
  // false skips instrument registration entirely (counters in AgentMetrics
  // still accumulate). RcbHost uses this above its metrics_sessions cap so a
  // 10k-session bench does not pay per-session registry weight.
  bool register_metrics = true;
  // false skips the rcb_cache_* families. RcbHost points every session at
  // one shared ObjectCache and registers its counters once, host-side.
  bool register_cache_metrics = true;
  // --- Durability (src/persist, DESIGN.md §13). When set, the agent reports
  // every persistent-state transition (document version, anti-replay seq
  // advance, merged action, roster change) before acking the request that
  // caused it. Not owned; must outlive the agent. nullptr = no reporting. ---
  AgentStateObserver* state_observer = nullptr;
};

struct AgentMetrics {
  uint64_t polls_received = 0;
  uint64_t polls_with_content = 0;
  uint64_t polls_empty = 0;
  uint64_t object_requests = 0;
  uint64_t object_bytes_served = 0;
  uint64_t new_connections = 0;
  uint64_t auth_failures = 0;
  uint64_t doc_updates = 0;            // document versions observed
  uint64_t generations = 0;            // Fig. 3 pipeline executions
  uint64_t snapshot_reuses = 0;        // content served without regeneration
  uint64_t actions_applied = 0;
  uint64_t actions_held = 0;
  uint64_t actions_denied = 0;
  // --- Recovery counters (§3.2.3) ---
  uint64_t poll_timeouts = 0;          // abandoned polls reported by snippets
  uint64_t reconnects = 0;             // resume re-handshakes served
  uint64_t resyncs = 0;                // full snapshots served to resync polls
  uint64_t participants_reaped = 0;    // silent participants removed
  // --- Overload counters (AgentLimits) ---
  uint64_t connections_rejected = 0;   // 503s at accept (connection cap)
  uint64_t participants_rejected = 0;  // 503s at join/poll (roster cap)
  uint64_t polls_rate_limited = 0;     // 429s from the poll token bucket
  uint64_t actions_rate_limited = 0;   // piggybacked actions dropped by bucket
  uint64_t actions_shed = 0;           // reject-newest drops at a full queue
  uint64_t snapshots_shed = 0;         // push versions superseded before send
  uint64_t idle_read_timeouts = 0;     // slow-loris connections closed
  uint64_t oversized_rejected = 0;     // 413s for head/body over the caps
  uint64_t recovery_deferrals = 0;     // 503s staggering post-recovery resync
  // --- Delta snapshots (src/delta) ---
  uint64_t patches_served = 0;         // newPatch responses sent
  uint64_t patch_fallback_no_base = 0; // base version outside the history
  uint64_t patch_fallback_oversize = 0;// patch exceeded patch_size_cutoff
  uint64_t patch_bytes_sent = 0;       // cumulative patch response bytes
  uint64_t patch_snapshot_bytes = 0;   // snapshot bytes those patches replaced
  // Cumulative bytes of document-content-bearing response bodies (full
  // snapshots and patches, poll and push) — the bytes-on-wire-per-update
  // numerator the delta benchmarks read.
  uint64_t content_bytes_sent = 0;
  // --- Streamed transport (src/transport, DESIGN.md §15) ---
  uint64_t transport_streams_opened = 0;   // framed streams upgraded
  uint64_t transport_frames_sent = 0;      // hello + data frames
  uint64_t transport_heartbeats_sent = 0;  // hb frames
  uint64_t transport_frame_bytes_sent = 0; // wire bytes across all frames
  uint64_t transport_long_polls_parked = 0;   // polls held awaiting content
  uint64_t transport_long_poll_flushes = 0;   // parked polls answered w/ data
  uint64_t transport_long_poll_expiries = 0;  // parked polls released empty
  uint64_t transport_capacity_denials = 0;    // upgrades denied by max_held
  // --- escape() accounting (M2): cumulative CDATA payload bytes before and
  // after JsEscape across all generations. Their ratio is the inflation the
  // paper's transmission sizes absorb. ---
  uint64_t snapshot_bytes_raw = 0;
  uint64_t snapshot_bytes_escaped = 0;
  Duration last_generation_time;       // M5, real CPU time
  Duration total_generation_time;
  size_t last_snapshot_bytes = 0;
};

// An action waiting for host confirmation under ActionPolicy::kConfirm.
struct PendingAction {
  std::string participant_id;
  UserAction action;
};

class RcbAgent {
 public:
  // The agent runs inside `host_browser` (shares its event loop, network,
  // document, and cache).
  RcbAgent(Browser* host_browser, AgentConfig config);
  ~RcbAgent();
  RcbAgent(const RcbAgent&) = delete;
  RcbAgent& operator=(const RcbAgent&) = delete;

  // Opens the listening port (§3.1 step 1) and hooks document changes.
  Status Start();
  void Stop();
  bool running() const { return running_; }

  // The URL participants type into their address bars (§3.1 step 2).
  Url AgentUrl() const;

  const AgentConfig& config() const { return config_; }
  const AgentMetrics& metrics() const { return metrics_; }

  // Simulated instant of the last request this agent handled (any class,
  // including rejected ones). RcbHost's idle reaper reads it.
  SimTime last_activity() const { return last_activity_; }

  // In-process entry point for RcbHost's front-door router: handles one
  // already-parsed request exactly as if it had arrived on the agent's own
  // port (same classification, auth, metrics, and trace behavior) — except
  // that transport upgrades are suppressed: Route() is synchronous, so a
  // front-door poll can never be parked or granted a held stream (DESIGN.md
  // §15; held streams connect to the session's own port, like push streams).
  HttpResponse HandleHostRequest(const HttpRequest& request);

  // Observability (DESIGN.md §9). The registry carries every AgentMetrics
  // counter (callback-backed, same names), the ObjectCache counters, and the
  // stage/request histograms; /metrics renders it in the Prometheus text
  // format. The trace log keeps the most recent spans (generation stages,
  // request handling, HMAC checks). Under a shared registry (src/host) this
  // returns the host's registry, where this agent's families carry
  // config.metrics_label.
  const obs::MetricsRegistry& metrics_registry() const {
    return *effective_registry_;
  }
  const obs::TraceLog& trace_log() const { return trace_; }
  // Anomaly flight recorder (DESIGN.md §11): triggers on resync, HMAC
  // failure, and overload shedding; dumps the trace ring + a deterministic
  // metrics snapshot when a dump directory is configured.
  const obs::FlightRecorder& flight_recorder() const { return flight_; }
  // Health plane (DESIGN.md §16): windowed SLO state behind GET /health.
  // Always on — fixed-size even when register_metrics is false (lite mode).
  // Non-const: window reads advance the rings to the query instant.
  obs::SessionHealth& session_health() { return health_; }

  // Connected participants (have completed a poll recently enough to be
  // considered live); the agent "knows exactly which participants are
  // connected" (§3.3).
  std::vector<std::string> ConnectedParticipants() const;
  size_t participant_count() const { return participants_.size(); }
  // Held push streams (push sync model).
  size_t stream_count() const { return streams_.size(); }
  // Held framed transport streams / parked long-polls (DESIGN.md §15).
  size_t framed_stream_count() const { return framed_streams_.size(); }
  size_t parked_poll_count() const { return parked_.size(); }

  // Host-originated action broadcast (e.g. host mouse mirroring).
  void BroadcastAction(UserAction action);

  // Confirmation queue (ActionPolicy::kConfirm).
  const std::vector<PendingAction>& pending_actions() const {
    return pending_actions_;
  }
  // Applies / discards pending_actions()[index].
  Status ApprovePending(size_t index);
  Status RejectPending(size_t index);

  // Switches cache mode at runtime (the paper allows per-page / per-object
  // flexibility; we expose the session-level switch).
  void set_cache_mode(bool cache_mode) { config_.cache_mode = cache_mode; }

  // --- Durability (src/persist, DESIGN.md §13) ---
  // Snapshot of the protocol state a checkpoint captures: document content +
  // version, roster with anti-replay marks, confirmation queue.
  AgentStateExport ExportState() const;
  // Rehydrates a stopped agent from a checkpoint (call before Start()).
  // Participants come back with doc_time_ms = -1 so their first poll takes
  // the full-snapshot resync path; their last_seq marks survive, so replayed
  // pre-crash polls still bounce off anti-replay.
  Status RestoreState(const AgentStateExport& state);
  // Restart-storm protection: until `at`, polls from existing participants
  // are answered 503 + jittered Retry-After instead of a full resync, so a
  // recovering host readmits its flock staggered, not all at once. Resume
  // handshakes are NOT deferred (identity re-establishment is cheap).
  void DeferResyncAdmissionUntil(SimTime at) { resync_admission_at_ = at; }

  // Exposed for tests: the current snapshot the agent would serve.
  const Snapshot& CurrentSnapshotForTest();

 private:
  struct ParticipantState {
    int64_t doc_time_ms = -1;      // content version the participant holds
    SimTime last_poll;
    uint64_t polls = 0;
    std::vector<UserAction> outbox;  // broadcast actions awaiting delivery
    // Recovery bookkeeping (§3.2.3): highest poll seq seen (anti-replay) and
    // the high-water mark of the snippet's cumulative timeout counter.
    uint64_t last_seq = 0;
    uint64_t timeouts_reported = 0;
    // Overload protection: per-participant admission buckets (AgentLimits).
    TokenBucket poll_bucket;
    TokenBucket action_bucket;
    // Streamed transport (DESIGN.md §15): true when the previous poll
    // response carried an RCB-Transport grant, so the client is known to
    // have extended its poll timeout before the agent may park its poll.
    bool transport_granted = false;
  };
  struct AgentConn {
    NetEndpoint* endpoint = nullptr;
    HttpRequestParser parser;
    // Slow-loris read deadline (AgentLimits::idle_read_timeout).
    uint64_t read_deadline_id = 0;
    bool read_deadline_armed = false;
  };

  void OnAccept(NetEndpoint* endpoint);
  void OnConnData(AgentConn* conn, std::string_view data);
  void OnDocumentChange();
  // Destroys the AgentConn record (cancelling its read deadline). Does not
  // touch the endpoint — callers close it separately when needed.
  void RemoveConnection(AgentConn* conn);
  void DisarmReadDeadline(AgentConn* conn);

  // HandleRequest wraps DispatchRequest with end-of-request health sampling
  // (the deterministic event site where counter deltas enter the windows).
  HttpResponse HandleRequest(const HttpRequest& request);
  HttpResponse DispatchRequest(const HttpRequest& request);
  HttpResponse HandleNewConnection(const HttpRequest& request);
  HttpResponse HandleObjectRequest(const HttpRequest& request);
  HttpResponse HandlePoll(const HttpRequest& request);
  // GET /status: the host-side session dashboard (roster, freshness,
  // counters) — the connection/status indicator suggested in §5.2.3.
  HttpResponse HandleStatusPage() const;
  // GET /metrics: Prometheus text exposition of the registry. Authenticated
  // like polls; ?view=sim renders only the deterministic (sim-provenance)
  // families, which are byte-identical across identical simulated runs.
  HttpResponse HandleMetrics(const HttpRequest& request);
  // GET /health: windowed SLO health JSON (score, burn rates, sync window
  // percentiles, trace exemplars). Authenticated like /metrics; every value
  // is sim-provenance, so the body is deterministic.
  HttpResponse HandleHealth(const HttpRequest& request);

  // Push model: a GET /stream request upgrades the connection into a held
  // multipart/x-mixed-replace stream; parts are written on every change.
  void HandleStreamRequest(AgentConn* conn, const HttpRequest& request);
  void PushToStreams();
  // Defers PushToStreams by one zero-delay event so every document change in
  // the same event-loop turn collapses into one part (drop-oldest shedding:
  // a superseded version is never serialized, and counts as shed).
  void SchedulePushFlush();
  void PushOutbox(const std::string& pid);
  static std::string MultipartPart(const std::string& xml);

  // --- Streamed transport (src/transport, DESIGN.md §15) ---
  // A long-poll the agent is holding until content arrives or the hold
  // deadline fires; the AgentConn stays in connections_ (the connection cap
  // still applies) and the endpoint's close handler cancels the park.
  struct ParkedPoll {
    AgentConn* conn = nullptr;
    std::string grant;            // RCB-Transport value echoed on release
    int64_t acked_doc_time_ms = -1;
    bool patch = false;           // poll advertised patch= capability
    uint64_t deadline_id = 0;     // hold-expiry timer
  };
  // A held framed stream: sequence-stamped frames are pushed on every change
  // and a heartbeat covers idle gaps so the client can detect silent drops.
  struct FramedStream {
    NetEndpoint* endpoint = nullptr;
    uint64_t next_seq = 1;
    SimTime last_frame;
  };
  // HandlePoll cannot reach the connection, so it records the intent to park
  // here and OnConnData consumes it instead of sending the response.
  struct ParkIntent {
    std::string pid;
    std::string grant;
    int64_t acked_doc_time_ms = -1;
    bool patch = false;
  };

  // GET /frames?pid=: upgrades the connection into a held framed stream.
  void HandleFramesRequest(AgentConn* conn, const HttpRequest& request);
  void ParkPoll(AgentConn* conn, ParkIntent intent);
  // Answers a parked poll: newest content / pending actions when available,
  // empty when released by the hold deadline (`expired`).
  void ReleaseParkedPoll(const std::string& pid, bool expired);
  // Same coalescing discipline as SchedulePushFlush, for parked long-polls
  // and framed streams.
  void ScheduleTransportFlush();
  void FlushTransport();
  void FlushFramedStreams();
  // Immediate outbox delivery to a held framed stream / parked long-poll
  // (the transport analogue of PushOutbox).
  void KickTransport(const std::string& pid);
  void SendFrame(const std::string& pid, FramedStream& stream,
                 transport::FrameType type, std::string body);
  // Heartbeat timer: armed only while framed streams exist, so an idle agent
  // leaves the event queue drainable.
  void ArmHeartbeatTimer();
  void HeartbeatTick();
  // Content response body for one participant at the current version: patch
  // when the acked base and capability allow, else the shared snapshot (with
  // the outbox folded in via override_actions when non-empty).
  std::string BuildContentBody(const std::string& pid, int64_t acked,
                               bool patch_capable,
                               std::vector<UserAction> outbox);

  // Health plane: records one content-sync latency observation (document
  // version stamp -> content serve, sim time) into the windowed tracker and
  // the exemplar histogram. Called at every content-serve site.
  void RecordContentServed(std::string_view trace_id);

  // §3.4: verifies the hmac request-URI parameter over the canonical request.
  // Non-const: records the verification's CPU time (rcb_agent_hmac_verify_us).
  bool VerifyRequestAuth(const HttpRequest& request);

  // Data merging: routes one participant action through the policies.
  void ApplyAction(const std::string& pid, const UserAction& action);
  void PerformAction(const std::string& pid, const UserAction& action);

  // Presence bookkeeping: removes `pid` and notifies the other participants;
  // ReapStaleParticipants does the same for silent ones (run on each poll).
  void RemoveParticipant(const std::string& pid);
  void ReapStaleParticipants();

  // Creates the participant on first use with token buckets initialized from
  // the configured limits.
  ParticipantState& EnsureParticipant(const std::string& pid);
  // True when an unknown `pid` may still join (roster below the cap).
  bool ParticipantAdmissible(const std::string& pid) const;
  // Appends to a broadcast outbox, shedding the newest action (and counting
  // it) when the queue is at max_outbox_actions.
  void EnqueueOutbox(ParticipantState& state, const UserAction& action);

  // The generate-once pipeline state lives in broadcast_ (src/core/
  // broadcast.h); the agent-side aliases keep call sites readable.
  using SnapshotSlot = SnapshotBroadcast::Slot;

  // True if participant `pid` co-browses in cache mode.
  bool CacheModeFor(const std::string& pid) const;
  // Ensures the slot for `cache_mode` matches the current document version
  // and returns it (delegates to broadcast_, then mirrors its counters into
  // metrics_ so the public AgentMetrics surface is unchanged).
  SnapshotSlot& RefreshSlot(bool cache_mode, bool count_reuse);
  // Copies BroadcastCounters into the matching AgentMetrics fields.
  void SyncBroadcastCounters();
  // Back-compat helpers for the default mode.
  void RefreshSnapshotIfNeeded();
  void RefreshSnapshot(bool count_reuse);

  std::string BuildInitialPage(const std::string& pid) const;

  // AgentLimits::retry_after_jitter applied to one Retry-After value,
  // deterministically keyed (same key -> same delay, different keys spread).
  Duration JitteredRetryAfter(Duration base, std::string_view key) const;

  // Registers every family on the effective registry (constructor-time;
  // callback counters read metrics_ and the browser cache at render time).
  // Skipped entirely when config.register_metrics is false. Labels compose
  // config.metrics_label with the per-instrument label.
  void RegisterMetrics();
  std::string ComposedLabels(std::string_view labels) const;

  // Appends a zero-duration sim marker carrying `attrs` to the current
  // request's causal chain; no-op when the request carried no trace id.
  void TraceMarker(const char* name, obs::TraceAttrs attrs);

  Browser* browser_;
  AgentConfig config_;
  ContentGenerator generator_;
  bool running_ = false;

  int64_t current_doc_time_ms_ = 0;
  bool has_version_ = false;  // set once the first completed load is observed
  SimTime last_activity_;
  // True while RestoreState replaces the document: the change listener (if
  // any) must not stamp a fresh version over the checkpointed one.
  bool restoring_ = false;
  // Restart-storm admission gate; polls before this instant are deferred.
  SimTime resync_admission_at_;
  // Generate-once broadcast state; constructed after RegisterMetrics so its
  // instrument pointers are final (std::optional defers construction only).
  std::optional<SnapshotBroadcast> broadcast_;

  std::map<std::string, ParticipantState> participants_;
  std::map<std::string, NetEndpoint*> streams_;  // pid -> held push connection
  std::vector<PendingAction> pending_actions_;
  std::vector<std::unique_ptr<AgentConn>> connections_;
  AgentMetrics metrics_;
  uint64_t next_pid_ = 1;
  bool push_flush_pending_ = false;

  // --- Streamed transport state (DESIGN.md §15) ---
  std::map<std::string, ParkedPoll> parked_;        // pid -> held long-poll
  std::map<std::string, FramedStream> framed_streams_;  // pid -> held stream
  bool transport_flush_pending_ = false;
  bool hb_timer_armed_ = false;
  uint64_t hb_timer_id_ = 0;
  // True while HandleHostRequest runs: grants and parking are suppressed.
  bool front_door_request_ = false;
  // Grant computed by the in-flight HandlePoll; HandleRequest attaches it as
  // the RCB-Transport header on 200 responses, then clears it.
  std::string pending_grant_;
  // Longpoll grants only: was the grant mode longpoll (parking allowed)?
  bool pending_grant_longpoll_ = false;
  std::optional<ParkIntent> park_intent_;

  // --- Observability state (see metrics_registry()/trace_log()). ---
  obs::MetricsRegistry registry_;  // owned; bypassed under a shared registry
  obs::MetricsRegistry* effective_registry_ = nullptr;
  obs::TraceLog trace_;
  // Fig. 3 stage histograms, one per gen_stage label, in pipeline order:
  // clone, absolutize, cache_rewrite, event_rewrite, extract, serialize.
  obs::Histogram* stage_hist_[6] = {};
  obs::Histogram* generation_us_ = nullptr;   // whole pipeline, wall
  obs::Histogram* snapshot_bytes_ = nullptr;  // serialized XML size, sim
  obs::Histogram* hmac_verify_us_ = nullptr;  // wall
  obs::Histogram* patch_ops_ = nullptr;       // ops per served patch, sim
  obs::Histogram* patch_bytes_ = nullptr;     // bytes per served patch, sim
  // Request handling CPU time by Fig. 2 class:
  // poll, new_connection, object, status, metrics, other.
  obs::Histogram* request_hist_[6] = {};
  // Causal chain of the poll currently being handled (DESIGN.md §11):
  // trace id from the poll's trace= field, parent = the request root span.
  // Inactive outside HandlePoll or when tracing is off on either side.
  obs::TraceContext trace_ctx_;
  obs::FlightRecorder flight_;
  // Sync-latency registry histogram with trace exemplars (document update ->
  // content served); nullptr when register_metrics is false. The always-on
  // windowed view of the same observations lives in health_.
  obs::Histogram* sync_latency_us_ = nullptr;
  // Declared after flight_: alert edges fire it. Every request the agent
  // handles samples the cumulative counters into the windows. Mutable:
  // window reads advance the rings, and the const status page reads it.
  mutable obs::SessionHealth health_;
  uint64_t requests_handled_ = 0;  // HealthSample.requests denominator
};

}  // namespace rcb

#endif  // SRC_CORE_RCB_AGENT_H_
