// SerializeCache: dirty-subtree incremental serialization for the Fig. 3
// extract step (docs/PERF_MODEL.md).
//
// Extraction is the page-proportional tail of the pipeline: innerHTML
// serialization of the whole body plus a JsEscape of every byte, repeated on
// every document version even when one text node changed. This cache makes
// that cost proportional to the change.
//
// How it stays byte-identical to a cold serialization:
//
//   * Identity. Every Node carries a revision (src/html/dom.h): mutations
//     restamp the node and its ancestors with fresh, globally unique values,
//     and Clone preserves them. The Fig. 3 rewrite passes use
//     SetAttributeKeepRev, so a clone subtree's rev still equals its source's
//     — and because a rev uniquely identifies one (node, subtree state), a
//     cache entry keyed by rev can never alias a different state. A miss is
//     always safe; the bet is only on hit *rate*, never on correctness of a
//     hit... except for the two inputs below, which the key must also cover.
//
//   * Generation config. The rewritten bytes also depend on the absolutize
//     base URL, the cache mode, the agent URL, the ObjectCache contents
//     (which URLs map to /obj/<key>), and the presence of a cache-object
//     filter. The caller folds all of those into `config_fingerprint`; it is
//     part of the key. The filter itself must be pure and stable for a given
//     fingerprint (AgentConfig sets it once at construction).
//
//   * data-rcb-id numbering. Interactive elements are numbered by global
//     pre-order position, so an *unchanged* subtree serializes differently if
//     an interactive element was inserted before it. Each entry records the
//     pre-order interactive counter at its start (`id_base`) plus how many
//     interactive elements it contains; a hit requires the running counter to
//     equal the recorded base. Within a subtree ids are contiguous in
//     pre-order, so base equality implies every embedded id matches.
//
//   * Escape splicing. JsEscape and HtmlEscape are stateless per byte
//     (src/util/escape.h), so each entry stores the raw span *and* its
//     JsEscape image, built in lockstep; splicing cached escaped spans is
//     byte-identical to escaping the full serialization.
//
// Entries are plain string copies (never pointers into a DOM or arena), LRU
// evicted against a byte budget. Spans smaller than `min_span_bytes` are not
// cached: they are cheaper to re-serialize than to track.
#ifndef SRC_CORE_SERIALIZE_CACHE_H_
#define SRC_CORE_SERIALIZE_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "src/html/dom.h"

namespace rcb {

class SerializeCache {
 public:
  struct Tuning {
    size_t budget_bytes = 4 * 1024 * 1024;  // serialize_cache_budget
    size_t min_span_bytes = 64;             // spans below this are not cached
  };

  // Mirrors ObjectCache::Stats: the shared budget-metric convention
  // (DESIGN.md §14) is {hits, misses, evictions, evicted_bytes} counters plus
  // a current-bytes and a current-entry-count gauge per cache.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
    uint64_t hit_bytes = 0;   // raw bytes served by splicing cached spans
    uint64_t miss_bytes = 0;  // raw bytes serialized the slow way
    size_t bytes = 0;         // current footprint (raw + escaped spans)
    size_t spans = 0;         // current entry count
  };

  SerializeCache() = default;
  explicit SerializeCache(Tuning tuning) : tuning_(tuning) {}
  SerializeCache(const SerializeCache&) = delete;
  SerializeCache& operator=(const SerializeCache&) = delete;

  // Serializes `element`'s children (its innerHTML) through the cache,
  // appending the raw bytes to `raw` and their JsEscape image to `escaped`.
  // Byte-identical to SerializeChildren(element) + JsEscape of it — asserted
  // by serialize_cache_test over random mutation schedules.
  //
  // `interactive_counter` is the running pre-order data-rcb-id counter; the
  // caller threads one counter through the whole clone in DOM order (see
  // ContentGenerator::Generate). It is read for hit validity and advanced
  // past every element either way.
  void AppendChildrenHtml(const Element& element, uint64_t config_fingerprint,
                          size_t* interactive_counter, std::string* raw,
                          std::string* escaped);

  // Drops every entry (e.g. when the owning generator is re-targeted).
  void Clear();

  const Stats& stats() const { return stats_; }
  const Tuning& tuning() const { return tuning_; }

 private:
  struct Key {
    uint64_t rev;
    uint64_t fingerprint;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix-style mix; revs are sequential so spread them.
      uint64_t x = k.rev * 0x9E3779B97F4A7C15ull ^ k.fingerprint;
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };
  struct Entry {
    std::string raw;
    std::string escaped;
    size_t id_base = 0;            // interactive counter at span start
    size_t interactive_count = 0;  // interactive elements inside the span
    std::list<Key>::iterator lru;
  };

  void AppendNode(const Node& node, bool raw_text_parent, uint64_t fingerprint,
                  size_t* counter, std::string* raw, std::string* escaped);
  void AppendElement(const Element& element, uint64_t fingerprint,
                     size_t* counter, std::string* raw, std::string* escaped);
  // Appends the cached span for `key` if present and id-valid; advances the
  // counter past its interactive elements.
  bool TryAppendHit(const Key& key, size_t* counter, std::string* raw,
                    std::string* escaped);
  // Accounts a freshly serialized span [raw_start, raw->size()) and caches it
  // when it clears the size floor and fits the budget.
  void RecordMissSpan(const Key& key, size_t raw_start, size_t escaped_start,
                      size_t id_base, const size_t* counter,
                      const std::string* raw, const std::string* escaped);
  void Insert(Key key, Entry entry);
  void EvictToBudget();

  Tuning tuning_;
  Stats stats_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  // front = most recent
};

}  // namespace rcb

#endif  // SRC_CORE_SERIALIZE_CACHE_H_
