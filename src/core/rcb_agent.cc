#include "src/core/rcb_agent.h"

#include <chrono>
#include <cstdlib>

#include "src/crypto/hmac.h"
#include "src/delta/tree_diff.h"
#include "src/html/parser.h"
#include "src/html/serializer.h"
#include "src/http/form.h"
#include "src/util/escape.h"
#include "src/util/logging.h"
#include "src/util/rand.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

// Representative Ajax-Snippet source embedded in the initial page's head.
// The behaviour it describes is implemented natively by the AjaxSnippet class
// (src/core/ajax_snippet.h); shipping the source keeps the initial page
// faithful to the paper's architecture (Fig. 1).
constexpr char kSnippetSource[] = R"JS(
var rcb = {ts: -1, pid: null, key: null, interval: 1000};
function rcbConfig() {
  var metas = document.getElementsByTagName('meta');
  for (var i = 0; i < metas.length; i++) {
    if (metas[i].name == 'rcb-pid') rcb.pid = metas[i].content;
    if (metas[i].name == 'rcb-poll-interval') rcb.interval = +metas[i].content;
  }
}
function rcbPoll() {
  var xhr = new XMLHttpRequest();
  var body = 'pid=' + rcb.pid + '&ts=' + rcb.ts + '&actions=' + rcbActions();
  var uri = '/' + (rcb.key ? '?hmac=' + rcbHmac('POST /\n' + body) : '');
  xhr.open('POST', uri, true);
  xhr.onreadystatechange = function() {
    if (xhr.readyState == 4 && xhr.status == 200) {
      if (xhr.responseXML) rcbApply(xhr.responseXML);
      setTimeout(rcbPoll, rcb.interval);
    }
  };
  xhr.setRequestHeader('Content-Type', 'application/x-www-form-urlencoded');
  xhr.send(body);
}
function rcbApply(doc) { /* Fig. 5: clean head (keep this script), set head
  children, drop stale top elements, set body/frameset via innerHTML */ }
function rcbClick(el) { rcbQueue('click', el); return false; }
function rcbSubmit(el) { rcbQueue('submit', el); return false; }
function rcbFill(el) { rcbQueue('fill', el); }
)JS";

std::string_view StripPrefixView(std::string_view s, size_t n) {
  return s.substr(n);
}

// Extracts the trace= field from a poll body without decoding the rest
// (classification happens before DecodePollRequest; a malformed body simply
// yields no trace id and the request stays uncorrelated).
std::string PeekTraceField(std::string_view body) {
  for (const auto& [name, value] : ParseFormUrlEncodedOrdered(body)) {
    if (name == "trace") {
      return value;
    }
  }
  return "";
}

obs::FlightRecorder::Options AgentFlightOptions(const AgentConfig& config) {
  obs::FlightRecorder::Options options;
  options.component = "agent";
  options.dir = config.flight_dir;
  if (options.dir.empty()) {
    if (const char* env = std::getenv("RCB_FLIGHT_DIR"); env != nullptr) {
      options.dir = env;
    }
  }
  return options;
}

}  // namespace

RcbAgent::RcbAgent(Browser* host_browser, AgentConfig config)
    : browser_(host_browser),
      config_(std::move(config)),
      generator_(host_browser, config_.generator_tuning),
      flight_(&trace_, &registry_, AgentFlightOptions(config_)),
      health_(config_.health_slo, &flight_) {
  effective_registry_ = config_.shared_registry != nullptr
                            ? config_.shared_registry
                            : &registry_;
  if (config_.register_metrics) {
    RegisterMetrics();
  }
  BroadcastOptions broadcast_options;
  broadcast_options.enable_delta = config_.enable_delta;
  broadcast_options.patch_size_cutoff = config_.patch_size_cutoff;
  broadcast_options.delta_history = config_.delta_history;
  broadcast_options.cache_object_filter = config_.cache_object_filter;
  BroadcastInstruments instruments;
  instruments.trace = &trace_;
  for (size_t i = 0; i < 6; ++i) {
    instruments.stage_hist[i] = stage_hist_[i];
  }
  instruments.generation_us = generation_us_;
  instruments.snapshot_bytes = snapshot_bytes_;
  instruments.patch_ops = patch_ops_;
  broadcast_.emplace(&generator_, browser_->loop(),
                     std::move(broadcast_options), instruments);
}

std::string RcbAgent::ComposedLabels(std::string_view labels) const {
  if (config_.metrics_label.empty()) {
    return std::string(labels);
  }
  if (labels.empty()) {
    return config_.metrics_label;
  }
  return config_.metrics_label + "," + std::string(labels);
}

void RcbAgent::TraceMarker(const char* name, obs::TraceAttrs attrs) {
  if (!trace_ctx_.active()) {
    return;
  }
  trace_.Append(name, obs::Provenance::kSim, browser_->loop()->now().micros(),
                0, trace_ctx_, std::move(attrs));
}

void RcbAgent::RegisterMetrics() {
  obs::MetricsRegistry* reg = effective_registry_;
  // Under a shared registry every instrument carries the session label, so
  // many agents coexist in one exposition without (name, labels) collisions.
  const std::string base_labels = ComposedLabels("");
  // Counters: every AgentMetrics field, callback-backed so the struct stays
  // the single source of truth (the /status page keeps reading it directly).
  // All of them are sim-provenance: they count simulated protocol events.
  auto field = [reg, &base_labels](std::string_view name, std::string_view help,
                                   const uint64_t& source) {
    reg->AddCallbackCounter(name, help, obs::Provenance::kSim,
                            [&source] { return source; }, base_labels);
  };
  field("rcb_agent_polls_received", "Ajax polling requests received",
        metrics_.polls_received);
  field("rcb_agent_polls_with_content", "Poll responses carrying a snapshot",
        metrics_.polls_with_content);
  field("rcb_agent_polls_empty", "Poll responses with no new content",
        metrics_.polls_empty);
  field("rcb_agent_object_requests", "GET /obj/<key> requests served",
        metrics_.object_requests);
  field("rcb_agent_object_bytes_served", "Cached object bytes served",
        metrics_.object_bytes_served);
  field("rcb_agent_new_connections", "Initial pages served to new participants",
        metrics_.new_connections);
  field("rcb_agent_auth_failures", "Requests failing HMAC verification",
        metrics_.auth_failures);
  field("rcb_agent_doc_updates", "Document versions observed by the agent",
        metrics_.doc_updates);
  field("rcb_agent_generations", "Fig. 3 content-generation pipeline runs",
        metrics_.generations);
  field("rcb_agent_snapshot_reuses", "Snapshots served without regeneration",
        metrics_.snapshot_reuses);
  field("rcb_agent_actions_applied", "Participant actions applied on the host",
        metrics_.actions_applied);
  field("rcb_agent_actions_held", "Actions queued for host confirmation",
        metrics_.actions_held);
  field("rcb_agent_actions_denied", "Actions rejected by policy",
        metrics_.actions_denied);
  field("rcb_agent_poll_timeouts", "Abandoned polls reported by snippets",
        metrics_.poll_timeouts);
  field("rcb_agent_reconnects", "Resume re-handshakes served",
        metrics_.reconnects);
  field("rcb_agent_resyncs", "Full snapshots served to resync polls",
        metrics_.resyncs);
  field("rcb_agent_participants_reaped", "Silent participants removed",
        metrics_.participants_reaped);
  field("rcb_agent_connections_rejected", "503s at accept (connection cap)",
        metrics_.connections_rejected);
  field("rcb_agent_participants_rejected", "503s at join/poll (roster cap)",
        metrics_.participants_rejected);
  field("rcb_agent_polls_rate_limited", "429s from the poll token bucket",
        metrics_.polls_rate_limited);
  field("rcb_agent_actions_rate_limited",
        "Piggybacked actions dropped by the action token bucket",
        metrics_.actions_rate_limited);
  field("rcb_agent_actions_shed", "Reject-newest drops at a full action queue",
        metrics_.actions_shed);
  field("rcb_agent_snapshots_shed", "Push versions superseded before send",
        metrics_.snapshots_shed);
  field("rcb_agent_idle_read_timeouts", "Slow-loris connections closed",
        metrics_.idle_read_timeouts);
  field("rcb_agent_oversized_rejected", "413s for head/body over the caps",
        metrics_.oversized_rejected);
  field("rcb_agent_recovery_deferrals",
        "503s staggering post-recovery resync admission",
        metrics_.recovery_deferrals);
  field("rcb_agent_patches_served", "newPatch delta responses sent",
        metrics_.patches_served);
  field("rcb_agent_patch_fallback_no_base",
        "Patch fallbacks because the acked base left the history window",
        metrics_.patch_fallback_no_base);
  field("rcb_agent_patch_fallback_oversize",
        "Patch fallbacks because the patch exceeded the size cutoff",
        metrics_.patch_fallback_oversize);
  field("rcb_agent_patch_bytes_sent", "Cumulative patch response bytes",
        metrics_.patch_bytes_sent);
  field("rcb_agent_patch_snapshot_bytes",
        "Snapshot bytes the served patches replaced",
        metrics_.patch_snapshot_bytes);
  field("rcb_agent_content_bytes_sent",
        "Bytes of document-content-bearing response bodies (snapshot or patch)",
        metrics_.content_bytes_sent);
  field("rcb_agent_snapshot_bytes_raw",
        "CDATA payload bytes before JsEscape, across all generations",
        metrics_.snapshot_bytes_raw);
  field("rcb_agent_snapshot_bytes_escaped",
        "CDATA payload bytes after JsEscape, across all generations",
        metrics_.snapshot_bytes_escaped);

  // Streamed transport (DESIGN.md §15): frame/long-poll counters plus gauges
  // for the currently-held sockets the overload cap reasons about.
  field("rcb_transport_streams_opened", "Framed transport streams accepted",
        metrics_.transport_streams_opened);
  field("rcb_transport_frames_sent", "Hello/data frames sent on framed streams",
        metrics_.transport_frames_sent);
  field("rcb_transport_heartbeats_sent", "Heartbeat frames sent on framed streams",
        metrics_.transport_heartbeats_sent);
  field("rcb_transport_frame_bytes_sent", "Wire bytes sent as transport frames",
        metrics_.transport_frame_bytes_sent);
  field("rcb_transport_long_polls_parked", "Empty polls held as long-polls",
        metrics_.transport_long_polls_parked);
  field("rcb_transport_long_poll_flushes",
        "Held long-polls released with content or actions",
        metrics_.transport_long_poll_flushes);
  field("rcb_transport_long_poll_expiries",
        "Held long-polls released empty at the hold deadline",
        metrics_.transport_long_poll_expiries);
  field("rcb_transport_capacity_denials",
        "Transport upgrades refused at the held-socket cap",
        metrics_.transport_capacity_denials);
  reg->AddCallbackGauge(
      "rcb_transport_streams_held", "Framed transport streams currently held",
      obs::Provenance::kSim,
      [this] { return static_cast<double>(framed_streams_.size()); },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_transport_polls_parked", "Long-polls currently held open",
      obs::Provenance::kSim,
      [this] { return static_cast<double>(parked_.size()); }, base_labels);

  // ObjectCache counters/gauges (shared with the host browser). A hosted
  // agent skips them: the cache is host-wide and registered once up there.
  if (config_.register_cache_metrics) {
    ObjectCache* cache = &browser_->cache();
    reg->AddCallbackCounter("rcb_cache_hits", "Object cache lookup hits",
                            obs::Provenance::kSim,
                            [cache] { return cache->hits(); }, base_labels);
    reg->AddCallbackCounter("rcb_cache_misses", "Object cache lookup misses",
                            obs::Provenance::kSim,
                            [cache] { return cache->misses(); }, base_labels);
    reg->AddCallbackCounter("rcb_cache_evictions",
                            "Objects evicted by the cache byte budget",
                            obs::Provenance::kSim,
                            [cache] { return cache->evictions(); },
                            base_labels);
    reg->AddCallbackCounter("rcb_cache_evicted_bytes",
                            "Bytes evicted by the cache byte budget",
                            obs::Provenance::kSim,
                            [cache] { return cache->evicted_bytes(); },
                            base_labels);
    reg->AddCallbackGauge(
        "rcb_cache_bytes", "Bytes currently held by the object cache",
        obs::Provenance::kSim,
        [cache] { return static_cast<double>(cache->total_bytes()); },
        base_labels);
    reg->AddCallbackGauge(
        "rcb_cache_objects", "Objects currently held by the object cache",
        obs::Provenance::kSim,
        [cache] { return static_cast<double>(cache->size()); }, base_labels);
  }

  // Serialization cache (docs/PERF_MODEL.md). Same budget-metric convention
  // as rcb_cache_*: {hits,misses,evictions,evicted_bytes} counters plus a
  // current-bytes gauge and a current-entry-count gauge (`spans` here,
  // `objects` above). Per-agent, unlike the host-wide object cache.
  const ContentGenerator* gen = &generator_;
  reg->AddCallbackCounter(
      "rcb_serialize_cache_hits", "Serialization cache subtree hits",
      obs::Provenance::kSim,
      [gen] { return gen->serialize_cache_stats().hits; }, base_labels);
  reg->AddCallbackCounter(
      "rcb_serialize_cache_misses", "Serialization cache subtree misses",
      obs::Provenance::kSim,
      [gen] { return gen->serialize_cache_stats().misses; }, base_labels);
  reg->AddCallbackCounter(
      "rcb_serialize_cache_evictions",
      "Spans evicted by the serialization cache byte budget",
      obs::Provenance::kSim,
      [gen] { return gen->serialize_cache_stats().evictions; }, base_labels);
  reg->AddCallbackCounter(
      "rcb_serialize_cache_evicted_bytes",
      "Bytes evicted by the serialization cache byte budget",
      obs::Provenance::kSim,
      [gen] { return gen->serialize_cache_stats().evicted_bytes; },
      base_labels);
  reg->AddCallbackCounter(
      "rcb_serialize_cache_hit_bytes",
      "Raw payload bytes served by splicing cached spans",
      obs::Provenance::kSim,
      [gen] { return gen->serialize_cache_stats().hit_bytes; }, base_labels);
  reg->AddCallbackCounter(
      "rcb_serialize_cache_miss_bytes",
      "Raw payload bytes serialized without a cached span",
      obs::Provenance::kSim,
      [gen] { return gen->serialize_cache_stats().miss_bytes; }, base_labels);
  reg->AddCallbackGauge(
      "rcb_serialize_cache_bytes",
      "Bytes currently held by the serialization cache (raw + escaped)",
      obs::Provenance::kSim,
      [gen] {
        return static_cast<double>(gen->serialize_cache_stats().bytes);
      },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_serialize_cache_spans",
      "Spans currently held by the serialization cache",
      obs::Provenance::kSim,
      [gen] {
        return static_cast<double>(gen->serialize_cache_stats().spans);
      },
      base_labels);

  // Clone arena (src/util/arena.h): allocation traffic plus block footprint.
  // Quarantines should stay 0 in a healthy agent — nonzero means a Reset ran
  // while spans into the arena were still live.
  reg->AddCallbackCounter(
      "rcb_arena_allocations", "Node allocations served by the clone arena",
      obs::Provenance::kSim,
      [gen] { return gen->arena_stats().allocations; }, base_labels);
  reg->AddCallbackCounter(
      "rcb_arena_allocated_bytes", "Bytes allocated from the clone arena",
      obs::Provenance::kSim,
      [gen] { return gen->arena_stats().allocated_bytes; }, base_labels);
  reg->AddCallbackCounter(
      "rcb_arena_resets", "Arena resets (one per generation)",
      obs::Provenance::kSim, [gen] { return gen->arena_stats().resets; },
      base_labels);
  reg->AddCallbackCounter(
      "rcb_arena_quarantines",
      "Blocks quarantined by a reset with live allocations",
      obs::Provenance::kSim, [gen] { return gen->arena_stats().quarantines; },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_arena_block_bytes", "Bytes currently reserved in arena blocks",
      obs::Provenance::kSim,
      [gen] { return static_cast<double>(gen->arena_stats().block_bytes); },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_arena_live", "Arena allocations currently outstanding",
      obs::Provenance::kSim,
      [gen] { return static_cast<double>(gen->arena_stats().live); },
      base_labels);

  // Session shape gauges.
  reg->AddCallbackGauge(
      "rcb_agent_participants", "Participants on the roster",
      obs::Provenance::kSim,
      [this] { return static_cast<double>(participants_.size()); },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_agent_streams", "Held push streams", obs::Provenance::kSim,
      [this] { return static_cast<double>(streams_.size()); }, base_labels);
  reg->AddCallbackGauge(
      "rcb_agent_pending_actions", "Actions awaiting host confirmation",
      obs::Provenance::kSim,
      [this] { return static_cast<double>(pending_actions_.size()); },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_agent_last_snapshot_bytes", "Serialized size of the last snapshot",
      obs::Provenance::kSim,
      [this] { return static_cast<double>(metrics_.last_snapshot_bytes); },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_agent_last_generation_us",
      "CPU time of the last Fig. 3 pipeline run (M5)", obs::Provenance::kWall,
      [this] { return static_cast<double>(metrics_.last_generation_time.micros()); },
      base_labels);
  reg->AddCallbackGauge(
      "rcb_agent_total_generation_us",
      "Cumulative CPU time of all Fig. 3 pipeline runs",
      obs::Provenance::kWall, [this] {
        return static_cast<double>(metrics_.total_generation_time.micros());
      },
      base_labels);

  // Trace-log health: span counts are a pure function of the simulated
  // schedule even though span durations are wall time.
  reg->AddCallbackCounter("rcb_agent_trace_spans",
                          "Spans appended to the trace ring",
                          obs::Provenance::kSim,
                          [this] { return trace_.total_appended(); },
                          base_labels);
  reg->AddCallbackCounter("rcb_agent_trace_dropped",
                          "Spans evicted from the trace ring",
                          obs::Provenance::kSim,
                          [this] { return trace_.dropped(); }, base_labels);
  // Canonical ring-health names shared with the snippet registry (the
  // rcb_agent_trace_* pair above predates them and is kept for dashboards).
  reg->AddCallbackCounter("rcb_trace_dropped_total",
                          "Spans evicted from the trace ring",
                          obs::Provenance::kSim,
                          [this] { return trace_.dropped(); }, base_labels);
  reg->AddCallbackGauge(
      "rcb_trace_retained", "Spans currently retained by the trace ring",
      obs::Provenance::kSim,
      [this] { return static_cast<double>(trace_.size()); }, base_labels);
  // Flight recorder (DESIGN.md §11): per-trigger counts plus artifacts
  // actually written (0 unless a dump directory is configured).
  static constexpr const char* kAgentTriggers[3] = {"resync", "auth_failure",
                                                    "overload"};
  for (const char* trigger : kAgentTriggers) {
    reg->AddCallbackCounter(
        "rcb_flight_triggers_total", "Flight-recorder trigger firings",
        obs::Provenance::kSim,
        [this, trigger] { return flight_.triggers(trigger); },
        ComposedLabels(StrFormat("trigger=\"%s\"", trigger)));
  }
  reg->AddCallbackCounter("rcb_flight_dumps_written",
                          "Flight-recorder JSONL artifacts written",
                          obs::Provenance::kSim,
                          [this] { return flight_.dumps_written(); },
                          base_labels);

  // Histograms. Stage and request CPU times are wall provenance; the
  // serialized snapshot size is sim provenance (deterministic bytes).
  static constexpr const char* kStageLabels[6] = {
      "stage=\"clone\"",         "stage=\"absolutize\"",
      "stage=\"cache_rewrite\"", "stage=\"event_rewrite\"",
      "stage=\"extract\"",       "stage=\"serialize\""};
  for (size_t i = 0; i < 6; ++i) {
    stage_hist_[i] = reg->AddHistogram(
        "rcb_agent_gen_stage_us",
        "CPU microseconds per Fig. 3 snapshot-pipeline stage",
        obs::Provenance::kWall, obs::LatencyBoundsUs(),
        ComposedLabels(kStageLabels[i]));
  }
  generation_us_ = reg->AddHistogram(
      "rcb_agent_generation_us",
      "CPU microseconds per whole Fig. 3 pipeline run (M5)",
      obs::Provenance::kWall, obs::LatencyBoundsUs(), base_labels);
  snapshot_bytes_ = reg->AddHistogram(
      "rcb_agent_snapshot_bytes", "Serialized snapshot XML bytes (M2)",
      obs::Provenance::kSim, obs::SizeBoundsBytes(), base_labels);
  hmac_verify_us_ = reg->AddHistogram(
      "rcb_agent_hmac_verify_us",
      "CPU microseconds per HMAC request verification (§3.4)",
      obs::Provenance::kWall, obs::LatencyBoundsUs(), base_labels);
  patch_ops_ = reg->AddHistogram(
      "rcb_agent_patch_ops", "Tree-diff ops per served patch",
      obs::Provenance::kSim, obs::CountBounds(), base_labels);
  patch_bytes_ = reg->AddHistogram(
      "rcb_agent_patch_bytes", "Serialized bytes per served patch response",
      obs::Provenance::kSim, obs::SizeBoundsBytes(), base_labels);
  sync_latency_us_ = reg->AddHistogram(
      "rcb_agent_sync_latency_us",
      "Simulated microseconds from document version stamp to content served",
      obs::Provenance::kSim, obs::LatencyBoundsUs(), base_labels);
  static constexpr const char* kRequestLabels[6] = {
      "type=\"poll\"",   "type=\"new_connection\"", "type=\"object\"",
      "type=\"status\"", "type=\"metrics\"",        "type=\"other\""};
  for (size_t i = 0; i < 6; ++i) {
    request_hist_[i] = reg->AddHistogram(
        "rcb_agent_request_us",
        "CPU microseconds handling one request, by Fig. 2 class",
        obs::Provenance::kWall, obs::LatencyBoundsUs(),
        ComposedLabels(kRequestLabels[i]));
  }
}

RcbAgent::~RcbAgent() { Stop(); }

Status RcbAgent::Start() {
  if (running_) {
    return FailedPreconditionError("agent already running");
  }
  RCB_RETURN_IF_ERROR(browser_->network()->Listen(
      browser_->machine(), config_.port,
      [this](NetEndpoint* endpoint) { OnAccept(endpoint); }));
  browser_->SetDocumentChangeListener([this] { OnDocumentChange(); });
  if (config_.limits.cache_byte_budget > 0) {
    browser_->cache().set_byte_budget(config_.limits.cache_byte_budget);
  }
  last_activity_ = browser_->loop()->now();
  running_ = true;
  // A restored agent (RestoreState set has_version_) keeps its checkpointed
  // version instead of stamping a fresh one over it.
  if (browser_->has_page() && !has_version_) {
    OnDocumentChange();
  }
  return Status::Ok();
}

void RcbAgent::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  browser_->network()->StopListening(browser_->machine(), config_.port);
  browser_->SetDocumentChangeListener(nullptr);
  // Parked long-polls ride connections_ records; cancel their hold timers
  // before the shared connection teardown below closes the sockets.
  for (auto& [pid, parked] : parked_) {
    browser_->loop()->Cancel(parked.deadline_id);
  }
  parked_.clear();
  for (auto& conn : connections_) {
    DisarmReadDeadline(conn.get());
    if (conn->endpoint != nullptr) {
      conn->endpoint->Close();
    }
  }
  connections_.clear();
  // Stream endpoints are detached from connections_ on upgrade; closing our
  // own side does not re-enter their close handlers.
  for (auto& [pid, endpoint] : streams_) {
    endpoint->Close();
  }
  streams_.clear();
  for (auto& [pid, stream] : framed_streams_) {
    stream.endpoint->Close();
  }
  framed_streams_.clear();
  if (hb_timer_armed_) {
    browser_->loop()->Cancel(hb_timer_id_);
    hb_timer_armed_ = false;
  }
}

HttpResponse RcbAgent::HandleHostRequest(const HttpRequest& request) {
  // The front-door router is synchronous: it cannot hold this connection, so
  // transport upgrades (grants and parking) are suppressed for its requests.
  front_door_request_ = true;
  HttpResponse response = HandleRequest(request);
  front_door_request_ = false;
  park_intent_.reset();  // defensive: parking is suppressed above
  return response;
}

Url RcbAgent::AgentUrl() const {
  return Url::Make("http", browser_->machine(), config_.port, "/");
}

Duration RcbAgent::JitteredRetryAfter(Duration base, std::string_view key) const {
  int64_t window_ms = config_.limits.retry_after_jitter.millis();
  if (window_ms <= 0) {
    return base;
  }
  return base + Duration::Millis(static_cast<int64_t>(
                    StableHash64(key) %
                    static_cast<uint64_t>(window_ms + 1)));
}

AgentStateExport RcbAgent::ExportState() const {
  AgentStateExport state;
  state.doc_time_ms = current_doc_time_ms_;
  state.has_version = has_version_;
  state.next_pid = next_pid_;
  if (browser_->has_page()) {
    state.document_html = SerializeNode(*browser_->document());
    state.document_url = browser_->current_url().ToString();
  }
  for (const auto& [pid, participant] : participants_) {
    state.participants.push_back(ParticipantExport{
        pid, participant.doc_time_ms, participant.last_seq,
        participant.timeouts_reported, participant.polls});
  }
  for (const PendingAction& pending : pending_actions_) {
    state.pending_actions.push_back(
        PendingActionExport{pending.participant_id, pending.action});
  }
  return state;
}

Status RcbAgent::RestoreState(const AgentStateExport& state) {
  if (running_) {
    return FailedPreconditionError("restore requires a stopped agent");
  }
  restoring_ = true;
  if (!state.document_html.empty()) {
    auto url = Url::Parse(state.document_url);
    if (!url.ok()) {
      restoring_ = false;
      return InvalidArgumentError("restore: bad document url");
    }
    browser_->ReplaceDocument(ParseDocument(state.document_html), *url);
  }
  current_doc_time_ms_ = state.doc_time_ms;
  has_version_ = state.has_version;
  next_pid_ = state.next_pid;
  broadcast_->Invalidate();
  participants_.clear();
  for (const ParticipantExport& exported : state.participants) {
    ParticipantState& participant = EnsureParticipant(exported.pid);
    // The participant's DOM is untrusted after the gap: -1 forces the
    // full-snapshot resync path on its first post-recovery poll. The
    // anti-replay mark and counters come back exactly.
    participant.doc_time_ms = -1;
    participant.last_seq = exported.last_seq;
    participant.timeouts_reported = exported.timeouts_reported;
    participant.polls = exported.polls;
    participant.last_poll = browser_->loop()->now();  // reap grace period
  }
  pending_actions_.clear();
  for (const PendingActionExport& pending : state.pending_actions) {
    pending_actions_.push_back(PendingAction{pending.pid, pending.action});
  }
  restoring_ = false;
  return Status::Ok();
}

void RcbAgent::OnAccept(NetEndpoint* endpoint) {
  // Admission control: past the connection cap, answer a tiny 503 and close
  // instead of dedicating parser/timer state to the socket.
  if (config_.limits.max_connections > 0 &&
      connections_.size() + streams_.size() + framed_streams_.size() >=
          config_.limits.max_connections) {
    ++metrics_.connections_rejected;
    endpoint->Send(
        HttpResponse::ServiceUnavailable(
            JitteredRetryAfter(
                config_.poll_interval,
                StrFormat("conn%llu", static_cast<unsigned long long>(
                                          metrics_.connections_rejected))),
            "connection limit reached")
            .Serialize());
    endpoint->Close();
    return;
  }
  auto conn = std::make_unique<AgentConn>();
  conn->endpoint = endpoint;
  conn->parser.set_limits({config_.limits.max_request_head_bytes,
                           config_.limits.max_request_body_bytes});
  AgentConn* raw = conn.get();
  endpoint->SetDataHandler(
      [this, raw](std::string_view data) { OnConnData(raw, data); });
  endpoint->SetCloseHandler([this, raw] { RemoveConnection(raw); });
  connections_.push_back(std::move(conn));
}

void RcbAgent::RemoveConnection(AgentConn* conn) {
  DisarmReadDeadline(conn);
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (it->get() == conn) {
      connections_.erase(it);
      return;
    }
  }
}

void RcbAgent::DisarmReadDeadline(AgentConn* conn) {
  if (conn->read_deadline_armed) {
    browser_->loop()->Cancel(conn->read_deadline_id);
    conn->read_deadline_armed = false;
  }
}

void RcbAgent::OnConnData(AgentConn* conn, std::string_view data) {
  std::string_view remaining = data;
  while (true) {
    auto result = conn->parser.Feed(remaining);
    remaining = {};
    if (!result.ok()) {
      NetEndpoint* endpoint = conn->endpoint;
      if (result.status().code() == StatusCode::kResourceExhausted) {
        // Oversized head or declared body: reject cleanly with 413 instead of
        // buffering toward it.
        ++metrics_.oversized_rejected;
        endpoint->Send(HttpResponse::PayloadTooLarge(result.status().message())
                           .Serialize());
      } else {
        RCB_LOG(kWarning) << "rcb-agent: malformed request: " << result.status();
      }
      RemoveConnection(conn);  // `conn` is destroyed here
      endpoint->Close();
      return;
    }
    if (!result->has_value()) {
      // A partial request is buffered: ensure a read deadline covers it. The
      // deadline is armed once per request and deliberately NOT re-armed by
      // later fragments, so a slow-loris drip cannot keep the socket alive.
      if (config_.limits.idle_read_timeout > Duration::Zero() &&
          conn->parser.mid_message() && !conn->read_deadline_armed) {
        conn->read_deadline_armed = true;
        conn->read_deadline_id = browser_->loop()->Schedule(
            config_.limits.idle_read_timeout, [this, conn] {
              conn->read_deadline_armed = false;
              ++metrics_.idle_read_timeouts;
              NetEndpoint* endpoint = conn->endpoint;
              RemoveConnection(conn);
              endpoint->Close();
            });
      }
      return;
    }
    DisarmReadDeadline(conn);
    const HttpRequest& request = **result;
    if (request.method == HttpMethod::kGet && request.Path() == "/stream") {
      HandleStreamRequest(conn, request);
      return;  // connection is now a held stream (or closed), never reused
    }
    if (request.method == HttpMethod::kGet && request.Path() == "/frames") {
      HandleFramesRequest(conn, request);
      return;  // connection is now a held framed stream (or closed)
    }
    HttpResponse response = HandleRequest(request);
    if (park_intent_.has_value()) {
      // The poll found nothing to send and both sides hold the long-poll
      // capability: hold the connection instead of answering (DESIGN.md §15).
      ParkIntent intent = std::move(*park_intent_);
      park_intent_.reset();
      ParkPoll(conn, std::move(intent));
      return;
    }
    conn->endpoint->Send(response.Serialize());
  }
}

void RcbAgent::OnDocumentChange() {
  if (restoring_) {
    return;  // RestoreState installs the checkpointed version itself
  }
  int64_t now_ms = browser_->loop()->now().millis();
  current_doc_time_ms_ =
      now_ms > current_doc_time_ms_ ? now_ms : current_doc_time_ms_ + 1;
  broadcast_->Invalidate();
  has_version_ = true;
  ++metrics_.doc_updates;
  if (config_.state_observer != nullptr) {
    config_.state_observer->OnDocVersion(current_doc_time_ms_);
  }
  if (config_.sync_model == SyncModel::kPush && !streams_.empty()) {
    SchedulePushFlush();
  }
  if (!parked_.empty() || !framed_streams_.empty()) {
    ScheduleTransportFlush();
  }
}

void RcbAgent::SchedulePushFlush() {
  if (push_flush_pending_) {
    // Drop-oldest: the version that was pending is superseded before it was
    // ever serialized; only the newest one will go out.
    ++metrics_.snapshots_shed;
    return;
  }
  push_flush_pending_ = true;
  browser_->loop()->Schedule(Duration::Zero(), [this] {
    push_flush_pending_ = false;
    if (running_) {
      PushToStreams();
    }
  });
}

std::string RcbAgent::MultipartPart(const std::string& xml) {
  std::string part = "--rcbpart\r\nContent-Type: application/xml\r\n";
  part += StrFormat("Content-Length: %zu\r\n\r\n", xml.size());
  part += xml;
  part += "\r\n";
  return part;
}

void RcbAgent::HandleStreamRequest(AgentConn* conn, const HttpRequest& request) {
  last_activity_ = browser_->loop()->now();
  if (config_.sync_model != SyncModel::kPush) {
    conn->endpoint->Send(
        HttpResponse::BadRequest("agent runs in poll mode").Serialize());
    return;
  }
  if (!VerifyRequestAuth(request)) {
    ++metrics_.auth_failures;
    conn->endpoint->Send(
        HttpResponse::Forbidden("request authentication failed").Serialize());
    return;
  }
  auto params = request.QueryParams();
  auto pid_it = params.find("pid");
  if (pid_it == params.end() || pid_it->second.empty()) {
    conn->endpoint->Send(HttpResponse::BadRequest("missing pid").Serialize());
    return;
  }
  std::string pid = pid_it->second;
  if (!ParticipantAdmissible(pid)) {
    ++metrics_.participants_rejected;
    conn->endpoint->Send(
        HttpResponse::ServiceUnavailable(
            JitteredRetryAfter(config_.poll_interval, pid),
            "participant limit reached")
            .Serialize());
    return;
  }
  EnsureParticipant(pid).last_poll = browser_->loop()->now();
  NetEndpoint* endpoint = conn->endpoint;
  streams_[pid] = endpoint;
  // The socket stops being a request connection: detach its parser record so
  // the connection cap and read deadline no longer apply to it.
  endpoint->SetDataHandler(nullptr);
  RemoveConnection(conn);
  endpoint->SetCloseHandler([this, pid] {
    streams_.erase(pid);
    RemoveParticipant(pid);
  });
  // Multipart head; parts follow on every change — no Content-Length, the
  // connection stays open ("multipart/x-mixed-replace", §3.2.3).
  endpoint->Send(
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: multipart/x-mixed-replace; boundary=rcbpart\r\n\r\n");
  // If content already exists, deliver it right away; likewise anything that
  // was broadcast into this participant's outbox before the stream opened.
  if (has_version_) {
    SnapshotSlot& slot = RefreshSlot(CacheModeFor(pid), /*count_reuse=*/true);
    participants_[pid].doc_time_ms = current_doc_time_ms_;
    ++metrics_.polls_with_content;
    metrics_.content_bytes_sent += slot.xml.size();
    endpoint->Send(MultipartPart(slot.xml));
  }
  PushOutbox(pid);
}

void RcbAgent::PushToStreams() {
  for (auto& [pid, endpoint] : streams_) {
    auto participant_it = participants_.find(pid);
    if (participant_it == participants_.end()) {
      continue;
    }
    ParticipantState& participant = participant_it->second;
    if (participant.doc_time_ms >= current_doc_time_ms_) {
      continue;
    }
    SnapshotSlot& slot = RefreshSlot(CacheModeFor(pid), /*count_reuse=*/true);
    participant.doc_time_ms = current_doc_time_ms_;
    participant.last_poll = browser_->loop()->now();
    RecordContentServed("");
    if (participant.outbox.empty()) {
      metrics_.content_bytes_sent += slot.xml.size();
      endpoint->Send(MultipartPart(slot.xml));
    } else {
      // Per-participant flavour: same shared snapshot, this poller's outbox
      // appended. The prescaped slot spans make this a splice, not a page
      // re-escape, and override_actions avoids copying the Snapshot.
      std::vector<UserAction> actions = std::move(participant.outbox);
      participant.outbox.clear();
      std::string xml = SerializeSnapshotXml(
          slot.snapshot, nullptr,
          slot.escaped.has_content ? &slot.escaped : nullptr, &actions);
      metrics_.content_bytes_sent += xml.size();
      endpoint->Send(MultipartPart(xml));
    }
    ++metrics_.polls_with_content;
  }
}

void RcbAgent::PushOutbox(const std::string& pid) {
  auto stream_it = streams_.find(pid);
  auto participant_it = participants_.find(pid);
  if (stream_it == streams_.end() || participant_it == participants_.end() ||
      participant_it->second.outbox.empty()) {
    return;
  }
  Snapshot actions_only;
  actions_only.doc_time_ms = participant_it->second.doc_time_ms;
  actions_only.has_content = false;
  actions_only.user_actions = std::move(participant_it->second.outbox);
  participant_it->second.outbox.clear();
  stream_it->second->Send(MultipartPart(SerializeSnapshotXml(actions_only)));
}

// ---------------------------------------------------------------------------
// Streamed transport (DESIGN.md §15): held long-polls and framed streams.
// ---------------------------------------------------------------------------

void RcbAgent::ParkPoll(AgentConn* conn, ParkIntent intent) {
  const std::string pid = intent.pid;
  ParkedPoll parked;
  parked.conn = conn;
  parked.grant = std::move(intent.grant);
  parked.acked_doc_time_ms = intent.acked_doc_time_ms;
  parked.patch = intent.patch;
  parked.deadline_id = browser_->loop()->Schedule(
      config_.transport.long_poll_hold,
      [this, pid] { ReleaseParkedPoll(pid, /*expired=*/true); });
  // The socket stays a tracked connection (cap + shutdown still apply); only
  // the close handler changes so a client-side drop forgets the hold.
  conn->endpoint->SetCloseHandler([this, conn, pid] {
    auto it = parked_.find(pid);
    if (it != parked_.end() && it->second.conn == conn) {
      browser_->loop()->Cancel(it->second.deadline_id);
      parked_.erase(it);
    }
    RemoveConnection(conn);
  });
  parked_[pid] = std::move(parked);
}

void RcbAgent::ReleaseParkedPoll(const std::string& pid, bool expired) {
  auto it = parked_.find(pid);
  if (it == parked_.end()) {
    return;
  }
  ParkedPoll parked = std::move(it->second);
  parked_.erase(it);
  if (!expired) {
    browser_->loop()->Cancel(parked.deadline_id);
  }
  std::string body;
  auto participant_it = participants_.find(pid);
  if (participant_it != participants_.end()) {
    ParticipantState& participant = participant_it->second;
    participant.last_poll = browser_->loop()->now();
    std::vector<UserAction> outbox = std::move(participant.outbox);
    participant.outbox.clear();
    if (has_version_ && participant.doc_time_ms < current_doc_time_ms_) {
      body = BuildContentBody(pid, parked.acked_doc_time_ms, parked.patch,
                              std::move(outbox));
      participant.doc_time_ms = current_doc_time_ms_;
      ++metrics_.polls_with_content;
      ++metrics_.transport_long_poll_flushes;
    } else if (!outbox.empty()) {
      Snapshot actions_only;
      actions_only.doc_time_ms = participant.doc_time_ms;
      actions_only.has_content = false;
      actions_only.user_actions = std::move(outbox);
      body = SerializeSnapshotXml(actions_only);
      ++metrics_.polls_with_content;
      ++metrics_.transport_long_poll_flushes;
    } else {
      // Counted as a transport expiry only — disjoint from polls_empty
      // (classic empty replies), so transport::WastedPolls sums each wasted
      // round trip exactly once.
      ++metrics_.transport_long_poll_expiries;
    }
  } else {
    ++metrics_.transport_long_poll_expiries;
  }
  HttpResponse response = HttpResponse::Ok("application/xml", body);
  response.headers.Set("RCB-Transport", parked.grant);
  AgentConn* conn = parked.conn;
  conn->endpoint->SetCloseHandler([this, conn] { RemoveConnection(conn); });
  conn->endpoint->Send(response.Serialize());
}

void RcbAgent::RecordContentServed(std::string_view trace_id) {
  // Health-plane sync latency: document version stamp -> content on the
  // wire, in sim time. Fed to the always-on windowed tracker and (when
  // registered) the exemplar-carrying registry histogram, so a p99 spike
  // names the trace that caused it.
  int64_t now_us = browser_->loop()->now().micros();
  int64_t latency_us = now_us - current_doc_time_ms_ * 1000;
  if (latency_us < 0) {
    latency_us = 0;
  }
  health_.RecordSyncLatency(latency_us, now_us, trace_id);
  if (sync_latency_us_ != nullptr) {
    sync_latency_us_->RecordExemplar(latency_us, trace_id, now_us);
  }
}

std::string RcbAgent::BuildContentBody(const std::string& pid, int64_t acked,
                                       bool patch_capable,
                                       std::vector<UserAction> outbox) {
  // The transport-side twin of HandlePoll's content path: same delta guard,
  // same shared-snapshot fast path, same spliced per-participant flavour —
  // so a parked release or data frame carries the exact poll-reply bytes.
  SnapshotSlot& slot = RefreshSlot(CacheModeFor(pid), /*count_reuse=*/true);
  // Exemplar trace for transport-pushed content: the frame spans' synthetic
  // transport-<pid> chain (SendFrame), unless a traced poll is in flight.
  std::string transport_trace;
  if (!trace_ctx_.active() && config_.enable_trace) {
    transport_trace = "transport-" + pid;
  }
  RecordContentServed(trace_ctx_.active() ? std::string_view(trace_ctx_.trace_id)
                                          : std::string_view(transport_trace));
  if (config_.enable_delta && patch_capable && acked >= 0) {
    std::optional<std::string> patch_xml =
        broadcast_->MaybeBuildPatchResponse(slot, acked, &outbox, trace_ctx_);
    SyncBroadcastCounters();
    if (patch_xml) {
      ++metrics_.patches_served;
      metrics_.patch_bytes_sent += patch_xml->size();
      metrics_.patch_snapshot_bytes += slot.xml.size();
      metrics_.content_bytes_sent += patch_xml->size();
      if (patch_bytes_ != nullptr) {
        patch_bytes_->Record(static_cast<int64_t>(patch_xml->size()));
      }
      return *patch_xml;
    }
  }
  if (outbox.empty()) {
    metrics_.content_bytes_sent += slot.xml.size();
    return slot.xml;
  }
  std::string xml = SerializeSnapshotXml(
      slot.snapshot, nullptr,
      slot.escaped.has_content ? &slot.escaped : nullptr, &outbox);
  metrics_.content_bytes_sent += xml.size();
  return xml;
}

void RcbAgent::HandleFramesRequest(AgentConn* conn, const HttpRequest& request) {
  last_activity_ = browser_->loop()->now();
  if (!config_.transport.enable_stream ||
      config_.sync_model != SyncModel::kPoll) {
    conn->endpoint->Send(
        HttpResponse::BadRequest("streamed transport disabled").Serialize());
    return;
  }
  if (!VerifyRequestAuth(request)) {
    ++metrics_.auth_failures;
    flight_.Trigger("auth_failure", browser_->loop()->now().micros());
    conn->endpoint->Send(
        HttpResponse::Forbidden("request authentication failed").Serialize());
    return;
  }
  auto params = request.QueryParams();
  auto pid_it = params.find("pid");
  if (pid_it == params.end() || pid_it->second.empty()) {
    conn->endpoint->Send(HttpResponse::BadRequest("missing pid").Serialize());
    return;
  }
  std::string pid = pid_it->second;
  if (!ParticipantAdmissible(pid)) {
    ++metrics_.participants_rejected;
    conn->endpoint->Send(
        HttpResponse::ServiceUnavailable(
            JitteredRetryAfter(config_.poll_interval, pid),
            "participant limit reached")
            .Serialize());
    return;
  }
  const bool replacing = framed_streams_.contains(pid);
  if (!replacing &&
      framed_streams_.size() + parked_.size() >= config_.transport.max_held) {
    ++metrics_.transport_capacity_denials;
    conn->endpoint->Send(
        HttpResponse::ServiceUnavailable(
            JitteredRetryAfter(config_.poll_interval, pid),
            "held transport limit reached")
            .Serialize());
    return;
  }
  if (replacing) {
    // A reconnect raced the close of the previous stream: drop the old one
    // silently — closing our own side does not re-enter its close handler.
    framed_streams_[pid].endpoint->Close();
    framed_streams_.erase(pid);
  }
  ParticipantState& participant = EnsureParticipant(pid);
  participant.last_poll = browser_->loop()->now();
  NetEndpoint* endpoint = conn->endpoint;
  // The socket stops being a request connection: detach its parser record so
  // the connection cap and read deadline no longer apply to it.
  endpoint->SetDataHandler(nullptr);
  RemoveConnection(conn);
  // A dropped stream is not a goodbye: the participant resumes by polling or
  // via the signed /resume handshake; true silence is handled by reaping.
  endpoint->SetCloseHandler([this, pid] { framed_streams_.erase(pid); });
  endpoint->Send(
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: application/x-rcb-frames\r\n\r\n");
  FramedStream& stream = framed_streams_[pid];
  stream.endpoint = endpoint;
  stream.next_seq = 1;
  stream.last_frame = browser_->loop()->now();
  ++metrics_.transport_streams_opened;
  SendFrame(pid, stream, transport::FrameType::kHello,
            StrFormat("hb=%lld",
                      static_cast<long long>(
                          config_.transport.heartbeat_interval.millis())));
  // If content already exists, deliver it right away; likewise anything that
  // was broadcast into this participant's outbox before the stream opened.
  std::vector<UserAction> outbox = std::move(participant.outbox);
  participant.outbox.clear();
  if (has_version_ && participant.doc_time_ms < current_doc_time_ms_) {
    std::string body =
        BuildContentBody(pid, /*acked=*/-1, /*patch_capable=*/false,
                         std::move(outbox));
    participant.doc_time_ms = current_doc_time_ms_;
    ++metrics_.polls_with_content;
    SendFrame(pid, stream, transport::FrameType::kData, std::move(body));
  } else if (!outbox.empty()) {
    Snapshot actions_only;
    actions_only.doc_time_ms = participant.doc_time_ms;
    actions_only.has_content = false;
    actions_only.user_actions = std::move(outbox);
    ++metrics_.polls_with_content;
    SendFrame(pid, stream, transport::FrameType::kData,
              SerializeSnapshotXml(actions_only));
  }
  ArmHeartbeatTimer();
}

void RcbAgent::SendFrame(const std::string& pid, FramedStream& stream,
                         transport::FrameType type, std::string body) {
  transport::Frame frame;
  frame.type = type;
  frame.seq = stream.next_seq++;
  frame.body = std::move(body);
  std::string wire = transport::EncodeFrame(frame, config_.session_key);
  stream.last_frame = browser_->loop()->now();
  metrics_.transport_frame_bytes_sent += wire.size();
  if (type == transport::FrameType::kHeartbeat) {
    ++metrics_.transport_heartbeats_sent;
  } else {
    ++metrics_.transport_frames_sent;
  }
  if (config_.enable_trace) {
    trace_.Append(
        "transport.frame", obs::Provenance::kSim,
        browser_->loop()->now().micros(), 0,
        obs::TraceContext{StrFormat("transport-%s", pid.c_str()), 0},
        {{"type", std::string(transport::FrameTypeName(type))},
         {"seq", StrFormat("%llu", static_cast<unsigned long long>(frame.seq))},
         {"bytes", StrFormat("%zu", wire.size())}});
  }
  stream.endpoint->Send(wire);
}

void RcbAgent::ScheduleTransportFlush() {
  if (transport_flush_pending_) {
    // Drop-oldest, exactly like the push path: the superseded version was
    // never serialized for these receivers.
    ++metrics_.snapshots_shed;
    return;
  }
  transport_flush_pending_ = true;
  browser_->loop()->Schedule(Duration::Zero(), [this] {
    transport_flush_pending_ = false;
    if (running_) {
      FlushTransport();
    }
  });
}

void RcbAgent::FlushTransport() {
  // Releasing a parked poll erases it from parked_: snapshot the keys first.
  std::vector<std::string> held;
  held.reserve(parked_.size());
  for (const auto& [pid, parked] : parked_) {
    held.push_back(pid);
  }
  for (const std::string& pid : held) {
    ReleaseParkedPoll(pid, /*expired=*/false);
  }
  FlushFramedStreams();
}

void RcbAgent::FlushFramedStreams() {
  for (auto& [pid, stream] : framed_streams_) {
    auto participant_it = participants_.find(pid);
    if (participant_it == participants_.end()) {
      continue;
    }
    ParticipantState& participant = participant_it->second;
    if (!has_version_ || participant.doc_time_ms >= current_doc_time_ms_) {
      continue;
    }
    std::vector<UserAction> outbox = std::move(participant.outbox);
    participant.outbox.clear();
    std::string body = BuildContentBody(pid, /*acked=*/-1,
                                        /*patch_capable=*/false,
                                        std::move(outbox));
    participant.doc_time_ms = current_doc_time_ms_;
    participant.last_poll = browser_->loop()->now();
    ++metrics_.polls_with_content;
    SendFrame(pid, stream, transport::FrameType::kData, std::move(body));
  }
}

void RcbAgent::KickTransport(const std::string& pid) {
  auto participant_it = participants_.find(pid);
  if (participant_it == participants_.end() ||
      participant_it->second.outbox.empty()) {
    return;
  }
  if (auto stream_it = framed_streams_.find(pid);
      stream_it != framed_streams_.end()) {
    Snapshot actions_only;
    actions_only.doc_time_ms = participant_it->second.doc_time_ms;
    actions_only.has_content = false;
    actions_only.user_actions = std::move(participant_it->second.outbox);
    participant_it->second.outbox.clear();
    SendFrame(pid, stream_it->second, transport::FrameType::kData,
              SerializeSnapshotXml(actions_only));
    return;
  }
  if (parked_.contains(pid)) {
    ReleaseParkedPoll(pid, /*expired=*/false);
  }
}

void RcbAgent::ArmHeartbeatTimer() {
  // Armed only while framed streams are held: a perpetual timer would keep
  // the simulated event queue non-empty forever.
  if (hb_timer_armed_ || framed_streams_.empty() || !running_ ||
      config_.transport.heartbeat_interval <= Duration::Zero()) {
    return;
  }
  hb_timer_armed_ = true;
  hb_timer_id_ = browser_->loop()->Schedule(
      config_.transport.heartbeat_interval, [this] { HeartbeatTick(); });
}

void RcbAgent::HeartbeatTick() {
  hb_timer_armed_ = false;
  if (!running_ || framed_streams_.empty()) {
    return;  // the timer drains; re-armed when the next stream opens
  }
  SimTime now = browser_->loop()->now();
  for (auto& [pid, stream] : framed_streams_) {
    if (now - stream.last_frame >= config_.transport.heartbeat_interval) {
      SendFrame(pid, stream, transport::FrameType::kHeartbeat, "");
    }
  }
  ArmHeartbeatTimer();
}

bool RcbAgent::CacheModeFor(const std::string& pid) const {
  if (config_.participant_cache_mode) {
    return config_.participant_cache_mode(pid);
  }
  return config_.cache_mode;
}

RcbAgent::SnapshotSlot& RcbAgent::RefreshSlot(bool cache_mode, bool count_reuse) {
  SnapshotSlot& slot = broadcast_->Refresh(cache_mode, count_reuse,
                                           current_doc_time_ms_, AgentUrl(),
                                           trace_ctx_);
  SyncBroadcastCounters();
  return slot;
}

void RcbAgent::SyncBroadcastCounters() {
  const BroadcastCounters& c = broadcast_->counters();
  metrics_.generations = c.generations;
  metrics_.snapshot_reuses = c.snapshot_reuses;
  metrics_.patch_fallback_no_base = c.patch_fallback_no_base;
  metrics_.patch_fallback_oversize = c.patch_fallback_oversize;
  metrics_.snapshot_bytes_raw = c.snapshot_bytes_raw;
  metrics_.snapshot_bytes_escaped = c.snapshot_bytes_escaped;
  metrics_.last_generation_time = c.last_generation_time;
  metrics_.total_generation_time = c.total_generation_time;
  metrics_.last_snapshot_bytes = c.last_snapshot_bytes;
}

void RcbAgent::RefreshSnapshotIfNeeded() { RefreshSnapshot(/*count_reuse=*/true); }

void RcbAgent::RefreshSnapshot(bool count_reuse) {
  RefreshSlot(config_.cache_mode, count_reuse);
}

const Snapshot& RcbAgent::CurrentSnapshotForTest() {
  // Introspection must not skew the reuse metric benchmarks report.
  return RefreshSlot(config_.cache_mode, /*count_reuse=*/false).snapshot;
}

HttpResponse RcbAgent::HandleRequest(const HttpRequest& request) {
  ++requests_handled_;
  HttpResponse response = DispatchRequest(request);
  // End-of-request health sampling: every counter delta this request caused
  // lands in the current window bucket, and alert edges fire here — a
  // deterministic event site, so windowed state double-runs bit-identically.
  obs::HealthSample sample;
  sample.requests = requests_handled_;
  sample.polls_received = metrics_.polls_received;
  sample.wasted_polls = transport::WastedPolls(
      {metrics_.polls_empty, metrics_.transport_long_poll_expiries});
  sample.resyncs = metrics_.resyncs;
  sample.auth_failures = metrics_.auth_failures;
  health_.Sample(sample, browser_->loop()->now().micros());
  return response;
}

HttpResponse RcbAgent::DispatchRequest(const HttpRequest& request) {
  last_activity_ = browser_->loop()->now();
  int64_t sim_now_us = last_activity_.micros();
  // Fig. 2: classify by method token and request-URI token. Each class gets
  // a wall span over its handler (request handling consumes zero simulated
  // time, so the sim timestamp only records *where* on the timeline it ran).
  if (request.method == HttpMethod::kPost) {
    // Causal root (DESIGN.md §11): with tracing enabled and a trace-stamped
    // poll, the classification span becomes the root of the agent-side chain
    // and everything below (HMAC verify, merge, generation, diff, response
    // markers) parents to it. Otherwise root_ctx stays inactive and this is
    // exactly the flat pre-causal span.
    obs::TraceContext root_ctx;
    if (config_.enable_trace) {
      root_ctx.trace_id = PeekTraceField(request.body);
    }
    obs::WallSpan span(&trace_, "agent.request.poll", sim_now_us,
                       request_hist_[0], &root_ctx);
    trace_ctx_ = obs::TraceContext{root_ctx.trace_id, span.span_id()};
    HttpResponse response = HandlePoll(request);
    trace_ctx_ = obs::TraceContext{};
    if (!pending_grant_.empty()) {
      // Capability answer (DESIGN.md §15): only successful poll responses
      // carry the grant; error paths stay byte-identical to classic polling.
      if (response.status_code == 200) {
        response.headers.Set("RCB-Transport", pending_grant_);
      }
      pending_grant_.clear();
    }
    pending_grant_longpoll_ = false;
    return response;
  }
  if (request.method == HttpMethod::kGet) {
    std::string path = request.Path();
    if (path == "/") {
      obs::WallSpan span(&trace_, "agent.request.new_connection", sim_now_us,
                         request_hist_[1]);
      return HandleNewConnection(request);
    }
    if (StartsWith(path, "/obj/")) {
      obs::WallSpan span(&trace_, "agent.request.object", sim_now_us,
                         request_hist_[2]);
      return HandleObjectRequest(request);
    }
    if (path == "/status") {
      obs::WallSpan span(&trace_, "agent.request.status", sim_now_us,
                         request_hist_[3]);
      return HandleStatusPage();
    }
    if (path == "/metrics") {
      obs::WallSpan span(&trace_, "agent.request.metrics", sim_now_us,
                         request_hist_[4]);
      return HandleMetrics(request);
    }
    if (path == "/health") {
      obs::WallSpan span(&trace_, "agent.request.health", sim_now_us,
                         request_hist_[4]);
      return HandleHealth(request);
    }
    obs::WallSpan span(&trace_, "agent.request.other", sim_now_us,
                       request_hist_[5]);
    return HttpResponse::NotFound(path);
  }
  obs::WallSpan span(&trace_, "agent.request.other", sim_now_us,
                     request_hist_[5]);
  return HttpResponse::BadRequest("unsupported method");
}

HttpResponse RcbAgent::HandleMetrics(const HttpRequest& request) {
  // The exposition names participants and counts their behaviour, so it is
  // authenticated exactly like polls (§3.4): anyone holding the session key
  // may scrape it.
  if (!VerifyRequestAuth(request)) {
    ++metrics_.auth_failures;
    flight_.Trigger("auth_failure", browser_->loop()->now().micros());
    return HttpResponse::Forbidden("request authentication failed");
  }
  obs::RenderOptions options;
  auto params = request.QueryParams();
  auto view = params.find("view");
  if (view != params.end() && view->second == "sim") {
    options.include_wall = false;  // deterministic subset only
  }
  return HttpResponse::Ok("text/plain; version=0.0.4; charset=utf-8",
                          effective_registry_->RenderPrometheus(options));
}

HttpResponse RcbAgent::HandleHealth(const HttpRequest& request) {
  // Same trust boundary as /metrics: the body names SLO state and trace ids.
  if (!VerifyRequestAuth(request)) {
    ++metrics_.auth_failures;
    flight_.Trigger("auth_failure", browser_->loop()->now().micros());
    return HttpResponse::Forbidden("request authentication failed");
  }
  return HttpResponse::Ok(
      "application/json",
      health_.ToJson(browser_->loop()->now().micros()) + "\n");
}

std::string RcbAgent::BuildInitialPage(const std::string& pid) const {
  std::string head;
  head += "<title>RCB co-browsing session</title>";
  head += "<script id=\"rcb-snippet\">";
  head += kSnippetSource;
  head += "</script>";
  head += StrFormat("<meta name=\"rcb-pid\" content=\"%s\">", pid.c_str());
  head += StrFormat("<meta name=\"rcb-poll-interval\" content=\"%lld\">",
                    static_cast<long long>(config_.poll_interval.millis()));
  head += StrFormat("<meta name=\"rcb-cache-mode\" content=\"%s\">",
                    config_.cache_mode ? "1" : "0");
  head += StrFormat("<meta name=\"rcb-sync-model\" content=\"%s\">",
                    config_.sync_model == SyncModel::kPush ? "push" : "poll");
  std::string body;
  body += "<h1>RCB co-browsing</h1>";
  body += "<form id=\"rcb-join\" onsubmit=\"return rcbJoin(this)\">";
  body += "<input type=\"password\" name=\"key\" value=\"\"> session key ";
  body += "<input type=\"submit\" name=\"join\" value=\"Join\"></form>";
  body += "<div id=\"rcb-status\">connected; waiting for host content</div>";
  return "<!DOCTYPE html><html><head>" + head + "</head><body onload=\"rcbConfig();rcbPoll()\">" +
         body + "</body></html>";
}

HttpResponse RcbAgent::HandleNewConnection(const HttpRequest& request) {
  // §3.2.3 recovery: a returning participant re-handshakes with
  // GET /?resume=<pid> and keeps its identity. Unlike a fresh join (where the
  // key is entered into the join form afterwards), the participant already
  // holds the session key, so the resume request must carry a valid HMAC.
  auto params = request.QueryParams();
  auto resume_it = params.find("resume");
  if (resume_it != params.end() && !resume_it->second.empty()) {
    if (!VerifyRequestAuth(request)) {
      ++metrics_.auth_failures;
      flight_.Trigger("auth_failure", browser_->loop()->now().micros());
      return HttpResponse::Forbidden("resume authentication failed");
    }
    const std::string& pid = resume_it->second;
    bool known = participants_.contains(pid);
    if (!known) {
      if (!ParticipantAdmissible(pid)) {
        ++metrics_.participants_rejected;
        return HttpResponse::ServiceUnavailable(
            JitteredRetryAfter(config_.poll_interval, pid),
            "participant limit reached");
      }
      // Reaped while away: treat as a (re)join and announce it.
      UserAction joined;
      joined.type = ActionType::kPresence;
      joined.data = "joined";
      joined.origin = pid;
      for (auto& [other_pid, state] : participants_) {
        EnqueueOutbox(state, joined);
      }
      if (config_.sync_model == SyncModel::kPush) {
        for (const auto& [other_pid, state] : participants_) {
          PushOutbox(other_pid);
        }
      }
      for (const auto& [other_pid, state] : participants_) {
        KickTransport(other_pid);
      }
    }
    ParticipantState& participant = EnsureParticipant(pid);
    participant.last_poll = browser_->loop()->now();
    // Force a full snapshot on the next poll regardless of what the
    // participant claims to hold — its DOM state is untrusted after a gap.
    participant.doc_time_ms = -1;
    ++metrics_.reconnects;
    return HttpResponse::Ok("text/html", BuildInitialPage(pid));
  }

  if (config_.limits.max_participants > 0 &&
      participants_.size() >= config_.limits.max_participants) {
    ++metrics_.participants_rejected;
    return HttpResponse::ServiceUnavailable(
        JitteredRetryAfter(
            config_.poll_interval,
            StrFormat("join%llu", static_cast<unsigned long long>(
                                      metrics_.participants_rejected))),
        "participant limit reached");
  }
  std::string pid = StrFormat("p%llu", static_cast<unsigned long long>(next_pid_++));
  // Announce the newcomer to everyone already in the session (§5.2.3: users
  // asked for indicators of the other person's connection and status).
  UserAction joined;
  joined.type = ActionType::kPresence;
  joined.data = "joined";
  joined.origin = pid;
  for (auto& [other_pid, state] : participants_) {
    EnqueueOutbox(state, joined);
  }
  if (config_.sync_model == SyncModel::kPush) {
    for (const auto& [other_pid, state] : participants_) {
      PushOutbox(other_pid);
    }
  }
  for (const auto& [other_pid, state] : participants_) {
    KickTransport(other_pid);
  }
  ParticipantState& participant = EnsureParticipant(pid);
  participant.last_poll = browser_->loop()->now();
  ++metrics_.new_connections;
  return HttpResponse::Ok("text/html", BuildInitialPage(pid));
}

void RcbAgent::RemoveParticipant(const std::string& pid) {
  auto it = participants_.find(pid);
  if (it == participants_.end()) {
    return;
  }
  participants_.erase(it);
  if (config_.state_observer != nullptr) {
    config_.state_observer->OnParticipantLeft(pid);
  }
  auto stream_it = streams_.find(pid);
  if (stream_it != streams_.end()) {
    NetEndpoint* endpoint = stream_it->second;
    streams_.erase(stream_it);
    endpoint->Close();
  }
  if (auto framed_it = framed_streams_.find(pid);
      framed_it != framed_streams_.end()) {
    NetEndpoint* endpoint = framed_it->second.endpoint;
    framed_streams_.erase(framed_it);
    endpoint->Close();
  }
  if (auto parked_it = parked_.find(pid); parked_it != parked_.end()) {
    AgentConn* conn = parked_it->second.conn;
    browser_->loop()->Cancel(parked_it->second.deadline_id);
    parked_.erase(parked_it);
    NetEndpoint* endpoint = conn->endpoint;
    RemoveConnection(conn);
    endpoint->Close();
  }
  UserAction left;
  left.type = ActionType::kPresence;
  left.data = "left";
  left.origin = pid;
  for (auto& [other_pid, state] : participants_) {
    EnqueueOutbox(state, left);
  }
  if (config_.sync_model == SyncModel::kPush) {
    for (const auto& [other_pid, state] : participants_) {
      PushOutbox(other_pid);
    }
  }
  for (const auto& [other_pid, state] : participants_) {
    KickTransport(other_pid);
  }
}

RcbAgent::ParticipantState& RcbAgent::EnsureParticipant(const std::string& pid) {
  auto [it, inserted] = participants_.try_emplace(pid);
  if (inserted) {
    it->second.poll_bucket = TokenBucket(config_.limits.poll_rate_per_sec,
                                         config_.limits.poll_burst);
    it->second.action_bucket = TokenBucket(config_.limits.action_rate_per_sec,
                                           config_.limits.action_burst);
    // Checkpoint rehydration is not a new transition — only live joins log.
    if (config_.state_observer != nullptr && !restoring_) {
      config_.state_observer->OnParticipantJoined(pid);
    }
  }
  return it->second;
}

bool RcbAgent::ParticipantAdmissible(const std::string& pid) const {
  if (participants_.contains(pid)) {
    return true;
  }
  return config_.limits.max_participants == 0 ||
         participants_.size() < config_.limits.max_participants;
}

void RcbAgent::EnqueueOutbox(ParticipantState& state, const UserAction& action) {
  if (config_.limits.max_outbox_actions > 0 &&
      state.outbox.size() >= config_.limits.max_outbox_actions) {
    ++metrics_.actions_shed;  // reject-newest: keep what is already queued
    return;
  }
  state.outbox.push_back(action);
}

void RcbAgent::ReapStaleParticipants() {
  SimTime now = browser_->loop()->now();
  Duration liveness = config_.poll_interval * 5;
  std::vector<std::string> stale;
  for (const auto& [pid, state] : participants_) {
    // A held push stream signals liveness by itself (its close handler does
    // the removal when it drops); so do a held framed stream and a parked
    // long-poll, whose hold may legitimately outlast the liveness window.
    if (!streams_.contains(pid) && !framed_streams_.contains(pid) &&
        !parked_.contains(pid) && state.polls > 0 &&
        now - state.last_poll > liveness) {
      stale.push_back(pid);
    }
  }
  for (const std::string& pid : stale) {
    RemoveParticipant(pid);
    ++metrics_.participants_reaped;
  }
}

HttpResponse RcbAgent::HandleObjectRequest(const HttpRequest& request) {
  ++metrics_.object_requests;
  if (!config_.cache_mode && !config_.participant_cache_mode) {
    return HttpResponse::NotFound("cache mode disabled");
  }
  std::string key(StripPrefixView(request.Path(), std::string("/obj/").size()));
  const CacheEntry* entry = browser_->cache().LookupByKey(key);
  if (entry == nullptr) {
    return HttpResponse::NotFound("no cached object for key " + key);
  }
  metrics_.object_bytes_served += entry->body.size();
  // Stream the cached object straight out (the paper writes the cache input
  // stream into the socket output stream; our value copy is the analogue).
  return HttpResponse::Ok(entry->content_type, entry->body);
}

HttpResponse RcbAgent::HandleStatusPage() const {
  // The host-side session indicator the usability subjects asked for
  // (§5.2.3): who is connected, how fresh they are, what the agent has done.
  std::string body = "<h1>RCB session status</h1>";
  body += StrFormat("<p id=\"mode\">mode: %s / %s</p>",
                    config_.cache_mode ? "cache" : "non-cache",
                    config_.sync_model == SyncModel::kPush ? "push" : "poll");
  body += "<table id=\"participants\"><tr><th>participant</th><th>doc version"
          "</th><th>polls</th><th>last seen</th></tr>";
  SimTime now = browser_->loop()->now();
  for (const auto& [pid, state] : participants_) {
    body += StrFormat(
        "<tr><td>%s</td><td>%lld</td><td>%llu</td><td>%.1fs ago</td></tr>",
        pid.c_str(), static_cast<long long>(state.doc_time_ms),
        static_cast<unsigned long long>(state.polls),
        (now - state.last_poll).seconds());
  }
  body += "</table>";
  body += StrFormat(
      "<p id=\"metrics\">polls %llu (content %llu, empty %llu) | "
      "generations %llu (reused %llu) | objects served %llu (%llu bytes) | "
      "actions applied %llu, held %llu, denied %llu | auth failures %llu | "
      "timeouts %llu, reconnects %llu, resyncs %llu, reaped %llu | "
      "shed: conns %llu, participants %llu, polls %llu, action-rate %llu, "
      "action-queue %llu, snapshots %llu, idle-closed %llu, oversized %llu</p>",
      static_cast<unsigned long long>(metrics_.polls_received),
      static_cast<unsigned long long>(metrics_.polls_with_content),
      static_cast<unsigned long long>(metrics_.polls_empty),
      static_cast<unsigned long long>(metrics_.generations),
      static_cast<unsigned long long>(metrics_.snapshot_reuses),
      static_cast<unsigned long long>(metrics_.object_requests),
      static_cast<unsigned long long>(metrics_.object_bytes_served),
      static_cast<unsigned long long>(metrics_.actions_applied),
      static_cast<unsigned long long>(metrics_.actions_held),
      static_cast<unsigned long long>(metrics_.actions_denied),
      static_cast<unsigned long long>(metrics_.auth_failures),
      static_cast<unsigned long long>(metrics_.poll_timeouts),
      static_cast<unsigned long long>(metrics_.reconnects),
      static_cast<unsigned long long>(metrics_.resyncs),
      static_cast<unsigned long long>(metrics_.participants_reaped),
      static_cast<unsigned long long>(metrics_.connections_rejected),
      static_cast<unsigned long long>(metrics_.participants_rejected),
      static_cast<unsigned long long>(metrics_.polls_rate_limited),
      static_cast<unsigned long long>(metrics_.actions_rate_limited),
      static_cast<unsigned long long>(metrics_.actions_shed),
      static_cast<unsigned long long>(metrics_.snapshots_shed),
      static_cast<unsigned long long>(metrics_.idle_read_timeouts),
      static_cast<unsigned long long>(metrics_.oversized_rejected));
  if (config_.enable_delta) {
    body += StrFormat(
        "<p id=\"delta\">patches %llu (%llu bytes vs %llu snapshot bytes) | "
        "fallbacks: no-base %llu, oversize %llu</p>",
        static_cast<unsigned long long>(metrics_.patches_served),
        static_cast<unsigned long long>(metrics_.patch_bytes_sent),
        static_cast<unsigned long long>(metrics_.patch_snapshot_bytes),
        static_cast<unsigned long long>(metrics_.patch_fallback_no_base),
        static_cast<unsigned long long>(metrics_.patch_fallback_oversize));
  }
  {
    const SerializeCache::Stats& sc = generator_.serialize_cache_stats();
    const Arena::Stats arena = generator_.arena_stats();
    body += StrFormat(
        "<p id=\"hotpath\">serialize cache: %s | hits %llu, misses %llu, "
        "evictions %llu | %zu spans, %zu bytes | spliced %llu raw bytes, "
        "re-serialized %llu | arena: %zu bytes in %zu blocks, quarantines "
        "%llu</p>",
        generator_.tuning().incremental_serialize ? "on" : "off",
        static_cast<unsigned long long>(sc.hits),
        static_cast<unsigned long long>(sc.misses),
        static_cast<unsigned long long>(sc.evictions), sc.spans, sc.bytes,
        static_cast<unsigned long long>(sc.hit_bytes),
        static_cast<unsigned long long>(sc.miss_bytes), arena.block_bytes,
        arena.blocks, static_cast<unsigned long long>(arena.quarantines));
  }
  if (config_.transport.enable_stream) {
    body += StrFormat(
        "<p id=\"transport\">transport: streams held %zu, polls parked %zu | "
        "streams opened %llu | frames %llu (hb %llu, %llu bytes) | "
        "long-poll flushes %llu, expiries %llu, parked %llu | "
        "capacity denials %llu</p>",
        framed_streams_.size(), parked_.size(),
        static_cast<unsigned long long>(metrics_.transport_streams_opened),
        static_cast<unsigned long long>(metrics_.transport_frames_sent),
        static_cast<unsigned long long>(metrics_.transport_heartbeats_sent),
        static_cast<unsigned long long>(metrics_.transport_frame_bytes_sent),
        static_cast<unsigned long long>(metrics_.transport_long_poll_flushes),
        static_cast<unsigned long long>(metrics_.transport_long_poll_expiries),
        static_cast<unsigned long long>(metrics_.transport_long_polls_parked),
        static_cast<unsigned long long>(metrics_.transport_capacity_denials));
  }
  body += StrFormat(
      "<p id=\"trace\">trace: %s | spans retained %zu, dropped %llu | "
      "flight triggers %llu (dumps %llu%s)</p>",
      config_.enable_trace ? "on" : "off", trace_.size(),
      static_cast<unsigned long long>(trace_.dropped()),
      static_cast<unsigned long long>(flight_.total_triggers()),
      static_cast<unsigned long long>(flight_.dumps_written()),
      flight_.dumping_enabled() ? "" : "; dump dir unset");
  {
    obs::HealthStatus health =
        health_.Evaluate(browser_->loop()->now().micros());
    std::string alerts;
    for (std::string_view alert : health.ActiveAlerts()) {
      if (!alerts.empty()) {
        alerts += ",";
      }
      alerts += alert;
    }
    body += StrFormat(
        "<p id=\"health\">health: %s | sync window n=%llu p50 %.0f us "
        "p99 %.0f us | alerts: %s</p>",
        std::string(HealthScoreName(health.score)).c_str(),
        static_cast<unsigned long long>(health.sync_count),
        health.sync_p50_us, health.sync_p99_us,
        alerts.empty() ? "none" : alerts.c_str());
  }
  return HttpResponse::Ok(
      "text/html", "<!DOCTYPE html><html><head><title>RCB status</title>"
                   "</head><body>" +
                       body + "</body></html>");
}

bool RcbAgent::VerifyRequestAuth(const HttpRequest& request) {
  if (config_.session_key.empty()) {
    return true;
  }
  obs::WallSpan span(&trace_, "agent.auth.hmac_verify",
                     browser_->loop()->now().micros(), hmac_verify_us_,
                     &trace_ctx_);
  // The hmac parameter is carried in the request-URI; the MAC covers the
  // method, the URI without that parameter, and the body.
  auto params = ParseFormUrlEncodedOrdered(request.QueryString());
  std::string provided;
  std::vector<std::pair<std::string, std::string>> rest;
  for (auto& [name, value] : params) {
    if (name == "hmac") {
      provided = value;
    } else {
      rest.emplace_back(name, value);
    }
  }
  if (provided.empty()) {
    return false;
  }
  std::string canonical_target = request.Path();
  std::string rest_query = EncodeFormUrlEncoded(rest);
  if (!rest_query.empty()) {
    canonical_target += "?" + rest_query;
  }
  std::string message = std::string(HttpMethodName(request.method)) + " " +
                        canonical_target + "\n" + request.body;
  std::string expected = HmacSha256Hex(config_.session_key, message);
  return ConstantTimeEquals(expected, provided);
}

HttpResponse RcbAgent::HandlePoll(const HttpRequest& request) {
  ++metrics_.polls_received;
  if (!VerifyRequestAuth(request)) {
    ++metrics_.auth_failures;
    flight_.Trigger("auth_failure", browser_->loop()->now().micros());
    TraceMarker("agent.response.rejected", {{"code", "403"}});
    return HttpResponse::Forbidden("request authentication failed");
  }
  auto poll_or = DecodePollRequest(request.body);
  if (!poll_or.ok()) {
    return HttpResponse::BadRequest(poll_or.status().message());
  }
  PollRequest poll = std::move(*poll_or);
  TraceMarker("agent.poll.request",
              {{"pid", poll.participant_id},
               {"ts", StrFormat("%lld", static_cast<long long>(poll.doc_time_ms))},
               {"actions", StrFormat("%zu", poll.actions.size())},
               {"resync", poll.resync ? "1" : "0"},
               {"patch", poll.patch ? "1" : "0"}});

  // Anti-replay (§3.4): signed polls carry a monotonically increasing seq;
  // an equal-or-older value is a replayed (or abandoned and re-delivered)
  // request and must not be re-applied.
  if (!config_.session_key.empty() && poll.seq != 0) {
    auto it = participants_.find(poll.participant_id);
    if (it != participants_.end() && poll.seq <= it->second.last_seq) {
      ++metrics_.auth_failures;
      flight_.Trigger("auth_failure", browser_->loop()->now().micros());
      TraceMarker("agent.response.rejected",
                  {{"code", "403"}, {"reason", "stale_seq"}});
      return HttpResponse::Forbidden("stale poll seq (replay?)");
    }
  }

  // Overload protection: a roster past the participant cap sheds unknown
  // pollers with 503 before any per-poll work.
  if (!ParticipantAdmissible(poll.participant_id)) {
    ++metrics_.participants_rejected;
    flight_.Trigger("overload", browser_->loop()->now().micros());
    TraceMarker("agent.response.rejected", {{"code", "503"}});
    return HttpResponse::ServiceUnavailable(
        JitteredRetryAfter(config_.poll_interval, poll.participant_id),
        "participant limit reached");
  }

  // Restart-storm admission (DESIGN.md §13): a just-recovered session
  // staggers resync readmission through the overload layer. Known
  // participants before their slot get a liveness-preserving 503 with a
  // jittered Retry-After and the poll does no merge or content work; resume
  // handshakes and first-contact joins are not deferred.
  if (browser_->loop()->now() < resync_admission_at_ &&
      participants_.contains(poll.participant_id)) {
    participants_[poll.participant_id].last_poll = browser_->loop()->now();
    ++metrics_.recovery_deferrals;
    flight_.Trigger("overload", browser_->loop()->now().micros());
    TraceMarker("agent.response.rejected",
                {{"code", "503"}, {"reason", "recovery_defer"}});
    return HttpResponse::ServiceUnavailable(
        JitteredRetryAfter(resync_admission_at_ - browser_->loop()->now(),
                           poll.participant_id),
        "recovering: resync admission deferred");
  }

  // Presence housekeeping: drop participants that stopped polling, and
  // handle an explicit goodbye before anything else.
  ReapStaleParticipants();
  for (const UserAction& action : poll.actions) {
    if (action.type == ActionType::kPresence && action.data == "left") {
      RemoveParticipant(poll.participant_id);
      return HttpResponse::Ok("application/xml", "");
    }
  }

  ParticipantState& participant = EnsureParticipant(poll.participant_id);
  // A rate-limited poll still counts as a liveness signal (otherwise a
  // throttled participant would eventually be reaped), but does no work:
  // 429 + Retry-After, and the snippet slows down instead of backing off.
  participant.last_poll = browser_->loop()->now();
  if (!participant.poll_bucket.TryTake(browser_->loop()->now())) {
    ++metrics_.polls_rate_limited;
    flight_.Trigger("overload", browser_->loop()->now().micros());
    TraceMarker("agent.response.rejected", {{"code", "429"}});
    return HttpResponse::TooManyRequests(
        JitteredRetryAfter(
            participant.poll_bucket.TimeUntilAvailable(browser_->loop()->now()),
            poll.participant_id),
        "poll rate limit");
  }
  ++participant.polls;
  if (poll.seq != 0) {
    participant.last_seq = poll.seq;
    if (config_.state_observer != nullptr) {
      // WAL the anti-replay advance before any work this poll causes — a
      // recovered agent must keep rejecting replays of polls it acked.
      config_.state_observer->OnSeqAdvance(poll.participant_id, poll.seq);
    }
  }
  // The snippet reports its cumulative timeout count; fold the delta into
  // the session-wide counter (idempotent across repeated reports).
  if (poll.timeouts > participant.timeouts_reported) {
    metrics_.poll_timeouts += poll.timeouts - participant.timeouts_reported;
    participant.timeouts_reported = poll.timeouts;
  }

  // A fresh poll while a long-poll is still held means the client abandoned
  // that hold (timeout or reconnect): forget it without answering.
  if (auto parked_it = parked_.find(poll.participant_id);
      parked_it != parked_.end()) {
    AgentConn* stale = parked_it->second.conn;
    browser_->loop()->Cancel(parked_it->second.deadline_id);
    parked_.erase(parked_it);
    NetEndpoint* endpoint = stale->endpoint;
    RemoveConnection(stale);
    endpoint->Close();  // own-side close: handlers do not re-enter
  }

  // Transport negotiation (DESIGN.md §15): grant an upgrade only when both
  // sides opted in, the agent runs the poll model, and the request arrived
  // on a holdable connection — the synchronous front door cannot park, so
  // its polls are answered classically and the snippet never upgrades.
  const bool was_granted = participant.transport_granted;
  participant.transport_granted = false;
  if (config_.transport.enable_stream &&
      poll.stream != transport::kStreamNone && !front_door_request_ &&
      config_.sync_model == SyncModel::kPoll) {
    const size_t held = framed_streams_.size() + parked_.size();
    transport::TransportGrant grant;
    bool granted = false;
    if (poll.stream >= transport::kStreamFrames &&
        (framed_streams_.contains(poll.participant_id) ||
         held < config_.transport.max_held)) {
      grant.mode = transport::GrantMode::kFrames;
      grant.heartbeat_ms = config_.transport.heartbeat_interval.millis();
      granted = true;
    } else if (held < config_.transport.max_held) {
      grant.mode = transport::GrantMode::kLongPoll;
      grant.hold_ms = config_.transport.long_poll_hold.millis();
      granted = true;
    } else {
      ++metrics_.transport_capacity_denials;  // graceful: classic poll reply
    }
    if (granted) {
      pending_grant_ = transport::FormatTransportGrant(grant);
      pending_grant_longpoll_ = grant.mode == transport::GrantMode::kLongPoll;
      participant.transport_granted = true;
    }
  }

  // Step 1 (Fig. 2 poll path): data merging.
  {
    // The merge span exists only on traced polls that actually carried
    // actions; an idle traced poll (and every untraced one) appends nothing.
    const bool traced_merge = trace_ctx_.active() && !poll.actions.empty();
    obs::WallSpan merge_span(
        traced_merge ? &trace_ : nullptr, "agent.merge.actions",
        browser_->loop()->now().micros(), nullptr,
        traced_merge ? &trace_ctx_ : nullptr,
        {{"count", StrFormat("%zu", poll.actions.size())}});
    for (const UserAction& action : poll.actions) {
      ApplyAction(poll.participant_id, action);
    }
  }

  // Step 2: timestamp inspection. Content exists only once a completed page
  // load (or scripted mutation) has stamped a version — a page whose
  // supplementary objects are still downloading is not served yet (the paper
  // generates content "when the webpage is loaded").
  bool needs_content = has_version_ && poll.doc_time_ms < current_doc_time_ms_;

  // Step 3: response sending.
  std::vector<UserAction> outbox = std::move(participant.outbox);
  participant.outbox.clear();

  if (needs_content) {
    SnapshotSlot& slot =
        RefreshSlot(CacheModeFor(poll.participant_id), /*count_reuse=*/true);
    ++metrics_.polls_with_content;
    RecordContentServed(trace_ctx_.active() ? trace_ctx_.trace_id
                                            : std::string());
    if (poll.resync) {
      ++metrics_.resyncs;  // full snapshot served to a recovering participant
      flight_.Trigger("resync", browser_->loop()->now().micros());
    }
    participant.doc_time_ms = current_doc_time_ms_;
    // Delta path (§4.1.1 guarded): only for a capability-advertising poll
    // that acks a concrete version and is not resyncing — and only when the
    // patch is genuinely smaller than the snapshot (MaybeBuildPatchResponse
    // returns nullopt otherwise, falling through to the full snapshot).
    if (config_.enable_delta && poll.patch && !poll.resync &&
        poll.doc_time_ms >= 0) {
      std::optional<std::string> patch_xml = broadcast_->MaybeBuildPatchResponse(
          slot, poll.doc_time_ms, &outbox, trace_ctx_);
      SyncBroadcastCounters();
      if (patch_xml) {
        ++metrics_.patches_served;
        metrics_.patch_bytes_sent += patch_xml->size();
        metrics_.patch_snapshot_bytes += slot.xml.size();
        metrics_.content_bytes_sent += patch_xml->size();
        if (patch_bytes_ != nullptr) {
          patch_bytes_->Record(static_cast<int64_t>(patch_xml->size()));
        }
        TraceMarker(
            "agent.response.patch",
            {{"bytes", StrFormat("%zu", patch_xml->size())},
             {"base_ts",
              StrFormat("%lld", static_cast<long long>(poll.doc_time_ms))},
             {"target_ts", StrFormat("%lld", static_cast<long long>(
                                                 current_doc_time_ms_))}});
        return HttpResponse::Ok("application/xml", *patch_xml);
      }
    }
    if (outbox.empty()) {
      // Fast path: the serialized snapshot is shared across participants
      // co-browsing in the same mode.
      metrics_.content_bytes_sent += slot.xml.size();
      TraceMarker("agent.response.snapshot",
                  {{"bytes", StrFormat("%zu", slot.xml.size())},
                   {"ts", StrFormat("%lld", static_cast<long long>(
                                                current_doc_time_ms_))}});
      return HttpResponse::Ok("application/xml", slot.xml);
    }
    // Per-participant flavour of the shared snapshot: prescaped slot spans
    // are spliced and the outbox rides along via override_actions, so the
    // page bytes are never re-escaped or copied per poller.
    std::string xml = SerializeSnapshotXml(
        slot.snapshot, nullptr,
        slot.escaped.has_content ? &slot.escaped : nullptr, &outbox);
    metrics_.content_bytes_sent += xml.size();
    TraceMarker("agent.response.snapshot",
                {{"bytes", StrFormat("%zu", xml.size())},
                 {"ts", StrFormat("%lld", static_cast<long long>(
                                              current_doc_time_ms_))}});
    return HttpResponse::Ok("application/xml", xml);
  }

  participant.doc_time_ms = poll.doc_time_ms;
  if (!outbox.empty()) {
    Snapshot actions_only;
    actions_only.doc_time_ms = poll.doc_time_ms;
    actions_only.has_content = false;
    TraceMarker("agent.response.actions",
                {{"count", StrFormat("%zu", outbox.size())}});
    actions_only.user_actions = std::move(outbox);
    ++metrics_.polls_with_content;
    return HttpResponse::Ok("application/xml", SerializeSnapshotXml(actions_only));
  }
  // Long-poll park (DESIGN.md §15): nothing to send and both sides already
  // hold the capability (the client saw a grant on its previous poll, so its
  // timeout budget covers the hold) — keep the request open instead of
  // answering empty. OnConnData consumes the intent and parks the socket.
  if (was_granted && pending_grant_longpoll_ && !pending_grant_.empty() &&
      !front_door_request_) {
    park_intent_ = ParkIntent{poll.participant_id, pending_grant_,
                              poll.doc_time_ms,
                              config_.enable_delta && poll.patch};
    pending_grant_.clear();  // the grant header rides the parked release
    ++metrics_.transport_long_polls_parked;
    TraceMarker("agent.response.parked", {});
    return HttpResponse::Ok("application/xml", "");
  }
  // "No new content": an empty response avoids hanging the request.
  ++metrics_.polls_empty;
  TraceMarker("agent.response.empty", {});
  return HttpResponse::Ok("application/xml", "");
}

void RcbAgent::ApplyAction(const std::string& pid, const UserAction& action) {
  if (action.type == ActionType::kPresence) {
    return;  // handled by the poll pipeline
  }
  // Piggybacked-action rate limiting: drained deterministically from the
  // participant's bucket; excess actions are dropped, not queued.
  if (auto self = participants_.find(pid);
      self != participants_.end() &&
      !self->second.action_bucket.TryTake(browser_->loop()->now())) {
    ++metrics_.actions_rate_limited;
    return;
  }
  if (config_.policies.participant_filter &&
      !config_.policies.participant_filter(pid, action)) {
    ++metrics_.actions_denied;
    return;
  }
  if (action.type == ActionType::kMouseMove) {
    if (config_.policies.broadcast_mouse) {
      UserAction broadcast = action;
      broadcast.origin = pid;
      for (auto& [other_pid, state] : participants_) {
        if (other_pid != pid) {
          EnqueueOutbox(state, broadcast);
          if (config_.sync_model == SyncModel::kPush) {
            PushOutbox(other_pid);
          }
          KickTransport(other_pid);
        }
      }
      ++metrics_.actions_applied;
    }
    return;
  }
  ActionPolicy policy = ActionPolicy::kAutoApply;
  switch (action.type) {
    case ActionType::kClick:
      policy = config_.policies.click;
      break;
    case ActionType::kFormSubmit:
      policy = config_.policies.form_submit;
      break;
    case ActionType::kFormFill:
      policy = config_.policies.form_fill;
      break;
    case ActionType::kNavigate:
      policy = config_.policies.navigate;
      break;
    case ActionType::kMouseMove:
    case ActionType::kPresence:
      break;
  }
  switch (policy) {
    case ActionPolicy::kAutoApply:
      if (config_.state_observer != nullptr) {
        // Audit record, written before the action mutates the document (and
        // before any version it produces is logged).
        config_.state_observer->OnActionMerged(pid, action);
      }
      PerformAction(pid, action);
      ++metrics_.actions_applied;
      break;
    case ActionPolicy::kConfirm:
      if (config_.limits.max_pending_actions > 0 &&
          pending_actions_.size() >= config_.limits.max_pending_actions) {
        ++metrics_.actions_shed;  // reject-newest at a full confirm queue
        break;
      }
      pending_actions_.push_back(PendingAction{pid, action});
      ++metrics_.actions_held;
      break;
    case ActionPolicy::kDeny:
      ++metrics_.actions_denied;
      break;
  }
}

void RcbAgent::PerformAction(const std::string& pid, const UserAction& action) {
  auto log_nav = [pid](const Status& status, const PageLoadStats&) {
    if (!status.ok()) {
      RCB_LOG(kWarning) << "rcb-agent: action navigation for " << pid
                        << " failed: " << status;
    }
  };

  if (action.type == ActionType::kNavigate) {
    auto url = Url::Parse(action.data);
    if (!url.ok()) {
      RCB_LOG(kWarning) << "rcb-agent: bad navigate URL from " << pid;
      return;
    }
    browser_->Navigate(*url, log_nav);
    return;
  }

  if (action.target < 0 || browser_->document() == nullptr) {
    return;
  }
  std::vector<Element*> interactive =
      ContentGenerator::InteractiveElements(browser_->document());
  if (static_cast<size_t>(action.target) >= interactive.size()) {
    RCB_LOG(kWarning) << "rcb-agent: stale action target " << action.target
                      << " from " << pid;
    return;
  }
  Element* element = interactive[static_cast<size_t>(action.target)];

  switch (action.type) {
    case ActionType::kClick: {
      if (element->tag_name() == "a") {
        Status status = browser_->ClickLink(element, log_nav);
        if (!status.ok()) {
          RCB_LOG(kWarning) << "rcb-agent: click failed: " << status;
        }
      }
      break;
    }
    case ActionType::kFormFill: {
      Element* form = element->tag_name() == "form" ? element : nullptr;
      if (form == nullptr) {
        return;
      }
      for (const auto& [name, value] : action.fields) {
        Status status = Browser::FillField(form, name, value);
        if (!status.ok()) {
          RCB_LOG(kWarning) << "rcb-agent: co-fill failed: " << status;
        }
      }
      // The fill mutates the live document, so participants re-sync it.
      browser_->MutateDocument([](Document*) {});
      break;
    }
    case ActionType::kFormSubmit: {
      Element* form = element->tag_name() == "form" ? element : nullptr;
      if (form == nullptr) {
        return;
      }
      for (const auto& [name, value] : action.fields) {
        Status status = Browser::FillField(form, name, value);
        if (!status.ok()) {
          RCB_LOG(kWarning) << "rcb-agent: co-fill failed: " << status;
        }
      }
      Status status = browser_->SubmitForm(form, log_nav);
      if (!status.ok()) {
        RCB_LOG(kWarning) << "rcb-agent: submit failed: " << status;
      }
      break;
    }
    default:
      break;
  }
}

void RcbAgent::BroadcastAction(UserAction action) {
  action.origin = "host";
  for (auto& [pid, state] : participants_) {
    EnqueueOutbox(state, action);
  }
  if (config_.sync_model == SyncModel::kPush) {
    for (const auto& [pid, state] : participants_) {
      PushOutbox(pid);
    }
  }
  for (const auto& [pid, state] : participants_) {
    KickTransport(pid);
  }
}

std::vector<std::string> RcbAgent::ConnectedParticipants() const {
  std::vector<std::string> out;
  SimTime now = browser_->loop()->now();
  Duration liveness = config_.poll_interval * 5;
  for (const auto& [pid, state] : participants_) {
    // A held push stream counts as live regardless of poll counters; so do
    // a held framed stream and a parked long-poll.
    if (streams_.contains(pid) || framed_streams_.contains(pid) ||
        parked_.contains(pid) ||
        (state.polls > 0 && now - state.last_poll <= liveness)) {
      out.push_back(pid);
    }
  }
  return out;
}

Status RcbAgent::ApprovePending(size_t index) {
  if (index >= pending_actions_.size()) {
    return OutOfRangeError("no pending action at index");
  }
  PendingAction pending = pending_actions_[index];
  pending_actions_.erase(pending_actions_.begin() + static_cast<ptrdiff_t>(index));
  PerformAction(pending.participant_id, pending.action);
  ++metrics_.actions_applied;
  return Status::Ok();
}

Status RcbAgent::RejectPending(size_t index) {
  if (index >= pending_actions_.size()) {
    return OutOfRangeError("no pending action at index");
  }
  pending_actions_.erase(pending_actions_.begin() + static_cast<ptrdiff_t>(index));
  ++metrics_.actions_denied;
  return Status::Ok();
}

}  // namespace rcb
