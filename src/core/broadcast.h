// SnapshotBroadcast: the shareable generate-once half of the Fig. 3 pipeline.
//
// The paper's reuse argument (§4.1.2) — generate content once per document
// version, serve the identical bytes to every participant — used to live
// inline in RcbAgent. RcbHost runs many agents on one event loop, so the
// state that makes reuse work (per-cache-mode snapshot slots, the delta base
// history, the memoized patch cache) is factored out here as a standalone
// component: one SnapshotBroadcast per session owns the encoded broadcast
// buffer (`Slot::xml`) that fans out to all N pollers of that session.
//
// Fallback rules (DESIGN.md §12): the shared buffer is served verbatim only
// when the poller's capabilities match what the buffer encodes. A poller
// with pending per-participant actions, a patch-capable poller whose acked
// base is in the history window, or a traced poller all take per-participant
// paths — byte-identical to what a dedicated single-participant agent would
// produce.
#ifndef SRC_CORE_BROADCAST_H_
#define SRC_CORE_BROADCAST_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/content_generator.h"
#include "src/core/protocol.h"
#include "src/delta/patch_codec.h"
#include "src/net/event_loop.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rcb {

// The AgentConfig knobs the broadcast pipeline acts on (copied at agent
// construction; the agent remains the single owner of its config).
struct BroadcastOptions {
  bool enable_delta = false;
  double patch_size_cutoff = 0.6;
  size_t delta_history = 8;
  std::function<bool(const Url& url, const std::string& kind)>
      cache_object_filter;
};

// Observability sinks threaded through by the owning agent. Every pointer
// may be null (metrics-lite agents under a 10k-session host register no
// per-session instruments); null sinks simply record nothing.
struct BroadcastInstruments {
  obs::TraceLog* trace = nullptr;
  // Fig. 3 stage histograms in pipeline order:
  // clone, absolutize, cache_rewrite, event_rewrite, extract, serialize.
  obs::Histogram* stage_hist[6] = {};
  obs::Histogram* generation_us = nullptr;   // whole pipeline, wall
  obs::Histogram* snapshot_bytes = nullptr;  // serialized XML size, sim
  obs::Histogram* patch_ops = nullptr;       // ops per served patch, sim
};

// What the pipeline did. The owning agent mirrors these into AgentMetrics
// after every call, so the public metrics surface is unchanged.
struct BroadcastCounters {
  uint64_t generations = 0;       // Fig. 3 pipeline executions
  uint64_t snapshot_reuses = 0;   // content served without regeneration
  uint64_t patch_fallback_no_base = 0;
  uint64_t patch_fallback_oversize = 0;
  uint64_t snapshot_bytes_raw = 0;
  uint64_t snapshot_bytes_escaped = 0;
  Duration last_generation_time;  // real CPU time (M5)
  Duration total_generation_time;
  size_t last_snapshot_bytes = 0;
};

class SnapshotBroadcast {
 public:
  // One materialized canonical tree (src/delta) with its version and digest;
  // the delta path diffs a history of these against the current one.
  struct BaseVersion {
    int64_t doc_time_ms = -1;
    std::unique_ptr<Element> tree;
    std::string digest;
  };
  // A memoized diff against one base version, shared by every participant
  // that acked that version (the §4.1.2 reuse argument, applied to patches).
  struct CachedPatch {
    bool fallback = false;  // patch not profitable; serve the full snapshot
    delta::PatchEnvelope envelope;  // actions-free
    std::string xml;                // serialized envelope without actions
  };
  // Cache-mode flavour of the generated snapshot — the broadcast buffer. One
  // entry per mode in use; both flavours share the document version and are
  // invalidated together.
  struct Slot {
    bool valid = false;
    Snapshot snapshot;
    // Pre-escaped payload CDATA for `snapshot` (incremental generate path).
    // Per-participant serializations (actions appended) splice these spans
    // instead of re-escaping the whole page — the fan-out half of the
    // serialization-cache win (docs/PERF_MODEL.md).
    SnapshotEscaped escaped;
    std::string xml;  // the encoded bytes fanned out to matching pollers
    // --- Delta state (BroadcastOptions::enable_delta only) ---
    BaseVersion current;                      // materialization of `snapshot`
    std::deque<BaseVersion> history;          // previously served versions
    std::map<int64_t, CachedPatch> patch_cache;  // keyed by base doc time
  };

  // `generator` and `loop` must outlive this object; `instruments` is copied.
  SnapshotBroadcast(ContentGenerator* generator, EventLoop* loop,
                    BroadcastOptions options, BroadcastInstruments instruments)
      : generator_(generator),
        loop_(loop),
        options_(std::move(options)),
        instruments_(instruments) {}
  SnapshotBroadcast(const SnapshotBroadcast&) = delete;
  SnapshotBroadcast& operator=(const SnapshotBroadcast&) = delete;

  // The document changed: both slots are stale and must regenerate on the
  // next Refresh (the history/patch cache rotate there, not here).
  void Invalidate() { dirty_ = true; }

  // Ensures the slot for `cache_mode` encodes document version `doc_time_ms`
  // and returns it — running the Fig. 3 pipeline exactly once per version
  // per mode no matter how many pollers ask. `trace_ctx` is the caller's
  // causal chain (inactive outside traced polls).
  Slot& Refresh(bool cache_mode, bool count_reuse, int64_t doc_time_ms,
                const Url& agent_url, const obs::TraceContext& trace_ctx);

  // Delta path: returns the serialized newPatch response for a participant
  // acking `base_time`, or nullopt when the full snapshot must be served (no
  // delta state, base outside the history window, or patch over the size
  // cutoff). Consumes `outbox` only when a patch is returned.
  std::optional<std::string> MaybeBuildPatchResponse(
      Slot& slot, int64_t base_time, std::vector<UserAction>* outbox,
      const obs::TraceContext& trace_ctx);

  const BroadcastCounters& counters() const { return counters_; }

 private:
  ContentGenerator* generator_;
  EventLoop* loop_;
  BroadcastOptions options_;
  BroadcastInstruments instruments_;
  BroadcastCounters counters_;
  bool dirty_ = true;
  Slot slots_[2];  // [0] non-cache mode, [1] cache mode
};

}  // namespace rcb

#endif  // SRC_CORE_BROADCAST_H_
