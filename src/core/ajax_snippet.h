// Ajax-Snippet: the participant-side half of RCB.
//
// The snippet arrives embedded in the agent's initial HTML page and then
// (1) polls RCB-Agent with XMLHttpRequest POSTs on a fixed interval,
//     piggybacking queued user actions (§4.2.1),
// (2) applies received newContent snapshots to the live document via the
//     Fig. 5 four-step procedure — clean the head but keep itself, set the
//     new head children, drop stale top-level elements, set body/frameset
//     content via innerHTML — and
// (3) triggers the download of the page's supplementary objects, which go to
//     the origin servers (non-cache mode) or to RCB-Agent (cache mode).
//
// This class implements that behaviour natively against a simulated Browser;
// the equivalent JavaScript source ships in the initial page for fidelity.
#ifndef SRC_CORE_AJAX_SNIPPET_H_
#define SRC_CORE_AJAX_SNIPPET_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/browser/browser.h"
#include "src/core/protocol.h"
#include "src/delta/patch_codec.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/transport/adaptive_poll.h"
#include "src/transport/capabilities.h"
#include "src/transport/frame.h"
#include "src/util/rand.h"

namespace rcb {

struct SnippetConfig {
  // Shared one-time session secret (§3.4); empty disables request signing.
  std::string session_key;
  // Overrides the poll interval advertised by the initial page when > 0.
  Duration poll_interval_override = Duration::Zero();
  // Download supplementary objects after each applied update.
  bool fetch_objects = true;

  // --- Recovery (§3.2.3). Zero poll_timeout disables all of it, keeping the
  // seed behavior: a poll waits forever and transport failures retry on the
  // plain interval. ---
  // Abandon a poll that has not answered within this budget.
  Duration poll_timeout = Duration::Zero();
  // Exponential backoff after consecutive failures: base * 2^(n-1), capped
  // at backoff_max, plus a deterministic seeded draw in [0, backoff_jitter].
  Duration backoff_base = Duration::Millis(500);
  Duration backoff_max = Duration::Seconds(8.0);
  Duration backoff_jitter = Duration::Zero();
  uint64_t backoff_seed = 0x5EED;
  // After this many consecutive failures, re-handshake with the agent
  // (GET /?resume=<pid>, HMAC-signed when a key is set). 0 disables.
  uint32_t reconnect_after = 0;
  // Push model: reopen a dropped stream after a backoff delay. Off by
  // default — a dropped stream is detected but not recovered, like the
  // original snippet.
  bool stream_reconnect = false;

  // Advertise the delta-snapshot capability (src/delta): polls carry patch=1
  // and newPatch responses are applied with integrity checks. Off keeps the
  // seed wire format byte-for-byte.
  bool enable_delta = false;

  // Causal tracing (DESIGN.md §11): every poll is stamped with a fresh
  // trace=<pid>-<seq> wire field and the Fig. 5 apply pipeline parents its
  // spans to that poll's round trip. Negotiated like patch=1: off keeps the
  // wire byte-for-byte identical, and the agent ignores the field unless its
  // own enable_trace is set.
  bool enable_trace = false;
  // Flight-recorder dump directory; empty falls back to $RCB_FLIGHT_DIR, and
  // when both are unset triggers are counted but nothing is written.
  std::string flight_dir;

  // --- Streamed transport (DESIGN.md §15). stream_mode 0 keeps the classic
  // polling wire byte-for-byte; the agent side must also opt in via
  // AgentConfig::transport.enable_stream, same contract as patch=/trace=. ---
  // Capability advertised on polls: 0 = classic polling, 1 = long-poll
  // capable, 2 = framed-stream capable (transport::kStream*).
  uint32_t stream_mode = 0;
  // Declare a framed stream dead after this much silence; zero derives
  // 3x the agent-advertised heartbeat interval.
  Duration heartbeat_timeout = Duration::Zero();
  // After this many consecutive framed-stream failures, stop advertising
  // stream= and stay on classic polling for good. 0 never downgrades.
  uint32_t stream_downgrade_after = 3;
  // Adaptive polling for classic pollers: grow the interval while responses
  // come back empty (bounded by adaptive_max), snap back to the base
  // interval on any activity. Pure arithmetic — deterministic under sim
  // time. Ignored when a long-poll or framed grant is in effect.
  bool adaptive_poll = false;
  Duration adaptive_max = Duration::Seconds(8.0);
  double adaptive_growth = 2.0;
  uint32_t adaptive_idle_threshold = 2;
};

struct SnippetMetrics {
  uint64_t polls_sent = 0;
  uint64_t content_updates = 0;     // snapshots with document content applied
  uint64_t empty_responses = 0;
  uint64_t actions_sent = 0;
  uint64_t broadcasts_received = 0;
  uint64_t auth_rejections = 0;
  uint64_t stream_parts_received = 0;  // push mode
  uint64_t stream_drops = 0;           // push stream closed under us
  // --- Recovery counters (§3.2.3) ---
  uint64_t poll_timeouts = 0;          // polls abandoned after poll_timeout
  uint64_t transport_failures = 0;     // polls whose transport failed outright
  uint64_t reconnects = 0;             // successful resume re-handshakes
  uint64_t reconnect_failures = 0;     // resume attempts that failed
  uint64_t resyncs = 0;                // full snapshots applied after recovery
  uint64_t stream_reopens = 0;         // push streams reopened (opt-in)
  // --- Delta snapshots (src/delta) ---
  uint64_t patches_applied = 0;         // newPatch responses committed
  uint64_t patches_stale_ignored = 0;   // patch target <= current doc time
  uint64_t patch_base_mismatches = 0;   // base doc time != ours -> resync
  uint64_t patch_digest_mismatches = 0; // base/target digest check failed
  uint64_t patch_apply_errors = 0;      // malformed patch or op failure
  // --- Overload degradation ---
  // 429/503 answers honored: the poll loop slowed down instead of treating
  // the response as a failure (no backoff escalation, no reconnect).
  uint64_t overload_deferrals = 0;
  Duration last_retry_after;           // most recent Retry-After hint honored
  // M2: poll request -> content response fully received (content polls only).
  Duration last_content_download;
  // M6: real CPU time spent applying the snapshot to the document.
  Duration last_apply_time;
  Duration total_apply_time;
  // M3/M4: simulated time to download the supplementary objects of the last
  // applied page.
  Duration last_object_time;
  size_t last_object_count = 0;
  size_t last_objects_from_host = 0;  // served by RCB-Agent (cache mode)
  uint64_t object_fetch_failures = 0;
  // --- Streamed transport (DESIGN.md §15) ---
  uint64_t wasted_polls = 0;       // classic empty round trips (no grant held)
  uint64_t wasted_poll_bytes = 0;  // request+response bytes of those
  uint64_t frames_received = 0;    // hello + data frames
  uint64_t heartbeats_received = 0;
  uint64_t frame_errors = 0;       // parse/MAC/seq failures (sticky)
  uint64_t heartbeat_timeouts = 0; // framed streams declared dead on silence
  uint64_t transport_streams_opened = 0;
  uint64_t transport_stream_failures = 0;
  uint64_t transport_downgrades = 0;  // permanent fallbacks to polling
};

class AjaxSnippet {
 public:
  AjaxSnippet(Browser* participant_browser, SnippetConfig config);
  ~AjaxSnippet();
  AjaxSnippet(const AjaxSnippet&) = delete;
  AjaxSnippet& operator=(const AjaxSnippet&) = delete;

  // §3.1 step 2: types the agent URL into the address bar. On success the
  // initial page is loaded, the participant id and poll interval are read
  // from it, and the poll loop starts.
  void Join(const Url& agent_url, std::function<void(Status)> joined);
  void Leave();
  // Tears down without the goodbye poll — simulates a participant crash or
  // abrupt network loss; the agent notices via its liveness timeout.
  void AbortWithoutGoodbye();
  bool joined() const { return joined_; }

  const std::string& participant_id() const { return pid_; }
  int64_t doc_time_ms() const { return doc_time_ms_; }
  // Peer participants currently known to this snippet, built from the
  // agent's presence broadcasts (excludes self; empty until peers join or
  // leave after this snippet joined).
  const std::vector<std::string>& known_peers() const { return peers_; }
  const SnippetMetrics& metrics() const { return metrics_; }
  // Observability (DESIGN.md §9): every SnippetMetrics counter
  // (callback-backed), the Fig. 5 apply-stage histograms (wall), and the
  // simulated content-download / object-fetch histograms (sim). The snippet
  // has no HTTP server, so its registry is read in-process (benches, tests).
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }
  const obs::TraceLog& trace_log() const { return trace_; }
  const obs::FlightRecorder& flight_recorder() const { return flight_; }
  Duration poll_interval() const { return interval_; }
  // Synchronization model in effect (advertised by the agent's initial page).
  SyncModel sync_model() const { return sync_model_; }
  bool stream_open() const { return stream_ != nullptr; }
  // Streamed transport state (DESIGN.md §15).
  bool frames_open() const { return frames_stream_ != nullptr; }
  bool long_poll_active() const { return longpoll_active_; }
  bool transport_downgraded() const { return transport_downgraded_; }
  // Interval the adaptive policy would use for the next poll (the configured
  // interval when adaptive polling is off).
  Duration current_poll_interval() const {
    return adaptive_.has_value() ? adaptive_->Current() : interval_;
  }

  // Fired after each applied content update (argument: new doc time).
  void SetUpdateListener(std::function<void(int64_t)> listener) {
    update_listener_ = std::move(listener);
  }
  // Fired when the supplementary objects of an update finished downloading.
  void SetObjectsLoadedListener(std::function<void(Duration)> listener) {
    objects_listener_ = std::move(listener);
  }
  // Fired for each broadcast action received (other users' pointer moves...).
  void SetActionListener(std::function<void(const UserAction&)> listener) {
    action_listener_ = std::move(listener);
  }

  // ---- Participant gestures (queued, piggybacked on the next poll) --------
  // Click an element of the synchronized page (anchor/button rewritten by the
  // agent; identified by its data-rcb-id attribute).
  Status ClickElement(Element* element);
  // Type into the named field of `form`: updates the local DOM and queues a
  // co-fill action.
  Status FillFormField(Element* form, std::string_view name,
                       std::string_view value);
  // Submit `form` with its currently-filled fields.
  Status SubmitForm(Element* form);
  // Pointer mirroring.
  void SendMouseMove(int x, int y);
  // Ask the host to navigate to a URL (participant typed a destination).
  void RequestNavigate(const std::string& url);

  // Sends a poll immediately instead of waiting for the timer.
  void PollNow();

 private:
  void SchedulePoll(Duration delay);
  void PollOnce();
  // Builds and sends one signed poll; used by the regular loop and by the
  // fire-and-forget goodbye in Leave().
  void SendPoll(PollRequest poll, FetchCallback callback);
  // Applies a received newContent document (shared by poll and push paths).
  // `transport_time` is recorded as last_content_download when content was
  // applied.
  void ProcessSnapshot(const Snapshot& snapshot, Duration transport_time);
  // Applies a received newPatch delta (src/delta) with integrity checks; any
  // mismatch flags need_resync_ so the next poll requests a full snapshot.
  void ProcessPatch(const delta::PatchEnvelope& envelope,
                    Duration transport_time);
  // Presence bookkeeping + action listener dispatch for broadcast actions
  // (shared by the snapshot and patch paths).
  void HandleBroadcastActions(const std::vector<UserAction>& actions);
  // Push mode: opens the multipart stream and consumes its parts.
  void OpenStream();
  void OnStreamData(std::string_view data);
  // Push mode: POSTs queued actions immediately (coalesced per event-loop
  // turn) instead of waiting for a poll tick.
  void ScheduleActionFlush();
  void OnPollResponse(FetchResult result, SimTime sent_at);
  // --- Recovery (§3.2.3) ---
  bool recovery_enabled() const {
    return config_.poll_timeout > Duration::Zero();
  }
  // base * 2^(failures-1) capped at backoff_max, plus seeded jitter.
  Duration BackoffDelay();
  // Shared failure path for timeouts and transport errors: backs off, and
  // after reconnect_after consecutive failures re-handshakes instead.
  void OnPollFailure();
  void OnPollTimeout(uint64_t seq);
  // Re-handshake: abort wedged connections, GET /?resume=<pid> (signed),
  // then resume the sync loop with a forced full-snapshot resync.
  void Reconnect();
  // Push model opt-in: retry OpenStream after a backoff delay.
  void ScheduleStreamReopen();
  // --- Streamed transport (DESIGN.md §15) ---
  // Chooses the next poll delay from the grant in effect and the adaptive
  // policy; opens a granted framed stream instead of scheduling.
  void ScheduleNextPoll(bool activity, SimTime sent_at);
  // Opens GET /frames (signed like /stream) and consumes frames from it.
  void OpenFramedStream();
  void OnFramesData(std::string_view data);
  void CloseFramedStream();
  // Shared teardown for heartbeat timeouts, frame errors, and peer closes:
  // counts the failure, walks the downgrade ladder, then recovers via the
  // signed resume handshake (reconnect_after > 0) or a resync poll.
  void OnFramedStreamFailure();
  void ArmFramesWatchdog(Duration delay);
  void OnFramesWatchdogTick();
  // Configured override, else 3x the agent-advertised heartbeat interval.
  Duration EffectiveHeartbeatTimeout() const;
  void ApplySnapshot(const Snapshot& snapshot);
  void FetchSupplementaryObjects();
  // Registers the snippet's metric families (constructor-time).
  void RegisterMetrics();
  // Zero-duration sim event parented to the in-flight poll's root span;
  // no-op when that poll was not traced.
  void TraceMarker(const char* name, obs::TraceAttrs attrs);
  // Starts the queue-latency stopwatch the first time an action is queued
  // (or re-queued) while no poll is carrying it.
  void NoteActionQueued();
  // Collects a form's current field values from the participant DOM.
  static std::vector<std::pair<std::string, std::string>> FormFields(
      Element* form);

  Browser* browser_;
  SnippetConfig config_;
  Url agent_url_;
  std::string pid_;
  Duration interval_ = Duration::Seconds(1.0);
  int64_t doc_time_ms_ = -1;

  std::vector<UserAction> action_queue_;
  // Actions riding the in-flight poll; re-queued if the transport fails so
  // gestures survive agent restarts.
  std::vector<UserAction> in_flight_actions_;
  std::vector<std::string> peers_;
  bool joined_ = false;
  bool poll_in_flight_ = false;
  uint64_t poll_timer_ = 0;
  uint64_t epoch_ = 0;  // invalidates callbacks after Leave()

  // Recovery state. poll_seq_ numbers every poll; a response or timeout for
  // an older seq than the current one is ignored (the poll was abandoned).
  uint64_t poll_seq_ = 0;
  uint64_t timeout_timer_ = 0;
  uint32_t consecutive_failures_ = 0;
  bool need_resync_ = false;
  bool reconnect_in_flight_ = false;
  bool stream_was_open_ = false;  // distinguishes reopens from the first open
  Rng backoff_rng_;

  SyncModel sync_model_ = SyncModel::kPoll;
  NetEndpoint* stream_ = nullptr;
  std::string stream_buffer_;
  bool stream_head_done_ = false;
  bool action_flush_scheduled_ = false;
  SimTime last_part_start_;

  // --- Streamed transport state (DESIGN.md §15) ---
  bool transport_downgraded_ = false;  // stop advertising stream= for good
  uint32_t stream_failure_streak_ = 0; // reset by any data frame
  bool longpoll_active_ = false;       // last poll response granted longpoll
  int64_t longpoll_hold_ms_ = 0;
  bool frames_pending_ = false;        // last poll response granted frames
  int64_t frames_hb_ms_ = 0;           // agent's advertised heartbeat cadence
  NetEndpoint* frames_stream_ = nullptr;
  std::string frames_buffer_;          // HTTP head bytes before frames start
  bool frames_head_done_ = false;
  std::optional<transport::FrameParser> frame_parser_;
  uint64_t frames_watchdog_timer_ = 0;
  bool frames_watchdog_armed_ = false;
  SimTime last_frame_at_;
  SimTime frames_last_part_start_;
  std::optional<transport::AdaptivePollPolicy> adaptive_;
  size_t in_flight_poll_bytes_ = 0;  // request body bytes of the last poll

  SnippetMetrics metrics_;

  // --- Observability state (see metrics_registry()/trace_log()). ---
  obs::MetricsRegistry registry_;
  obs::TraceLog trace_;
  // Context of the traced poll currently in flight (trace id + reserved root
  // span id); inactive when tracing is off or between polls in push mode.
  obs::TraceContext poll_ctx_;
  // Context of the apply span while ApplySnapshot runs, so the four Fig. 5
  // stage events parent to it rather than to the poll root.
  obs::TraceContext apply_ctx_;
  // Queue-latency stopwatch: when the oldest still-unsent action was queued.
  SimTime action_queue_since_;
  bool action_queue_waiting_ = false;
  obs::FlightRecorder flight_;
  // Fig. 5 apply stages, in order: clean_head, set_head, drop_stale, set_body.
  obs::Histogram* apply_stage_hist_[4] = {};
  obs::Histogram* apply_us_ = nullptr;             // whole apply, wall (M6)
  obs::Histogram* content_download_us_ = nullptr;  // sim (M2)
  obs::Histogram* object_fetch_us_ = nullptr;      // sim (M3/M4)

  std::function<void(int64_t)> update_listener_;
  std::function<void(Duration)> objects_listener_;
  std::function<void(const UserAction&)> action_listener_;
};

}  // namespace rcb

#endif  // SRC_CORE_AJAX_SNIPPET_H_
