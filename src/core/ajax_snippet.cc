#include "src/core/ajax_snippet.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "src/browser/resources.h"
#include "src/crypto/hmac.h"
#include "src/delta/patch_applier.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

// Reads a <meta name=... content=...> value from the document head.
std::string MetaContent(Document* document, std::string_view name) {
  std::string out;
  document->ForEachElement([&](Element* element) {
    if (element->tag_name() == "meta" && element->AttrOr("name") == name) {
      out = element->AttrOr("content");
      return false;
    }
    return true;
  });
  return out;
}

obs::FlightRecorder::Options SnippetFlightOptions(const SnippetConfig& config) {
  obs::FlightRecorder::Options options;
  options.component = "snippet";
  options.dir = config.flight_dir;
  if (options.dir.empty()) {
    if (const char* env = std::getenv("RCB_FLIGHT_DIR")) {
      options.dir = env;
    }
  }
  return options;
}

}  // namespace

AjaxSnippet::AjaxSnippet(Browser* participant_browser, SnippetConfig config)
    : browser_(participant_browser),
      config_(std::move(config)),
      backoff_rng_(config_.backoff_seed),
      flight_(&trace_, &registry_, SnippetFlightOptions(config_)) {
  RegisterMetrics();
}

void AjaxSnippet::TraceMarker(const char* name, obs::TraceAttrs attrs) {
  if (!poll_ctx_.active()) {
    return;
  }
  trace_.Append(name, obs::Provenance::kSim, browser_->loop()->now().micros(),
                0, poll_ctx_, std::move(attrs));
}

void AjaxSnippet::NoteActionQueued() {
  if (!action_queue_waiting_) {
    action_queue_waiting_ = true;
    action_queue_since_ = browser_->loop()->now();
  }
  if (adaptive_.has_value()) {
    // Local input counts as activity: snap the poll interval back so the
    // action (and whatever it triggers) round-trips promptly.
    adaptive_->OnActivity();
  }
}

void AjaxSnippet::RegisterMetrics() {
  // Callback counters over SnippetMetrics: the struct stays the source of
  // truth (same migration pattern as RcbAgent's AgentMetrics).
  auto field = [this](std::string_view name, std::string_view help,
                      const uint64_t& source) {
    registry_.AddCallbackCounter(name, help, obs::Provenance::kSim,
                                 [&source] { return source; });
  };
  field("rcb_snippet_polls_sent", "Ajax polls sent", metrics_.polls_sent);
  field("rcb_snippet_content_updates", "Snapshots with content applied",
        metrics_.content_updates);
  field("rcb_snippet_empty_responses", "Polls answered with no new content",
        metrics_.empty_responses);
  field("rcb_snippet_actions_sent", "User actions piggybacked on polls",
        metrics_.actions_sent);
  field("rcb_snippet_broadcasts_received", "Broadcast actions received",
        metrics_.broadcasts_received);
  field("rcb_snippet_auth_rejections", "Polls rejected by the agent (403)",
        metrics_.auth_rejections);
  field("rcb_snippet_stream_parts_received", "Push-mode parts received",
        metrics_.stream_parts_received);
  field("rcb_snippet_stream_drops", "Push streams closed under us",
        metrics_.stream_drops);
  field("rcb_snippet_poll_timeouts", "Polls abandoned after poll_timeout",
        metrics_.poll_timeouts);
  field("rcb_snippet_transport_failures", "Polls whose transport failed",
        metrics_.transport_failures);
  field("rcb_snippet_reconnects", "Successful resume re-handshakes",
        metrics_.reconnects);
  field("rcb_snippet_reconnect_failures", "Resume attempts that failed",
        metrics_.reconnect_failures);
  field("rcb_snippet_resyncs", "Full snapshots applied after recovery",
        metrics_.resyncs);
  field("rcb_snippet_stream_reopens", "Push streams reopened",
        metrics_.stream_reopens);
  field("rcb_snippet_patches_applied", "newPatch deltas committed",
        metrics_.patches_applied);
  field("rcb_snippet_patches_stale_ignored",
        "newPatch deltas dropped as stale (target <= current doc time)",
        metrics_.patches_stale_ignored);
  field("rcb_snippet_patch_base_mismatches",
        "newPatch deltas rejected on base doc-time mismatch",
        metrics_.patch_base_mismatches);
  field("rcb_snippet_patch_digest_mismatches",
        "newPatch deltas rejected on base/target digest mismatch",
        metrics_.patch_digest_mismatches);
  field("rcb_snippet_patch_apply_errors",
        "newPatch deltas that were malformed or failed to apply",
        metrics_.patch_apply_errors);
  field("rcb_snippet_overload_deferrals", "429/503 Retry-After hints honored",
        metrics_.overload_deferrals);
  field("rcb_snippet_object_fetch_failures", "Supplementary fetches that failed",
        metrics_.object_fetch_failures);

  // Streamed transport (DESIGN.md §15). The wasted-poll pair quantifies the
  // idle tax of classic polling that the transport exists to remove.
  field("rcb_snippet_wasted_polls_total",
        "Classic empty poll round trips (no transport grant held)",
        metrics_.wasted_polls);
  field("rcb_snippet_wasted_poll_bytes_total",
        "Request+response bytes moved by classic empty polls",
        metrics_.wasted_poll_bytes);
  field("rcb_transport_frames_received_total",
        "Hello and data frames received on framed streams",
        metrics_.frames_received);
  field("rcb_transport_heartbeats_received_total",
        "Heartbeat frames received on framed streams",
        metrics_.heartbeats_received);
  field("rcb_transport_frame_errors_total",
        "Framed-stream parse/MAC/seq failures (each tears the stream down)",
        metrics_.frame_errors);
  field("rcb_transport_heartbeat_timeouts_total",
        "Framed streams declared dead after heartbeat silence",
        metrics_.heartbeat_timeouts);
  field("rcb_transport_streams_opened_total", "Framed streams opened",
        metrics_.transport_streams_opened);
  field("rcb_transport_stream_failures_total",
        "Framed streams lost to drops, timeouts, or frame errors",
        metrics_.transport_stream_failures);
  field("rcb_transport_downgrades_total",
        "Permanent downgrades to classic polling after repeated failures",
        metrics_.transport_downgrades);
  registry_.AddCallbackCounter(
      "rcb_snippet_adaptive_snapbacks_total",
      "Adaptive poll intervals snapped back to base on activity",
      obs::Provenance::kSim,
      [this] { return adaptive_.has_value() ? adaptive_->snapbacks() : 0; });
  registry_.AddCallbackGauge(
      "rcb_snippet_adaptive_interval_ms",
      "Poll interval the adaptive policy will use next",
      obs::Provenance::kSim, [this] {
        return static_cast<double>(adaptive_.has_value()
                                       ? adaptive_->Current().millis()
                                       : interval_.millis());
      });

  // Trace-ring health + flight recorder, under the same canonical names the
  // agent registry exposes (separate registries, so no collision).
  registry_.AddCallbackCounter("rcb_trace_dropped_total",
                               "Spans evicted from the trace ring",
                               obs::Provenance::kSim,
                               [this] { return trace_.dropped(); });
  registry_.AddCallbackGauge(
      "rcb_trace_retained", "Spans currently retained by the trace ring",
      obs::Provenance::kSim,
      [this] { return static_cast<double>(trace_.size()); });
  static constexpr const char* kSnippetTriggers[3] = {"poll_timeout",
                                                      "patch_resync", "overload"};
  for (const char* trigger : kSnippetTriggers) {
    registry_.AddCallbackCounter(
        "rcb_flight_triggers_total", "Flight-recorder trigger firings",
        obs::Provenance::kSim,
        [this, trigger] { return flight_.triggers(trigger); },
        StrFormat("trigger=\"%s\"", trigger));
  }
  registry_.AddCallbackCounter("rcb_flight_dumps_written",
                               "Flight-recorder JSONL artifacts written",
                               obs::Provenance::kSim,
                               [this] { return flight_.dumps_written(); });

  static constexpr const char* kApplyStageLabels[4] = {
      "stage=\"clean_head\"", "stage=\"set_head\"", "stage=\"drop_stale\"",
      "stage=\"set_body\""};
  for (size_t i = 0; i < 4; ++i) {
    apply_stage_hist_[i] = registry_.AddHistogram(
        "rcb_snippet_apply_stage_us",
        "CPU microseconds per Fig. 5 snapshot-apply stage",
        obs::Provenance::kWall, obs::LatencyBoundsUs(), kApplyStageLabels[i]);
  }
  apply_us_ = registry_.AddHistogram(
      "rcb_snippet_apply_us",
      "CPU microseconds per whole Fig. 5 snapshot apply (M6)",
      obs::Provenance::kWall, obs::LatencyBoundsUs());
  content_download_us_ = registry_.AddHistogram(
      "rcb_snippet_content_download_us",
      "Simulated microseconds from poll send to content received (M2)",
      obs::Provenance::kSim, obs::LatencyBoundsUs());
  object_fetch_us_ = registry_.AddHistogram(
      "rcb_snippet_object_fetch_us",
      "Simulated microseconds to download an update's supplementary objects "
      "(M3/M4)",
      obs::Provenance::kSim, obs::LatencyBoundsUs());
}

AjaxSnippet::~AjaxSnippet() { Leave(); }

void AjaxSnippet::Join(const Url& agent_url, std::function<void(Status)> joined) {
  agent_url_ = agent_url;
  uint64_t epoch = ++epoch_;
  browser_->Navigate(
      agent_url,
      [this, epoch, joined = std::move(joined)](const Status& status,
                                                const PageLoadStats&) {
        if (epoch != epoch_) {
          return;
        }
        if (!status.ok()) {
          joined(status);
          return;
        }
        Document* document = browser_->document();
        pid_ = MetaContent(document, "rcb-pid");
        if (pid_.empty()) {
          joined(InternalError("initial page carries no participant id"));
          return;
        }
        std::string interval_ms = MetaContent(document, "rcb-poll-interval");
        if (IsDigits(interval_ms)) {
          interval_ = Duration::Millis(std::atoll(interval_ms.c_str()));
        }
        if (config_.poll_interval_override > Duration::Zero()) {
          interval_ = config_.poll_interval_override;
        }
        sync_model_ = MetaContent(document, "rcb-sync-model") == "push"
                          ? SyncModel::kPush
                          : SyncModel::kPoll;
        joined_ = true;
        doc_time_ms_ = -1;
        if (config_.adaptive_poll) {
          transport::AdaptivePollConfig adaptive_config;
          adaptive_config.base = interval_;
          adaptive_config.max = config_.adaptive_max;
          adaptive_config.growth = config_.adaptive_growth;
          adaptive_config.idle_threshold = config_.adaptive_idle_threshold;
          adaptive_.emplace(adaptive_config);
        }
        // Per-participant dump filenames, so snippets sharing a flight dir
        // do not clobber each other's artifacts.
        flight_.set_component("snippet-" + pid_);
        if (sync_model_ == SyncModel::kPush) {
          // Push model: hold a multipart stream open instead of polling.
          OpenStream();
        } else {
          // The first Ajax request goes out as soon as the initial page
          // loads.
          PollOnce();
        }
        joined(Status::Ok());
      });
}

void AjaxSnippet::Leave() {
  if (!joined_) {
    return;
  }
  // Fire-and-forget goodbye so the agent can notify the others immediately
  // instead of waiting for the liveness timeout.
  PollRequest goodbye;
  goodbye.participant_id = pid_;
  goodbye.doc_time_ms = doc_time_ms_;
  UserAction left;
  left.type = ActionType::kPresence;
  left.data = "left";
  goodbye.actions.push_back(std::move(left));
  SendPoll(std::move(goodbye), [](FetchResult) {});
  AbortWithoutGoodbye();
}

void AjaxSnippet::AbortWithoutGoodbye() {
  if (!joined_) {
    return;
  }
  joined_ = false;
  ++epoch_;
  if (poll_timer_ != 0) {
    browser_->loop()->Cancel(poll_timer_);
    poll_timer_ = 0;
  }
  if (timeout_timer_ != 0) {
    browser_->loop()->Cancel(timeout_timer_);
    timeout_timer_ = 0;
  }
  if (stream_ != nullptr) {
    stream_->Close();
    stream_ = nullptr;
  }
  stream_buffer_.clear();
  stream_head_done_ = false;
  stream_was_open_ = false;
  CloseFramedStream();
  longpoll_active_ = false;
  longpoll_hold_ms_ = 0;
  frames_pending_ = false;
  transport_downgraded_ = false;
  stream_failure_streak_ = 0;
  adaptive_.reset();  // re-seeded from the advertised interval on next Join
  peers_.clear();
  poll_in_flight_ = false;
  reconnect_in_flight_ = false;
  consecutive_failures_ = 0;
  need_resync_ = false;
  poll_ctx_ = obs::TraceContext{};
  apply_ctx_ = obs::TraceContext{};
  action_queue_waiting_ = false;
}

void AjaxSnippet::SchedulePoll(Duration delay) {
  if (!joined_) {
    return;
  }
  uint64_t epoch = epoch_;
  poll_timer_ = browser_->loop()->Schedule(delay, [this, epoch] {
    if (epoch != epoch_) {
      return;
    }
    poll_timer_ = 0;
    PollOnce();
  });
}

void AjaxSnippet::PollNow() {
  if (!joined_) {
    return;
  }
  if (sync_model_ == SyncModel::kPush || frames_stream_ != nullptr) {
    ScheduleActionFlush();
    return;
  }
  if (poll_in_flight_) {
    return;
  }
  if (poll_timer_ != 0) {
    browser_->loop()->Cancel(poll_timer_);
    poll_timer_ = 0;
  }
  PollOnce();
}

void AjaxSnippet::OpenStream() {
  std::string query = "pid=" + pid_;
  if (!config_.session_key.empty()) {
    std::string message = "GET /stream?" + query + "\n";
    query += "&hmac=" + HmacSha256Hex(config_.session_key, message);
  }
  auto endpoint_or = browser_->network()->Connect(
      browser_->machine(), agent_url_.host(), agent_url_.port());
  if (!endpoint_or.ok()) {
    RCB_LOG(kWarning) << "ajax-snippet: stream connect failed: "
                      << endpoint_or.status();
    ScheduleStreamReopen();
    return;
  }
  stream_ = *endpoint_or;
  stream_buffer_.clear();
  stream_head_done_ = false;
  consecutive_failures_ = 0;
  if (stream_was_open_) {
    ++metrics_.stream_reopens;
  }
  stream_was_open_ = true;
  uint64_t epoch = epoch_;
  stream_->SetDataHandler([this, epoch](std::string_view data) {
    if (epoch == epoch_) {
      OnStreamData(data);
    }
  });
  stream_->SetCloseHandler([this, epoch] {
    if (epoch != epoch_) {
      return;
    }
    ++metrics_.stream_drops;
    stream_ = nullptr;
    RCB_LOG(kWarning) << "ajax-snippet: push stream closed by peer";
    ScheduleStreamReopen();
  });

  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.target = "/stream?" + query;
  request.headers.Set("Host", agent_url_.Authority());
  stream_->Send(request.Serialize());
  last_part_start_ = browser_->loop()->now();
}

void AjaxSnippet::OnStreamData(std::string_view data) {
  stream_buffer_.append(data);
  if (!stream_head_done_) {
    size_t head_end = stream_buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      return;
    }
    std::string_view head = std::string_view(stream_buffer_).substr(0, head_end);
    if (head.find(" 200 ") == std::string_view::npos) {
      RCB_LOG(kWarning) << "ajax-snippet: stream request rejected";
      ++metrics_.auth_rejections;
      stream_->Close();
      stream_ = nullptr;
      return;
    }
    stream_buffer_.erase(0, head_end + 4);
    stream_head_done_ = true;
  }
  // Consume complete multipart parts: boundary line, part headers, body.
  while (true) {
    // Skip any leading CRLFs between parts.
    size_t offset = 0;
    while (offset + 1 < stream_buffer_.size() && stream_buffer_[offset] == '\r' &&
           stream_buffer_[offset + 1] == '\n') {
      offset += 2;
    }
    if (offset > 0) {
      stream_buffer_.erase(0, offset);
    }
    constexpr std::string_view kBoundary = "--rcbpart\r\n";
    if (stream_buffer_.size() < kBoundary.size()) {
      return;
    }
    if (std::string_view(stream_buffer_).substr(0, kBoundary.size()) != kBoundary) {
      RCB_LOG(kWarning) << "ajax-snippet: desynchronized multipart stream";
      stream_buffer_.clear();
      return;
    }
    size_t headers_end = stream_buffer_.find("\r\n\r\n", kBoundary.size());
    if (headers_end == std::string::npos) {
      return;
    }
    std::string_view part_headers = std::string_view(stream_buffer_)
                                        .substr(kBoundary.size(),
                                                headers_end - kBoundary.size());
    size_t length = 0;
    for (const auto& line : StrSplit(part_headers, '\n')) {
      std::string_view trimmed = StripWhitespace(line);
      if (StartsWithIgnoreCase(trimmed, "content-length:")) {
        uint64_t parsed = 0;
        if (ParseUint64(StripWhitespace(trimmed.substr(15)), &parsed)) {
          length = static_cast<size_t>(parsed);
        }
      }
    }
    size_t body_start = headers_end + 4;
    if (stream_buffer_.size() < body_start + length) {
      return;  // body incomplete
    }
    std::string xml = stream_buffer_.substr(body_start, length);
    stream_buffer_.erase(0, body_start + length);
    ++metrics_.stream_parts_received;
    SimTime received = browser_->loop()->now();
    auto snapshot_or = ParseSnapshotXml(xml);
    if (!snapshot_or.ok()) {
      RCB_LOG(kWarning) << "ajax-snippet: bad pushed snapshot: "
                        << snapshot_or.status();
      continue;
    }
    ProcessSnapshot(*snapshot_or, received - last_part_start_);
    last_part_start_ = browser_->loop()->now();
  }
}

void AjaxSnippet::ScheduleActionFlush() {
  if (action_flush_scheduled_ || action_queue_.empty()) {
    return;
  }
  action_flush_scheduled_ = true;
  uint64_t epoch = epoch_;
  // Zero-delay deferral coalesces a burst of gestures into one request.
  browser_->loop()->Schedule(Duration::Zero(), [this, epoch] {
    if (epoch != epoch_) {
      return;
    }
    action_flush_scheduled_ = false;
    if (action_queue_.empty()) {
      return;
    }
    PollRequest flush;
    flush.participant_id = pid_;
    flush.doc_time_ms = doc_time_ms_;
    flush.actions = std::move(action_queue_);
    action_queue_.clear();
    action_queue_waiting_ = false;
    metrics_.actions_sent += flush.actions.size();
    SendPoll(std::move(flush), [](FetchResult) {});
  });
}

void AjaxSnippet::SendPoll(PollRequest poll, FetchCallback callback) {
  std::string body = EncodePollRequest(poll);
  in_flight_poll_bytes_ = body.size();
  // §3.4: the HMAC over the request rides as a request-URI parameter.
  Url target = agent_url_;
  if (!config_.session_key.empty()) {
    std::string message = "POST " + agent_url_.path() + "\n" + body;
    std::string mac = HmacSha256Hex(config_.session_key, message);
    target = Url::Make(agent_url_.scheme(), agent_url_.host(), agent_url_.port(),
                       agent_url_.path(), "hmac=" + mac);
  }
  ++metrics_.polls_sent;
  browser_->Fetch(HttpMethod::kPost, target, std::move(body),
                  "application/x-www-form-urlencoded", std::move(callback));
}

void AjaxSnippet::PollOnce() {
  if (!joined_ || poll_in_flight_ || reconnect_in_flight_) {
    return;
  }
  if (frames_stream_ != nullptr) {
    return;  // the framed stream owns delivery; gestures flush via POSTs
  }
  poll_in_flight_ = true;
  uint64_t seq = ++poll_seq_;

  PollRequest poll;
  poll.participant_id = pid_;
  poll.doc_time_ms = doc_time_ms_;
  poll.actions = std::move(action_queue_);
  action_queue_.clear();
  in_flight_actions_ = poll.actions;
  metrics_.actions_sent += poll.actions.size();
  if (recovery_enabled()) {
    poll.seq = seq;
    poll.timeouts = metrics_.poll_timeouts;
  }
  // need_resync_ is only ever set by recovery or by a failed patch apply, so
  // with both features off this stays false and the wire bytes are unchanged.
  poll.resync = need_resync_;
  // A resyncing participant must get the full snapshot, not a delta.
  poll.patch = config_.enable_delta && !need_resync_;
  // Streamed-transport capability (DESIGN.md §15): absent when the feature is
  // off or permanently downgraded, so the wire stays byte-identical.
  if (config_.stream_mode != transport::kStreamNone && !transport_downgraded_) {
    poll.stream = config_.stream_mode;
  }
  if (config_.enable_trace) {
    // poll_seq_ never resets, so trace ids stay unique across reconnects and
    // resumes. The root span id is reserved now but appended only when the
    // round trip resolves (response or timeout), so in-between children can
    // already parent to it.
    poll.trace = StrFormat("%s-%llu", pid_.c_str(),
                           static_cast<unsigned long long>(seq));
    poll_ctx_ = obs::TraceContext{poll.trace, trace_.ReserveSpanId()};
    if (!poll.actions.empty() && action_queue_waiting_) {
      SimTime now = browser_->loop()->now();
      trace_.Append("snippet.action_queue", obs::Provenance::kSim,
                    action_queue_since_.micros(),
                    (now - action_queue_since_).micros(), poll_ctx_,
                    {{"count", StrFormat("%zu", poll.actions.size())}});
    }
  } else {
    poll_ctx_ = obs::TraceContext{};
  }
  action_queue_waiting_ = false;

  SimTime sent_at = browser_->loop()->now();
  uint64_t epoch = epoch_;
  SendPoll(std::move(poll), [this, epoch, seq, sent_at](FetchResult result) {
    if (epoch != epoch_) {
      return;
    }
    if (recovery_enabled() && (!poll_in_flight_ || seq != poll_seq_)) {
      return;  // abandoned on timeout; a newer poll owns the loop now
    }
    poll_in_flight_ = false;
    if (timeout_timer_ != 0) {
      browser_->loop()->Cancel(timeout_timer_);
      timeout_timer_ = 0;
    }
    OnPollResponse(std::move(result), sent_at);
  });
  // A refused connection fails the fetch synchronously, so the poll may
  // already be resolved here — only arm the timeout for one still in flight.
  if (recovery_enabled() && poll_in_flight_ && seq == poll_seq_) {
    // A granted long-poll is legitimately held by the agent: the deadline
    // budget covers the advertised hold on top of the normal timeout.
    Duration budget = config_.poll_timeout;
    if (longpoll_active_) {
      budget += Duration::Millis(longpoll_hold_ms_);
    }
    uint64_t timer_epoch = epoch_;
    timeout_timer_ =
        browser_->loop()->Schedule(budget, [this, timer_epoch, seq] {
          if (timer_epoch != epoch_) {
            return;
          }
          timeout_timer_ = 0;
          OnPollTimeout(seq);
        });
  }
}

void AjaxSnippet::OnPollTimeout(uint64_t seq) {
  if (!joined_ || !poll_in_flight_ || seq != poll_seq_) {
    return;
  }
  // Abandon the outstanding request: responses for this seq are discarded if
  // they ever arrive, and the piggybacked gestures ride the next poll.
  poll_in_flight_ = false;
  ++metrics_.poll_timeouts;
  if (poll_ctx_.active()) {
    // The reserved root span id closes this trace as a deadline miss instead
    // of a round trip.
    SimTime now = browser_->loop()->now();
    trace_.Append("snippet.poll_timeout", obs::Provenance::kSim,
                  now.micros() - config_.poll_timeout.micros(),
                  config_.poll_timeout.micros(),
                  obs::TraceContext{poll_ctx_.trace_id, 0}, {},
                  poll_ctx_.parent_span_id);
  }
  flight_.Trigger("poll_timeout", browser_->loop()->now().micros());
  if (!in_flight_actions_.empty()) {
    action_queue_.insert(action_queue_.begin(), in_flight_actions_.begin(),
                         in_flight_actions_.end());
    in_flight_actions_.clear();
    NoteActionQueued();
  }
  RCB_LOG(kWarning) << "ajax-snippet: poll " << seq << " timed out after "
                    << config_.poll_timeout;
  OnPollFailure();
}

void AjaxSnippet::OnPollFailure() {
  ++consecutive_failures_;
  if (config_.reconnect_after > 0 &&
      consecutive_failures_ >= config_.reconnect_after) {
    Reconnect();
    return;
  }
  Duration delay = BackoffDelay();
  if (poll_ctx_.active()) {
    trace_.Append("snippet.backoff", obs::Provenance::kSim,
                  browser_->loop()->now().micros(), delay.micros(), poll_ctx_,
                  {{"failures", StrFormat("%u", consecutive_failures_)}});
  }
  SchedulePoll(delay);
}

Duration AjaxSnippet::BackoffDelay() {
  uint32_t exponent = consecutive_failures_ > 0 ? consecutive_failures_ - 1 : 0;
  if (exponent > 16) {
    exponent = 16;  // the cap below has long since kicked in
  }
  Duration delay = config_.backoff_base * (int64_t{1} << exponent);
  if (delay > config_.backoff_max) {
    delay = config_.backoff_max;
  }
  if (config_.backoff_jitter > Duration::Zero()) {
    delay += Duration::Micros(static_cast<int64_t>(
        backoff_rng_.NextBelow(config_.backoff_jitter.micros() + 1)));
  }
  return delay;
}

void AjaxSnippet::Reconnect() {
  if (!joined_ || reconnect_in_flight_) {
    return;
  }
  reconnect_in_flight_ = true;
  if (poll_timer_ != 0) {
    browser_->loop()->Cancel(poll_timer_);
    poll_timer_ = 0;
  }
  if (timeout_timer_ != 0) {
    browser_->loop()->Cancel(timeout_timer_);
    timeout_timer_ = 0;
  }
  poll_in_flight_ = false;
  if (!in_flight_actions_.empty()) {
    action_queue_.insert(action_queue_.begin(), in_flight_actions_.begin(),
                         in_flight_actions_.end());
    in_flight_actions_.clear();
    NoteActionQueued();
  }
  if (stream_ != nullptr) {
    stream_->Close();
    stream_ = nullptr;
  }
  CloseFramedStream();
  longpoll_active_ = false;
  frames_pending_ = false;
  // Connections wedged on the dead link would swallow the re-handshake.
  browser_->AbortOriginConnections(agent_url_);

  // §3.2.3 + §3.4: resume under the old pid; with a session key the resume
  // request is signed like any other, so a reconnecting participant
  // re-authenticates.
  std::string query = "resume=" + pid_;
  if (!config_.session_key.empty()) {
    std::string message = "GET " + agent_url_.path() + "?" + query + "\n";
    query += "&hmac=" + HmacSha256Hex(config_.session_key, message);
  }
  Url target = Url::Make(agent_url_.scheme(), agent_url_.host(),
                         agent_url_.port(), agent_url_.path(), query);
  uint64_t epoch = epoch_;
  browser_->Navigate(target, [this, epoch](const Status& status,
                                           const PageLoadStats&) {
    if (epoch != epoch_) {
      return;
    }
    reconnect_in_flight_ = false;
    if (!status.ok()) {
      ++metrics_.reconnect_failures;
      ++consecutive_failures_;
      RCB_LOG(kWarning) << "ajax-snippet: reconnect failed: " << status;
      uint64_t retry_epoch = epoch_;
      poll_timer_ = browser_->loop()->Schedule(BackoffDelay(),
                                               [this, retry_epoch] {
                                                 if (retry_epoch != epoch_) {
                                                   return;
                                                 }
                                                 poll_timer_ = 0;
                                                 Reconnect();
                                               });
      return;
    }
    std::string pid = MetaContent(browser_->document(), "rcb-pid");
    if (!pid.empty()) {
      pid_ = pid;
    }
    ++metrics_.reconnects;
    consecutive_failures_ = 0;
    // Closes the failing trace: the next poll opens a fresh one whose id
    // still embeds the (unchanged) pid and the ever-growing poll seq.
    TraceMarker("snippet.reconnect", {{"pid", pid_}});
    // The gap may have eaten updates; force a full snapshot regardless of
    // what our DOM claims to hold.
    need_resync_ = true;
    doc_time_ms_ = -1;
    if (sync_model_ == SyncModel::kPush) {
      OpenStream();
    } else {
      PollOnce();
    }
  });
}

void AjaxSnippet::ScheduleStreamReopen() {
  if (!config_.stream_reconnect || !joined_) {
    return;
  }
  ++consecutive_failures_;
  uint64_t epoch = epoch_;
  browser_->loop()->Schedule(BackoffDelay(), [this, epoch] {
    if (epoch != epoch_ || stream_ != nullptr || !joined_) {
      return;
    }
    OpenStream();
  });
}

void AjaxSnippet::OnPollResponse(FetchResult result, SimTime sent_at) {
  if (poll_ctx_.active()) {
    // The round-trip root span, appended under the id reserved when the poll
    // left so the children recorded in between already point at it.
    SimTime now = browser_->loop()->now();
    int status = result.status.ok() ? result.response.status_code : 0;
    size_t bytes = result.status.ok() ? result.response.body.size() : 0;
    trace_.Append("snippet.poll_rtt", obs::Provenance::kSim, sent_at.micros(),
                  (now - sent_at).micros(),
                  obs::TraceContext{poll_ctx_.trace_id, 0},
                  {{"status", StrFormat("%d", status)},
                   {"bytes", StrFormat("%zu", bytes)}},
                  poll_ctx_.parent_span_id);
  }
  if (!result.status.ok()) {
    RCB_LOG(kWarning) << "ajax-snippet: poll transport failure: "
                      << result.status;
    // The piggybacked gestures never reached the agent — put them back at
    // the front of the queue so the next successful poll retries them.
    if (!in_flight_actions_.empty()) {
      action_queue_.insert(action_queue_.begin(), in_flight_actions_.begin(),
                           in_flight_actions_.end());
      in_flight_actions_.clear();
      NoteActionQueued();
    }
    if (recovery_enabled()) {
      ++metrics_.transport_failures;
      OnPollFailure();
    } else {
      SchedulePoll(interval_);
    }
    return;
  }
  consecutive_failures_ = 0;  // the transport works; any HTTP status proves it
  if (result.response.status_code == 429 || result.response.status_code == 503) {
    // The agent shed this poll (rate limit or admission control). That is
    // graceful degradation, not a failure: no backoff escalation and no
    // reconnect — just slow the poll loop down by the agent's Retry-After
    // hint. The piggybacked gestures were not applied, so requeue them.
    if (!in_flight_actions_.empty()) {
      action_queue_.insert(action_queue_.begin(), in_flight_actions_.begin(),
                           in_flight_actions_.end());
      in_flight_actions_.clear();
      NoteActionQueued();
    }
    ++metrics_.overload_deferrals;
    Duration delay = interval_;
    if (auto hint = result.response.RetryAfter(); hint.has_value()) {
      metrics_.last_retry_after = *hint;
      if (*hint > delay) {
        delay = *hint;
      }
    }
    TraceMarker("snippet.overload_deferral",
                {{"code", StrFormat("%d", result.response.status_code)},
                 {"delay_ms", StrFormat("%lld", static_cast<long long>(
                                                    delay.millis()))}});
    flight_.Trigger("overload", browser_->loop()->now().micros());
    SchedulePoll(delay);
    return;
  }
  in_flight_actions_.clear();
  if (result.response.status_code == 403) {
    ++metrics_.auth_rejections;
    TraceMarker("snippet.auth_rejected", {{"code", "403"}});
    RCB_LOG(kWarning) << "ajax-snippet: agent rejected request authentication";
    // Keep polling: the user may re-enter the session key out of band.
    SchedulePoll(interval_);
    return;
  }
  if (result.response.status_code != 200) {
    RCB_LOG(kWarning) << "ajax-snippet: poll HTTP " << result.response.status_code;
    SchedulePoll(interval_);
    return;
  }
  // Transport negotiation (DESIGN.md §15): each successful poll response
  // refreshes the grant; a response without the header (agent opted out,
  // capacity denial, front-door route) drops back to classic polling.
  longpoll_active_ = false;
  frames_pending_ = false;
  if (config_.stream_mode != transport::kStreamNone && !transport_downgraded_) {
    if (auto header = result.response.headers.Get("RCB-Transport")) {
      if (auto grant = transport::ParseTransportGrant(*header)) {
        if (grant->mode == transport::GrantMode::kFrames &&
            config_.stream_mode >= transport::kStreamFrames) {
          frames_pending_ = true;
          frames_hb_ms_ = grant->heartbeat_ms;
        } else if (grant->mode == transport::GrantMode::kLongPoll) {
          longpoll_active_ = true;
          longpoll_hold_ms_ = grant->hold_ms;
        }
      }
    }
  }
  if (result.response.body.empty()) {
    // "No new content": schedule the next poll after the interval.
    ++metrics_.empty_responses;
    if (!longpoll_active_ && !frames_pending_) {
      // The whole round trip moved no payload — the idle tax the streamed
      // transport exists to remove (wasted-poll accounting, DESIGN.md §15).
      ++metrics_.wasted_polls;
      metrics_.wasted_poll_bytes +=
          in_flight_poll_bytes_ + result.response.Serialize().size();
    }
    TraceMarker("snippet.response.empty", {});
    ScheduleNextPoll(/*activity=*/false, sent_at);
    return;
  }
  if (config_.enable_delta && delta::LooksLikePatchXml(result.response.body)) {
    auto envelope_or = delta::ParsePatchXml(result.response.body);
    if (!envelope_or.ok()) {
      RCB_LOG(kWarning) << "ajax-snippet: bad patch: " << envelope_or.status();
      ++metrics_.patch_apply_errors;
      need_resync_ = true;  // next poll demands a full snapshot
      SchedulePoll(interval_);
      return;
    }
    ProcessPatch(*envelope_or, browser_->loop()->now() - sent_at);
    ScheduleNextPoll(/*activity=*/true, sent_at);
    return;
  }
  auto snapshot_or = ParseSnapshotXml(result.response.body);
  if (!snapshot_or.ok()) {
    RCB_LOG(kWarning) << "ajax-snippet: bad snapshot: " << snapshot_or.status();
    SchedulePoll(interval_);
    return;
  }
  ProcessSnapshot(*snapshot_or, browser_->loop()->now() - sent_at);
  ScheduleNextPoll(/*activity=*/true, sent_at);
}

void AjaxSnippet::ScheduleNextPoll(bool activity, SimTime sent_at) {
  if (adaptive_.has_value()) {
    if (activity) {
      adaptive_->OnActivity();
    } else {
      adaptive_->OnEmpty();
    }
  }
  if (frames_pending_) {
    // The grant says a framed stream is waiting: open it instead of polling.
    frames_pending_ = false;
    OpenFramedStream();
    if (frames_stream_ != nullptr) {
      return;
    }
    // Open failed synchronously; OnFramedStreamFailure already re-entered
    // the poll loop.
    return;
  }
  if (longpoll_active_) {
    // Keep one request parked at the agent at all times: the next poll goes
    // out immediately and the agent holds it until there is something to
    // say (or the hold deadline passes). No busy loop: each round trip is
    // either held for long_poll_hold or carries payload.
    SchedulePoll(Duration::Zero());
    return;
  }
  if (adaptive_.has_value()) {
    SchedulePoll(adaptive_->Current());
    return;
  }
  SchedulePoll(interval_);
}

void AjaxSnippet::OpenFramedStream() {
  if (frames_stream_ != nullptr || !joined_) {
    return;
  }
  std::string query = "pid=" + pid_;
  if (!config_.session_key.empty()) {
    std::string message = "GET /frames?" + query + "\n";
    query += "&hmac=" + HmacSha256Hex(config_.session_key, message);
  }
  auto endpoint_or = browser_->network()->Connect(
      browser_->machine(), agent_url_.host(), agent_url_.port());
  if (!endpoint_or.ok()) {
    RCB_LOG(kWarning) << "ajax-snippet: frames connect failed: "
                      << endpoint_or.status();
    OnFramedStreamFailure();
    return;
  }
  frames_stream_ = *endpoint_or;
  frames_buffer_.clear();
  frames_head_done_ = false;
  // A fresh stream means a fresh seq space: the parser's anti-replay floor
  // resets with it (the MAC still binds every frame to the session key).
  frame_parser_.emplace(config_.session_key);
  last_frame_at_ = browser_->loop()->now();
  frames_last_part_start_ = browser_->loop()->now();
  ++metrics_.transport_streams_opened;
  uint64_t epoch = epoch_;
  frames_stream_->SetDataHandler([this, epoch](std::string_view data) {
    if (epoch == epoch_) {
      OnFramesData(data);
    }
  });
  frames_stream_->SetCloseHandler([this, epoch] {
    if (epoch != epoch_) {
      return;
    }
    frames_stream_ = nullptr;
    ++metrics_.stream_drops;
    RCB_LOG(kWarning) << "ajax-snippet: framed stream closed by peer";
    OnFramedStreamFailure();
  });

  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.target = "/frames?" + query;
  request.headers.Set("Host", agent_url_.Authority());
  frames_stream_->Send(request.Serialize());
}

void AjaxSnippet::OnFramesData(std::string_view data) {
  if (!frames_head_done_) {
    frames_buffer_.append(data);
    size_t head_end = frames_buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      return;
    }
    std::string_view head =
        std::string_view(frames_buffer_).substr(0, head_end);
    if (head.find(" 200 ") == std::string_view::npos) {
      RCB_LOG(kWarning) << "ajax-snippet: frames request rejected";
      ++metrics_.auth_rejections;
      OnFramedStreamFailure();
      return;
    }
    std::string rest = frames_buffer_.substr(head_end + 4);
    frames_buffer_.clear();
    frames_head_done_ = true;
    if (!rest.empty()) {
      frame_parser_->Append(rest);
    }
  } else {
    frame_parser_->Append(data);
  }
  while (true) {
    auto frame_or = frame_parser_->Next();
    if (!frame_or.ok()) {
      // Sticky by design: a bad MAC or regressing seq compromises the whole
      // stream, so it is torn down and re-established via signed resume.
      RCB_LOG(kWarning) << "ajax-snippet: frame error: " << frame_or.status();
      ++metrics_.frame_errors;
      OnFramedStreamFailure();
      return;
    }
    if (!frame_or->has_value()) {
      return;  // no complete frame buffered yet
    }
    transport::Frame frame = std::move(**frame_or);
    last_frame_at_ = browser_->loop()->now();
    switch (frame.type) {
      case transport::FrameType::kHello: {
        ++metrics_.frames_received;
        if (StartsWith(frame.body, "hb=")) {
          uint64_t hb_ms = 0;
          if (ParseUint64(std::string_view(frame.body).substr(3), &hb_ms)) {
            frames_hb_ms_ = static_cast<int64_t>(hb_ms);
          }
        }
        ArmFramesWatchdog(EffectiveHeartbeatTimeout());
        break;
      }
      case transport::FrameType::kHeartbeat:
        ++metrics_.heartbeats_received;
        break;
      case transport::FrameType::kData: {
        ++metrics_.frames_received;
        stream_failure_streak_ = 0;  // the transport demonstrably works
        SimTime received = browser_->loop()->now();
        auto snapshot_or = ParseSnapshotXml(frame.body);
        if (!snapshot_or.ok()) {
          RCB_LOG(kWarning) << "ajax-snippet: bad framed snapshot: "
                            << snapshot_or.status();
          break;
        }
        ProcessSnapshot(*snapshot_or, received - frames_last_part_start_);
        frames_last_part_start_ = browser_->loop()->now();
        break;
      }
    }
  }
}

Duration AjaxSnippet::EffectiveHeartbeatTimeout() const {
  if (config_.heartbeat_timeout > Duration::Zero()) {
    return config_.heartbeat_timeout;
  }
  int64_t hb_ms = frames_hb_ms_ > 0 ? frames_hb_ms_ : 5000;
  return Duration::Millis(3 * hb_ms);
}

void AjaxSnippet::ArmFramesWatchdog(Duration delay) {
  if (frames_watchdog_armed_ || frames_stream_ == nullptr) {
    return;
  }
  frames_watchdog_armed_ = true;
  uint64_t epoch = epoch_;
  frames_watchdog_timer_ = browser_->loop()->Schedule(delay, [this, epoch] {
    if (epoch != epoch_) {
      return;
    }
    frames_watchdog_armed_ = false;
    frames_watchdog_timer_ = 0;
    OnFramesWatchdogTick();
  });
}

void AjaxSnippet::OnFramesWatchdogTick() {
  if (frames_stream_ == nullptr) {
    return;
  }
  SimTime now = browser_->loop()->now();
  Duration timeout = EffectiveHeartbeatTimeout();
  if (now - last_frame_at_ >= timeout) {
    ++metrics_.heartbeat_timeouts;
    RCB_LOG(kWarning) << "ajax-snippet: framed stream heartbeat timeout after "
                      << timeout;
    OnFramedStreamFailure();
    return;
  }
  // Quiet but alive: re-check when the budget from the last frame runs out.
  ArmFramesWatchdog(last_frame_at_ + timeout - now);
}

void AjaxSnippet::CloseFramedStream() {
  if (frames_watchdog_armed_) {
    browser_->loop()->Cancel(frames_watchdog_timer_);
    frames_watchdog_armed_ = false;
    frames_watchdog_timer_ = 0;
  }
  if (frames_stream_ != nullptr) {
    frames_stream_->SetDataHandler(nullptr);
    frames_stream_->SetCloseHandler(nullptr);
    frames_stream_->Close();
    frames_stream_ = nullptr;
  }
  frames_buffer_.clear();
  frames_head_done_ = false;
  frame_parser_.reset();
}

void AjaxSnippet::OnFramedStreamFailure() {
  if (!joined_) {
    return;
  }
  CloseFramedStream();
  ++metrics_.transport_stream_failures;
  ++stream_failure_streak_;
  frames_pending_ = false;
  longpoll_active_ = false;
  if (!transport_downgraded_ && config_.stream_downgrade_after > 0 &&
      stream_failure_streak_ >= config_.stream_downgrade_after) {
    // Downgrade ladder (DESIGN.md §15): repeated stream failures mean the
    // path cannot sustain a held connection; stop advertising stream= and
    // live on classic polling (plus the adaptive policy, if configured).
    transport_downgraded_ = true;
    ++metrics_.transport_downgrades;
    RCB_LOG(kWarning) << "ajax-snippet: streamed transport downgraded to "
                         "classic polling after "
                      << stream_failure_streak_ << " consecutive failures";
  }
  TraceMarker("snippet.transport_failure",
              {{"streak", StrFormat("%u", stream_failure_streak_)},
               {"downgraded", transport_downgraded_ ? "1" : "0"}});
  // Recovery ladder: re-handshake through the signed resume when configured
  // (the stream may have died with updates in flight), else resume polling
  // with a forced full-snapshot resync.
  if (config_.reconnect_after > 0) {
    Reconnect();
    return;
  }
  need_resync_ = true;
  PollNow();
}

void AjaxSnippet::HandleBroadcastActions(
    const std::vector<UserAction>& actions) {
  for (const UserAction& action : actions) {
    ++metrics_.broadcasts_received;
    if (action.type == ActionType::kPresence && !action.origin.empty()) {
      if (action.data == "joined") {
        if (std::find(peers_.begin(), peers_.end(), action.origin) ==
            peers_.end()) {
          peers_.push_back(action.origin);
        }
      } else if (action.data == "left") {
        std::erase(peers_, action.origin);
      }
    }
    if (action_listener_) {
      action_listener_(action);
    }
  }
}

void AjaxSnippet::ProcessSnapshot(const Snapshot& snapshot,
                                  Duration transport_time) {
  HandleBroadcastActions(snapshot.user_actions);

  if (snapshot.has_content && snapshot.doc_time_ms > doc_time_ms_) {
    int64_t sim_now_us = browser_->loop()->now().micros();
    const bool traced = poll_ctx_.active();
    metrics_.last_content_download = transport_time;
    content_download_us_->Record(transport_time.micros());
    if (traced) {
      trace_.Append("snippet.content_download", obs::Provenance::kSim,
                    sim_now_us - transport_time.micros(),
                    transport_time.micros(), poll_ctx_);
    } else {
      trace_.Append("snippet.content_download", obs::Provenance::kSim,
                    sim_now_us - transport_time.micros(),
                    transport_time.micros());
    }
    auto start = std::chrono::steady_clock::now();
    {
      obs::WallSpan span(&trace_, "snippet.apply", sim_now_us, apply_us_,
                         traced ? &poll_ctx_ : nullptr,
                         {{"ts", StrFormat("%lld", static_cast<long long>(
                                                       snapshot.doc_time_ms))}});
      // The four Fig. 5 stage events parent to the apply span, not the poll.
      apply_ctx_ = traced
                       ? obs::TraceContext{poll_ctx_.trace_id, span.span_id()}
                       : obs::TraceContext{};
      ApplySnapshot(snapshot);
      apply_ctx_ = obs::TraceContext{};
    }
    auto end = std::chrono::steady_clock::now();
    metrics_.last_apply_time = Duration::Micros(
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count());
    metrics_.total_apply_time += metrics_.last_apply_time;
    doc_time_ms_ = snapshot.doc_time_ms;
    ++metrics_.content_updates;
    if (need_resync_) {
      // The full snapshot that re-converges us after a reconnect.
      ++metrics_.resyncs;
      need_resync_ = false;
      TraceMarker("snippet.resync_applied",
                  {{"ts", StrFormat("%lld", static_cast<long long>(
                                                snapshot.doc_time_ms))}});
    }
    if (update_listener_) {
      update_listener_(doc_time_ms_);
    }
    if (config_.fetch_objects) {
      FetchSupplementaryObjects();
    }
  }
}

void AjaxSnippet::ProcessPatch(const delta::PatchEnvelope& envelope,
                               Duration transport_time) {
  HandleBroadcastActions(envelope.user_actions);

  int64_t sim_now_us = browser_->loop()->now().micros();
  const bool traced = poll_ctx_.active();
  auto start = std::chrono::steady_clock::now();
  delta::ApplyResult result;
  {
    obs::WallSpan span(
        &trace_, "snippet.apply_patch", sim_now_us, apply_us_,
        traced ? &poll_ctx_ : nullptr,
        {{"base_ts", StrFormat("%lld", static_cast<long long>(
                                           envelope.patch.base_doc_time_ms))},
         {"target_ts",
          StrFormat("%lld",
                    static_cast<long long>(envelope.patch.target_doc_time_ms))}});
    result = delta::ApplyPatchToDocument(browser_->document(), doc_time_ms_,
                                         envelope.patch);
  }
  auto end = std::chrono::steady_clock::now();
  switch (result) {
    case delta::ApplyResult::kApplied:
      metrics_.last_content_download = transport_time;
      content_download_us_->Record(transport_time.micros());
      if (traced) {
        trace_.Append("snippet.content_download", obs::Provenance::kSim,
                      sim_now_us - transport_time.micros(),
                      transport_time.micros(), poll_ctx_);
      } else {
        trace_.Append("snippet.content_download", obs::Provenance::kSim,
                      sim_now_us - transport_time.micros(),
                      transport_time.micros());
      }
      metrics_.last_apply_time = Duration::Micros(
          std::chrono::duration_cast<std::chrono::microseconds>(end - start)
              .count());
      metrics_.total_apply_time += metrics_.last_apply_time;
      doc_time_ms_ = envelope.patch.target_doc_time_ms;
      ++metrics_.content_updates;
      ++metrics_.patches_applied;
      if (update_listener_) {
        update_listener_(doc_time_ms_);
      }
      if (config_.fetch_objects) {
        FetchSupplementaryObjects();
      }
      break;
    case delta::ApplyResult::kStaleIgnored:
      // Out-of-order or duplicate delivery of a patch we already passed; the
      // document is untouched and no resync is needed.
      ++metrics_.patches_stale_ignored;
      break;
    case delta::ApplyResult::kBaseTimeMismatch:
      ++metrics_.patch_base_mismatches;
      break;
    case delta::ApplyResult::kBaseDigestMismatch:
    case delta::ApplyResult::kTargetDigestMismatch:
      ++metrics_.patch_digest_mismatches;
      break;
    case delta::ApplyResult::kApplyError:
      ++metrics_.patch_apply_errors;
      break;
  }
  if (delta::NeedsResync(result)) {
    RCB_LOG(kWarning) << "ajax-snippet: patch rejected ("
                      << delta::ApplyResultName(result)
                      << "), requesting full resync";
    need_resync_ = true;
    TraceMarker("snippet.patch_rejected",
                {{"result", std::string(delta::ApplyResultName(result))}});
    flight_.Trigger("patch_resync", browser_->loop()->now().micros());
  }
}

void AjaxSnippet::ApplySnapshot(const Snapshot& snapshot) {
  Document* document = browser_->document();
  Element* root = document->document_element();
  if (root == nullptr) {
    return;
  }
  int64_t sim_now_us = browser_->loop()->now().micros();
  auto stage_start = std::chrono::steady_clock::now();
  size_t stage_index = 0;
  // Closes the current Fig. 5 stage: records its CPU time into the matching
  // stage histogram and the trace ring, then restarts the stopwatch.
  auto end_stage = [&](const char* name) {
    auto now = std::chrono::steady_clock::now();
    int64_t elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(now - stage_start)
            .count();
    apply_stage_hist_[stage_index++]->Record(elapsed_us);
    if (apply_ctx_.active()) {
      trace_.Append(name, obs::Provenance::kWall, sim_now_us, elapsed_us,
                    apply_ctx_);
    } else {
      trace_.Append(name, obs::Provenance::kWall, sim_now_us, elapsed_us);
    }
    stage_start = now;
  };
  Element* head = root->ChildByTag("head");
  if (head == nullptr) {
    head = root->InsertBefore(MakeElement("head"), root->first_child())->AsElement();
  }

  // Step 1: clean the head element but always keep the snippet itself.
  std::vector<Node*> head_children;
  for (const auto& child : head->children()) {
    Element* element = child->AsElement();
    bool is_snippet = element != nullptr && element->tag_name() == "script" &&
                      element->id() == "rcb-snippet";
    if (!is_snippet) {
      head_children.push_back(child.get());
    }
  }
  for (Node* node : head_children) {
    head->RemoveChild(node);
  }
  if (head->ChildByTag("script") == nullptr) {
    // Arriving via an agent page guarantees the snippet script exists, but
    // re-create it defensively so the invariant holds for any document.
    auto script = MakeElement("script");
    script->SetAttribute("id", "rcb-snippet");
    head->AppendChild(std::move(script));
  }
  end_stage("snippet.apply.clean_head");

  // Step 2: append the new head children (attribute lists + innerHTML).
  for (const ElementPayload& payload : snapshot.head_children) {
    auto element = MakeElement(payload.tag);
    for (const auto& [name, value] : payload.attributes) {
      element->SetAttribute(name, value);
    }
    element->SetInnerHtml(payload.inner_html);
    head->AppendChild(std::move(element));
  }
  end_stage("snippet.apply.set_head");

  // Step 3: clean up top-level elements not present in the new content.
  auto wanted = [&](const std::string& tag) {
    if (tag == "head") {
      return true;
    }
    if (tag == "body") {
      return snapshot.body.has_value();
    }
    if (tag == "frameset") {
      return snapshot.frameset.has_value();
    }
    if (tag == "noframes") {
      return snapshot.noframes.has_value();
    }
    return false;
  };
  std::vector<Node*> stale;
  for (const auto& child : root->children()) {
    Element* element = child->AsElement();
    if (element == nullptr || !wanted(element->tag_name())) {
      stale.push_back(child.get());
    }
  }
  for (Node* node : stale) {
    root->RemoveChild(node);
  }
  end_stage("snippet.apply.drop_stale");

  // Step 4: set the remaining top-level elements from the new content.
  auto apply_top = [&](const ElementPayload& payload) {
    Element* element = root->ChildByTag(payload.tag);
    if (element == nullptr) {
      element = root->AppendChild(MakeElement(payload.tag))->AsElement();
    }
    std::vector<std::pair<std::string, std::string>> old_attributes =
        element->attributes();
    for (const auto& attribute : old_attributes) {
      element->RemoveAttribute(attribute.first);
    }
    for (const auto& [name, value] : payload.attributes) {
      element->SetAttribute(name, value);
    }
    element->SetInnerHtml(payload.inner_html);
  };
  if (snapshot.body.has_value()) {
    apply_top(*snapshot.body);
  }
  if (snapshot.frameset.has_value()) {
    apply_top(*snapshot.frameset);
  }
  if (snapshot.noframes.has_value()) {
    apply_top(*snapshot.noframes);
  }
  end_stage("snippet.apply.set_body");
}

void AjaxSnippet::FetchSupplementaryObjects() {
  std::vector<ResourceRef> resources =
      CollectResources(browser_->document(), browser_->current_url());
  metrics_.last_object_count = resources.size();
  metrics_.last_objects_from_host = 0;
  if (resources.empty()) {
    metrics_.last_object_time = Duration::Zero();
    if (objects_listener_) {
      objects_listener_(Duration::Zero());
    }
    return;
  }
  auto remaining = std::make_shared<size_t>(resources.size());
  SimTime start = browser_->loop()->now();
  uint64_t epoch = epoch_;
  // Captured by value: the fetches resolve after the poll that triggered
  // them, by which time poll_ctx_ may already describe a newer poll.
  obs::TraceContext fetch_ctx = poll_ctx_;
  size_t object_count = resources.size();
  for (const ResourceRef& resource : resources) {
    if (resource.url.host() == agent_url_.host() &&
        resource.url.port() == agent_url_.port()) {
      ++metrics_.last_objects_from_host;
    }
    browser_->FetchCached(
        resource.url,
        [this, epoch, remaining, start, fetch_ctx,
         object_count](FetchResult result) {
          if (epoch != epoch_) {
            return;
          }
          if (!result.status.ok() || result.response.status_code != 200) {
            ++metrics_.object_fetch_failures;
          }
          if (--*remaining == 0) {
            metrics_.last_object_time = browser_->loop()->now() - start;
            object_fetch_us_->Record(metrics_.last_object_time.micros());
            if (fetch_ctx.active()) {
              trace_.Append("snippet.object_fetch", obs::Provenance::kSim,
                            start.micros(),
                            metrics_.last_object_time.micros(), fetch_ctx,
                            {{"count", StrFormat("%zu", object_count)}});
            } else {
              trace_.Append("snippet.object_fetch", obs::Provenance::kSim,
                            start.micros(),
                            metrics_.last_object_time.micros());
            }
            if (objects_listener_) {
              objects_listener_(metrics_.last_object_time);
            }
          }
        });
  }
}

std::vector<std::pair<std::string, std::string>> AjaxSnippet::FormFields(
    Element* form) {
  std::vector<std::pair<std::string, std::string>> fields;
  form->ForEachElement([&](Element* element) {
    const std::string& tag = element->tag_name();
    std::string name = element->AttrOr("name");
    if (name.empty()) {
      return true;
    }
    if (tag == "input") {
      std::string type = AsciiToLower(element->AttrOr("type", "text"));
      if (type == "submit" || type == "button" || type == "image") {
        return true;
      }
      fields.emplace_back(name, element->AttrOr("value"));
    } else if (tag == "textarea") {
      fields.emplace_back(name, element->TextContent());
    }
    return true;
  });
  return fields;
}

namespace {

StatusOr<int> RcbIdOf(Element* element) {
  if (element == nullptr) {
    return InvalidArgumentError("null element");
  }
  std::string id = element->AttrOr("data-rcb-id");
  if (!IsDigits(id)) {
    return FailedPreconditionError(
        "element carries no data-rcb-id (not part of a synchronized page?)");
  }
  return std::atoi(id.c_str());
}

}  // namespace

Status AjaxSnippet::ClickElement(Element* element) {
  RCB_ASSIGN_OR_RETURN(int target, RcbIdOf(element));
  UserAction action;
  action.type = ActionType::kClick;
  action.target = target;
  action_queue_.push_back(std::move(action));
  NoteActionQueued();
  if (sync_model_ == SyncModel::kPush || frames_stream_ != nullptr) {
    ScheduleActionFlush();
  }
  return Status::Ok();
}

Status AjaxSnippet::FillFormField(Element* form, std::string_view name,
                                  std::string_view value) {
  RCB_ASSIGN_OR_RETURN(int target, RcbIdOf(form));
  // Update the local DOM so the participant sees their own input.
  RCB_RETURN_IF_ERROR(Browser::FillField(form, name, value));
  UserAction action;
  action.type = ActionType::kFormFill;
  action.target = target;
  action.fields.emplace_back(std::string(name), std::string(value));
  action_queue_.push_back(std::move(action));
  NoteActionQueued();
  if (sync_model_ == SyncModel::kPush || frames_stream_ != nullptr) {
    ScheduleActionFlush();
  }
  return Status::Ok();
}

Status AjaxSnippet::SubmitForm(Element* form) {
  RCB_ASSIGN_OR_RETURN(int target, RcbIdOf(form));
  UserAction action;
  action.type = ActionType::kFormSubmit;
  action.target = target;
  action.fields = FormFields(form);
  action_queue_.push_back(std::move(action));
  NoteActionQueued();
  if (sync_model_ == SyncModel::kPush || frames_stream_ != nullptr) {
    ScheduleActionFlush();
  }
  return Status::Ok();
}

void AjaxSnippet::SendMouseMove(int x, int y) {
  UserAction action;
  action.type = ActionType::kMouseMove;
  action.x = x;
  action.y = y;
  action_queue_.push_back(std::move(action));
  NoteActionQueued();
  if (sync_model_ == SyncModel::kPush || frames_stream_ != nullptr) {
    ScheduleActionFlush();
  }
}

void AjaxSnippet::RequestNavigate(const std::string& url) {
  UserAction action;
  action.type = ActionType::kNavigate;
  action.data = url;
  action_queue_.push_back(std::move(action));
  NoteActionQueued();
  if (sync_model_ == SyncModel::kPush || frames_stream_ != nullptr) {
    ScheduleActionFlush();
  }
}

}  // namespace rcb
