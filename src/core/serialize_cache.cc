#include "src/core/serialize_cache.h"

#include "src/core/content_generator.h"
#include "src/html/parser.h"
#include "src/html/tokenizer.h"
#include "src/util/escape.h"

namespace rcb {

// The raw side of this walk must stay byte-for-byte the serializer's
// (src/html/serializer.cc SerializeInto); serialize_cache_test pins the two
// together over the corpus and random mutation schedules.

void SerializeCache::AppendChildrenHtml(const Element& element,
                                        uint64_t config_fingerprint,
                                        size_t* interactive_counter,
                                        std::string* raw,
                                        std::string* escaped) {
  const bool raw_text =
      HtmlTokenizer::IsRawTextElement(element.tag_name());
  for (const auto& child : element.children()) {
    AppendNode(*child, raw_text, config_fingerprint, interactive_counter, raw,
               escaped);
  }
}

void SerializeCache::AppendNode(const Node& node, bool raw_text_parent,
                                uint64_t fingerprint, size_t* counter,
                                std::string* raw, std::string* escaped) {
  switch (node.type()) {
    case NodeType::kDocument:
      for (const auto& child : node.children()) {
        AppendNode(*child, /*raw_text_parent=*/false, fingerprint, counter,
                   raw, escaped);
      }
      break;
    case NodeType::kText: {
      // Large text spans are cached too: a big text node (or the padding
      // comment below) can sit directly under <body>, whose own span misses
      // on every update — without this, its escape cost would be paid per
      // update. Text carries no data-rcb-ids, so hits ignore the counter.
      // Spans under the size floor skip the cache entirely (no lookup, no
      // stats): they are cheaper to re-serialize than to hash.
      const std::string& data = static_cast<const Text&>(node).data();
      const bool cacheable = data.size() >= tuning_.min_span_bytes;
      const Key key{node.rev(), fingerprint};
      if (cacheable && TryAppendHit(key, counter, raw, escaped)) {
        break;
      }
      const size_t raw_start = raw->size();
      const size_t escaped_start = escaped->size();
      if (raw_text_parent) {
        raw->append(data);  // script/style content is emitted verbatim
      } else {
        HtmlEscapeAppend(data, raw);
      }
      JsEscapeAppend(std::string_view(*raw).substr(raw_start), escaped);
      if (cacheable) {
        RecordMissSpan(key, raw_start, escaped_start, *counter, counter, raw,
                       escaped);
      }
      break;
    }
    case NodeType::kComment: {
      const std::string& data = static_cast<const Comment&>(node).data();
      const bool cacheable = data.size() >= tuning_.min_span_bytes;
      const Key key{node.rev(), fingerprint};
      if (cacheable && TryAppendHit(key, counter, raw, escaped)) {
        break;
      }
      const size_t raw_start = raw->size();
      const size_t escaped_start = escaped->size();
      raw->append("<!--");
      raw->append(data);
      raw->append("-->");
      JsEscapeAppend(std::string_view(*raw).substr(raw_start), escaped);
      if (cacheable) {
        RecordMissSpan(key, raw_start, escaped_start, *counter, counter, raw,
                       escaped);
      }
      break;
    }
    case NodeType::kDoctype: {
      size_t start = raw->size();
      raw->append("<!");
      raw->append(static_cast<const Doctype&>(node).data());
      raw->append(">");
      JsEscapeAppend(std::string_view(*raw).substr(start), escaped);
      break;
    }
    case NodeType::kElement:
      AppendElement(static_cast<const Element&>(node), fingerprint, counter,
                    raw, escaped);
      break;
  }
}

void SerializeCache::AppendElement(const Element& element,
                                   uint64_t fingerprint, size_t* counter,
                                   std::string* raw, std::string* escaped) {
  const Key key{element.rev(), fingerprint};
  if (TryAppendHit(key, counter, raw, escaped)) {
    return;
  }
  // Miss (or an id-shifted entry, which will be overwritten with the current
  // numbering): serialize this subtree, then keep the produced spans.
  const size_t raw_start = raw->size();
  const size_t escaped_start = escaped->size();
  const size_t id_base = *counter;
  if (ContentGenerator::IsInteractive(element)) {
    ++*counter;
  }
  {
    size_t tag_start = raw->size();
    raw->push_back('<');
    raw->append(element.tag_name());
    for (const auto& [name, value] : element.attributes()) {
      raw->push_back(' ');
      raw->append(name);
      raw->append("=\"");
      HtmlEscapeAppend(value, raw);
      raw->push_back('"');
    }
    raw->push_back('>');
    JsEscapeAppend(std::string_view(*raw).substr(tag_start), escaped);
  }
  if (!IsVoidElement(element.tag_name())) {
    AppendChildrenHtml(element, fingerprint, counter, raw, escaped);
    size_t close_start = raw->size();
    raw->append("</");
    raw->append(element.tag_name());
    raw->push_back('>');
    JsEscapeAppend(std::string_view(*raw).substr(close_start), escaped);
  }
  RecordMissSpan(key, raw_start, escaped_start, id_base, counter, raw,
                 escaped);
}

bool SerializeCache::TryAppendHit(const Key& key, size_t* counter,
                                  std::string* raw, std::string* escaped) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  Entry& entry = it->second;
  // A span containing no interactive elements embeds no data-rcb-ids, so its
  // bytes are independent of the counter; only id-bearing spans must match.
  if (entry.interactive_count != 0 && entry.id_base != *counter) {
    return false;
  }
  raw->append(entry.raw);
  escaped->append(entry.escaped);
  *counter += entry.interactive_count;
  ++stats_.hits;
  stats_.hit_bytes += entry.raw.size();
  lru_.splice(lru_.begin(), lru_, entry.lru);
  return true;
}

void SerializeCache::RecordMissSpan(const Key& key, size_t raw_start,
                                    size_t escaped_start, size_t id_base,
                                    const size_t* counter,
                                    const std::string* raw,
                                    const std::string* escaped) {
  ++stats_.misses;
  const size_t span_bytes = raw->size() - raw_start;
  stats_.miss_bytes += span_bytes;
  if (span_bytes < tuning_.min_span_bytes ||
      span_bytes > tuning_.budget_bytes) {
    return;
  }
  Entry entry;
  entry.raw = raw->substr(raw_start);
  entry.escaped = escaped->substr(escaped_start);
  entry.id_base = id_base;
  entry.interactive_count = *counter - id_base;
  Insert(key, std::move(entry));
}

void SerializeCache::Insert(Key key, Entry entry) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Same subtree state re-serialized under a shifted id_base: replace.
    stats_.bytes -= it->second.raw.size() + it->second.escaped.size();
    lru_.erase(it->second.lru);
    --stats_.spans;
    entries_.erase(it);
  }
  stats_.bytes += entry.raw.size() + entry.escaped.size();
  ++stats_.spans;
  lru_.push_front(key);
  entry.lru = lru_.begin();
  entries_.emplace(key, std::move(entry));
  EvictToBudget();
}

void SerializeCache::EvictToBudget() {
  while (stats_.bytes > tuning_.budget_bytes && !lru_.empty()) {
    Key victim = lru_.back();
    auto it = entries_.find(victim);
    size_t victim_bytes = it->second.raw.size() + it->second.escaped.size();
    stats_.bytes -= victim_bytes;
    stats_.evicted_bytes += victim_bytes;
    ++stats_.evictions;
    --stats_.spans;
    lru_.pop_back();
    entries_.erase(it);
  }
}

void SerializeCache::Clear() {
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
  stats_.spans = 0;
}

}  // namespace rcb
