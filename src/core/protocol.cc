#include "src/core/protocol.h"

#include "src/http/form.h"
#include "src/util/escape.h"
#include "src/util/strings.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace rcb {
namespace {

constexpr char kUnitSep = '\x1f';

}  // namespace

std::string EncodeElementPayload(const ElementPayload& payload) {
  std::string out = EncodeElementPayloadPrefix(payload);
  out += payload.inner_html;
  return out;
}

std::string EncodeElementPayloadPrefix(const ElementPayload& payload) {
  std::string out = payload.tag;
  out += kUnitSep;
  out += EncodeFormUrlEncoded(payload.attributes);
  out += kUnitSep;
  return out;
}

StatusOr<ElementPayload> DecodeElementPayload(std::string_view encoded) {
  size_t first = encoded.find(kUnitSep);
  if (first == std::string_view::npos) {
    return InvalidArgumentError("element payload missing separators");
  }
  size_t second = encoded.find(kUnitSep, first + 1);
  if (second == std::string_view::npos) {
    return InvalidArgumentError("element payload missing innerHTML separator");
  }
  ElementPayload payload;
  payload.tag = std::string(encoded.substr(0, first));
  if (payload.tag.empty()) {
    return InvalidArgumentError("element payload has empty tag");
  }
  payload.attributes =
      ParseFormUrlEncodedOrdered(encoded.substr(first + 1, second - first - 1));
  payload.inner_html = std::string(encoded.substr(second + 1));
  return payload;
}

bool SnapshotEscaped::Matches(const Snapshot& snapshot) const {
  return has_content == snapshot.has_content &&
         head_children.size() == snapshot.head_children.size() &&
         body.has_value() == snapshot.body.has_value() &&
         frameset.has_value() == snapshot.frameset.has_value() &&
         noframes.has_value() == snapshot.noframes.has_value();
}

std::string SerializeSnapshotXml(const Snapshot& snapshot) {
  return SerializeSnapshotXml(snapshot, nullptr, nullptr, nullptr);
}

std::string SerializeSnapshotXml(const Snapshot& snapshot,
                                 SnapshotSerializeStats* stats) {
  return SerializeSnapshotXml(snapshot, stats, nullptr, nullptr);
}

std::string SerializeSnapshotXml(
    const Snapshot& snapshot, SnapshotSerializeStats* stats,
    const SnapshotEscaped* prescaped,
    const std::vector<UserAction>* override_actions) {
  XmlWriter writer;
  writer.WriteDeclaration();
  writer.StartElement("newContent");
  writer.WriteTextElement("docTime", StrFormat("%lld", static_cast<long long>(
                                                            snapshot.doc_time_ms)));
  if (prescaped != nullptr && !prescaped->Matches(snapshot)) {
    prescaped = nullptr;  // shape drifted from the snapshot: escape fresh
  }
  auto escape_counted = [stats](std::string raw) {
    std::string escaped = JsEscape(raw);
    if (stats != nullptr) {
      stats->payload_raw_bytes += raw.size();
      stats->payload_escaped_bytes += escaped.size();
    }
    return escaped;
  };
  // Pre-escaped CDATA text is spliced in verbatim; JsEscape output contains
  // no ']' byte, so XmlWriter's "]]>" splitting never fires on either path
  // and the bytes match a fresh escape exactly. Returned by reference: the
  // page-sized escaped image goes straight into the writer, uncopied.
  auto spliced = [stats](const EscapedPayload& pre) -> const std::string& {
    if (stats != nullptr) {
      stats->payload_raw_bytes += pre.raw_bytes;
      stats->payload_escaped_bytes += pre.escaped.size();
    }
    return pre.escaped;
  };
  if (snapshot.has_content) {
    writer.StartElement("docContent");
    writer.StartElement("docHead");
    int child_index = 1;
    for (size_t i = 0; i < snapshot.head_children.size(); ++i) {
      const std::string name = StrFormat("hChild%d", child_index++);
      if (prescaped != nullptr) {
        writer.WriteCdataElement(name, spliced(prescaped->head_children[i]));
      } else {
        writer.WriteCdataElement(
            name,
            escape_counted(EncodeElementPayload(snapshot.head_children[i])));
      }
    }
    writer.EndElement();  // docHead
    if (snapshot.body.has_value()) {
      if (prescaped != nullptr) {
        writer.WriteCdataElement("docBody", spliced(*prescaped->body));
      } else {
        writer.WriteCdataElement(
            "docBody", escape_counted(EncodeElementPayload(*snapshot.body)));
      }
    }
    if (snapshot.frameset.has_value()) {
      if (prescaped != nullptr) {
        writer.WriteCdataElement("docFrameSet", spliced(*prescaped->frameset));
      } else {
        writer.WriteCdataElement(
            "docFrameSet",
            escape_counted(EncodeElementPayload(*snapshot.frameset)));
      }
    }
    if (snapshot.noframes.has_value()) {
      if (prescaped != nullptr) {
        writer.WriteCdataElement("docNoFrames", spliced(*prescaped->noframes));
      } else {
        writer.WriteCdataElement(
            "docNoFrames",
            escape_counted(EncodeElementPayload(*snapshot.noframes)));
      }
    }
    writer.EndElement();  // docContent
  }
  const std::vector<UserAction>& actions =
      override_actions != nullptr ? *override_actions : snapshot.user_actions;
  if (!actions.empty()) {
    writer.WriteCdataElement("userActions",
                             escape_counted(EncodeActions(actions)));
  }
  writer.EndElement();  // newContent
  return writer.TakeString();
}

StatusOr<Snapshot> ParseSnapshotXml(std::string_view xml) {
  RCB_ASSIGN_OR_RETURN(auto root, ParseXml(xml));
  if (root->name != "newContent") {
    return InvalidArgumentError("expected newContent root, got " + root->name);
  }
  Snapshot snapshot;
  const XmlNode* doc_time = root->FindChild("docTime");
  if (doc_time == nullptr) {
    return InvalidArgumentError("snapshot missing docTime");
  }
  snapshot.doc_time_ms = std::atoll(doc_time->text.c_str());

  if (const XmlNode* content = root->FindChild("docContent")) {
    snapshot.has_content = true;
    if (const XmlNode* head = content->FindChild("docHead")) {
      for (const auto& child : head->children) {
        RCB_ASSIGN_OR_RETURN(ElementPayload payload,
                             DecodeElementPayload(JsUnescape(child->text)));
        snapshot.head_children.push_back(std::move(payload));
      }
    }
    if (const XmlNode* body = content->FindChild("docBody")) {
      RCB_ASSIGN_OR_RETURN(ElementPayload payload,
                           DecodeElementPayload(JsUnescape(body->text)));
      snapshot.body = std::move(payload);
    }
    if (const XmlNode* frameset = content->FindChild("docFrameSet")) {
      RCB_ASSIGN_OR_RETURN(ElementPayload payload,
                           DecodeElementPayload(JsUnescape(frameset->text)));
      snapshot.frameset = std::move(payload);
    }
    if (const XmlNode* noframes = content->FindChild("docNoFrames")) {
      RCB_ASSIGN_OR_RETURN(ElementPayload payload,
                           DecodeElementPayload(JsUnescape(noframes->text)));
      snapshot.noframes = std::move(payload);
    }
  }
  if (const XmlNode* actions = root->FindChild("userActions")) {
    RCB_ASSIGN_OR_RETURN(snapshot.user_actions,
                         DecodeActions(JsUnescape(actions->text)));
  }
  return snapshot;
}

std::string EncodePollRequest(const PollRequest& request) {
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("pid", request.participant_id);
  fields.emplace_back("ts", StrFormat("%lld",
                                      static_cast<long long>(request.doc_time_ms)));
  fields.emplace_back("actions", EncodeActions(request.actions));
  if (request.seq != 0) {
    fields.emplace_back("seq",
                        StrFormat("%llu", static_cast<unsigned long long>(request.seq)));
  }
  if (request.timeouts != 0) {
    fields.emplace_back(
        "timeouts", StrFormat("%llu", static_cast<unsigned long long>(request.timeouts)));
  }
  if (request.resync) {
    fields.emplace_back("resync", "1");
  }
  if (request.patch) {
    fields.emplace_back("patch", "1");
  }
  if (!request.trace.empty()) {
    fields.emplace_back("trace", request.trace);
  }
  if (request.stream != 0) {
    fields.emplace_back("stream", StrFormat("%u", request.stream));
  }
  return EncodeFormUrlEncoded(fields);
}

StatusOr<PollRequest> DecodePollRequest(std::string_view body) {
  PollRequest request;
  bool have_pid = false;
  bool have_ts = false;
  for (const auto& [name, value] : ParseFormUrlEncodedOrdered(body)) {
    if (name == "pid") {
      request.participant_id = value;
      have_pid = true;
    } else if (name == "ts") {
      request.doc_time_ms = std::atoll(value.c_str());
      have_ts = true;
    } else if (name == "actions") {
      RCB_ASSIGN_OR_RETURN(request.actions, DecodeActions(value));
    } else if (name == "seq") {
      request.seq = static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (name == "timeouts") {
      request.timeouts =
          static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (name == "resync") {
      request.resync = value == "1";
    } else if (name == "patch") {
      request.patch = value == "1";
    } else if (name == "trace") {
      request.trace = value;
    } else if (name == "stream") {
      request.stream =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    }
  }
  if (!have_pid || !have_ts) {
    return InvalidArgumentError("poll request missing pid/ts");
  }
  return request;
}

}  // namespace rcb
