// Response content generation — the Fig. 3 pipeline.
//
// When the host document changes, RCB-Agent:
//   1. clones the documentElement of the current document (all later steps
//      touch only the clone, never the live page),
//   2. converts relative URLs to absolute origin-server URLs,
//   3. in cache mode, rewrites the absolute URL of every supplementary object
//      present in the browser cache to an RCB-Agent URL (/obj/<cache-key>),
//   4. rewrites event attributes (onclick/onsubmit/onchange) so participant
//      interactions are routed back through Ajax-Snippet, tagging each
//      interactive element with its pre-order index ("data-rcb-id"),
//   5. extracts the attribute lists and innerHTML of the head children and of
//      the body (or frameset/noframes) into a Snapshot (Fig. 4).
#ifndef SRC_CORE_CONTENT_GENERATOR_H_
#define SRC_CORE_CONTENT_GENERATOR_H_

#include <vector>

#include "src/browser/browser.h"
#include "src/core/protocol.h"
#include "src/util/sim_time.h"

namespace rcb {

struct ContentGenOptions {
  bool cache_mode = true;
  Url agent_url;  // base for rewritten object URLs, e.g. http://host-pc:3000/
  // §4.1.2: the agent may "allow different objects on the same webpage to
  // use different modes". When set (and cache_mode is on), only objects this
  // predicate accepts are rewritten to agent URLs; the rest stay pointed at
  // their origins. `kind` is "image" | "stylesheet" | "script" | "frame".
  std::function<bool(const Url& url, const std::string& kind)>
      cache_object_filter;
};

struct GenerationResult {
  Snapshot snapshot;
  size_t interactive_elements = 0;
  size_t urls_absolutized = 0;
  size_t urls_cache_rewritten = 0;
  // Real (not simulated) CPU time of the pipeline — the paper's M5.
  Duration wall_time;
  // Per-stage breakdown of wall_time, one field per Fig. 3 step. The
  // generator stays observability-free; RcbAgent feeds these into its stage
  // histograms (rcb_agent_gen_stage_us{stage=...}).
  Duration stage_clone;
  Duration stage_absolutize;
  Duration stage_cache_rewrite;
  Duration stage_event_rewrite;
  Duration stage_extract;
};

class ContentGenerator {
 public:
  explicit ContentGenerator(Browser* host_browser) : browser_(host_browser) {}

  // Runs the five-step pipeline against the host browser's current document.
  // `doc_time_ms` stamps the snapshot (§4.1.1 timestamp mechanism).
  GenerationResult Generate(int64_t doc_time_ms,
                            const ContentGenOptions& options) const;

  // True for elements whose events RCB rewrites (anchors with href, forms,
  // form fields, buttons).
  static bool IsInteractive(const Element& element);

  // Pre-order enumeration of interactive elements. Index i in this vector is
  // the element that carries data-rcb-id="i" in generated snapshots; the
  // agent re-runs this on the live host document to resolve participant
  // action targets.
  static std::vector<Element*> InteractiveElements(Node* root);

 private:
  Browser* browser_;
};

// Materializes a snapshot into the canonical tree (src/delta/tree_diff.h) a
// participant's live document reduces to after a full Fig. 5 apply: payload
// elements are instantiated exactly as the snippet instantiates them
// (attributes in payload order, children via SetInnerHtml), so the agent's
// delta base trees and the participant's live tree digest-match by
// construction — parser quirks cancel out because both sides run the same
// parse. This is the "last-acked tree" the delta path diffs against.
std::unique_ptr<Element> MaterializeSnapshotTree(const Snapshot& snapshot);

}  // namespace rcb

#endif  // SRC_CORE_CONTENT_GENERATOR_H_
