// Response content generation — the Fig. 3 pipeline.
//
// When the host document changes, RCB-Agent:
//   1. clones the documentElement of the current document (all later steps
//      touch only the clone, never the live page),
//   2. converts relative URLs to absolute origin-server URLs,
//   3. in cache mode, rewrites the absolute URL of every supplementary object
//      present in the browser cache to an RCB-Agent URL (/obj/<cache-key>),
//   4. rewrites event attributes (onclick/onsubmit/onchange) so participant
//      interactions are routed back through Ajax-Snippet, tagging each
//      interactive element with its pre-order index ("data-rcb-id"),
//   5. extracts the attribute lists and innerHTML of the head children and of
//      the body (or frameset/noframes) into a Snapshot (Fig. 4).
#ifndef SRC_CORE_CONTENT_GENERATOR_H_
#define SRC_CORE_CONTENT_GENERATOR_H_

#include <vector>

#include "src/browser/browser.h"
#include "src/core/protocol.h"
#include "src/html/intern.h"
#include "src/core/serialize_cache.h"
#include "src/util/arena.h"
#include "src/util/sim_time.h"

namespace rcb {

// Hot-path knobs (README "hot-path knobs" table, docs/PERF_MODEL.md). All
// change cost only, never output bytes: incremental off must be
// byte-identical to incremental on.
struct GeneratorTuning {
  // Serialize only dirty subtrees through the SerializeCache; off falls back
  // to full InnerHtml + JsEscape per generation.
  bool incremental_serialize = true;
  size_t serialize_cache_budget = 4 * 1024 * 1024;
  size_t serialize_cache_min_span = 64;
  // Arena block size for the transient clone tree (arena_block_bytes).
  size_t arena_block_bytes = Arena::kDefaultBlockBytes;
  // Cap on the process-global tag/attribute interning table. The table is
  // shared by every document in the process (interned pointers must stay
  // stable across generator lifetimes), so this knob is applied process-wide
  // at generator construction; 0 leaves the current cap unchanged.
  size_t intern_table_max = 0;
};

struct ContentGenOptions {
  bool cache_mode = true;
  Url agent_url;  // base for rewritten object URLs, e.g. http://host-pc:3000/
  // §4.1.2: the agent may "allow different objects on the same webpage to
  // use different modes". When set (and cache_mode is on), only objects this
  // predicate accepts are rewritten to agent URLs; the rest stay pointed at
  // their origins. `kind` is "image" | "stylesheet" | "script" | "frame".
  std::function<bool(const Url& url, const std::string& kind)>
      cache_object_filter;
};

struct GenerationResult {
  Snapshot snapshot;
  // Pre-escaped payload CDATA text matching `snapshot` (filled on the
  // incremental path; empty/has_content=false when incremental_serialize is
  // off). SnapshotBroadcast stores it in the slot so per-participant
  // serializations splice instead of re-escaping the page.
  SnapshotEscaped escaped;
  size_t interactive_elements = 0;
  size_t urls_absolutized = 0;
  size_t urls_cache_rewritten = 0;
  // Real (not simulated) CPU time of the pipeline — the paper's M5.
  Duration wall_time;
  // Per-stage breakdown of wall_time, one field per Fig. 3 step. The
  // generator stays observability-free; RcbAgent feeds these into its stage
  // histograms (rcb_agent_gen_stage_us{stage=...}).
  Duration stage_clone;
  Duration stage_absolutize;
  Duration stage_cache_rewrite;
  Duration stage_event_rewrite;
  Duration stage_extract;
};

class ContentGenerator {
 public:
  explicit ContentGenerator(Browser* host_browser, GeneratorTuning tuning = {})
      : browser_(host_browser),
        tuning_(tuning),
        arena_(tuning.arena_block_bytes),
        serialize_cache_(SerializeCache::Tuning{
            tuning.serialize_cache_budget, tuning.serialize_cache_min_span}) {
    if (tuning.intern_table_max != 0) {
      SetTagInternCap(tuning.intern_table_max);
    }
  }

  // Runs the five-step pipeline against the host browser's current document.
  // `doc_time_ms` stamps the snapshot (§4.1.1 timestamp mechanism).
  // Non-const: the clone arena and the serialization cache persist across
  // calls — that reuse is where the incremental win comes from.
  GenerationResult Generate(int64_t doc_time_ms,
                            const ContentGenOptions& options);

  // True for elements whose events RCB rewrites (anchors with href, forms,
  // form fields, buttons).
  static bool IsInteractive(const Element& element);

  // Pre-order enumeration of interactive elements. Index i in this vector is
  // the element that carries data-rcb-id="i" in generated snapshots; the
  // agent re-runs this on the live host document to resolve participant
  // action targets.
  static std::vector<Element*> InteractiveElements(Node* root);

  const GeneratorTuning& tuning() const { return tuning_; }
  const SerializeCache::Stats& serialize_cache_stats() const {
    return serialize_cache_.stats();
  }
  Arena::Stats arena_stats() const { return arena_.stats(); }

 private:
  Browser* browser_;
  GeneratorTuning tuning_;
  Arena arena_;              // holds each generation's transient clone tree
  SerializeCache serialize_cache_;
  // Previous update's main-payload (body/frameset) sizes, used to reserve
  // the raw and escaped output strings instead of growing them per append.
  size_t main_payload_raw_hint_ = 0;
  size_t main_payload_escaped_hint_ = 0;
};

// Materializes a snapshot into the canonical tree (src/delta/tree_diff.h) a
// participant's live document reduces to after a full Fig. 5 apply: payload
// elements are instantiated exactly as the snippet instantiates them
// (attributes in payload order, children via SetInnerHtml), so the agent's
// delta base trees and the participant's live tree digest-match by
// construction — parser quirks cancel out because both sides run the same
// parse. This is the "last-acked tree" the delta path diffs against.
std::unique_ptr<Element> MaterializeSnapshotTree(const Snapshot& snapshot);

}  // namespace rcb

#endif  // SRC_CORE_CONTENT_GENERATOR_H_
