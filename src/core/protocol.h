// The RCB wire protocol: user actions and the Fig. 4 XML snapshot format.
//
// An Ajax polling request piggybacks the participant's pending actions in its
// POST body; the agent's response carries a `newContent` XML document with
// the document timestamp, the extracted head/body (or frameset) payloads —
// each JS-escape()d inside a CDATA section — and any broadcast user actions.
#ifndef SRC_CORE_PROTOCOL_H_
#define SRC_CORE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/actions.h"
#include "src/util/status.h"

namespace rcb {

// How content reaches participants (§3.2.3). The paper chooses poll-based
// synchronization; the push alternative it discusses — a held connection
// carrying "multipart/x-mixed-replace" parts — is implemented for the
// corresponding ablation.
enum class SyncModel { kPoll, kPush };

// ---------------------------------------------------------------------------
// Element payloads (the escape(data) inside each CDATA section of Fig. 4).
// ---------------------------------------------------------------------------

// One extracted element: its tag, attribute name-value list, and innerHTML.
struct ElementPayload {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string inner_html;

  bool operator==(const ElementPayload&) const = default;
};

// Flat encoding carried inside CDATA. Fields are separated by the ASCII unit
// separator; attributes are form-urlencoded (binary-safe after JsEscape).
std::string EncodeElementPayload(const ElementPayload& payload);
// The encoding up to and including the inner_html separator (tag + attrs);
// EncodeElementPayload(p) == EncodeElementPayloadPrefix(p) + p.inner_html.
// The incremental serializer escapes this small prefix fresh each generation
// and splices the cached escaped inner_html after it.
std::string EncodeElementPayloadPrefix(const ElementPayload& payload);
StatusOr<ElementPayload> DecodeElementPayload(std::string_view encoded);

// User actions (ActionType/UserAction and their codec) live in
// src/core/actions.h, re-exported here for the protocol's historical users.

// ---------------------------------------------------------------------------
// Snapshot: the newContent document of Fig. 4.
// ---------------------------------------------------------------------------

struct Snapshot {
  int64_t doc_time_ms = 0;
  // Document content; absent for an actions-only snapshot.
  bool has_content = false;
  std::vector<ElementPayload> head_children;
  std::optional<ElementPayload> body;       // pages using a body element
  std::optional<ElementPayload> frameset;   // pages using frames
  std::optional<ElementPayload> noframes;
  std::vector<UserAction> user_actions;

  bool empty() const {
    return !has_content && user_actions.empty();
  }
};

// Byte accounting for one SerializeSnapshotXml call: the encoded payload
// size before and after JsEscape. Their ratio is the escape() inflation the
// paper's M2 numbers absorb (~1.4–1.8x on the reproduced sites).
struct SnapshotSerializeStats {
  size_t payload_raw_bytes = 0;
  size_t payload_escaped_bytes = 0;
};

// Pre-escaped CDATA payloads for one Snapshot, produced by the incremental
// generate path (src/core/serialize_cache): `escaped` is exactly
// JsEscape(EncodeElementPayload(payload)) for the payload at the same
// position in the Snapshot. SnapshotBroadcast keeps one of these per slot so
// per-participant serializations (actions appended) splice the page bytes
// instead of re-escaping them.
struct EscapedPayload {
  std::string escaped;
  size_t raw_bytes = 0;  // pre-escape encoded size, for stats
};

struct SnapshotEscaped {
  bool has_content = false;
  std::vector<EscapedPayload> head_children;
  std::optional<EscapedPayload> body;
  std::optional<EscapedPayload> frameset;
  std::optional<EscapedPayload> noframes;

  // True when this mirrors `snapshot` payload-for-payload — the requirement
  // for handing it to SerializeSnapshotXml alongside that snapshot.
  bool Matches(const Snapshot& snapshot) const;
};

// Serializes per Fig. 4 (with the <?xml?> declaration).
std::string SerializeSnapshotXml(const Snapshot& snapshot);
std::string SerializeSnapshotXml(const Snapshot& snapshot,
                                 SnapshotSerializeStats* stats);
// Full-control variant. `prescaped` (optional) supplies the payload CDATA
// text pre-escaped; it must Match the snapshot and is ignored (with a fresh
// escape) when it does not. `override_actions` (optional) is serialized as
// the userActions element in place of snapshot.user_actions, so callers can
// append a participant's outbox without copying the whole Snapshot. Output
// bytes are identical to the plain overload for equal logical content.
std::string SerializeSnapshotXml(const Snapshot& snapshot,
                                 SnapshotSerializeStats* stats,
                                 const SnapshotEscaped* prescaped,
                                 const std::vector<UserAction>* override_actions);
StatusOr<Snapshot> ParseSnapshotXml(std::string_view xml);

// ---------------------------------------------------------------------------
// Poll request body (what Ajax-Snippet POSTs).
// ---------------------------------------------------------------------------

struct PollRequest {
  std::string participant_id;
  int64_t doc_time_ms = 0;  // timestamp of the participant's current content
  std::vector<UserAction> actions;
  // --- Recovery fields (§3.2.3); zero-valued fields are omitted on the wire
  // so pre-recovery agents and captures stay byte-compatible. ---
  // Monotonically increasing per participant when set (>= 1). The agent
  // rejects a signed poll whose seq is not newer than the last one seen,
  // which makes replayed polls detectable.
  uint64_t seq = 0;
  // Cumulative count of polls the snippet abandoned on timeout.
  uint64_t timeouts = 0;
  // Participant is recovering and wants a full snapshot regardless of
  // timestamp deltas.
  bool resync = false;
  // Capability advertisement: the participant can apply newPatch delta
  // responses (src/delta). An agent that does not understand the field
  // ignores it; an agent with delta disabled keeps answering with full
  // snapshots, so the downgrade is automatic in both directions.
  bool patch = false;
  // Causal trace id for this round trip (DESIGN.md §11), `<pid>-<poll-seq>`.
  // Negotiated like patch=1: the field is absent when tracing is off on the
  // snippet side (byte-identical wire) and an agent with tracing off ignores
  // it, so the downgrade is automatic in both directions. Never affects the
  // response bytes — it only correlates observability spans.
  std::string trace;
  // Streamed-transport capability level (DESIGN.md §15):
  // 0 = classic polling (field omitted on the wire, byte-identical to the
  // pre-transport format), 1 = long-poll capable, 2 = framed-stream capable.
  // An agent with the transport disabled ignores the field, so the downgrade
  // is automatic in both directions — the same contract as patch=/trace=.
  uint32_t stream = 0;
};

std::string EncodePollRequest(const PollRequest& request);
StatusOr<PollRequest> DecodePollRequest(std::string_view body);

}  // namespace rcb

#endif  // SRC_CORE_PROTOCOL_H_
