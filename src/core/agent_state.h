// Durable session state: what an RcbAgent exports for checkpointing and what
// a recovered agent restores (DESIGN.md §13).
//
// The export is deliberately the *protocol* state, not the runtime state:
// document content + version, the participant roster with its anti-replay
// sequence high-water marks, and the host-confirmation queue. Transport
// state (connections, held streams, token-bucket levels, metrics) is
// reconstructed from live traffic after recovery — a restored participant is
// forced through the full-snapshot resync path on its first poll, exactly as
// if it had reconnected after a network gap (§3.2.3).
#ifndef SRC_CORE_AGENT_STATE_H_
#define SRC_CORE_AGENT_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/actions.h"

namespace rcb {

// One roster entry. last_seq is the anti-replay high-water mark (§3.4): a
// recovered agent must keep rejecting pre-crash polls replayed at it.
struct ParticipantExport {
  std::string pid;
  int64_t doc_time_ms = -1;
  uint64_t last_seq = 0;
  uint64_t timeouts_reported = 0;
  uint64_t polls = 0;

  bool operator==(const ParticipantExport&) const = default;
};

// An action held for host confirmation (ActionPolicy::kConfirm).
struct PendingActionExport {
  std::string pid;
  UserAction action;

  bool operator==(const PendingActionExport&) const = default;
};

struct AgentStateExport {
  int64_t doc_time_ms = 0;
  bool has_version = false;
  uint64_t next_pid = 1;
  // Serialized live document and its URL; empty when no page is loaded.
  std::string document_html;
  std::string document_url;
  std::vector<ParticipantExport> participants;
  std::vector<PendingActionExport> pending_actions;

  bool operator==(const AgentStateExport&) const = default;
};

// Durability hook: the agent reports every persistent-state transition as it
// commits, in event order. The persist layer (src/persist) appends each one
// to the session's write-ahead log before the agent answers the request that
// caused it, so a crash can lose at most the transition whose WAL write was
// itself cut short — never one the agent already acknowledged.
class AgentStateObserver {
 public:
  virtual ~AgentStateObserver() = default;
  // The document advanced to `doc_time_ms`.
  virtual void OnDocVersion(int64_t doc_time_ms) = 0;
  // A signed poll advanced `pid`'s anti-replay high-water mark to `seq`.
  virtual void OnSeqAdvance(const std::string& pid, uint64_t seq) = 0;
  // A participant action was merged into the session (audit record).
  virtual void OnActionMerged(const std::string& pid,
                              const UserAction& action) = 0;
  virtual void OnParticipantJoined(const std::string& pid) = 0;
  virtual void OnParticipantLeft(const std::string& pid) = 0;
};

}  // namespace rcb

#endif  // SRC_CORE_AGENT_STATE_H_
