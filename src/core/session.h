// Co-browsing session orchestration.
//
// Wires a complete RCB deployment together on one simulated network: a host
// machine running a Browser + RcbAgent, N participant machines each running a
// Browser + AjaxSnippet, and the host<->participant links configured from a
// NetworkProfile (LAN or WAN, §5.1). Origin servers are installed separately
// (sites/) and shared by all sessions on the network.
//
// The facade also provides the synchronized-navigation measurement used by
// the benchmarks: host navigates, and we wait until every participant has
// applied the new content and finished downloading its supplementary
// objects, collecting the paper's M1/M2/M3/M4 readings.
#ifndef SRC_CORE_SESSION_H_
#define SRC_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/ajax_snippet.h"
#include "src/core/rcb_agent.h"
#include "src/net/profiles.h"

namespace rcb {

struct SessionOptions {
  NetworkProfile profile = LanProfile();
  size_t participant_count = 1;
  bool cache_mode = true;
  Duration poll_interval = Duration::Seconds(1.0);
  // Enables HMAC request authentication with a generated session key.
  bool enable_auth = false;
  // Poll (paper's choice) or multipart push (§3.2.3 alternative).
  SyncModel sync_model = SyncModel::kPoll;
  uint16_t agent_port = 3000;
  std::string host_machine = "host-pc";
  std::string participant_machine_prefix = "participant-pc";

  // --- Recovery knobs forwarded to every participant's SnippetConfig
  // (§3.2.3). Defaults keep recovery off, matching the original snippet. ---
  Duration poll_timeout = Duration::Zero();
  uint32_t reconnect_after = 0;
  Duration backoff_base = Duration::Millis(500);
  Duration backoff_max = Duration::Seconds(8.0);
  Duration backoff_jitter = Duration::Zero();
  // Per-participant streams are derived from this (seed + index) so backoff
  // jitter never synchronizes participants into a retry stampede.
  uint64_t backoff_seed = 0xC0FFEE;
  bool stream_reconnect = false;

  // Overload-protection knobs forwarded to AgentConfig::limits. Defaults are
  // generous enough that a well-behaved session never hits them.
  AgentLimits agent_limits;

  // Hot-path knobs forwarded to AgentConfig::generator_tuning
  // (docs/PERF_MODEL.md). Cost-only: output bytes never depend on them.
  GeneratorTuning generator_tuning;

  // Delta snapshots (src/delta) on both sides: the agent keeps per-version
  // base trees and answers capability-advertising polls with newPatch deltas;
  // every snippet advertises and applies them. Off keeps the seed wire
  // behavior byte-for-byte.
  bool enable_delta = false;

  // --- Streamed transport (DESIGN.md §15). Off keeps the wire byte-for-byte
  // with classic polling: no stream= field, no RCB-Transport header. ---
  // Agent side: answer capability-advertising polls with a transport grant.
  bool enable_transport = false;
  // Snippet side: what each participant advertises (transport::kStreamNone /
  // kStreamLongPoll / kStreamFrames).
  uint32_t snippet_stream_mode = 0;
  Duration transport_heartbeat = Duration::Seconds(5.0);
  Duration transport_hold = Duration::Seconds(10.0);
  size_t max_held_streams = 64;
  // Snippet-side failure handling: missed-heartbeat budget (zero derives
  // 3x the granted interval) and the consecutive-failure count after which
  // the snippet stops advertising stream= entirely.
  Duration heartbeat_timeout = Duration::Zero();
  uint32_t stream_downgrade_after = 3;
  // Adaptive polling for participants staying on the classic path: idle
  // polls back off geometrically (bounded), local/remote activity snaps the
  // interval back to poll_interval.
  bool adaptive_poll = false;
  Duration adaptive_max = Duration::Seconds(8.0);
  double adaptive_growth = 2.0;
  uint32_t adaptive_idle_threshold = 2;

  // Causal tracing (DESIGN.md §11) on both sides: snippets stamp each poll
  // with trace=<pid>-<seq> and the agent threads that id through merge,
  // generation, diff, and response spans. Off keeps the wire byte-for-byte.
  bool enable_trace = false;
  // Flight-recorder dump directory for the agent and every snippet; empty
  // falls back to $RCB_FLIGHT_DIR (triggers are counted either way).
  std::string flight_dir;
};

class CoBrowsingSession {
 public:
  // Registers the host/participant machines in `network` per the profile.
  CoBrowsingSession(EventLoop* loop, Network* network, SessionOptions options);
  ~CoBrowsingSession();
  CoBrowsingSession(const CoBrowsingSession&) = delete;
  CoBrowsingSession& operator=(const CoBrowsingSession&) = delete;

  // Starts the agent and joins every participant; runs the loop until all
  // joins complete.
  Status Start();

  Browser* host_browser() { return host_browser_.get(); }
  RcbAgent* agent() { return agent_.get(); }
  size_t participant_count() const { return participants_.size(); }
  Browser* participant_browser(size_t i) { return participants_[i]->browser.get(); }
  AjaxSnippet* snippet(size_t i) { return participants_[i]->snippet.get(); }
  const std::string& session_key() const { return session_key_; }
  EventLoop* loop() { return loop_; }

  // One synchronized navigation measurement.
  struct CoNavStats {
    Duration host_html_time;                         // M1
    Duration host_objects_time;
    std::vector<Duration> participant_content_time;  // M2 per participant
    std::vector<Duration> participant_objects_time;  // M3 (non-cache) / M4 (cache)
    std::vector<size_t> participant_objects_from_host;
    Duration total_sync_time;  // nav start -> last participant fully loaded
  };

  // Host navigates to `url`; waits (in simulated time) until every
  // participant applied the resulting content and fetched its objects.
  StatusOr<CoNavStats> CoNavigate(const Url& url,
                                  Duration timeout = Duration::Seconds(120.0));

  // Runs the loop until every participant's doc time matches the host's
  // current version (used after scripted mutations / co-fills).
  Status WaitForSync(Duration timeout = Duration::Seconds(120.0));

 private:
  struct Participant {
    std::string machine;
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };

  EventLoop* loop_;
  Network* network_;
  SessionOptions options_;
  std::string session_key_;
  std::unique_ptr<Browser> host_browser_;
  std::unique_ptr<RcbAgent> agent_;
  std::vector<std::unique_ptr<Participant>> participants_;
};

}  // namespace rcb

#endif  // SRC_CORE_SESSION_H_
