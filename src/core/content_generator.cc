#include "src/core/content_generator.h"

#include <chrono>

#include "src/browser/resources.h"
#include "src/delta/tree_diff.h"
#include "src/html/serializer.h"
#include "src/util/strings.h"

namespace rcb {

bool ContentGenerator::IsInteractive(const Element& element) {
  const std::string& tag = element.tag_name();
  if (tag == "a") {
    return element.HasAttribute("href");
  }
  return tag == "form" || tag == "input" || tag == "textarea" ||
         tag == "select" || tag == "button";
}

std::vector<Element*> ContentGenerator::InteractiveElements(Node* root) {
  std::vector<Element*> out;
  root->ForEachElement([&out](Element* element) {
    if (IsInteractive(*element)) {
      out.push_back(element);
    }
    return true;
  });
  return out;
}

namespace {

// Step 2 of Fig. 3: convert relative URLs of the cloned document to absolute
// origin-server URLs. Returns the number of attributes rewritten.
size_t AbsolutizeUrls(Element* clone_root, const Url& base) {
  size_t rewritten = 0;
  auto rewrite = [&](Element* element) {
    std::string attr;
    if (!UrlAttributeFor(*element, &attr)) {
      return true;
    }
    std::string value = element->AttrOr(attr);
    if (value.empty() || StartsWith(value, "javascript:") ||
        StartsWith(value, "data:") || StartsWith(value, "#") ||
        IsAbsoluteUrl(value)) {
      return true;
    }
    auto resolved = base.Resolve(value);
    if (resolved.ok()) {
      element->SetAttribute(attr, resolved->ToStringWithFragment());
      ++rewritten;
    }
    return true;
  };
  // The root element itself cannot carry a URL attribute (<html>), so walking
  // descendants is sufficient.
  clone_root->ForEachElement(rewrite);
  return rewritten;
}

// Step 3: rewrite cached supplementary-object URLs to agent URLs.
size_t RewriteCachedUrls(Element* clone_root, ObjectCache* cache,
                         const ContentGenOptions& options) {
  const Url& agent_url = options.agent_url;
  size_t rewritten = 0;
  clone_root->ForEachElement([&](Element* element) {
    std::string kind = SupplementaryKindFor(*element);
    if (kind.empty()) {
      return true;
    }
    std::string attr;
    if (!UrlAttributeFor(*element, &attr)) {
      return true;
    }
    std::string value = element->AttrOr(attr);
    if (!IsAbsoluteUrl(value)) {
      return true;  // absolutization step already skipped it
    }
    auto url = Url::Parse(value);
    if (!url.ok()) {
      return true;
    }
    if (options.cache_object_filter && !options.cache_object_filter(*url, kind)) {
      return true;  // this object stays in non-cache mode
    }
    const CacheEntry* entry = cache->Lookup(*url);
    if (entry == nullptr) {
      return true;  // not cached: participant fetches from the origin
    }
    Url object_url = Url::Make(agent_url.scheme(), agent_url.host(),
                               agent_url.port(), "/obj/" + entry->cache_key);
    element->SetAttribute(attr, object_url.ToString());
    ++rewritten;
    return true;
  });
  return rewritten;
}

// Step 4: event-attribute rewriting + data-rcb-id tagging.
size_t RewriteEventAttributes(Element* clone_root) {
  std::vector<Element*> interactive =
      ContentGenerator::InteractiveElements(clone_root);
  for (size_t i = 0; i < interactive.size(); ++i) {
    Element* element = interactive[i];
    element->SetAttribute("data-rcb-id", StrFormat("%zu", i));
    const std::string& tag = element->tag_name();
    if (tag == "form") {
      element->SetAttribute("onsubmit", "return rcbSubmit(this)");
    } else if (tag == "a") {
      element->SetAttribute("onclick", "return rcbClick(this)");
    } else if (tag == "button") {
      element->SetAttribute("onclick", "return rcbClick(this)");
    } else {
      element->SetAttribute("onchange", "rcbFill(this)");
    }
  }
  return interactive.size();
}

ElementPayload ExtractPayload(const Element& element) {
  ElementPayload payload;
  payload.tag = element.tag_name();
  payload.attributes = element.attributes();
  payload.inner_html = element.InnerHtml();
  return payload;
}

}  // namespace

GenerationResult ContentGenerator::Generate(int64_t doc_time_ms,
                                            const ContentGenOptions& options) const {
  auto start = std::chrono::steady_clock::now();
  auto stage_start = start;
  auto end_stage = [&stage_start]() {
    auto now = std::chrono::steady_clock::now();
    Duration elapsed = Duration::Micros(
        std::chrono::duration_cast<std::chrono::microseconds>(now - stage_start)
            .count());
    stage_start = now;
    return elapsed;
  };
  GenerationResult result;
  result.snapshot.doc_time_ms = doc_time_ms;

  Document* document = browser_->document();
  if (document == nullptr || document->document_element() == nullptr) {
    result.snapshot.has_content = false;
    return result;
  }

  // Step 1: clone the documentElement; everything below mutates the clone.
  std::unique_ptr<Node> clone_owned = document->document_element()->Clone();
  Element* clone = clone_owned->AsElement();
  result.stage_clone = end_stage();

  // Step 2: relative -> absolute URLs.
  result.urls_absolutized = AbsolutizeUrls(clone, browser_->current_url());
  result.stage_absolutize = end_stage();

  // Step 3: cache mode only — absolute -> agent URLs for cached objects.
  if (options.cache_mode) {
    result.urls_cache_rewritten =
        RewriteCachedUrls(clone, &browser_->cache(), options);
  }
  result.stage_cache_rewrite = end_stage();

  // Step 4: event-attribute rewriting.
  result.interactive_elements = RewriteEventAttributes(clone);
  result.stage_event_rewrite = end_stage();

  // Step 5: extraction in DOM order.
  result.snapshot.has_content = true;
  for (const auto& child : clone->children()) {
    const Element* element = child->AsElement();
    if (element == nullptr) {
      continue;
    }
    if (element->tag_name() == "head") {
      for (const auto& head_child : element->children()) {
        if (const Element* head_element = head_child->AsElement()) {
          result.snapshot.head_children.push_back(ExtractPayload(*head_element));
        }
      }
    } else if (element->tag_name() == "body") {
      result.snapshot.body = ExtractPayload(*element);
    } else if (element->tag_name() == "frameset") {
      result.snapshot.frameset = ExtractPayload(*element);
    } else if (element->tag_name() == "noframes") {
      result.snapshot.noframes = ExtractPayload(*element);
    }
  }

  result.stage_extract = end_stage();

  auto end = std::chrono::steady_clock::now();
  result.wall_time = Duration::Micros(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start).count());
  return result;
}

std::unique_ptr<Element> MaterializeSnapshotTree(const Snapshot& snapshot) {
  auto materialize = [](const ElementPayload& payload) {
    auto element = MakeElement(payload.tag);
    for (const auto& [name, value] : payload.attributes) {
      element->SetAttribute(name, value);
    }
    element->SetInnerHtml(payload.inner_html);
    return element;
  };
  auto root = MakeElement("html");
  auto head = MakeElement("head");
  for (const ElementPayload& payload : snapshot.head_children) {
    head->AppendChild(materialize(payload));
  }
  root->AppendChild(std::move(head));
  if (snapshot.body.has_value()) {
    root->AppendChild(materialize(*snapshot.body));
  }
  if (snapshot.frameset.has_value()) {
    root->AppendChild(materialize(*snapshot.frameset));
  }
  if (snapshot.noframes.has_value()) {
    root->AppendChild(materialize(*snapshot.noframes));
  }
  delta::NormalizeTextNodes(root.get());
  return root;
}

}  // namespace rcb
