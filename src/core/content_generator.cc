#include "src/core/content_generator.h"

#include <chrono>

#include "src/browser/resources.h"
#include "src/delta/tree_diff.h"
#include "src/html/serializer.h"
#include "src/util/escape.h"
#include "src/util/rand.h"
#include "src/util/strings.h"

namespace rcb {

bool ContentGenerator::IsInteractive(const Element& element) {
  const std::string& tag = element.tag_name();
  if (tag == "a") {
    return element.HasAttribute("href");
  }
  return tag == "form" || tag == "input" || tag == "textarea" ||
         tag == "select" || tag == "button";
}

std::vector<Element*> ContentGenerator::InteractiveElements(Node* root) {
  std::vector<Element*> out;
  root->ForEachElement([&out](Element* element) {
    if (IsInteractive(*element)) {
      out.push_back(element);
    }
    return true;
  });
  return out;
}

namespace {

// Step 2 of Fig. 3: convert relative URLs of the cloned document to absolute
// origin-server URLs. Returns the number of attributes rewritten.
size_t AbsolutizeUrls(Element* clone_root, const Url& base) {
  size_t rewritten = 0;
  auto rewrite = [&](Element* element) {
    std::string attr;
    if (!UrlAttributeFor(*element, &attr)) {
      return true;
    }
    std::string value = element->AttrOr(attr);
    if (value.empty() || StartsWith(value, "javascript:") ||
        StartsWith(value, "data:") || StartsWith(value, "#") ||
        IsAbsoluteUrl(value)) {
      return true;
    }
    auto resolved = base.Resolve(value);
    if (resolved.ok()) {
      // KeepRev: the clone's revs must keep matching its source's so the
      // serialization cache can key on them; everything this pass writes is
      // a pure function of (source state, base URL), which the cache's
      // config fingerprint covers.
      element->SetAttributeKeepRev(attr, resolved->ToStringWithFragment());
      ++rewritten;
    }
    return true;
  };
  // The root element itself cannot carry a URL attribute (<html>), so walking
  // descendants is sufficient.
  clone_root->ForEachElement(rewrite);
  return rewritten;
}

// Step 3: rewrite cached supplementary-object URLs to agent URLs.
size_t RewriteCachedUrls(Element* clone_root, ObjectCache* cache,
                         const ContentGenOptions& options) {
  const Url& agent_url = options.agent_url;
  size_t rewritten = 0;
  clone_root->ForEachElement([&](Element* element) {
    std::string kind = SupplementaryKindFor(*element);
    if (kind.empty()) {
      return true;
    }
    std::string attr;
    if (!UrlAttributeFor(*element, &attr)) {
      return true;
    }
    std::string value = element->AttrOr(attr);
    if (!IsAbsoluteUrl(value)) {
      return true;  // absolutization step already skipped it
    }
    auto url = Url::Parse(value);
    if (!url.ok()) {
      return true;
    }
    if (options.cache_object_filter && !options.cache_object_filter(*url, kind)) {
      return true;  // this object stays in non-cache mode
    }
    const CacheEntry* entry = cache->Lookup(*url);
    if (entry == nullptr) {
      return true;  // not cached: participant fetches from the origin
    }
    Url object_url = Url::Make(agent_url.scheme(), agent_url.host(),
                               agent_url.port(), "/obj/" + entry->cache_key);
    // KeepRev: covered by the fingerprint's ObjectCache change_epoch term.
    element->SetAttributeKeepRev(attr, object_url.ToString());
    ++rewritten;
    return true;
  });
  return rewritten;
}

// Step 4: event-attribute rewriting + data-rcb-id tagging.
size_t RewriteEventAttributes(Element* clone_root) {
  std::vector<Element*> interactive =
      ContentGenerator::InteractiveElements(clone_root);
  for (size_t i = 0; i < interactive.size(); ++i) {
    Element* element = interactive[i];
    // KeepRev throughout: the assigned id depends only on pre-order
    // position, which the cache revalidates per hit via its id_base check.
    element->SetAttributeKeepRev("data-rcb-id", StrFormat("%zu", i));
    const std::string& tag = element->tag_name();
    if (tag == "form") {
      element->SetAttributeKeepRev("onsubmit", "return rcbSubmit(this)");
    } else if (tag == "a") {
      element->SetAttributeKeepRev("onclick", "return rcbClick(this)");
    } else if (tag == "button") {
      element->SetAttributeKeepRev("onclick", "return rcbClick(this)");
    } else {
      element->SetAttributeKeepRev("onchange", "rcbFill(this)");
    }
  }
  return interactive.size();
}

ElementPayload ExtractPayload(const Element& element) {
  ElementPayload payload;
  payload.tag = element.tag_name();
  payload.attributes = element.attributes();
  payload.inner_html = element.InnerHtml();
  return payload;
}

// Incremental flavour: innerHTML through the serialization cache, raw and
// escaped in lockstep. `counter` is the pre-order data-rcb-id counter; the
// caller has already counted `element` itself. The encoded prefix (tag +
// attributes, no innerHTML) is escaped straight into the output and the
// cache splices the children's escaped spans after it — no intermediate copy
// of the page-sized escaped image. `raw_hint`/`escaped_hint` (optional,
// in/out) carry the previous update's sizes so both strings are reserved
// once instead of grown through reallocation.
ElementPayload ExtractPayloadCached(const Element& element,
                                    SerializeCache* cache,
                                    uint64_t fingerprint, size_t* counter,
                                    EscapedPayload* escaped,
                                    size_t* raw_hint = nullptr,
                                    size_t* escaped_hint = nullptr) {
  ElementPayload payload;
  payload.tag = element.tag_name();
  payload.attributes = element.attributes();
  if (raw_hint != nullptr && *raw_hint != 0) {
    payload.inner_html.reserve(*raw_hint + *raw_hint / 8);
    escaped->escaped.reserve(*escaped_hint + *escaped_hint / 8);
  }
  const std::string prefix = EncodeElementPayloadPrefix(payload);
  JsEscapeAppend(prefix, &escaped->escaped);
  cache->AppendChildrenHtml(element, fingerprint, counter,
                            &payload.inner_html, &escaped->escaped);
  escaped->raw_bytes = prefix.size() + payload.inner_html.size();
  if (raw_hint != nullptr) {
    *raw_hint = payload.inner_html.size();
    *escaped_hint = escaped->escaped.size();
  }
  return payload;
}

// Interactive elements in `element`'s subtree including itself — used to
// advance the data-rcb-id counter past html children the snapshot format
// does not carry.
size_t CountInteractive(const Element& element) {
  size_t count = ContentGenerator::IsInteractive(element) ? 1 : 0;
  element.ForEachElement([&count](const Element* descendant) {
    if (ContentGenerator::IsInteractive(*descendant)) {
      ++count;
    }
    return true;
  });
  return count;
}

// Everything outside the DOM that the rewritten clone bytes depend on; part
// of the serialization-cache key (see serialize_cache.h). The filter term is
// presence-only: AgentConfig installs the filter once at construction, so
// its behaviour is constant per generator.
uint64_t ConfigFingerprint(Browser* browser, const ContentGenOptions& options) {
  std::string basis = options.agent_url.ToString();
  basis += '\x1f';
  basis += browser->current_url().ToString();
  basis += '\x1f';
  basis += options.cache_mode ? '1' : '0';
  basis += options.cache_object_filter ? 'F' : '-';
  if (options.cache_mode) {
    // Cached spans embed /obj/<key> URLs; any mapping-table change must
    // re-key them. Non-cache-mode output never reads the object cache.
    basis += StrFormat("%llu", static_cast<unsigned long long>(
                                   browser->cache().change_epoch()));
  }
  return StableHash64(basis);
}

}  // namespace

GenerationResult ContentGenerator::Generate(int64_t doc_time_ms,
                                            const ContentGenOptions& options) {
  auto start = std::chrono::steady_clock::now();
  auto stage_start = start;
  auto end_stage = [&stage_start]() {
    auto now = std::chrono::steady_clock::now();
    Duration elapsed = Duration::Micros(
        std::chrono::duration_cast<std::chrono::microseconds>(now - stage_start)
            .count());
    stage_start = now;
    return elapsed;
  };
  GenerationResult result;
  result.snapshot.doc_time_ms = doc_time_ms;

  Document* document = browser_->document();
  if (document == nullptr || document->document_element() == nullptr) {
    result.snapshot.has_content = false;
    return result;
  }

  // Step 1: clone the documentElement; everything below mutates the clone.
  // The clone's nodes come from the generator's arena (freed wholesale at the
  // end of this call); only the Clone itself allocates nodes, so the scope
  // covers just it.
  std::unique_ptr<Node> clone_owned;
  {
    ArenaScope arena_scope(&arena_);
    clone_owned = document->document_element()->Clone();
  }
  Element* clone = clone_owned->AsElement();
  result.stage_clone = end_stage();

  // Step 2: relative -> absolute URLs.
  result.urls_absolutized = AbsolutizeUrls(clone, browser_->current_url());
  result.stage_absolutize = end_stage();

  // Step 3: cache mode only — absolute -> agent URLs for cached objects.
  if (options.cache_mode) {
    result.urls_cache_rewritten =
        RewriteCachedUrls(clone, &browser_->cache(), options);
  }
  result.stage_cache_rewrite = end_stage();

  // Step 4: event-attribute rewriting.
  result.interactive_elements = RewriteEventAttributes(clone);
  result.stage_event_rewrite = end_stage();

  // Step 5: extraction in DOM order. The incremental path threads one
  // data-rcb-id counter through the whole clone in the same pre-order the
  // event-rewrite pass numbered, so cached spans can assert their embedded
  // ids are still current (serialize_cache.h).
  result.snapshot.has_content = true;
  if (tuning_.incremental_serialize) {
    result.escaped.has_content = true;
    const uint64_t fingerprint = ConfigFingerprint(browser_, options);
    size_t counter = 0;
    for (const auto& child : clone->children()) {
      const Element* element = child->AsElement();
      if (element == nullptr) {
        continue;
      }
      const std::string& tag = element->tag_name();
      if (tag == "head") {
        for (const auto& head_child : element->children()) {
          if (const Element* head_element = head_child->AsElement()) {
            if (IsInteractive(*head_element)) {
              ++counter;
            }
            EscapedPayload escaped;
            result.snapshot.head_children.push_back(
                ExtractPayloadCached(*head_element, &serialize_cache_,
                                     fingerprint, &counter, &escaped));
            result.escaped.head_children.push_back(std::move(escaped));
          }
        }
      } else if (tag == "body") {
        if (IsInteractive(*element)) {
          ++counter;
        }
        EscapedPayload escaped;
        result.snapshot.body = ExtractPayloadCached(
            *element, &serialize_cache_, fingerprint, &counter, &escaped,
            &main_payload_raw_hint_, &main_payload_escaped_hint_);
        result.escaped.body = std::move(escaped);
      } else if (tag == "frameset") {
        if (IsInteractive(*element)) {
          ++counter;
        }
        EscapedPayload escaped;
        result.snapshot.frameset = ExtractPayloadCached(
            *element, &serialize_cache_, fingerprint, &counter, &escaped,
            &main_payload_raw_hint_, &main_payload_escaped_hint_);
        result.escaped.frameset = std::move(escaped);
      } else if (tag == "noframes") {
        if (IsInteractive(*element)) {
          ++counter;
        }
        EscapedPayload escaped;
        result.snapshot.noframes = ExtractPayloadCached(
            *element, &serialize_cache_, fingerprint, &counter, &escaped);
        result.escaped.noframes = std::move(escaped);
      } else {
        // Not carried by the snapshot, but the rewrite pass numbered any
        // interactive elements in here: keep the counter in step.
        counter += CountInteractive(*element);
      }
    }
  } else {
    for (const auto& child : clone->children()) {
      const Element* element = child->AsElement();
      if (element == nullptr) {
        continue;
      }
      if (element->tag_name() == "head") {
        for (const auto& head_child : element->children()) {
          if (const Element* head_element = head_child->AsElement()) {
            result.snapshot.head_children.push_back(
                ExtractPayload(*head_element));
          }
        }
      } else if (element->tag_name() == "body") {
        result.snapshot.body = ExtractPayload(*element);
      } else if (element->tag_name() == "frameset") {
        result.snapshot.frameset = ExtractPayload(*element);
      } else if (element->tag_name() == "noframes") {
        result.snapshot.noframes = ExtractPayload(*element);
      }
    }
  }

  result.stage_extract = end_stage();

  // The clone dies here; rewind its arena so the next generation reuses the
  // same blocks (quarantined instead if anything escaped — see arena.h).
  clone_owned.reset();
  clone = nullptr;
  arena_.Reset();

  auto end = std::chrono::steady_clock::now();
  result.wall_time = Duration::Micros(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start).count());
  return result;
}

std::unique_ptr<Element> MaterializeSnapshotTree(const Snapshot& snapshot) {
  auto materialize = [](const ElementPayload& payload) {
    auto element = MakeElement(payload.tag);
    for (const auto& [name, value] : payload.attributes) {
      element->SetAttribute(name, value);
    }
    element->SetInnerHtml(payload.inner_html);
    return element;
  };
  auto root = MakeElement("html");
  auto head = MakeElement("head");
  for (const ElementPayload& payload : snapshot.head_children) {
    head->AppendChild(materialize(payload));
  }
  root->AppendChild(std::move(head));
  if (snapshot.body.has_value()) {
    root->AppendChild(materialize(*snapshot.body));
  }
  if (snapshot.frameset.has_value()) {
    root->AppendChild(materialize(*snapshot.frameset));
  }
  if (snapshot.noframes.has_value()) {
    root->AppendChild(materialize(*snapshot.noframes));
  }
  delta::NormalizeTextNodes(root.get());
  return root;
}

}  // namespace rcb
