// User actions: the participant gestures piggybacked on Ajax polls and
// optionally broadcast back to the other participants (§3.3, §4.2.1).
//
// Split out of protocol.h so wire formats below the full Fig. 4 snapshot
// (notably the delta-snapshot patch envelope in src/delta) can carry the
// same action payloads without depending on the snapshot machinery.
#ifndef SRC_CORE_ACTIONS_H_
#define SRC_CORE_ACTIONS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace rcb {

enum class ActionType {
  kClick,      // activate a link or button; target = rcb element index
  kFormFill,   // co-fill fields of a form without submitting
  kFormSubmit, // submit a form (fields carry the participant's inputs)
  kMouseMove,  // pointer position, for pointer mirroring
  kNavigate,   // participant asks host to navigate (typed URL / search)
  kPresence,   // join/leave notification; data = "joined" | "left"
};

std::string_view ActionTypeName(ActionType type);
StatusOr<ActionType> ParseActionType(std::string_view name);

struct UserAction {
  ActionType type = ActionType::kClick;
  // Interactive-element index in the pre-order enumeration RCB assigns
  // during content generation ("data-rcb-id"). -1 when not applicable.
  int target = -1;
  // Form-fill / form-submit field data.
  std::vector<std::pair<std::string, std::string>> fields;
  // Pointer coordinates for kMouseMove.
  int x = 0;
  int y = 0;
  // Free-form payload: URL for kNavigate.
  std::string data;
  // Originator tag filled in by the agent when broadcasting ("host", "p3").
  std::string origin;

  bool operator==(const UserAction&) const = default;
};

// Newline-separated, form-urlencoded per action.
std::string EncodeActions(const std::vector<UserAction>& actions);
StatusOr<std::vector<UserAction>> DecodeActions(std::string_view encoded);

}  // namespace rcb

#endif  // SRC_CORE_ACTIONS_H_
