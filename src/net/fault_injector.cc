#include "src/net/fault_injector.h"

#include <utility>

namespace rcb {

FaultInjector::FaultInjector(Network* network, uint64_t seed)
    : network_(network), seed_(seed) {
  network_->SetFaultInjector(this);
}

FaultInjector::~FaultInjector() { network_->SetFaultInjector(nullptr); }

bool FaultInjector::Matches(const FaultPlan& plan, const std::string& from,
                            const std::string& to) {
  if (plan.b.empty()) {
    return plan.a == from || plan.a == to;
  }
  return (plan.a == from && plan.b == to) || (plan.a == to && plan.b == from);
}

void FaultInjector::Install(FaultPlan plan) {
  InstalledPlan installed;
  installed.plan = std::move(plan);
  uint64_t plan_index = plans_.size();
  for (size_t i = 0; i < installed.plan.events.size(); ++i) {
    const FaultEvent& event = installed.plan.events[i];
    // Distinct deterministic stream per (plan, event) so adding a plan never
    // perturbs the draws of the plans installed before it.
    installed.state.push_back(
        EventState{0, Rng(seed_ ^ (plan_index * 1009 + i + 1))});
    switch (event.kind) {
      case FaultEvent::Kind::kReset: {
        std::string a = installed.plan.a;
        std::string b = installed.plan.b;
        network_->loop()->ScheduleAt(event.start, [this, a, b] {
          metrics_.connections_reset += network_->ResetConnections(a, b);
        });
        break;
      }
      case FaultEvent::Kind::kBandwidthFlap: {
        std::string host = installed.plan.a;
        HostInterface degraded = event.degraded;
        network_->loop()->ScheduleAt(event.start, [this, host, degraded,
                                                   end = event.end()] {
          HostInterface original = network_->HostInterfaceOf(host);
          network_->SetHostInterface(host, degraded);
          network_->loop()->ScheduleAt(end, [this, host, original] {
            network_->SetHostInterface(host, original);
          });
        });
        break;
      }
      default:
        break;  // consulted lazily via the Network hooks
    }
  }
  plans_.push_back(std::move(installed));
}

void FaultInjector::InjectJitter(const std::string& a, const std::string& b,
                                 SimTime start, Duration duration,
                                 Duration max_jitter) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kJitter;
  event.start = start;
  event.duration = duration;
  event.max_jitter = max_jitter;
  Install(FaultPlan{a, b, {event}});
}

void FaultInjector::InjectLoss(const std::string& a, const std::string& b,
                               SimTime start, Duration duration,
                               uint32_t loss_period,
                               Duration retransmit_delay) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kLoss;
  event.start = start;
  event.duration = duration;
  event.loss_period = loss_period;
  event.retransmit_delay = retransmit_delay;
  Install(FaultPlan{a, b, {event}});
}

void FaultInjector::InjectBandwidthFlap(const std::string& host, SimTime start,
                                        Duration duration,
                                        HostInterface degraded) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kBandwidthFlap;
  event.start = start;
  event.duration = duration;
  event.degraded = degraded;
  Install(FaultPlan{host, "", {event}});
}

void FaultInjector::InjectReset(const std::string& a, const std::string& b,
                                SimTime at) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kReset;
  event.start = at;
  Install(FaultPlan{a, b, {event}});
}

void FaultInjector::InjectPartition(const std::string& host, SimTime start,
                                    Duration duration,
                                    Duration retransmit_delay) {
  FaultEvent event;
  event.kind = FaultEvent::Kind::kPartition;
  event.start = start;
  event.duration = duration;
  event.retransmit_delay = retransmit_delay;
  Install(FaultPlan{host, "", {event}});
}

bool FaultInjector::ConnectBlocked(const std::string& from,
                                   const std::string& to, SimTime now) {
  for (const InstalledPlan& installed : plans_) {
    if (!Matches(installed.plan, from, to)) {
      continue;
    }
    for (const FaultEvent& event : installed.plan.events) {
      if (event.kind == FaultEvent::Kind::kPartition && InWindow(event, now)) {
        ++metrics_.connects_refused;
        return true;
      }
    }
  }
  return false;
}

Duration FaultInjector::TransferPenalty(const std::string& from,
                                        const std::string& to, SimTime now) {
  Duration penalty = Duration::Zero();
  for (InstalledPlan& installed : plans_) {
    if (!Matches(installed.plan, from, to)) {
      continue;
    }
    for (size_t i = 0; i < installed.plan.events.size(); ++i) {
      const FaultEvent& event = installed.plan.events[i];
      if (!InWindow(event, now)) {
        continue;
      }
      EventState& state = installed.state[i];
      switch (event.kind) {
        case FaultEvent::Kind::kJitter:
          if (event.max_jitter > Duration::Zero()) {
            penalty += Duration::Micros(static_cast<int64_t>(
                state.rng.NextBelow(event.max_jitter.micros() + 1)));
            ++metrics_.messages_jittered;
          }
          break;
        case FaultEvent::Kind::kLoss:
          ++state.messages;
          if (event.loss_period > 0 && state.messages % event.loss_period == 0) {
            penalty += event.retransmit_delay;
            ++metrics_.messages_lost;
          }
          break;
        case FaultEvent::Kind::kPartition:
          // Held until the blackout heals, then retransmitted once.
          penalty += (event.end() - now) + event.retransmit_delay;
          ++metrics_.messages_held;
          break;
        case FaultEvent::Kind::kBandwidthFlap:
        case FaultEvent::Kind::kReset:
          break;  // handled by scheduled events, not per-message
      }
    }
  }
  return penalty;
}

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kAfterWalAppend:
      return "after_wal_append";
    case CrashPoint::kBeforeWalFlush:
      return "before_wal_flush";
    case CrashPoint::kTornWalFrame:
      return "torn_wal_frame";
    case CrashPoint::kPartialFlush:
      return "partial_flush";
    case CrashPoint::kTornCheckpointTmp:
      return "torn_checkpoint_tmp";
    case CrashPoint::kTornCheckpointSwap:
      return "torn_checkpoint_swap";
  }
  return "unknown";
}

}  // namespace rcb
