// Discrete-event scheduler driving all simulated activity.
//
// Every component in the simulation — network transfers, Ajax-Snippet's
// setTimeout-based polling, origin-server think time — schedules closures on
// one EventLoop. Time advances only when the loop dequeues the next event, so
// runs are fully deterministic and the "wall clock" of Figs. 6–8 is exact.
#ifndef SRC_NET_EVENT_LOOP_H_
#define SRC_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/sim_time.h"

namespace rcb {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at now() + delay (delay < 0 is clamped to 0). Returns an
  // id usable with Cancel().
  uint64_t Schedule(Duration delay, Callback fn);
  uint64_t ScheduleAt(SimTime when, Callback fn);

  // Cancels a pending event; no-op if already fired or unknown.
  void Cancel(uint64_t id);

  // Runs until no events remain. Returns the number of events processed.
  size_t Run();

  // Runs events with time <= deadline; leaves later events queued and
  // advances now() to the deadline.
  size_t RunUntil(SimTime deadline);
  size_t RunFor(Duration duration) { return RunUntil(now_ + duration); }

  // Runs until `predicate` returns true (checked after each event) or the
  // queue empties. Returns true if the predicate was satisfied.
  bool RunUntilCondition(const std::function<bool()>& predicate);

  bool empty() const { return queue_.size() == cancelled_.size(); }
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  bool PopAndRunNext();

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<uint64_t> cancelled_;
};

}  // namespace rcb

#endif  // SRC_NET_EVENT_LOOP_H_
