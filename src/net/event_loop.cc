#include "src/net/event_loop.h"

#include <algorithm>
#include <cassert>

namespace rcb {

uint64_t EventLoop::Schedule(Duration delay, Callback fn) {
  if (delay < Duration::Zero()) {
    delay = Duration::Zero();
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

uint64_t EventLoop::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void EventLoop::Cancel(uint64_t id) { cancelled_.push_back(id); }

bool EventLoop::PopAndRunNext() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), event.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(event.when >= now_);
    now_ = event.when;
    event.fn();
    return true;
  }
  return false;
}

size_t EventLoop::Run() {
  size_t count = 0;
  while (PopAndRunNext()) {
    ++count;
  }
  return count;
}

size_t EventLoop::RunUntil(SimTime deadline) {
  size_t count = 0;
  while (!queue_.empty()) {
    // Discard cancelled entries before the deadline check: a cancelled head
    // with when <= deadline would otherwise let PopAndRunNext skip past it
    // and run the next live event even when that event lies beyond the
    // deadline, overshooting now_.
    const Event& top = queue_.top();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), top.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) {
      break;
    }
    if (PopAndRunNext()) {
      ++count;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return count;
}

bool EventLoop::RunUntilCondition(const std::function<bool()>& predicate) {
  if (predicate()) {
    return true;
  }
  while (PopAndRunNext()) {
    if (predicate()) {
      return true;
    }
  }
  return false;
}

}  // namespace rcb
