#include "src/net/profiles.h"

namespace rcb {

NetworkProfile LanProfile() {
  NetworkProfile profile;
  profile.name = "LAN";
  profile.host_interface = {.uplink_bps = 100'000'000, .downlink_bps = 100'000'000};
  profile.participant_interface = profile.host_interface;
  profile.host_participant_latency = Duration::Micros(250);
  profile.access_latency = Duration::Zero();
  return profile;
}

NetworkProfile WanProfile() {
  NetworkProfile profile;
  profile.name = "WAN";
  profile.host_interface = {.uplink_bps = 384'000, .downlink_bps = 1'500'000};
  profile.participant_interface = profile.host_interface;
  profile.host_participant_latency = Duration::Millis(40);
  profile.access_latency = Duration::Millis(8);
  return profile;
}

NetworkProfile MobileProfile() {
  NetworkProfile profile;
  profile.name = "MOBILE";
  // The paper's mobile host is a Nokia N810 — a Wi-Fi internet tablet. Model
  // 802.11g with real-world throughput around 12 Mbps and a few ms of radio
  // latency; the participant sits on the same access network (the paper's
  // preliminary experiments were local).
  profile.host_interface = {.uplink_bps = 12'000'000, .downlink_bps = 12'000'000};
  profile.participant_interface = {.uplink_bps = 54'000'000,
                                   .downlink_bps = 54'000'000};
  profile.host_participant_latency = Duration::Millis(4);
  profile.access_latency = Duration::Millis(6);
  return profile;
}

void ApplyProfile(Network* network, const NetworkProfile& profile,
                  const std::string& host_name,
                  const std::string& participant_name) {
  network->AddHost(host_name, profile.host_interface);
  network->AddHost(participant_name, profile.participant_interface);
  network->SetLatency(host_name, participant_name,
                      profile.host_participant_latency);
}

void AddOriginServer(Network* network, const NetworkProfile& profile,
                     const std::string& server_name, int64_t server_bps,
                     Duration server_latency, const std::string& host_name,
                     const std::string& participant_name) {
  network->AddHost(server_name,
                   {.uplink_bps = server_bps, .downlink_bps = server_bps});
  Duration total = server_latency + profile.access_latency;
  network->SetLatency(host_name, server_name, total);
  network->SetLatency(participant_name, server_name, total);
}

}  // namespace rcb
