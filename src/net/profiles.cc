#include "src/net/profiles.h"

namespace rcb {

NetworkProfile LanProfile() {
  NetworkProfile profile;
  profile.name = "LAN";
  profile.host_interface = {.uplink_bps = 100'000'000, .downlink_bps = 100'000'000};
  profile.participant_interface = profile.host_interface;
  profile.host_participant_latency = Duration::Micros(250);
  profile.access_latency = Duration::Zero();
  return profile;
}

NetworkProfile WanProfile() {
  NetworkProfile profile;
  profile.name = "WAN";
  profile.host_interface = {.uplink_bps = 384'000, .downlink_bps = 1'500'000};
  profile.participant_interface = profile.host_interface;
  profile.host_participant_latency = Duration::Millis(40);
  profile.access_latency = Duration::Millis(8);
  return profile;
}

NetworkProfile MobileProfile() {
  NetworkProfile profile;
  profile.name = "MOBILE";
  // The paper's mobile host is a Nokia N810 — a Wi-Fi internet tablet. Model
  // 802.11g with real-world throughput around 12 Mbps and a few ms of radio
  // latency; the participant sits on the same access network (the paper's
  // preliminary experiments were local).
  profile.host_interface = {.uplink_bps = 12'000'000, .downlink_bps = 12'000'000};
  profile.participant_interface = {.uplink_bps = 54'000'000,
                                   .downlink_bps = 54'000'000};
  profile.host_participant_latency = Duration::Millis(4);
  profile.access_latency = Duration::Millis(6);
  return profile;
}

void ApplyProfile(Network* network, const NetworkProfile& profile,
                  const std::string& host_name,
                  const std::string& participant_name) {
  network->AddHost(host_name, profile.host_interface);
  network->AddHost(participant_name, profile.participant_interface);
  network->SetLatency(host_name, participant_name,
                      profile.host_participant_latency);
}

void AddOriginServer(Network* network, const NetworkProfile& profile,
                     const std::string& server_name, int64_t server_bps,
                     Duration server_latency, const std::string& host_name,
                     const std::string& participant_name) {
  network->AddHost(server_name,
                   {.uplink_bps = server_bps, .downlink_bps = server_bps});
  Duration total = server_latency + profile.access_latency;
  network->SetLatency(host_name, server_name, total);
  network->SetLatency(participant_name, server_name, total);
}

FaultEvent ChaosEvent(const NetworkProfile& profile, FaultEvent::Kind kind,
                      SimTime start, Duration duration) {
  Duration latency = profile.host_participant_latency;
  // RTO floor of 200 ms mirrors the common TCP minimum; faster links still
  // pay a visible, deterministic penalty per "lost" segment.
  Duration rto = latency * 4 > Duration::Millis(200) ? latency * 4
                                                     : Duration::Millis(200);
  FaultEvent event;
  event.kind = kind;
  event.start = start;
  event.duration = duration;
  switch (kind) {
    case FaultEvent::Kind::kJitter:
      event.max_jitter = latency * 8;
      break;
    case FaultEvent::Kind::kLoss:
      event.loss_period = 2;
      event.retransmit_delay = rto;
      break;
    case FaultEvent::Kind::kPartition:
      event.retransmit_delay = rto;
      break;
    case FaultEvent::Kind::kBandwidthFlap:
      // A tenth of the profile's participant bandwidth.
      event.degraded = {
          .uplink_bps = profile.participant_interface.uplink_bps / 10,
          .downlink_bps = profile.participant_interface.downlink_bps / 10};
      break;
    case FaultEvent::Kind::kReset:
      break;
  }
  return event;
}

}  // namespace rcb
