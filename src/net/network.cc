#include "src/net/network.h"

#include <cassert>
#include <cmath>

#include "src/net/fault_injector.h"
#include "src/util/strings.h"

namespace rcb {

void NetEndpoint::Send(std::string data) {
  if (closed_ || data.empty()) {
    return;
  }
  bytes_sent_ += data.size();
  network_->DeliverData(this, std::move(data));
}

void NetEndpoint::Close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  NetEndpoint* peer = peer_;
  if (peer == nullptr || peer->closed_) {
    return;
  }
  Network* network = network_;
  Duration latency = network->LatencyBetween(local_host_, peer_host_);
  network->loop()->Schedule(latency, [peer] {
    if (peer->closed_) {
      return;
    }
    peer->closed_ = true;
    if (peer->close_handler_) {
      peer->close_handler_();
    }
  });
}

void Network::AddHost(const std::string& name, HostInterface interface) {
  Host& host = hosts_[name];
  host.interface = interface;
}

void Network::SetLatency(const std::string& a, const std::string& b,
                         Duration latency) {
  directed_latency_[{a, b}] = latency;
  directed_latency_[{b, a}] = latency;
}

void Network::SetDirectedLatency(const std::string& from, const std::string& to,
                                 Duration latency) {
  directed_latency_[{from, to}] = latency;
}

Duration Network::LatencyBetween(const std::string& from,
                                 const std::string& to) const {
  auto it = directed_latency_.find({from, to});
  if (it != directed_latency_.end()) {
    return it->second;
  }
  return default_latency_;
}

Status Network::Listen(const std::string& host, uint16_t port,
                       AcceptHandler on_accept) {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) {
    return NotFoundError("unknown host: " + host);
  }
  auto [listener_it, inserted] =
      it->second.listeners.emplace(port, std::move(on_accept));
  if (!inserted) {
    return AlreadyExistsError(
        StrFormat("port %u already listening on %s", port, host.c_str()));
  }
  (void)listener_it;
  return Status::Ok();
}

void Network::StopListening(const std::string& host, uint16_t port) {
  auto it = hosts_.find(host);
  if (it != hosts_.end()) {
    it->second.listeners.erase(port);
  }
}

void Network::SetBehindNat(const std::string& host, const std::string& gateway) {
  nat_gateway_[host] = gateway;
}

void Network::AddPortForward(const std::string& gateway, uint16_t public_port,
                             const std::string& private_host,
                             uint16_t private_port) {
  port_forwards_[{gateway, public_port}] = {private_host, private_port};
}

void Network::MarkTlsPort(const std::string& host, uint16_t port) {
  tls_ports_.insert({host, port});
}

StatusOr<NetEndpoint*> Network::Connect(const std::string& client_host,
                                        const std::string& server_host_in,
                                        uint16_t port_in) {
  auto client_it = hosts_.find(client_host);
  if (client_it == hosts_.end()) {
    return NotFoundError("unknown client host: " + client_host);
  }

  // Resolve port forwarding: a connection to a NAT gateway's forwarded port
  // lands on the private host's listener.
  std::string server_host = server_host_in;
  uint16_t port = port_in;
  auto forward_it = port_forwards_.find({server_host_in, port_in});
  if (forward_it != port_forwards_.end()) {
    server_host = forward_it->second.first;
    port = forward_it->second.second;
  } else {
    // Direct connections to a host behind NAT are impossible from outside
    // its gateway's LAN (same-LAN peers, i.e. hosts sharing the gateway,
    // still work).
    auto nat_it = nat_gateway_.find(server_host_in);
    if (nat_it != nat_gateway_.end()) {
      auto client_nat = nat_gateway_.find(client_host);
      bool same_lan = client_nat != nat_gateway_.end() &&
                      client_nat->second == nat_it->second;
      if (!same_lan) {
        return UnavailableError("host is behind NAT: " + server_host_in);
      }
    }
  }

  auto server_it = hosts_.find(server_host);
  if (server_it == hosts_.end()) {
    return UnavailableError("no route to host: " + server_host);
  }
  if (blocked_routes_.contains({client_host, server_host}) ||
      blocked_routes_.contains({client_host, server_host_in})) {
    return UnavailableError("route blocked: " + client_host + " -> " + server_host);
  }
  if (fault_injector_ != nullptr &&
      fault_injector_->ConnectBlocked(client_host, server_host, loop_->now())) {
    return UnavailableError("link partitioned: " + client_host + " -> " +
                            server_host);
  }
  auto listener_it = server_it->second.listeners.find(port);
  if (listener_it == server_it->second.listeners.end()) {
    return UnavailableError(
        StrFormat("connection refused: %s:%u", server_host.c_str(), port));
  }

  auto client_end = std::make_unique<NetEndpoint>();
  auto server_end = std::make_unique<NetEndpoint>();
  NetEndpoint* client = client_end.get();
  NetEndpoint* server = server_end.get();
  client->network_ = this;
  server->network_ = this;
  client->peer_ = server;
  server->peer_ = client;
  client->local_host_ = client_host;
  client->peer_host_ = server_host;
  server->local_host_ = server_host;
  server->peer_host_ = client_host;

  // TCP-style handshake: SYN reaches the server after one-way latency (accept
  // fires), and the connection is usable at the client after a full RTT.
  // A TLS endpoint (on the original or forwarded address) adds two more
  // round trips for the TLS handshake.
  Duration one_way = LatencyBetween(client_host, server_host);
  Duration rtt = one_way + LatencyBetween(server_host, client_host);
  Duration tls_extra = Duration::Zero();
  if (tls_ports_.contains({server_host_in, port_in}) ||
      tls_ports_.contains({server_host, port})) {
    tls_extra = rtt * 2;
  }
  SimTime accept_time = loop_->now() + one_way + tls_extra;
  SimTime established = loop_->now() + rtt + tls_extra;
  client->established_at_ = established;
  server->established_at_ = accept_time;

  // The SYN is "in flight" until accept_time; if the listener goes away in
  // the meantime the connection is reset instead of silently accepted.
  loop_->ScheduleAt(accept_time, [this, server, server_host, port] {
    auto host_it = hosts_.find(server_host);
    if (host_it == hosts_.end()) {
      server->Close();
      return;
    }
    auto live_listener = host_it->second.listeners.find(port);
    if (live_listener == host_it->second.listeners.end()) {
      server->Close();
      return;
    }
    if (live_listener->second) {
      live_listener->second(server);
    }
  });

  endpoints_.push_back(std::move(client_end));
  endpoints_.push_back(std::move(server_end));
  return client;
}

size_t Network::ResetConnections(const std::string& a, const std::string& b) {
  // Two passes: close handlers may Connect() and grow endpoints_, which would
  // invalidate iterators, so collect the victims before firing anything.
  std::vector<NetEndpoint*> victims;
  for (const auto& endpoint : endpoints_) {
    if (endpoint->closed_) {
      continue;
    }
    const std::string& local = endpoint->local_host_;
    const std::string& peer = endpoint->peer_host_;
    bool match = b.empty() ? (local == a || peer == a)
                           : ((local == a && peer == b) ||
                              (local == b && peer == a));
    if (match) {
      endpoint->closed_ = true;
      victims.push_back(endpoint.get());
    }
  }
  for (NetEndpoint* endpoint : victims) {
    if (endpoint->close_handler_) {
      endpoint->close_handler_();
    }
  }
  // Both sides of a matching connection match, so victims come in pairs.
  return victims.size() / 2;
}

HostInterface Network::HostInterfaceOf(const std::string& host) const {
  auto it = hosts_.find(host);
  return it != hosts_.end() ? it->second.interface : HostInterface{};
}

void Network::SetHostInterface(const std::string& host,
                               HostInterface interface) {
  auto it = hosts_.find(host);
  if (it != hosts_.end()) {
    it->second.interface = interface;
  }
}

void Network::BlockRoute(const std::string& from, const std::string& to) {
  blocked_routes_.insert({from, to});
}

void Network::UnblockRoute(const std::string& from, const std::string& to) {
  blocked_routes_.erase({from, to});
}

SimTime Network::ScheduleTransfer(const std::string& from, const std::string& to,
                                  size_t size, SimTime earliest) {
  // Messages that fit in one MTU interleave with bulk transfers instead of
  // queueing behind them (requests, ACK-sized polls).
  constexpr size_t kSmallMessage = 1500;
  // TCP slow-start initial congestion window approximation.
  constexpr double kInitialWindow = 4096.0;

  Host& src = hosts_.at(from);
  Host& dst = hosts_.at(to);

  bool small = size <= kSmallMessage;
  SimTime start = loop_->now();
  if (earliest > start) {
    start = earliest;
  }
  if (!small) {
    if (src.uplink_free > start) {
      start = src.uplink_free;
    }
    if (dst.downlink_free > start) {
      start = dst.downlink_free;
    }
  }

  // Bottleneck serialization rate: min of sender uplink and receiver
  // downlink; 0 means unconstrained.
  int64_t up = src.interface.uplink_bps;
  int64_t down = dst.interface.downlink_bps;
  int64_t bottleneck = 0;
  if (up > 0 && down > 0) {
    bottleneck = up < down ? up : down;
  } else if (up > 0) {
    bottleneck = up;
  } else {
    bottleneck = down;
  }

  Duration tx = Duration::Zero();
  if (bottleneck > 0) {
    double seconds = static_cast<double>(size) * 8.0 / static_cast<double>(bottleneck);
    tx = Duration::Seconds(seconds);
  }
  SimTime tx_end = start + tx;
  if (!small) {
    src.uplink_free = tx_end;
    dst.downlink_free = tx_end;
  }

  Duration latency = LatencyBetween(from, to);
  Duration slow_start_extra = Duration::Zero();
  if (slow_start_enabled_ && static_cast<double>(size) > kInitialWindow) {
    double rounds = std::log2(static_cast<double>(size) / kInitialWindow);
    slow_start_extra =
        Duration::Micros(static_cast<int64_t>(rounds * 2.0 *
                                              static_cast<double>(latency.micros())));
  }

  total_bytes_ += size;
  ++total_messages_;
  return tx_end + latency + slow_start_extra;
}

void Network::DeliverData(NetEndpoint* from, std::string data) {
  NetEndpoint* to = from->peer_;
  assert(to != nullptr);
  SimTime deliver_at = ScheduleTransfer(from->local_host_, from->peer_host_,
                                        data.size(), from->established_at_);
  if (fault_injector_ != nullptr) {
    deliver_at = deliver_at + fault_injector_->TransferPenalty(
                                  from->local_host_, from->peer_host_,
                                  loop_->now());
  }
  loop_->ScheduleAt(deliver_at,
                    [to, payload = std::move(data)] {
                      if (!to->closed_ && to->data_handler_) {
                        to->data_handler_(payload);
                      }
                    });
}

}  // namespace rcb
