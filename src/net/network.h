// Simulated TCP-style network.
//
// Hosts are named endpoints with interface bandwidths (uplink/downlink) and
// pairwise propagation latencies. A Connection carries ordered, reliable byte
// messages; delivery time models serialization at the bottleneck of the
// sender's uplink and the receiver's downlink (with queueing: consecutive
// transfers contend for the interface) plus the one-way propagation latency.
// Connection establishment costs one round trip, like a TCP handshake.
//
// This is the substrate substitute for real LAN/WAN TCP in the paper's
// evaluation (§5.1); its parameters are set by the profiles in profiles.h.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/event_loop.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace rcb {

// Interface speeds in bits per second; 0 means "infinitely fast".
struct HostInterface {
  int64_t uplink_bps = 0;
  int64_t downlink_bps = 0;
};

class Network;
class FaultInjector;

// One side of an established connection. Owned by the Network; users keep
// non-owning pointers that remain valid until the Network is destroyed.
class NetEndpoint {
 public:
  using DataHandler = std::function<void(std::string_view)>;
  using CloseHandler = std::function<void()>;

  // Queues `data` for delivery to the peer. Silently drops if closed.
  void Send(std::string data);

  void SetDataHandler(DataHandler handler) { data_handler_ = std::move(handler); }
  void SetCloseHandler(CloseHandler handler) { close_handler_ = std::move(handler); }

  // Closes both directions; the peer's close handler fires after one-way
  // latency.
  void Close();

  bool closed() const { return closed_; }
  const std::string& local_host() const { return local_host_; }
  const std::string& peer_host() const { return peer_host_; }

  // Total payload bytes sent from this side (for traffic accounting).
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Network;

  Network* network_ = nullptr;
  NetEndpoint* peer_ = nullptr;
  std::string local_host_;
  std::string peer_host_;
  DataHandler data_handler_;
  CloseHandler close_handler_;
  bool closed_ = false;
  uint64_t bytes_sent_ = 0;
  // Connection becomes usable at this time (end of handshake).
  SimTime established_at_;
};

class Network {
 public:
  explicit Network(EventLoop* loop) : loop_(loop) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a host; hosts unknown at Connect() time are an error.
  void AddHost(const std::string& name, HostInterface interface = {});
  bool HasHost(const std::string& name) const { return hosts_.contains(name); }

  // Propagation latency defaults; directed overrides take precedence over the
  // symmetric pair value, which takes precedence over the default.
  void SetDefaultLatency(Duration latency) { default_latency_ = latency; }
  void SetLatency(const std::string& a, const std::string& b, Duration latency);
  void SetDirectedLatency(const std::string& from, const std::string& to,
                          Duration latency);
  Duration LatencyBetween(const std::string& from, const std::string& to) const;

  using AcceptHandler = std::function<void(NetEndpoint*)>;

  // Starts listening on host:port.
  Status Listen(const std::string& host, uint16_t port, AcceptHandler on_accept);
  void StopListening(const std::string& host, uint16_t port);

  // Initiates a connection from `client_host` to `server_host:port`.
  // Returns the client endpoint immediately; it becomes usable after the
  // simulated handshake. kUnavailable if nobody is listening.
  StatusOr<NetEndpoint*> Connect(const std::string& client_host,
                                 const std::string& server_host, uint16_t port);

  // Firewalls `from` off from `to` (directed): subsequent Connect calls fail
  // with kUnavailable. Models participants with no route to origin servers,
  // for whom cache mode is the only way to fetch objects (§3.1 step 8).
  void BlockRoute(const std::string& from, const std::string& to);
  void UnblockRoute(const std::string& from, const std::string& to);

  // --- NAT / port forwarding (§3.2.1) --------------------------------------
  // Marks `host` as sitting on a private address behind `gateway`: nobody
  // can Connect() to it directly. A port-forwarding rule on the gateway
  // makes a selected port reachable again: connections to
  // gateway:public_port are handed to private_host:private_port's listener
  // (data then flows gateway<->client with the gateway's latency, plus the
  // gateway<->private hop which is assumed to be a fast home LAN).
  void SetBehindNat(const std::string& host, const std::string& gateway);
  void AddPortForward(const std::string& gateway, uint16_t public_port,
                      const std::string& private_host, uint16_t private_port);

  // --- TLS (HTTPS origins, §3.1 "Arbitrary co-browsing") -------------------
  // Marks host:port as a TLS endpoint: connections pay two extra round trips
  // of handshake before becoming usable. The content path is unchanged (we
  // model cost, not confidentiality).
  void MarkTlsPort(const std::string& host, uint16_t port);

  EventLoop* loop() { return loop_; }

  // TCP slow-start emulation: when enabled, transfers larger than the
  // initial congestion window pay ~log2(size / 4 KiB) extra round trips of
  // delivery latency, approximating the window ramp-up that dominated
  // wide-area transfers of 2009-era pages. Off by default so small-scale
  // unit tests keep exact closed-form timings; the corpus benchmarks and the
  // WAN environments enable it.
  void set_slow_start_enabled(bool enabled) { slow_start_enabled_ = enabled; }
  bool slow_start_enabled() const { return slow_start_enabled_; }

  // Traffic counters (payload bytes scheduled for transfer).
  uint64_t total_bytes_transferred() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }

  // --- Fault injection (fault_injector.h) ----------------------------------
  // At most one injector; it is consulted on every Connect (partitions) and
  // every message delivery (jitter / loss / hold penalties). Pass nullptr to
  // detach.
  void SetFaultInjector(FaultInjector* injector) { fault_injector_ = injector; }

  // Tears down every established connection between hosts `a` and `b`
  // (`b` empty = every connection touching `a`). Close handlers on both ends
  // fire synchronously, at the current event time. Returns the number of
  // connections reset.
  size_t ResetConnections(const std::string& a, const std::string& b);

  // Live interface speeds (for bandwidth flaps that must restore the
  // original values).
  HostInterface HostInterfaceOf(const std::string& host) const;
  void SetHostInterface(const std::string& host, HostInterface interface);

 private:
  friend class NetEndpoint;

  struct Host {
    HostInterface interface;
    // Interface occupancy horizons for serialization queueing.
    SimTime uplink_free;
    SimTime downlink_free;
    std::map<uint16_t, AcceptHandler> listeners;
  };

  // Computes delivery time for `size` bytes from -> to and advances the
  // interface occupancy horizons. `earliest` lower-bounds the start (e.g.
  // handshake completion).
  SimTime ScheduleTransfer(const std::string& from, const std::string& to,
                           size_t size, SimTime earliest);

  void DeliverData(NetEndpoint* from, std::string data);

  EventLoop* loop_;
  std::map<std::string, Host> hosts_;
  std::set<std::pair<std::string, std::string>> blocked_routes_;
  std::map<std::string, std::string> nat_gateway_;  // private host -> gateway
  // (gateway, public port) -> (private host, private port)
  std::map<std::pair<std::string, uint16_t>, std::pair<std::string, uint16_t>>
      port_forwards_;
  std::set<std::pair<std::string, uint16_t>> tls_ports_;
  Duration default_latency_ = Duration::Millis(1);
  std::map<std::pair<std::string, std::string>, Duration> directed_latency_;
  std::vector<std::unique_ptr<NetEndpoint>> endpoints_;
  FaultInjector* fault_injector_ = nullptr;
  bool slow_start_enabled_ = false;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
};

}  // namespace rcb

#endif  // SRC_NET_NETWORK_H_
