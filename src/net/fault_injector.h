// Deterministic network fault injection.
//
// A FaultPlan schedules faults on one link (host pair) or on every link of a
// single host. All faults are driven off the EventLoop and any randomness is
// drawn from a seeded Rng, so two runs with the same plans and the same seed
// produce bit-identical event sequences. Loss is modeled as a deterministic
// retransmit delay (the reliable-transport view of a dropped segment: the
// payload still arrives, one RTO later) — this keeps delivery order and
// timing reproducible where probabilistic drops would not be.
//
// This is the adversarial half of the §5.1 testbed: the recovery machinery in
// the Ajax-Snippet and the agent (§3.2.3) is exercised against it.
//
// ProcessFaultInjector extends the model to *process* death: a CrashPoint
// names an instrumented instant inside the durability pipeline (src/persist),
// and an armed CrashPlan kills the simulated host process there — leaving
// exactly the file states a real kill -9 would (durable prefix, torn frame,
// lost buffer). Crash selection is a pure function of the plan and the
// deterministic event order, so crash-recovery runs replay bit-identically.
#ifndef SRC_NET_FAULT_INJECTOR_H_
#define SRC_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/util/rand.h"
#include "src/util/sim_time.h"

namespace rcb {

// One scheduled fault. Which fields apply depends on `kind`.
struct FaultEvent {
  enum class Kind {
    // Every message crossing the link during [start, start+duration) is
    // delayed by an extra seeded-uniform draw in [0, max_jitter].
    kJitter,
    // Every loss_period-th message in the window is "dropped": it arrives
    // retransmit_delay late, modeling one RTO-triggered retransmission.
    kLoss,
    // The target host's interface is swapped to `degraded` for the window,
    // then restored to what it was when the flap began.
    kBandwidthFlap,
    // All established connections between the two ends are torn down at
    // `start`; close handlers fire at exactly that event time.
    kReset,
    // Blackout: Connect() on the link is refused during the window, and
    // messages already in flight on established connections are held and
    // delivered at window end + retransmit_delay. Connections survive, so
    // outstanding requests hang — this is what poll timeouts are for.
    kPartition,
  };

  Kind kind = Kind::kJitter;
  SimTime start;
  Duration duration;  // ignored for kReset
  // kJitter: inclusive upper bound of the per-message extra delay.
  Duration max_jitter;
  // kLoss: every loss_period-th message is delayed (2 = every other one).
  uint32_t loss_period = 2;
  // kLoss / kPartition: the simulated retransmission timeout.
  Duration retransmit_delay = Duration::Millis(200);
  // kBandwidthFlap: interface speeds during the window.
  HostInterface degraded;

  SimTime end() const { return start + duration; }
};

// Faults for one link. `b` empty means "every link touching host `a`"
// (host-scoped blackout / flap).
struct FaultPlan {
  std::string a;
  std::string b;
  std::vector<FaultEvent> events;
};

// Counters for assertions; all deterministic.
struct FaultInjectorMetrics {
  uint64_t messages_jittered = 0;
  uint64_t messages_lost = 0;      // delivered late as retransmissions
  uint64_t messages_held = 0;      // sent into an active partition
  uint64_t connections_reset = 0;  // endpoints closed by kReset events
  uint64_t connects_refused = 0;   // Connect() calls refused by partitions

  bool operator==(const FaultInjectorMetrics&) const = default;
};

class FaultInjector {
 public:
  // Registers itself with `network`; unregisters on destruction. `seed`
  // drives all jitter draws.
  FaultInjector(Network* network, uint64_t seed);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs a plan: reset and bandwidth-flap events are scheduled on the
  // EventLoop now; jitter/loss/partition windows are consulted lazily as
  // traffic crosses the link. Events whose window is already past are inert.
  void Install(FaultPlan plan);

  // Convenience wrappers for single-event plans.
  void InjectJitter(const std::string& a, const std::string& b, SimTime start,
                    Duration duration, Duration max_jitter);
  void InjectLoss(const std::string& a, const std::string& b, SimTime start,
                  Duration duration, uint32_t loss_period,
                  Duration retransmit_delay);
  void InjectBandwidthFlap(const std::string& host, SimTime start,
                           Duration duration, HostInterface degraded);
  void InjectReset(const std::string& a, const std::string& b, SimTime at);
  // Blackout of every link touching `host` (pass `b` empty via plan for a
  // single link).
  void InjectPartition(const std::string& host, SimTime start,
                       Duration duration, Duration retransmit_delay);

  // --- Hooks called by Network ---------------------------------------------
  // True if a partition is active on (from, to) at `now`; counts a refusal.
  bool ConnectBlocked(const std::string& from, const std::string& to,
                      SimTime now);
  // Extra delivery delay for one message crossing (from, to) at `now`:
  // jitter draw + loss retransmit + partition hold, summed over active
  // windows.
  Duration TransferPenalty(const std::string& from, const std::string& to,
                           SimTime now);

  const FaultInjectorMetrics& metrics() const { return metrics_; }

 private:
  struct EventState {
    uint64_t messages = 0;  // kLoss: messages seen inside the window
    Rng rng;                // kJitter: per-event stream, seed-derived
  };
  struct InstalledPlan {
    FaultPlan plan;
    std::vector<EventState> state;
  };

  static bool Matches(const FaultPlan& plan, const std::string& from,
                      const std::string& to);
  static bool InWindow(const FaultEvent& event, SimTime now) {
    return now >= event.start && now < event.end();
  }

  Network* network_;
  uint64_t seed_;
  std::vector<InstalledPlan> plans_;
  FaultInjectorMetrics metrics_;
};

// --- Process faults (crash-safe durability, DESIGN.md §13) -----------------

// An instrumented instant inside the persistence pipeline where a process
// death leaves a distinct on-disk state. The write that was in flight either
// survives in full, survives torn, or never reaches the file — recovery has
// to cope with all three.
enum class CrashPoint : uint8_t {
  // Dies right after a WAL record was durably appended, before any
  // checkpoint could fold it in (the classic WAL-ahead-of-checkpoint gap).
  kAfterWalAppend = 0,
  // Dies with records accepted into the write buffer but never flushed:
  // the tail of the log is simply missing.
  kBeforeWalFlush,
  // Dies mid-frame: the first half of one WAL record reaches the file.
  // Recovery must detect the torn frame and discard the tail.
  kTornWalFrame,
  // Dies mid-fsync of a buffered batch: a prefix of the batch is durable,
  // the rest is cut at an arbitrary byte boundary.
  kPartialFlush,
  // Dies while writing the checkpoint temp file. The atomic tmp+rename
  // discipline means the previous checkpoint (and its WAL) stay intact.
  kTornCheckpointTmp,
  // Dies mid-swap on a filesystem without atomic rename: torn bytes land on
  // the final checkpoint path. The corrupt checkpoint must be rejected and
  // the session degraded — never the host.
  kTornCheckpointSwap,
};

inline constexpr CrashPoint kAllCrashPoints[] = {
    CrashPoint::kAfterWalAppend,    CrashPoint::kBeforeWalFlush,
    CrashPoint::kTornWalFrame,      CrashPoint::kPartialFlush,
    CrashPoint::kTornCheckpointTmp, CrashPoint::kTornCheckpointSwap,
};

const char* CrashPointName(CrashPoint point);

// One armed process death: fire at the (after_events+1)-th hit of `point`
// (optionally only counting hits from one session's persistence stream).
struct CrashPlan {
  CrashPoint point = CrashPoint::kAfterWalAppend;
  uint64_t after_events = 0;
  // Empty matches every session; otherwise only hits whose session id equals
  // the filter advance the trigger counter.
  std::string session_filter;
};

struct ProcessFaultMetrics {
  uint64_t site_hits = 0;       // instrumented sites reached (armed or not)
  uint64_t matching_hits = 0;   // hits that matched the armed plan
  uint64_t crashes = 0;         // plans that fired (0 or 1 per process image)
  bool operator==(const ProcessFaultMetrics&) const = default;
};

// Deterministic process-death switchboard. The persist layer calls
// ShouldCrash() at every instrumented site; once a plan fires, crashed()
// latches and every subsequent persistence write becomes a no-op — the
// process-death model: nothing after the kill instant reaches disk. Tests
// then tear the host down and restart it over the same persist dir.
class ProcessFaultInjector {
 public:
  ProcessFaultInjector() = default;
  ProcessFaultInjector(const ProcessFaultInjector&) = delete;
  ProcessFaultInjector& operator=(const ProcessFaultInjector&) = delete;

  void Arm(CrashPlan plan) {
    plan_ = std::move(plan);
    matching_hits_ = 0;
  }
  bool armed() const { return plan_.has_value(); }
  bool crashed() const { return crashed_; }

  // Simulates a fresh process image over the same on-disk state: the crash
  // latch clears and no plan is armed (recovery itself is not re-killed
  // unless a test arms a new plan).
  void Reset() {
    plan_.reset();
    crashed_ = false;
    matching_hits_ = 0;
  }

  // Called by the persist layer when execution reaches `site` for
  // `session_id`'s stream. Returns true exactly when the armed plan fires;
  // the caller then models the death (torn write, lost buffer, ...).
  bool ShouldCrash(CrashPoint site, const std::string& session_id) {
    ++metrics_.site_hits;
    if (crashed_ || !plan_.has_value() || plan_->point != site) {
      return false;
    }
    if (!plan_->session_filter.empty() &&
        plan_->session_filter != session_id) {
      return false;
    }
    ++metrics_.matching_hits;
    if (matching_hits_++ < plan_->after_events) {
      return false;
    }
    crashed_ = true;
    ++metrics_.crashes;
    return true;
  }

  const ProcessFaultMetrics& metrics() const { return metrics_; }

 private:
  std::optional<CrashPlan> plan_;
  uint64_t matching_hits_ = 0;
  bool crashed_ = false;
  ProcessFaultMetrics metrics_;
};

}  // namespace rcb

#endif  // SRC_NET_FAULT_INJECTOR_H_
