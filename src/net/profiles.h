// Network environment profiles matching the paper's two testbeds (§5.1.2):
//  - LAN: host and participant PCs on a 100 Mbps campus Ethernet.
//  - WAN: two homes with 1.5 Mbps download / 384 Kbps upload links.
// Origin Web servers sit across the Internet with per-site latency and
// serving bandwidth (configured by the site corpus).
#ifndef SRC_NET_PROFILES_H_
#define SRC_NET_PROFILES_H_

#include <string>

#include "src/net/fault_injector.h"
#include "src/net/network.h"

namespace rcb {

struct NetworkProfile {
  std::string name;
  HostInterface host_interface;
  HostInterface participant_interface;
  // One-way propagation latency between host and participant machines.
  Duration host_participant_latency = Duration::Millis(1);
  // One-way latency added between a user machine and any Internet server, on
  // top of the per-site latency (models the access-network hop).
  Duration access_latency = Duration::Zero();
};

// 100 Mbps switched Ethernet, sub-millisecond latency.
NetworkProfile LanProfile();

// Residential ADSL on both sides: 1.5 Mbps down / 384 Kbps up, ~40 ms between
// the two homes.
NetworkProfile WanProfile();

// Mobile co-browsing (§6 future work: RCB-Agent ported to Fennec on a Nokia
// N810 Wi-Fi tablet): the host is a handheld on 802.11g, the participant a
// laptop on the same access network.
NetworkProfile MobileProfile();

// Registers `host_name` and `participant_name` with the profile's interfaces
// and sets their pairwise latency.
void ApplyProfile(Network* network, const NetworkProfile& profile,
                  const std::string& host_name,
                  const std::string& participant_name);

// Registers an origin Web server with a serving bandwidth and sets its
// latency to every already-registered user machine.
void AddOriginServer(Network* network, const NetworkProfile& profile,
                     const std::string& server_name, int64_t server_bps,
                     Duration server_latency, const std::string& host_name,
                     const std::string& participant_name);

// A fault preset scaled to the profile: jitter bounds and retransmission
// timeouts are proportional to the link latency, so the chaos matrix
// stresses the same recovery paths on a 250 µs LAN and a 40 ms WAN. The
// returned event covers [start, start + duration) (kReset fires at `start`).
FaultEvent ChaosEvent(const NetworkProfile& profile, FaultEvent::Kind kind,
                      SimTime start, Duration duration);

}  // namespace rcb

#endif  // SRC_NET_PROFILES_H_
