#include "src/html/parser.h"

#include <array>

#include "src/html/serializer.h"
#include "src/html/tokenizer.h"

namespace rcb {

bool IsVoidElement(std::string_view tag) {
  static constexpr std::array<std::string_view, 14> kVoid = {
      "area", "base", "br",    "col",   "embed",  "hr",    "img",
      "input", "link", "meta", "param", "source", "track", "wbr"};
  for (std::string_view v : kVoid) {
    if (tag == v) {
      return true;
    }
  }
  return false;
}

namespace {

// Implied-end-tag rules (HTML 4 era): opening one of these elements closes a
// still-open element of the listed kinds. Real 2009 markup leaned on this
// heavily (unclosed <li>, <p>, <td>...).
bool ClosesImplicitly(std::string_view opening, std::string_view open_tag) {
  if (opening == "li") {
    return open_tag == "li";
  }
  if (opening == "p") {
    return open_tag == "p";
  }
  if (opening == "option") {
    return open_tag == "option";
  }
  if (opening == "tr") {
    return open_tag == "tr" || open_tag == "td" || open_tag == "th";
  }
  if (opening == "td" || opening == "th") {
    return open_tag == "td" || open_tag == "th";
  }
  if (opening == "dt" || opening == "dd") {
    return open_tag == "dt" || open_tag == "dd";
  }
  // Block-level elements terminate an open paragraph.
  if (opening == "div" || opening == "ul" || opening == "ol" ||
      opening == "table" || opening == "form" || opening == "h1" ||
      opening == "h2" || opening == "h3" || opening == "blockquote" ||
      opening == "pre") {
    return open_tag == "p";
  }
  return false;
}

// Builds a node tree from tokens under `root`.
void BuildTree(std::string_view html, Node* root) {
  HtmlTokenizer tokenizer(html);
  std::vector<Node*> stack;
  stack.push_back(root);

  while (true) {
    HtmlToken token = tokenizer.Next();
    switch (token.type) {
      case HtmlToken::Type::kEndOfFile:
        return;
      case HtmlToken::Type::kText: {
        if (token.data.empty()) {
          break;
        }
        stack.back()->AppendChild(MakeText(std::move(token.data)));
        break;
      }
      case HtmlToken::Type::kComment:
        stack.back()->AppendChild(std::make_unique<Comment>(std::move(token.data)));
        break;
      case HtmlToken::Type::kDoctype:
        stack.back()->AppendChild(std::make_unique<Doctype>(std::move(token.data)));
        break;
      case HtmlToken::Type::kStartTag: {
        // Pop elements this start tag implicitly terminates.
        while (stack.size() > 1) {
          Element* open = stack.back()->AsElement();
          if (open != nullptr && ClosesImplicitly(token.tag_name, open->tag_name())) {
            stack.pop_back();
          } else {
            break;
          }
        }
        auto element = MakeElement(token.tag_name);
        for (auto& [name, value] : token.attributes) {
          element->SetAttribute(name, value);
        }
        Node* raw = stack.back()->AppendChild(std::move(element));
        if (!token.self_closing && !IsVoidElement(token.tag_name)) {
          stack.push_back(raw);
        }
        break;
      }
      case HtmlToken::Type::kEndTag: {
        // Pop to the nearest matching open element; ignore stray end tags.
        for (size_t i = stack.size(); i-- > 1;) {
          Element* element = stack[i]->AsElement();
          if (element != nullptr && element->tag_name() == token.tag_name) {
            stack.resize(i);
            break;
          }
        }
        break;
      }
    }
  }
}

// Heads-only elements that belong in <head> when found at the top of a
// document missing explicit structure.
bool IsHeadContent(const Element& element) {
  const std::string& tag = element.tag_name();
  return tag == "title" || tag == "meta" || tag == "link" || tag == "style" ||
         tag == "base";
}

}  // namespace

std::unique_ptr<Document> ParseDocument(std::string_view html) {
  auto document = std::make_unique<Document>();
  BuildTree(html, document.get());

  // Scaffold normalization: guarantee an <html> root.
  Element* root = document->document_element();
  if (root == nullptr) {
    // Move existing top-level nodes (except doctype/comments) under a new
    // <html>.
    auto html_owned = MakeElement("html");
    Element* html_element = html_owned.get();
    std::vector<std::unique_ptr<Node>> moved;
    while (document->child_count() > 0) {
      Node* child = document->child_at(0);
      std::unique_ptr<Node> owned = document->RemoveChild(child);
      if (owned->type() == NodeType::kDoctype ||
          owned->type() == NodeType::kComment) {
        moved.push_back(std::move(owned));
      } else {
        html_element->AppendChild(std::move(owned));
      }
    }
    for (auto& node : moved) {
      document->AppendChild(std::move(node));
    }
    document->AppendChild(std::move(html_owned));
    root = html_element;
  }

  // Frameset documents keep html > (head, frameset[, noframes]).
  bool is_frameset = root->ChildByTag("frameset") != nullptr;

  Element* head = root->ChildByTag("head");
  if (head == nullptr) {
    auto head_owned = MakeElement("head");
    head = head_owned->AsElement();
    root->InsertBefore(std::move(head_owned), root->first_child());
    // Relocate stray head-content elements that ended up directly under html.
    std::vector<Node*> to_move;
    for (const auto& child : root->children()) {
      Element* element = child->AsElement();
      if (element != nullptr && element != head && IsHeadContent(*element)) {
        to_move.push_back(child.get());
      }
    }
    for (Node* node : to_move) {
      head->AppendChild(root->RemoveChild(node));
    }
  }

  if (!is_frameset && root->ChildByTag("body") == nullptr) {
    auto body_owned = MakeElement("body");
    Element* body = body_owned->AsElement();
    root->AppendChild(std::move(body_owned));
    // Move non-head top-level content into the body.
    std::vector<Node*> to_move;
    for (const auto& child : root->children()) {
      Element* element = child->AsElement();
      if (child.get() == head || child.get() == body) {
        continue;
      }
      if (element != nullptr || child->type() == NodeType::kText) {
        to_move.push_back(child.get());
      }
    }
    for (Node* node : to_move) {
      body->AppendChild(root->RemoveChild(node));
    }
  }

  return document;
}

std::vector<std::unique_ptr<Node>> ParseFragment(std::string_view html) {
  // Parse under a detached scratch element, then release the children.
  auto scratch = MakeElement("div");
  BuildTree(html, scratch.get());
  std::vector<std::unique_ptr<Node>> out;
  while (scratch->child_count() > 0) {
    out.push_back(scratch->RemoveChild(scratch->child_at(0)));
  }
  return out;
}

std::string Element::InnerHtml() const { return SerializeChildren(*this); }

void Element::SetInnerHtml(std::string_view html) {
  RemoveAllChildren();
  for (auto& node : ParseFragment(html)) {
    AppendChild(std::move(node));
  }
}

std::string Element::OuterHtml() const { return SerializeNode(*this); }

}  // namespace rcb
