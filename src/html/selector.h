// CSS-selector-lite querying over the DOM.
//
// Supports the selector subset practical co-browsing tooling needs:
//   tag            div
//   id             #cart
//   class          .price
//   universal      *
//   attribute      [name], [name=value]
//   compound       form.checkout#main[method=post]
//   descendant     form input        (whitespace combinator)
//   child          ul > li
//   grouping       h1, h2, h3
// Matching is case-sensitive for values, case-insensitive for tag names
// (tags are stored lowercase).
#ifndef SRC_HTML_SELECTOR_H_
#define SRC_HTML_SELECTOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/html/dom.h"
#include "src/util/status.h"

namespace rcb {

// A parsed selector, reusable across queries.
class Selector {
 public:
  // Parses a selector string; kInvalidArgument on empty/garbled input.
  static StatusOr<Selector> Parse(std::string_view text);

  // True if `element` itself matches (ancestors are consulted for
  // combinators).
  bool Matches(const Element& element) const;

  // All matching descendants of `root` in pre-order.
  std::vector<Element*> SelectAll(Node* root) const;
  // First match or nullptr.
  Element* SelectFirst(Node* root) const;

  const std::string& text() const { return text_; }

 private:
  struct AttributeTest {
    std::string name;
    bool has_value = false;
    std::string value;
  };
  // One compound selector: every listed constraint must hold.
  struct Compound {
    std::string tag;  // empty or "*" = any
    std::string id;
    std::vector<std::string> classes;
    std::vector<AttributeTest> attributes;
  };
  enum class Combinator { kDescendant, kChild };
  // A chain like "ul > li a": compounds[0] matches the element, each further
  // compound must match an ancestor per its combinator.
  struct Chain {
    // Stored innermost-first: compounds[0] is the subject.
    std::vector<Compound> compounds;
    std::vector<Combinator> combinators;  // combinators[i] links i to i+1
  };

  static bool MatchCompound(const Compound& compound, const Element& element);
  static bool MatchChain(const Chain& chain, const Element& element);
  static bool MatchChainFrom(const Chain& chain, size_t index,
                             const Element* context);

  std::string text_;
  std::vector<Chain> chains_;  // grouping: any chain may match
};

// One-shot conveniences.
std::vector<Element*> QuerySelectorAll(Node* root, std::string_view selector);
Element* QuerySelector(Node* root, std::string_view selector);

}  // namespace rcb

#endif  // SRC_HTML_SELECTOR_H_
