// HTML serialization (outerHTML / innerHTML string production).
#ifndef SRC_HTML_SERIALIZER_H_
#define SRC_HTML_SERIALIZER_H_

#include <string>

#include "src/html/dom.h"

namespace rcb {

// Serializes a node and its subtree (outerHTML for elements).
std::string SerializeNode(const Node& node);

// Append variant: same bytes, into a caller-owned buffer. Lets hot callers
// (delta::TreeDigest, the serialize-cache miss path) reuse one page-sized
// buffer instead of reallocating it per call.
void SerializeNodeInto(const Node& node, std::string* out);

// Serializes only the children (innerHTML).
std::string SerializeChildren(const Node& node);

}  // namespace rcb

#endif  // SRC_HTML_SERIALIZER_H_
