// String interning for tag and attribute names (docs/PERF_MODEL.md).
//
// A page has thousands of elements but a few dozen distinct tag/attribute
// names. Interning maps each distinct name to a stable `const std::string*`
// that lives for the process, so Element can hold a pointer instead of an
// owned copy, tag comparisons become pointer-width memcmps of short strings
// already in cache, and Clone copies 8 bytes instead of re-allocating.
//
// The table is capped (`intern_table_max`, default 4096 names): hostile or
// fuzzed input with unbounded distinct tag names cannot grow it past the cap.
// Past the cap Intern() returns nullptr and the caller falls back to an owned
// string — correctness is unchanged, only the speed win is lost.
//
// Interned pointers are never invalidated (entries are heap-allocated and the
// table is append-only), so they are safe to hold across arena resets and in
// the serialization cache.
#ifndef SRC_HTML_INTERN_H_
#define SRC_HTML_INTERN_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rcb {

class StringInterner {
 public:
  explicit StringInterner(size_t max_entries = kDefaultMaxEntries);

  // Stable pointer for `s`, or nullptr when the table is full and `s` is not
  // already present. The pointee is immutable and lives for the interner's
  // lifetime (for TagInterner(): the process).
  const std::string* Intern(std::string_view s);

  size_t size() const { return table_.size(); }
  size_t max_entries() const { return max_entries_; }
  void set_max_entries(size_t n) { max_entries_ = n; }

  static constexpr size_t kDefaultMaxEntries = 4096;

 private:
  size_t max_entries_;
  // Keys view into the heap-allocated values, so each name is stored once.
  std::unordered_map<std::string_view, std::unique_ptr<std::string>> table_;
};

// Process-wide interner used by the parser and DOM for tag/attribute names.
// Intentionally leaked so interned pointers stay valid during static
// destruction. Not synchronized: all DOM work is single-threaded per process
// (the host is an event loop), matching the rest of src/html.
StringInterner& TagInterner();

// Caps future growth of TagInterner() (the `intern_table_max` knob). Only
// lowers the effective cap for new entries; existing entries stay valid.
void SetTagInternCap(size_t max_entries);

}  // namespace rcb

#endif  // SRC_HTML_INTERN_H_
