// HTML tokenizer.
//
// Produces a flat token stream (start tags with attributes, end tags, text,
// comments, doctype) from HTML source. Raw-text elements (script, style,
// textarea, title) swallow their content verbatim until the matching close
// tag, which is what lets RCB ship inline JavaScript through innerHTML
// without executing or corrupting it (§4.2.2).
#ifndef SRC_HTML_TOKENIZER_H_
#define SRC_HTML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rcb {

struct HtmlToken {
  enum class Type { kStartTag, kEndTag, kText, kComment, kDoctype, kEndOfFile };

  Type type = Type::kEndOfFile;
  std::string tag_name;  // lowercase, for tag tokens
  std::vector<std::pair<std::string, std::string>> attributes;
  bool self_closing = false;
  std::string data;  // text/comment/doctype payload
};

class HtmlTokenizer {
 public:
  explicit HtmlTokenizer(std::string_view input) : input_(input) {}

  // Returns the next token; kEndOfFile forever once exhausted.
  HtmlToken Next();

  // True for elements whose content is raw text (no markup inside).
  static bool IsRawTextElement(std::string_view tag);

 private:
  HtmlToken LexTag();
  HtmlToken LexComment();
  HtmlToken LexDoctypeOrBogus();
  HtmlToken LexText();
  HtmlToken LexRawText(const std::string& tag);
  void LexAttributes(HtmlToken* token);

  std::string_view input_;
  size_t pos_ = 0;
  // Set after a raw-text start tag; the next token is its text content.
  std::string pending_raw_text_tag_;
};

}  // namespace rcb

#endif  // SRC_HTML_TOKENIZER_H_
