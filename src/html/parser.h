// HTML tree construction on top of the tokenizer.
//
// A pragmatic stack-based parser: void elements never push, raw-text content
// is attached verbatim, mismatched end tags pop to the nearest matching open
// element (ignored if none), and ParseDocument guarantees the html/head/body
// (or html/frameset) scaffold that RCB's Fig. 4 payload format assumes.
#ifndef SRC_HTML_PARSER_H_
#define SRC_HTML_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/html/dom.h"

namespace rcb {

// Parses a complete HTML document; never fails (malformed input degrades to
// a best-effort tree, like a browser).
std::unique_ptr<Document> ParseDocument(std::string_view html);

// Parses markup as a fragment: returns the top-level nodes without imposing
// the document scaffold. Used by Element::SetInnerHtml.
std::vector<std::unique_ptr<Node>> ParseFragment(std::string_view html);

// True for elements with no content model (<img>, <br>, ...).
bool IsVoidElement(std::string_view tag);

}  // namespace rcb

#endif  // SRC_HTML_PARSER_H_
