// DOM tree: Document, Element, Text, Comment nodes.
//
// This is the in-browser document model both RCB pipelines operate on:
// RCB-Agent clones the documentElement and rewrites the clone (Fig. 3);
// Ajax-Snippet applies received content to the live document via innerHTML
// and DOM mutation (Fig. 5). Attribute order is preserved so serialization
// round-trips byte-stably.
#ifndef SRC_HTML_DOM_H_
#define SRC_HTML_DOM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/arena.h"

namespace rcb {

enum class NodeType { kDocument, kElement, kText, kComment, kDoctype };

class Element;
class Document;

class Node {
 public:
  explicit Node(NodeType type);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Arena-aware allocation (src/util/arena.h): nodes built while an
  // ArenaScope is active come from that arena, all others from malloc. Each
  // allocation carries a header naming its source, so delete is uniform.
  static void* operator new(size_t n) { return ArenaAllocRaw(n); }
  static void operator delete(void* p) noexcept { ArenaFreeRaw(p); }
  static void operator delete(void* p, size_t) noexcept { ArenaFreeRaw(p); }

  NodeType type() const { return type_; }
  Node* parent() const { return parent_; }

  // Revision stamp for the serialization cache (src/core/serialize_cache).
  // Drawn from one process-wide monotonic counter: every mutation restamps
  // the touched node and each of its ancestors with fresh, distinct values,
  // so a rev uniquely identifies one (node, subtree state) and is never
  // reused. Clone() preserves revs — a clone's rev equals its source's, which
  // is exactly the identity the cache keys on.
  uint64_t rev() const { return rev_; }
  // Restamps this node and every ancestor (call after any mutation that
  // changes this subtree's serialization).
  void Touch();

  const std::vector<std::unique_ptr<Node>>& children() const { return children_; }
  size_t child_count() const { return children_.size(); }
  Node* child_at(size_t i) const { return children_[i].get(); }
  Node* first_child() const {
    return children_.empty() ? nullptr : children_.front().get();
  }
  Node* last_child() const {
    return children_.empty() ? nullptr : children_.back().get();
  }

  // Tree mutation. AppendChild/InsertBefore take ownership and return the raw
  // pointer for chaining; RemoveChild releases ownership back to the caller.
  Node* AppendChild(std::unique_ptr<Node> child);
  Node* InsertBefore(std::unique_ptr<Node> child, Node* reference);
  std::unique_ptr<Node> RemoveChild(Node* child);
  void RemoveAllChildren();
  // Detaches this node from its parent (no-op when already detached).
  std::unique_ptr<Node> Detach();

  // Deep copy; the clone has no parent. Mirrors cloneNode(true), which is the
  // first step of the agent's content generation.
  std::unique_ptr<Node> Clone() const;

  // Concatenated text of all descendant Text nodes.
  std::string TextContent() const;

  // Type-checked downcasts; return nullptr on mismatch.
  Element* AsElement();
  const Element* AsElement() const;
  Document* AsDocument();
  const Document* AsDocument() const;

  // Pre-order walk over descendant elements (not including this node when it
  // is an element). Return false from the visitor to stop early.
  void ForEachElement(const std::function<bool(Element*)>& visitor);
  void ForEachElement(const std::function<bool(const Element*)>& visitor) const;

 protected:
  virtual std::unique_ptr<Node> CloneSelf() const = 0;

 private:
  NodeType type_;
  uint64_t rev_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
};

class Text : public Node {
 public:
  explicit Text(std::string data) : Node(NodeType::kText), data_(std::move(data)) {}

  const std::string& data() const { return data_; }
  void set_data(std::string data) {
    data_ = std::move(data);
    Touch();
  }

 protected:
  std::unique_ptr<Node> CloneSelf() const override {
    return std::make_unique<Text>(data_);
  }

 private:
  std::string data_;
};

class Comment : public Node {
 public:
  explicit Comment(std::string data)
      : Node(NodeType::kComment), data_(std::move(data)) {}

  const std::string& data() const { return data_; }

 protected:
  std::unique_ptr<Node> CloneSelf() const override {
    return std::make_unique<Comment>(data_);
  }

 private:
  std::string data_;
};

class Doctype : public Node {
 public:
  explicit Doctype(std::string data)
      : Node(NodeType::kDoctype), data_(std::move(data)) {}

  const std::string& data() const { return data_; }

 protected:
  std::unique_ptr<Node> CloneSelf() const override {
    return std::make_unique<Doctype>(data_);
  }

 private:
  std::string data_;
};

class Element : public Node {
 public:
  explicit Element(std::string tag_name);

  // Lowercase tag name. Backed by the process-wide TagInterner (src/html/
  // intern.h) so distinct names are stored once; an owned copy is the
  // fallback when the capped table is full.
  const std::string& tag_name() const { return *tag_; }

  // Attributes (ordered, case-normalized names).
  std::optional<std::string> GetAttribute(std::string_view name) const;
  // Missing attribute reads as "".
  std::string AttrOr(std::string_view name, std::string_view fallback = "") const;
  void SetAttribute(std::string_view name, std::string_view value);
  // SetAttribute without restamping revs. Reserved for the Fig. 3 rewrite
  // passes, which run on the generator's clone: the clone's output is a pure
  // function of (source rev, generation config), so keeping clone revs equal
  // to source revs is what lets the serialization cache key on them. Never
  // use this on a live document.
  void SetAttributeKeepRev(std::string_view name, std::string_view value);
  void RemoveAttribute(std::string_view name);
  bool HasAttribute(std::string_view name) const;
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  std::string id() const { return AttrOr("id"); }

  // innerHTML: serialization of children / replace children by parsing the
  // fragment. Setter is defined in parser.cc (needs the parser).
  std::string InnerHtml() const;
  void SetInnerHtml(std::string_view html);
  // outerHTML: serialization including this element.
  std::string OuterHtml() const;

  // Descendant searches (pre-order).
  Element* FindFirst(std::string_view tag);
  const Element* FindFirst(std::string_view tag) const;
  std::vector<Element*> FindAll(std::string_view tag);
  Element* ById(std::string_view id_value);

  // First direct child element with the given tag, or nullptr.
  Element* ChildByTag(std::string_view tag);
  const Element* ChildByTag(std::string_view tag) const;
  // All direct child elements.
  std::vector<Element*> ChildElements();

 protected:
  std::unique_ptr<Node> CloneSelf() const override;

 private:
  struct CloneTag {};
  Element(const Element& src, CloneTag);
  void SetAttributeImpl(std::string_view name, std::string_view value,
                        bool touch);

  const std::string* tag_;  // interned, or &tag_owned_ when the table is full
  std::string tag_owned_;
  std::vector<std::pair<std::string, std::string>> attributes_;
};

class Document : public Node {
 public:
  Document() : Node(NodeType::kDocument) {}

  // The <html> root element (nullptr on an empty document).
  Element* document_element();
  const Element* document_element() const;

  Element* head();
  Element* body();
  Element* frameset();  // top-level frameset for frame documents
  Element* noframes();

  // <title> text, or "".
  std::string Title() const;

  Element* ById(std::string_view id_value);
  std::vector<Element*> FindAll(std::string_view tag);
  Element* FindFirst(std::string_view tag);

  // Creates a deep copy of the whole document.
  std::unique_ptr<Document> CloneDocument() const;

 protected:
  std::unique_ptr<Node> CloneSelf() const override {
    return std::make_unique<Document>();
  }
};

// Factory helpers.
std::unique_ptr<Element> MakeElement(std::string tag_name);
std::unique_ptr<Text> MakeText(std::string data);

}  // namespace rcb

#endif  // SRC_HTML_DOM_H_
