#include "src/html/tokenizer.h"

#include <cctype>

#include "src/util/escape.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

bool IsTagNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == ':';
}

bool IsAttrNameChar(char c) {
  return !std::isspace(static_cast<unsigned char>(c)) && c != '=' && c != '>' &&
         c != '/' && c != '"' && c != '\'';
}

}  // namespace

bool HtmlTokenizer::IsRawTextElement(std::string_view tag) {
  return tag == "script" || tag == "style" || tag == "textarea" || tag == "title";
}

HtmlToken HtmlTokenizer::Next() {
  if (!pending_raw_text_tag_.empty()) {
    std::string tag = std::move(pending_raw_text_tag_);
    pending_raw_text_tag_.clear();
    return LexRawText(tag);
  }
  if (pos_ >= input_.size()) {
    return HtmlToken{};
  }
  if (input_[pos_] == '<') {
    if (input_.substr(pos_, 4) == "<!--") {
      return LexComment();
    }
    if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '!') {
      return LexDoctypeOrBogus();
    }
    if (pos_ + 1 < input_.size() &&
        (std::isalpha(static_cast<unsigned char>(input_[pos_ + 1])) ||
         input_[pos_ + 1] == '/')) {
      return LexTag();
    }
    // Stray '<' treated as text.
  }
  return LexText();
}

HtmlToken HtmlTokenizer::LexText() {
  size_t start = pos_;
  while (pos_ < input_.size()) {
    if (input_[pos_] == '<' && pos_ + 1 < input_.size() &&
        (std::isalpha(static_cast<unsigned char>(input_[pos_ + 1])) ||
         input_[pos_ + 1] == '/' || input_[pos_ + 1] == '!')) {
      break;
    }
    ++pos_;
  }
  HtmlToken token;
  token.type = HtmlToken::Type::kText;
  token.data = HtmlUnescape(input_.substr(start, pos_ - start));
  return token;
}

HtmlToken HtmlTokenizer::LexComment() {
  pos_ += 4;  // consume "<!--"
  size_t end = input_.find("-->", pos_);
  HtmlToken token;
  token.type = HtmlToken::Type::kComment;
  if (end == std::string_view::npos) {
    token.data = std::string(input_.substr(pos_));
    pos_ = input_.size();
  } else {
    token.data = std::string(input_.substr(pos_, end - pos_));
    pos_ = end + 3;
  }
  return token;
}

HtmlToken HtmlTokenizer::LexDoctypeOrBogus() {
  // "<!DOCTYPE ...>" or any other "<!...>" construct.
  size_t end = input_.find('>', pos_);
  HtmlToken token;
  token.type = HtmlToken::Type::kDoctype;
  if (end == std::string_view::npos) {
    token.data = std::string(input_.substr(pos_ + 2));
    pos_ = input_.size();
  } else {
    token.data = std::string(input_.substr(pos_ + 2, end - pos_ - 2));
    pos_ = end + 1;
  }
  return token;
}

HtmlToken HtmlTokenizer::LexTag() {
  ++pos_;  // consume '<'
  HtmlToken token;
  if (input_[pos_] == '/') {
    token.type = HtmlToken::Type::kEndTag;
    ++pos_;
  } else {
    token.type = HtmlToken::Type::kStartTag;
  }
  size_t name_start = pos_;
  while (pos_ < input_.size() && IsTagNameChar(input_[pos_])) {
    ++pos_;
  }
  token.tag_name = AsciiToLower(input_.substr(name_start, pos_ - name_start));

  if (token.type == HtmlToken::Type::kStartTag) {
    LexAttributes(&token);
  } else {
    // Skip anything up to '>'.
    while (pos_ < input_.size() && input_[pos_] != '>') {
      ++pos_;
    }
  }
  if (pos_ < input_.size() && input_[pos_] == '>') {
    ++pos_;
  }
  if (token.type == HtmlToken::Type::kStartTag && !token.self_closing &&
      IsRawTextElement(token.tag_name)) {
    pending_raw_text_tag_ = token.tag_name;
  }
  return token;
}

void HtmlTokenizer::LexAttributes(HtmlToken* token) {
  while (pos_ < input_.size()) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      return;
    }
    if (input_[pos_] == '>') {
      return;
    }
    if (input_[pos_] == '/') {
      ++pos_;
      // "/>" marks self-closing; a stray '/' is skipped.
      if (pos_ < input_.size() && input_[pos_] == '>') {
        token->self_closing = true;
        return;
      }
      continue;
    }
    size_t name_start = pos_;
    while (pos_ < input_.size() && IsAttrNameChar(input_[pos_])) {
      ++pos_;
    }
    if (pos_ == name_start) {
      ++pos_;  // defensive: never stall
      continue;
    }
    std::string name = AsciiToLower(input_.substr(name_start, pos_ - name_start));
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    std::string value;
    if (pos_ < input_.size() && input_[pos_] == '=') {
      ++pos_;
      while (pos_ < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ < input_.size() && (input_[pos_] == '"' || input_[pos_] == '\'')) {
        char quote = input_[pos_++];
        size_t value_start = pos_;
        while (pos_ < input_.size() && input_[pos_] != quote) {
          ++pos_;
        }
        value = HtmlUnescape(input_.substr(value_start, pos_ - value_start));
        if (pos_ < input_.size()) {
          ++pos_;  // closing quote
        }
      } else {
        size_t value_start = pos_;
        while (pos_ < input_.size() &&
               !std::isspace(static_cast<unsigned char>(input_[pos_])) &&
               input_[pos_] != '>') {
          ++pos_;
        }
        value = HtmlUnescape(input_.substr(value_start, pos_ - value_start));
      }
    }
    token->attributes.emplace_back(std::move(name), std::move(value));
  }
}

HtmlToken HtmlTokenizer::LexRawText(const std::string& tag) {
  // Scan for "</tag" case-insensitively.
  std::string close = "</" + tag;
  size_t found = std::string_view::npos;
  for (size_t i = pos_; i + close.size() <= input_.size(); ++i) {
    if (EqualsIgnoreCase(input_.substr(i, close.size()), close)) {
      found = i;
      break;
    }
  }
  HtmlToken token;
  token.type = HtmlToken::Type::kText;
  if (found == std::string_view::npos) {
    token.data = std::string(input_.substr(pos_));
    pos_ = input_.size();
  } else {
    token.data = std::string(input_.substr(pos_, found - pos_));
    pos_ = found;  // the end tag is lexed by the next Next() call
  }
  return token;
}

}  // namespace rcb
