#include "src/html/dom.h"

#include <cassert>

#include "src/html/intern.h"
#include "src/util/strings.h"

namespace rcb {

namespace {

// One process-wide revision counter (see Node::rev()). Not synchronized: all
// DOM work is single-threaded per process, like the rest of src/html.
uint64_t g_rev_counter = 0;

bool IsAsciiLowerName(std::string_view s) {
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') return false;
  }
  return true;
}

// Canonical lowercase form of a tag/attribute name via the interner; falls
// back to `owned` when the capped table is full. The common parser case
// (already-lowercase name, already interned) allocates nothing.
const std::string* CanonicalName(std::string_view name, std::string* owned) {
  if (IsAsciiLowerName(name)) {
    if (const std::string* interned = TagInterner().Intern(name)) {
      return interned;
    }
    owned->assign(name);
    return owned;
  }
  *owned = AsciiToLower(name);
  if (const std::string* interned = TagInterner().Intern(*owned)) {
    return interned;
  }
  return owned;
}

}  // namespace

Node::Node(NodeType type) : type_(type), rev_(++g_rev_counter) {}

void Node::Touch() {
  // Distinct fresh value per ancestor: a rev then uniquely identifies one
  // (node, state) pair, which the serialization cache depends on.
  for (Node* n = this; n != nullptr; n = n->parent_) {
    n->rev_ = ++g_rev_counter;
  }
}

Node* Node::AppendChild(std::unique_ptr<Node> child) {
  assert(child != nullptr);
  assert(child->parent_ == nullptr && "child must be detached first");
  child->parent_ = this;
  children_.push_back(std::move(child));
  Node* raw = children_.back().get();
  Touch();
  return raw;
}

Node* Node::InsertBefore(std::unique_ptr<Node> child, Node* reference) {
  assert(child != nullptr);
  assert(child->parent_ == nullptr);
  if (reference == nullptr) {
    return AppendChild(std::move(child));
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == reference) {
      child->parent_ = this;
      Node* raw = child.get();
      children_.insert(children_.begin() + static_cast<ptrdiff_t>(i),
                       std::move(child));
      Touch();
      return raw;
    }
  }
  assert(false && "reference node is not a child");
  return AppendChild(std::move(child));
}

std::unique_ptr<Node> Node::RemoveChild(Node* child) {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) {
      std::unique_ptr<Node> out = std::move(children_[i]);
      children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
      out->parent_ = nullptr;
      Touch();
      return out;
    }
  }
  return nullptr;
}

void Node::RemoveAllChildren() {
  for (auto& child : children_) {
    child->parent_ = nullptr;
  }
  children_.clear();
  Touch();
}

std::unique_ptr<Node> Node::Detach() {
  if (parent_ == nullptr) {
    return nullptr;
  }
  return parent_->RemoveChild(this);
}

std::unique_ptr<Node> Node::Clone() const {
  // Links children directly instead of going through AppendChild: a clone
  // must carry its source's revs (that shared identity is what lets the
  // serialization cache match clone subtrees back to source state), and
  // AppendChild would restamp them.
  std::unique_ptr<Node> copy = CloneSelf();
  copy->rev_ = rev_;
  copy->children_.reserve(children_.size());
  for (const auto& child : children_) {
    std::unique_ptr<Node> child_copy = child->Clone();
    child_copy->parent_ = copy.get();
    copy->children_.push_back(std::move(child_copy));
  }
  return copy;
}

std::string Node::TextContent() const {
  std::string out;
  if (type_ == NodeType::kText) {
    out += static_cast<const Text*>(this)->data();
  }
  for (const auto& child : children_) {
    out += child->TextContent();
  }
  return out;
}

Element* Node::AsElement() {
  return type_ == NodeType::kElement ? static_cast<Element*>(this) : nullptr;
}
const Element* Node::AsElement() const {
  return type_ == NodeType::kElement ? static_cast<const Element*>(this) : nullptr;
}
Document* Node::AsDocument() {
  return type_ == NodeType::kDocument ? static_cast<Document*>(this) : nullptr;
}
const Document* Node::AsDocument() const {
  return type_ == NodeType::kDocument ? static_cast<const Document*>(this)
                                      : nullptr;
}

namespace {

bool WalkElements(Node* node, const std::function<bool(Element*)>& visitor) {
  for (const auto& child : node->children()) {
    if (Element* element = child->AsElement()) {
      if (!visitor(element)) {
        return false;
      }
    }
    if (!WalkElements(child.get(), visitor)) {
      return false;
    }
  }
  return true;
}

bool WalkElementsConst(const Node* node,
                       const std::function<bool(const Element*)>& visitor) {
  for (const auto& child : node->children()) {
    if (const Element* element = child->AsElement()) {
      if (!visitor(element)) {
        return false;
      }
    }
    if (!WalkElementsConst(child.get(), visitor)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void Node::ForEachElement(const std::function<bool(Element*)>& visitor) {
  WalkElements(this, visitor);
}

void Node::ForEachElement(const std::function<bool(const Element*)>& visitor) const {
  WalkElementsConst(this, visitor);
}

Element::Element(std::string tag_name) : Node(NodeType::kElement) {
  tag_ = CanonicalName(tag_name, &tag_owned_);
}

Element::Element(const Element& src, CloneTag) : Node(NodeType::kElement) {
  if (src.tag_ == &src.tag_owned_) {
    tag_owned_ = src.tag_owned_;
    tag_ = &tag_owned_;
  } else {
    tag_ = src.tag_;  // interned pointers are stable for the process
  }
  attributes_ = src.attributes_;
}

std::optional<std::string> Element::GetAttribute(std::string_view name) const {
  for (const auto& [key, value] : attributes_) {
    if (EqualsIgnoreCase(key, name)) {
      return value;
    }
  }
  return std::nullopt;
}

std::string Element::AttrOr(std::string_view name, std::string_view fallback) const {
  auto value = GetAttribute(name);
  return value.has_value() ? *value : std::string(fallback);
}

void Element::SetAttribute(std::string_view name, std::string_view value) {
  SetAttributeImpl(name, value, /*touch=*/true);
}

void Element::SetAttributeKeepRev(std::string_view name,
                                  std::string_view value) {
  SetAttributeImpl(name, value, /*touch=*/false);
}

void Element::SetAttributeImpl(std::string_view name, std::string_view value,
                               bool touch) {
  std::string owned;
  const std::string* canon = CanonicalName(name, &owned);
  for (auto& [key, existing] : attributes_) {
    if (key == *canon) {
      if (existing != value) {
        existing = std::string(value);
        if (touch) Touch();
      }
      return;
    }
  }
  attributes_.emplace_back(*canon, std::string(value));
  if (touch) Touch();
}

void Element::RemoveAttribute(std::string_view name) {
  size_t removed = std::erase_if(attributes_, [name](const auto& attr) {
    return EqualsIgnoreCase(attr.first, name);
  });
  if (removed > 0) Touch();
}

bool Element::HasAttribute(std::string_view name) const {
  return GetAttribute(name).has_value();
}

std::unique_ptr<Node> Element::CloneSelf() const {
  return std::unique_ptr<Node>(new Element(*this, CloneTag{}));
}

Element* Element::FindFirst(std::string_view tag) {
  Element* found = nullptr;
  ForEachElement([&](Element* element) {
    if (element->tag_name() == tag) {
      found = element;
      return false;
    }
    return true;
  });
  return found;
}

const Element* Element::FindFirst(std::string_view tag) const {
  const Element* found = nullptr;
  ForEachElement([&](const Element* element) {
    if (element->tag_name() == tag) {
      found = element;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<Element*> Element::FindAll(std::string_view tag) {
  std::vector<Element*> out;
  ForEachElement([&](Element* element) {
    if (element->tag_name() == tag) {
      out.push_back(element);
    }
    return true;
  });
  return out;
}

Element* Element::ById(std::string_view id_value) {
  Element* found = nullptr;
  ForEachElement([&](Element* element) {
    if (element->id() == id_value) {
      found = element;
      return false;
    }
    return true;
  });
  return found;
}

Element* Element::ChildByTag(std::string_view tag) {
  for (const auto& child : children()) {
    Element* element = child->AsElement();
    if (element != nullptr && element->tag_name() == tag) {
      return element;
    }
  }
  return nullptr;
}

const Element* Element::ChildByTag(std::string_view tag) const {
  for (const auto& child : children()) {
    const Element* element = child->AsElement();
    if (element != nullptr && element->tag_name() == tag) {
      return element;
    }
  }
  return nullptr;
}

std::vector<Element*> Element::ChildElements() {
  std::vector<Element*> out;
  for (const auto& child : children()) {
    if (Element* element = child->AsElement()) {
      out.push_back(element);
    }
  }
  return out;
}

Element* Document::document_element() {
  for (const auto& child : children()) {
    Element* element = child->AsElement();
    if (element != nullptr && element->tag_name() == "html") {
      return element;
    }
  }
  return nullptr;
}

const Element* Document::document_element() const {
  for (const auto& child : children()) {
    const Element* element = child->AsElement();
    if (element != nullptr && element->tag_name() == "html") {
      return element;
    }
  }
  return nullptr;
}

Element* Document::head() {
  Element* root = document_element();
  return root == nullptr ? nullptr : root->ChildByTag("head");
}

Element* Document::body() {
  Element* root = document_element();
  return root == nullptr ? nullptr : root->ChildByTag("body");
}

Element* Document::frameset() {
  Element* root = document_element();
  return root == nullptr ? nullptr : root->ChildByTag("frameset");
}

Element* Document::noframes() {
  Element* root = document_element();
  return root == nullptr ? nullptr : root->ChildByTag("noframes");
}

std::string Document::Title() const {
  const Element* root = document_element();
  if (root == nullptr) {
    return "";
  }
  const Element* title = root->FindFirst("title");
  return title == nullptr ? "" : title->TextContent();
}

Element* Document::ById(std::string_view id_value) {
  Element* found = nullptr;
  ForEachElement([&](Element* element) {
    if (element->id() == id_value) {
      found = element;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<Element*> Document::FindAll(std::string_view tag) {
  std::vector<Element*> out;
  ForEachElement([&](Element* element) {
    if (element->tag_name() == tag) {
      out.push_back(element);
    }
    return true;
  });
  return out;
}

Element* Document::FindFirst(std::string_view tag) {
  Element* found = nullptr;
  ForEachElement([&](Element* element) {
    if (element->tag_name() == tag) {
      found = element;
      return false;
    }
    return true;
  });
  return found;
}

std::unique_ptr<Document> Document::CloneDocument() const {
  auto copy = std::make_unique<Document>();
  for (const auto& child : children()) {
    copy->AppendChild(child->Clone());
  }
  return copy;
}

std::unique_ptr<Element> MakeElement(std::string tag_name) {
  return std::make_unique<Element>(std::move(tag_name));
}

std::unique_ptr<Text> MakeText(std::string data) {
  return std::make_unique<Text>(std::move(data));
}

}  // namespace rcb
