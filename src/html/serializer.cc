#include "src/html/serializer.h"

#include "src/html/parser.h"
#include "src/html/tokenizer.h"
#include "src/util/escape.h"

namespace rcb {
namespace {

void SerializeInto(const Node& node, std::string* out);

void SerializeChildrenInto(const Node& node, std::string* out,
                           bool raw_text_parent) {
  for (const auto& child : node.children()) {
    if (raw_text_parent && child->type() == NodeType::kText) {
      // Script/style content is emitted verbatim.
      out->append(static_cast<const Text*>(child.get())->data());
    } else {
      SerializeInto(*child, out);
    }
  }
}

void SerializeInto(const Node& node, std::string* out) {
  switch (node.type()) {
    case NodeType::kDocument:
      SerializeChildrenInto(node, out, /*raw_text_parent=*/false);
      break;
    case NodeType::kText:
      HtmlEscapeAppend(static_cast<const Text&>(node).data(), out);
      break;
    case NodeType::kComment:
      out->append("<!--");
      out->append(static_cast<const Comment&>(node).data());
      out->append("-->");
      break;
    case NodeType::kDoctype:
      out->append("<!");
      out->append(static_cast<const Doctype&>(node).data());
      out->append(">");
      break;
    case NodeType::kElement: {
      const Element& element = static_cast<const Element&>(node);
      out->push_back('<');
      out->append(element.tag_name());
      for (const auto& [name, value] : element.attributes()) {
        out->push_back(' ');
        out->append(name);
        out->append("=\"");
        HtmlEscapeAppend(value, out);
        out->push_back('"');
      }
      out->push_back('>');
      if (IsVoidElement(element.tag_name())) {
        return;
      }
      SerializeChildrenInto(element, out,
                            HtmlTokenizer::IsRawTextElement(element.tag_name()));
      out->append("</");
      out->append(element.tag_name());
      out->push_back('>');
      break;
    }
  }
}

}  // namespace

std::string SerializeNode(const Node& node) {
  std::string out;
  SerializeInto(node, &out);
  return out;
}

void SerializeNodeInto(const Node& node, std::string* out) {
  SerializeInto(node, out);
}

std::string SerializeChildren(const Node& node) {
  std::string out;
  bool raw = false;
  if (const Element* element = node.AsElement()) {
    raw = HtmlTokenizer::IsRawTextElement(element->tag_name());
  }
  SerializeChildrenInto(node, &out, raw);
  return out;
}

}  // namespace rcb
