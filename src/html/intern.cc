#include "src/html/intern.h"

namespace rcb {

StringInterner::StringInterner(size_t max_entries)
    : max_entries_(max_entries) {}

const std::string* StringInterner::Intern(std::string_view s) {
  auto it = table_.find(s);
  if (it != table_.end()) return it->second.get();
  if (table_.size() >= max_entries_) return nullptr;
  auto owned = std::make_unique<std::string>(s);
  const std::string* stable = owned.get();
  table_.emplace(std::string_view(*stable), std::move(owned));
  return stable;
}

StringInterner& TagInterner() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

void SetTagInternCap(size_t max_entries) {
  // The cap only matters for future inserts; shrinking below size() simply
  // freezes the table. Existing interned pointers stay valid either way.
  TagInterner().set_max_entries(max_entries);
}

}  // namespace rcb
