#include "src/html/selector.h"

#include <cctype>

#include "src/util/strings.h"

namespace rcb {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

// Splits a class attribute value into tokens.
bool HasClass(const Element& element, const std::string& wanted) {
  std::string classes = element.AttrOr("class");
  for (const auto& token : StrSplitSkipEmpty(classes, ' ')) {
    if (token == wanted) {
      return true;
    }
  }
  return false;
}

}  // namespace

StatusOr<Selector> Selector::Parse(std::string_view text) {
  Selector selector;
  selector.text_ = std::string(text);

  for (const auto& group : StrSplitSkipEmpty(text, ',')) {
    // Tokenize the chain outer-to-inner, then reverse so the subject
    // compound comes first.
    struct RawPart {
      std::string compound;
      Combinator combinator_to_parent = Combinator::kDescendant;
    };
    std::vector<RawPart> parts;
    std::string_view rest = StripWhitespace(group);
    if (rest.empty()) {
      return InvalidArgumentError("empty selector group");
    }
    Combinator pending = Combinator::kDescendant;
    bool expect_compound = true;
    size_t i = 0;
    std::string current;
    auto flush = [&]() -> Status {
      if (current.empty()) {
        return InvalidArgumentError("dangling combinator in selector: " +
                                    std::string(group));
      }
      parts.push_back(RawPart{current, pending});
      current.clear();
      pending = Combinator::kDescendant;
      expect_compound = false;
      return Status::Ok();
    };
    while (i < rest.size()) {
      char c = rest[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        // Whitespace: maybe a descendant combinator, unless a '>' follows.
        size_t j = i;
        while (j < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[j]))) {
          ++j;
        }
        if (j < rest.size() && rest[j] == '>') {
          i = j;  // let '>' handling take over
          continue;
        }
        RCB_RETURN_IF_ERROR(flush());
        pending = Combinator::kDescendant;
        expect_compound = true;
        i = j;
        continue;
      }
      if (c == '>') {
        RCB_RETURN_IF_ERROR(flush());
        pending = Combinator::kChild;
        expect_compound = true;
        ++i;
        while (i < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[i]))) {
          ++i;
        }
        continue;
      }
      current.push_back(c);
      ++i;
    }
    if (expect_compound && current.empty()) {
      return InvalidArgumentError("selector ends with a combinator: " +
                                  std::string(group));
    }
    RCB_RETURN_IF_ERROR(flush());

    // parts[0] is outermost; the subject is the last one. Reverse while
    // parsing each compound.
    Chain chain;
    for (size_t p = parts.size(); p-- > 0;) {
      const std::string& token = parts[p].compound;
      Compound compound;
      size_t k = 0;
      // Leading tag or universal.
      if (k < token.size() &&
          (std::isalpha(static_cast<unsigned char>(token[k])) ||
           token[k] == '*')) {
        if (token[k] == '*') {
          compound.tag = "*";
          ++k;
        } else {
          size_t start = k;
          while (k < token.size() && IsIdentChar(token[k])) {
            ++k;
          }
          compound.tag = AsciiToLower(token.substr(start, k - start));
        }
      }
      while (k < token.size()) {
        char c = token[k];
        if (c == '#' || c == '.') {
          size_t start = ++k;
          while (k < token.size() && IsIdentChar(token[k])) {
            ++k;
          }
          if (k == start) {
            return InvalidArgumentError("empty #/. name in selector: " + token);
          }
          std::string name = token.substr(start, k - start);
          if (c == '#') {
            compound.id = name;
          } else {
            compound.classes.push_back(name);
          }
        } else if (c == '[') {
          size_t close = token.find(']', k);
          if (close == std::string::npos) {
            return InvalidArgumentError("unterminated [attr] in selector: " +
                                        token);
          }
          std::string inner = token.substr(k + 1, close - k - 1);
          AttributeTest test;
          size_t eq = inner.find('=');
          if (eq == std::string::npos) {
            test.name = AsciiToLower(inner);
          } else {
            test.name = AsciiToLower(inner.substr(0, eq));
            test.has_value = true;
            std::string value = inner.substr(eq + 1);
            if (value.size() >= 2 &&
                ((value.front() == '"' && value.back() == '"') ||
                 (value.front() == '\'' && value.back() == '\''))) {
              value = value.substr(1, value.size() - 2);
            }
            test.value = value;
          }
          if (test.name.empty()) {
            return InvalidArgumentError("empty attribute name in selector: " +
                                        token);
          }
          compound.attributes.push_back(std::move(test));
          k = close + 1;
        } else {
          return InvalidArgumentError(
              StrFormat("unexpected '%c' in selector: %s", c, token.c_str()));
        }
      }
      if (compound.tag.empty() && compound.id.empty() &&
          compound.classes.empty() && compound.attributes.empty()) {
        return InvalidArgumentError("empty compound in selector: " + token);
      }
      chain.compounds.push_back(std::move(compound));
      if (p > 0) {
        // The combinator between this compound and its parent compound is
        // recorded on THIS part (combinator_to_parent).
        chain.combinators.push_back(parts[p].combinator_to_parent);
      }
    }
    selector.chains_.push_back(std::move(chain));
  }
  if (selector.chains_.empty()) {
    return InvalidArgumentError("empty selector");
  }
  return selector;
}

bool Selector::MatchCompound(const Compound& compound, const Element& element) {
  if (!compound.tag.empty() && compound.tag != "*" &&
      element.tag_name() != compound.tag) {
    return false;
  }
  if (!compound.id.empty() && element.id() != compound.id) {
    return false;
  }
  for (const auto& cls : compound.classes) {
    if (!HasClass(element, cls)) {
      return false;
    }
  }
  for (const auto& test : compound.attributes) {
    auto value = element.GetAttribute(test.name);
    if (!value.has_value()) {
      return false;
    }
    if (test.has_value && *value != test.value) {
      return false;
    }
  }
  return true;
}

// Backtracking ancestor match: compounds[index..] must be satisfiable along
// `context`'s ancestor chain. Greedy nearest-match is incomplete once child
// combinators mix with descendant ones, so each candidate ancestor is tried.
bool Selector::MatchChainFrom(const Chain& chain, size_t index,
                              const Element* context) {
  if (index >= chain.compounds.size()) {
    return true;
  }
  Combinator combinator = chain.combinators[index - 1];
  const Node* ancestor = context->parent();
  while (ancestor != nullptr) {
    const Element* ancestor_element = ancestor->AsElement();
    if (ancestor_element != nullptr &&
        MatchCompound(chain.compounds[index], *ancestor_element) &&
        MatchChainFrom(chain, index + 1, ancestor_element)) {
      return true;
    }
    if (combinator == Combinator::kChild) {
      return false;  // only the immediate parent may satisfy '>'
    }
    ancestor = ancestor->parent();
  }
  return false;
}

bool Selector::MatchChain(const Chain& chain, const Element& element) {
  if (!MatchCompound(chain.compounds[0], element)) {
    return false;
  }
  return MatchChainFrom(chain, 1, &element);
}

bool Selector::Matches(const Element& element) const {
  for (const Chain& chain : chains_) {
    if (MatchChain(chain, element)) {
      return true;
    }
  }
  return false;
}

std::vector<Element*> Selector::SelectAll(Node* root) const {
  std::vector<Element*> out;
  root->ForEachElement([&](Element* element) {
    if (Matches(*element)) {
      out.push_back(element);
    }
    return true;
  });
  return out;
}

Element* Selector::SelectFirst(Node* root) const {
  Element* found = nullptr;
  root->ForEachElement([&](Element* element) {
    if (Matches(*element)) {
      found = element;
      return false;
    }
    return true;
  });
  return found;
}

std::vector<Element*> QuerySelectorAll(Node* root, std::string_view selector) {
  auto parsed = Selector::Parse(selector);
  if (!parsed.ok()) {
    return {};
  }
  return parsed->SelectAll(root);
}

Element* QuerySelector(Node* root, std::string_view selector) {
  auto parsed = Selector::Parse(selector);
  if (!parsed.ok()) {
    return nullptr;
  }
  return parsed->SelectFirst(root);
}

}  // namespace rcb
