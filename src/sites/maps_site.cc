#include "src/sites/maps_site.h"

#include <memory>

#include "src/util/escape.h"
#include "src/util/rand.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

std::string TilePath(int z, int x, int y) {
  return StrFormat("/tile/%d/%d/%d.png", z, x, y);
}

// The 3x3 grid markup for a given center/zoom.
std::string GridHtml(int cx, int cy, int z) {
  std::string out = StrFormat(
      "<div id=\"map\" data-x=\"%d\" data-y=\"%d\" data-z=\"%d\">", cx, cy, z);
  for (int row = -1; row <= 1; ++row) {
    out += "<div class=\"tilerow\">";
    for (int col = -1; col <= 1; ++col) {
      out += StrFormat("<img class=\"tile\" src=\"%s\" alt=\"t\">",
                       TilePath(z, cx + col, cy + row).c_str());
    }
    out += "</div>";
  }
  out += "</div>";
  return out;
}

}  // namespace

MapsSite::MapsSite(EventLoop* loop, Network* network, std::string host)
    : host_(std::move(host)) {
  server_ = std::make_unique<SiteServer>(loop, network, host_);
  server_->Route("/", [this](const HttpRequest& r) { return MapPage(r); });
  server_->RoutePrefix("/tile/", [this](const HttpRequest& r) { return Tile(r); });
  server_->Route("/geocode",
                 [this](const HttpRequest& r) { return GeocodeHandler(r); });
  server_->ServeStatic("/static/maps.css", "text/css",
                       ".tile{width:256px;height:256px}.tilerow{height:256px}");
  server_->ServeStatic("/static/streetview.swf", "application/x-shockwave-flash",
                       std::string(64 * 1024, 'F'));
}

Url MapsSite::PageUrl() const { return Url::Make("http", host_, 80, "/"); }

std::pair<int, int> MapsSite::Geocode(const std::string& query) {
  uint64_t hash = 14695981039346656037ull;
  for (char c : query) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  int x = static_cast<int>(hash % 4096);
  int y = static_cast<int>((hash >> 16) % 4096);
  return {x, y};
}

HttpResponse MapsSite::MapPage(const HttpRequest&) {
  std::string body =
      "<h1>web maps</h1>"
      "<form id=\"mapsearch\" action=\"/geocode\" method=\"get\">"
      "<input type=\"text\" name=\"q\" value=\"\">"
      "<input type=\"submit\" name=\"go\" value=\"Search Maps\"></form>"
      "<div id=\"controls\"><a href=\"#\" id=\"zoomin\">+</a> "
      "<a href=\"#\" id=\"zoomout\">-</a> "
      "<a href=\"#\" id=\"streetview\">Street view</a></div>" +
      GridHtml(1000, 1000, kDefaultZoom) +
      "<div id=\"status\">drag the map or search for a place</div>";
  std::string page = StrFormat(
      "<!DOCTYPE html><html><head><title>web maps</title>"
      "<link rel=\"stylesheet\" href=\"/static/maps.css\">"
      "<script>var map={};</script></head><body>%s</body></html>",
      body.c_str());
  return HttpResponse::Ok("text/html", page);
}

HttpResponse MapsSite::Tile(const HttpRequest& request) {
  // Deterministic tile payload seeded by the tile coordinates.
  uint64_t seed = 0;
  for (char c : request.Path()) {
    seed = seed * 131 + static_cast<unsigned char>(c);
  }
  Rng rng(seed);
  return HttpResponse::Ok("image/png", rng.NextBytes(kTileBytes));
}

HttpResponse MapsSite::GeocodeHandler(const HttpRequest& request) {
  auto params = request.QueryParams();
  std::string query = params.count("q") ? params.at("q") : "";
  auto [x, y] = Geocode(query);
  return HttpResponse::Ok("text/plain", StrFormat("%d %d", x, y));
}

void MapsApp::Open(const Url& page_url, std::function<void(Status)> done) {
  page_url_ = page_url;
  browser_->Navigate(page_url,
                     [done = std::move(done)](const Status& status,
                                              const PageLoadStats&) {
                       done(status);
                     });
}

void MapsApp::ReloadTiles(std::function<void(Status)> done) {
  // Ajax phase: fetch the 9 tiles (cache-aware), then mutate the DOM grid in
  // place — the page URL is untouched.
  auto remaining = std::make_shared<int>(MapsSite::kGridSize * MapsSite::kGridSize);
  auto failed = std::make_shared<bool>(false);
  auto done_shared = std::make_shared<std::function<void(Status)>>(std::move(done));
  for (int row = -1; row <= 1; ++row) {
    for (int col = -1; col <= 1; ++col) {
      auto tile_url =
          page_url_.Resolve(TilePath(zoom_, center_x_ + col, center_y_ + row));
      if (!tile_url.ok()) {
        (*done_shared)(tile_url.status());
        return;
      }
      browser_->FetchCached(
          *tile_url, [this, remaining, failed, done_shared](FetchResult result) {
            if (!result.status.ok()) {
              *failed = true;
            }
            if (--*remaining > 0) {
              return;
            }
            if (*failed) {
              (*done_shared)(UnavailableError("tile fetch failed"));
              return;
            }
            int cx = center_x_;
            int cy = center_y_;
            int z = zoom_;
            browser_->MutateDocument([cx, cy, z](Document* document) {
              Element* map = document->ById("map");
              if (map == nullptr) {
                return;
              }
              std::string html = GridHtml(cx, cy, z);
              Node* parent = map->parent();
              auto fragment = ParseFragment(html);
              if (fragment.empty()) {
                return;
              }
              parent->InsertBefore(std::move(fragment[0]), map);
              parent->RemoveChild(map);
              Element* status = document->ById("status");
              if (status != nullptr) {
                status->RemoveAllChildren();
                status->AppendChild(MakeText(
                    StrFormat("view %d,%d @z%d", cx, cy, z)));
              }
            });
            (*done_shared)(Status::Ok());
          });
    }
  }
}

void MapsApp::Search(const std::string& query, std::function<void(Status)> done) {
  auto geocode_url = page_url_.Resolve("/geocode?q=" + PercentEncode(query));
  if (!geocode_url.ok()) {
    done(geocode_url.status());
    return;
  }
  browser_->Fetch(HttpMethod::kGet, *geocode_url, "", "",
                  [this, done = std::move(done)](FetchResult result) mutable {
                    if (!result.status.ok()) {
                      done(result.status);
                      return;
                    }
                    int x = 0;
                    int y = 0;
                    if (std::sscanf(result.response.body.c_str(), "%d %d", &x,
                                    &y) != 2) {
                      done(InternalError("bad geocode response"));
                      return;
                    }
                    center_x_ = x;
                    center_y_ = y;
                    zoom_ = MapsSite::kDefaultZoom;
                    ReloadTiles(std::move(done));
                  });
}

void MapsApp::ZoomIn(std::function<void(Status)> done) {
  ++zoom_;
  ReloadTiles(std::move(done));
}

void MapsApp::ZoomOut(std::function<void(Status)> done) {
  --zoom_;
  ReloadTiles(std::move(done));
}

void MapsApp::Pan(int dx, int dy, std::function<void(Status)> done) {
  center_x_ += dx;
  center_y_ += dy;
  ReloadTiles(std::move(done));
}

void MapsApp::ShowStreetView(std::function<void(Status)> done) {
  auto swf_url = page_url_.Resolve("/static/streetview.swf");
  if (!swf_url.ok()) {
    done(swf_url.status());
    return;
  }
  browser_->FetchCached(
      *swf_url, [this, done = std::move(done)](FetchResult result) mutable {
        if (!result.status.ok()) {
          done(result.status);
          return;
        }
        int cx = center_x_;
        int cy = center_y_;
        browser_->MutateDocument([cx, cy](Document* document) {
          Element* map = document->ById("map");
          if (map == nullptr) {
            return;
          }
          map->RemoveAllChildren();
          auto embed = MakeElement("embed");
          embed->SetAttribute("id", "svflash");
          embed->SetAttribute("src", "/static/streetview.swf");
          embed->SetAttribute("type", "application/x-shockwave-flash");
          map->AppendChild(std::move(embed));
          auto caption = MakeElement("p");
          caption->SetAttribute("id", "svcaption");
          caption->AppendChild(MakeText(StrFormat(
              "street view near %d,%d: Cartier store, four red roof "
              "show-windows on the Fifth Avenue side",
              cx, cy)));
          map->AppendChild(std::move(caption));
        });
        done(Status::Ok());
      });
}

}  // namespace rcb
