// Ajax web-map service — the Google Maps stand-in (§5.2.1).
//
// The map page loads a 3x3 grid of 256x256 tiles and updates them with
// XMLHttpRequest + DOM mutation when the user searches, pans, or zooms: the
// URL in the address bar never changes, which is exactly why URL-sharing
// co-browsing fails on it and RCB's DOM-level sync succeeds.
//
// MapsApp plays the role of the page's JavaScript: it runs against a host
// Browser, fetching tiles over the network and mutating the live document.
#ifndef SRC_SITES_MAPS_SITE_H_
#define SRC_SITES_MAPS_SITE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/browser/browser.h"
#include "src/sites/site_server.h"

namespace rcb {

class MapsSite {
 public:
  MapsSite(EventLoop* loop, Network* network, std::string host);

  SiteServer* server() { return server_.get(); }
  const std::string& host() const { return host_; }

  // The map page URL.
  Url PageUrl() const;

  // Deterministic geocoding used by both server and tests: query -> (x, y).
  static std::pair<int, int> Geocode(const std::string& query);

  static constexpr int kGridSize = 3;        // 3x3 visible tiles
  static constexpr int kDefaultZoom = 12;
  static constexpr size_t kTileBytes = 8 * 1024;

 private:
  HttpResponse MapPage(const HttpRequest& request);
  HttpResponse Tile(const HttpRequest& request);
  HttpResponse GeocodeHandler(const HttpRequest& request);

  std::string host_;
  std::unique_ptr<SiteServer> server_;
};

// Client-side map application logic (the page's "JavaScript").
class MapsApp {
 public:
  explicit MapsApp(Browser* browser) : browser_(browser) {}

  // Loads the map page, then reports readiness.
  void Open(const Url& page_url, std::function<void(Status)> done);

  // Geocodes `query` via Ajax, then loads the tile grid for the hit and
  // mutates the document. The page URL does not change.
  void Search(const std::string& query, std::function<void(Status)> done);

  void ZoomIn(std::function<void(Status)> done);
  void ZoomOut(std::function<void(Status)> done);
  // Pans by whole tiles.
  void Pan(int dx, int dy, std::function<void(Status)> done);

  // Swaps the map for the street-view Flash object (embed element). RCB
  // synchronizes the DOM change but, like the paper, not activity *inside*
  // the Flash.
  void ShowStreetView(std::function<void(Status)> done);

  int center_x() const { return center_x_; }
  int center_y() const { return center_y_; }
  int zoom() const { return zoom_; }

 private:
  // Fetches the 3x3 tile set for the current view, then rewrites the
  // #map grid in the document.
  void ReloadTiles(std::function<void(Status)> done);

  Browser* browser_;
  Url page_url_;
  int center_x_ = 1000;
  int center_y_ = 1000;
  int zoom_ = MapsSite::kDefaultZoom;
};

}  // namespace rcb

#endif  // SRC_SITES_MAPS_SITE_H_
