// Session-protected online shop — the Amazon.com stand-in (§5.2.2).
//
// Exercises the co-browsing behaviours the paper verifies with the real
// Amazon: session cookies (pages differ per session, so URL sharing fails),
// search and product navigation, a cart, and a multi-field checkout form
// suitable for co-filling.
#ifndef SRC_SITES_SHOP_SITE_H_
#define SRC_SITES_SHOP_SITE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sites/site_server.h"
#include "src/util/rand.h"

namespace rcb {

struct ShopProduct {
  std::string id;
  std::string title;
  std::string keywords;  // matched by search
  int price_cents;
};

class ShopSite {
 public:
  // Registers routes on a new server for `host` (must exist in network).
  ShopSite(EventLoop* loop, Network* network, std::string host);

  SiteServer* server() { return server_.get(); }
  const std::string& host() const { return host_; }

  // Catalog access for tests/examples.
  const std::vector<ShopProduct>& products() const { return products_; }

  struct SessionState {
    std::vector<std::string> cart;  // product ids
    std::map<std::string, std::string> shipping;
    bool checked_out = false;
  };
  // Session lookup by cookie value; nullptr if unknown.
  const SessionState* FindSession(const std::string& session_id) const;
  size_t session_count() const { return sessions_.size(); }

 private:
  HttpResponse Home(const HttpRequest& request);
  HttpResponse Search(const HttpRequest& request);
  HttpResponse Product(const HttpRequest& request);
  HttpResponse CartAdd(const HttpRequest& request);
  HttpResponse CartView(const HttpRequest& request);
  HttpResponse Checkout(const HttpRequest& request);
  HttpResponse CheckoutSubmit(const HttpRequest& request);

  // Returns the session for the request, creating one (and arranging the
  // Set-Cookie) if absent. `out_set_cookie` receives a cookie to set, if any.
  SessionState* SessionFor(const HttpRequest& request, std::string* out_set_cookie);

  std::string PageShell(const std::string& title, const std::string& body_html,
                        bool with_nav = true) const;

  EventLoop* loop_;
  std::string host_;
  std::unique_ptr<SiteServer> server_;
  std::vector<ShopProduct> products_;
  std::map<std::string, SessionState> sessions_;
  Rng rng_;
};

}  // namespace rcb

#endif  // SRC_SITES_SHOP_SITE_H_
