// Generic simulated origin Web server.
//
// A SiteServer listens on a Network host, parses incoming HTTP requests, and
// dispatches them to registered routes. Static resources and dynamic
// handlers coexist; a configurable per-request processing delay models
// server-side think time.
#ifndef SRC_SITES_SITE_SERVER_H_
#define SRC_SITES_SITE_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/http/http_parser.h"
#include "src/http/message.h"
#include "src/net/network.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"

namespace rcb {

class SiteServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Registers `host` (must already exist in the network) and starts
  // listening on `port`.
  SiteServer(EventLoop* loop, Network* network, std::string host,
             uint16_t port = 80);
  ~SiteServer();
  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  // Exact-path route. The handler sees the full request.
  void Route(const std::string& path, Handler handler);
  // Prefix route ("/img/" matches "/img/a.png"); exact routes win.
  void RoutePrefix(const std::string& prefix, Handler handler);
  // Fallback for unmatched paths (default: 404).
  void SetDefaultHandler(Handler handler) { default_handler_ = std::move(handler); }

  // Convenience: serve fixed bytes at `path`.
  void ServeStatic(const std::string& path, std::string content_type,
                   std::string body);

  // Server-side processing latency added before each response.
  void set_processing_delay(Duration delay) { processing_delay_ = delay; }
  // Per-path override (e.g. an expensive dynamically-generated homepage vs
  // cheap static objects). Exact path match wins over the default delay.
  void SetPathDelay(const std::string& path, Duration delay) {
    path_delays_[path] = delay;
  }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  uint64_t requests_served() const { return requests_served_; }

 private:
  struct ClientConn {
    NetEndpoint* endpoint = nullptr;
    HttpRequestParser parser;
  };

  void OnAccept(NetEndpoint* endpoint);
  void OnData(ClientConn* conn, std::string_view data);
  HttpResponse Dispatch(const HttpRequest& request);

  EventLoop* loop_;
  Network* network_;
  std::string host_;
  uint16_t port_;
  Duration processing_delay_;
  std::map<std::string, Duration> path_delays_;
  std::map<std::string, Handler> routes_;
  std::map<std::string, Handler> prefix_routes_;
  Handler default_handler_;
  std::vector<std::unique_ptr<ClientConn>> connections_;
  uint64_t requests_served_ = 0;
};

}  // namespace rcb

#endif  // SRC_SITES_SITE_SERVER_H_
