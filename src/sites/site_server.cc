#include "src/sites/site_server.h"

#include <cassert>

#include "src/util/logging.h"

namespace rcb {

SiteServer::SiteServer(EventLoop* loop, Network* network, std::string host,
                       uint16_t port)
    : loop_(loop), network_(network), host_(std::move(host)), port_(port) {
  assert(network_->HasHost(host_) && "site host must be registered first");
  Status status = network_->Listen(
      host_, port_, [this](NetEndpoint* endpoint) { OnAccept(endpoint); });
  assert(status.ok());
  (void)status;
}

SiteServer::~SiteServer() {
  network_->StopListening(host_, port_);
  for (auto& conn : connections_) {
    if (conn->endpoint != nullptr) {
      conn->endpoint->Close();
    }
  }
}

void SiteServer::Route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

void SiteServer::RoutePrefix(const std::string& prefix, Handler handler) {
  prefix_routes_[prefix] = std::move(handler);
}

void SiteServer::ServeStatic(const std::string& path, std::string content_type,
                             std::string body) {
  Route(path, [content_type = std::move(content_type),
               body = std::move(body)](const HttpRequest&) {
    return HttpResponse::Ok(content_type, body);
  });
}

void SiteServer::OnAccept(NetEndpoint* endpoint) {
  auto conn = std::make_unique<ClientConn>();
  conn->endpoint = endpoint;
  ClientConn* raw = conn.get();
  endpoint->SetDataHandler(
      [this, raw](std::string_view data) { OnData(raw, data); });
  connections_.push_back(std::move(conn));
}

void SiteServer::OnData(ClientConn* conn, std::string_view data) {
  std::string_view remaining = data;
  while (true) {
    auto result = conn->parser.Feed(remaining);
    remaining = {};
    if (!result.ok()) {
      RCB_LOG(kWarning) << host_ << ": dropping connection, bad request: "
                        << result.status();
      conn->endpoint->Close();
      return;
    }
    if (!result->has_value()) {
      return;
    }
    HttpRequest request = std::move(**result);
    std::string path = request.Path();
    HttpResponse response = Dispatch(request);
    ++requests_served_;
    NetEndpoint* endpoint = conn->endpoint;
    std::string wire = response.Serialize();
    Duration delay = processing_delay_;
    auto delay_it = path_delays_.find(path);
    if (delay_it != path_delays_.end()) {
      delay = delay_it->second;
    }
    if (delay > Duration::Zero()) {
      loop_->Schedule(delay, [endpoint, wire = std::move(wire)] {
        endpoint->Send(wire);
      });
    } else {
      endpoint->Send(std::move(wire));
    }
  }
}

HttpResponse SiteServer::Dispatch(const HttpRequest& request) {
  std::string path = request.Path();
  auto it = routes_.find(path);
  if (it != routes_.end()) {
    return it->second(request);
  }
  for (const auto& [prefix, handler] : prefix_routes_) {
    if (path.size() >= prefix.size() && path.compare(0, prefix.size(), prefix) == 0) {
      return handler(request);
    }
  }
  if (default_handler_) {
    return default_handler_(request);
  }
  return HttpResponse::NotFound(path);
}

}  // namespace rcb
