#include "src/sites/shop_site.h"

#include "src/http/form.h"
#include "src/util/escape.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

constexpr char kSessionCookie[] = "shopsession";

std::string CookieValueFrom(const HttpRequest& request, std::string_view name) {
  auto header = request.headers.Get("Cookie");
  if (!header.has_value()) {
    return "";
  }
  for (const auto& piece : StrSplitSkipEmpty(*header, ';')) {
    size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    if (StripWhitespace(std::string_view(piece).substr(0, eq)) == name) {
      return std::string(StripWhitespace(std::string_view(piece).substr(eq + 1)));
    }
  }
  return "";
}

std::string Price(int cents) {
  return StrFormat("$%d.%02d", cents / 100, cents % 100);
}

}  // namespace

ShopSite::ShopSite(EventLoop* loop, Network* network, std::string host)
    : loop_(loop), host_(std::move(host)), rng_(0xC0FFEE) {
  products_ = {
      {"mba13", "MacBook Air 13-inch (newly released)", "macbook air laptop apple", 179900},
      {"mba11", "MacBook Air 11-inch", "macbook air laptop apple", 149900},
      {"mbp15", "MacBook Pro 15-inch", "macbook pro laptop apple", 199900},
      {"think", "ThinkPad X200 ultraportable", "thinkpad laptop lenovo", 119900},
      {"eee",   "Eee PC 1000HE netbook", "eee netbook asus laptop", 39900},
      {"ipod",  "iPod touch 32GB", "ipod touch music apple", 29900},
      {"kindl", "Kindle 2 e-reader", "kindle reader books", 35900},
      {"watch", "Cartier Tank watch", "cartier watch jewelry", 249900},
  };
  server_ = std::make_unique<SiteServer>(loop_, network, host_);
  server_->Route("/", [this](const HttpRequest& r) { return Home(r); });
  server_->Route("/search", [this](const HttpRequest& r) { return Search(r); });
  server_->RoutePrefix("/product/", [this](const HttpRequest& r) { return Product(r); });
  server_->Route("/cart/add", [this](const HttpRequest& r) { return CartAdd(r); });
  server_->Route("/cart", [this](const HttpRequest& r) { return CartView(r); });
  server_->Route("/checkout", [this](const HttpRequest& r) { return Checkout(r); });
  server_->Route("/checkout/submit",
                 [this](const HttpRequest& r) { return CheckoutSubmit(r); });
  server_->ServeStatic("/static/shop.css", "text/css",
                       ".p{border:1px solid #ccc;padding:8px}"
                       ".price{color:#900;font-weight:bold}");
  server_->ServeStatic("/static/logo.png", "image/png",
                       std::string(2048, 'L'));
}

const ShopSite::SessionState* ShopSite::FindSession(
    const std::string& session_id) const {
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : &it->second;
}

ShopSite::SessionState* ShopSite::SessionFor(const HttpRequest& request,
                                             std::string* out_set_cookie) {
  std::string session_id = CookieValueFrom(request, kSessionCookie);
  if (!session_id.empty()) {
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) {
      return &it->second;
    }
  }
  session_id = rng_.NextToken(16);
  *out_set_cookie = StrFormat("%s=%s; Path=/", kSessionCookie, session_id.c_str());
  return &sessions_[session_id];
}

std::string ShopSite::PageShell(const std::string& title,
                                const std::string& body_html, bool with_nav) const {
  std::string nav;
  if (with_nav) {
    nav = "<div id=\"nav\"><a href=\"/\">Shop home</a> | "
          "<a href=\"/cart\">Cart</a> | <a href=\"/checkout\">Checkout</a></div>"
          "<form id=\"searchform\" action=\"/search\" method=\"get\">"
          "<input type=\"text\" name=\"q\" value=\"\">"
          "<input type=\"submit\" name=\"go\" value=\"Go\"></form>";
  }
  return StrFormat(
      "<!DOCTYPE html><html><head><title>%s</title>"
      "<link rel=\"stylesheet\" href=\"/static/shop.css\"></head>"
      "<body><img src=\"/static/logo.png\" alt=\"logo\" id=\"logo\">%s%s"
      "</body></html>",
      HtmlEscape(title).c_str(), nav.c_str(), body_html.c_str());
}

HttpResponse ShopSite::Home(const HttpRequest& request) {
  std::string set_cookie;
  SessionFor(request, &set_cookie);
  std::string body = "<h1>All-Mart online shop</h1><div id=\"featured\">";
  for (const auto& product : products_) {
    body += StrFormat(
        "<div class=\"p\"><a href=\"/product/%s\">%s</a> "
        "<span class=\"price\">%s</span></div>",
        product.id.c_str(), HtmlEscape(product.title).c_str(),
        Price(product.price_cents).c_str());
  }
  body += "</div>";
  HttpResponse response = HttpResponse::Ok("text/html", PageShell("Shop", body));
  if (!set_cookie.empty()) {
    response.headers.Add("Set-Cookie", set_cookie);
  }
  return response;
}

HttpResponse ShopSite::Search(const HttpRequest& request) {
  std::string set_cookie;
  SessionFor(request, &set_cookie);
  auto params = request.QueryParams();
  std::string query = AsciiToLower(params.count("q") ? params.at("q") : "");
  std::string body = StrFormat("<h1>Results for \"%s\"</h1><div id=\"results\">",
                               HtmlEscape(query).c_str());
  int hits = 0;
  for (const auto& product : products_) {
    // Every query word must match the keywords or the title.
    bool match = true;
    for (const auto& word : StrSplitSkipEmpty(query, ' ')) {
      if (product.keywords.find(word) == std::string::npos &&
          AsciiToLower(product.title).find(word) == std::string::npos) {
        match = false;
        break;
      }
    }
    if (match) {
      ++hits;
      body += StrFormat(
          "<div class=\"p\" id=\"hit%d\"><a href=\"/product/%s\">%s</a> "
          "<span class=\"price\">%s</span></div>",
          hits, product.id.c_str(), HtmlEscape(product.title).c_str(),
          Price(product.price_cents).c_str());
    }
  }
  body += StrFormat("</div><p id=\"hitcount\">%d results</p>", hits);
  HttpResponse response =
      HttpResponse::Ok("text/html", PageShell("Search results", body));
  if (!set_cookie.empty()) {
    response.headers.Add("Set-Cookie", set_cookie);
  }
  return response;
}

HttpResponse ShopSite::Product(const HttpRequest& request) {
  std::string id = request.Path().substr(std::string("/product/").size());
  for (const auto& product : products_) {
    if (product.id == id) {
      std::string body = StrFormat(
          "<h1 id=\"ptitle\">%s</h1><p class=\"price\">%s</p>"
          "<form id=\"addform\" action=\"/cart/add\" method=\"post\">"
          "<input type=\"hidden\" name=\"id\" value=\"%s\">"
          "<input type=\"submit\" name=\"add\" value=\"Add to cart\"></form>",
          HtmlEscape(product.title).c_str(), Price(product.price_cents).c_str(),
          product.id.c_str());
      return HttpResponse::Ok("text/html", PageShell(product.title, body));
    }
  }
  return HttpResponse::NotFound("no such product: " + id);
}

HttpResponse ShopSite::CartAdd(const HttpRequest& request) {
  std::string set_cookie;
  SessionState* session = SessionFor(request, &set_cookie);
  auto fields = ParseFormUrlEncoded(request.body);
  auto it = fields.find("id");
  if (it == fields.end()) {
    return HttpResponse::BadRequest("missing product id");
  }
  session->cart.push_back(it->second);
  HttpResponse response;
  response.status_code = 302;
  response.reason = "Found";
  response.headers.Set("Location", "/cart");
  if (!set_cookie.empty()) {
    response.headers.Add("Set-Cookie", set_cookie);
  }
  return response;
}

HttpResponse ShopSite::CartView(const HttpRequest& request) {
  std::string session_id = CookieValueFrom(request, kSessionCookie);
  auto it = sessions_.find(session_id);
  if (session_id.empty() || it == sessions_.end()) {
    // Session-protected page: a shared URL opens an empty/sign-in view.
    return HttpResponse::Ok(
        "text/html",
        PageShell("Sign in", "<h1 id=\"signin\">Please sign in</h1>"
                             "<p>Your session was not found.</p>"));
  }
  const SessionState& session = it->second;
  std::string body = "<h1>Your cart</h1><ul id=\"cartlist\">";
  int total = 0;
  for (const auto& id : session.cart) {
    for (const auto& product : products_) {
      if (product.id == id) {
        body += StrFormat("<li>%s — %s</li>", HtmlEscape(product.title).c_str(),
                          Price(product.price_cents).c_str());
        total += product.price_cents;
      }
    }
  }
  body += StrFormat("</ul><p id=\"carttotal\">Total: %s</p>"
                    "<p><a href=\"/checkout\" id=\"gocheckout\">Proceed to checkout</a></p>",
                    Price(total).c_str());
  return HttpResponse::Ok("text/html", PageShell("Cart", body));
}

HttpResponse ShopSite::Checkout(const HttpRequest& request) {
  std::string session_id = CookieValueFrom(request, kSessionCookie);
  auto it = sessions_.find(session_id);
  if (session_id.empty() || it == sessions_.end() || it->second.cart.empty()) {
    return HttpResponse::Ok(
        "text/html", PageShell("Checkout", "<h1 id=\"emptycart\">Your cart is empty"
                                           "</h1><p><a href=\"/\">Shop</a></p>"));
  }
  std::string body =
      "<h1>Checkout: shipping address</h1>"
      "<form id=\"shipform\" action=\"/checkout/submit\" method=\"post\">"
      "<input type=\"text\" name=\"fullname\" value=\"\"> Full name<br>"
      "<input type=\"text\" name=\"street\" value=\"\"> Street<br>"
      "<input type=\"text\" name=\"city\" value=\"\"> City<br>"
      "<input type=\"text\" name=\"state\" value=\"\"> State<br>"
      "<input type=\"text\" name=\"zip\" value=\"\"> ZIP<br>"
      "<input type=\"text\" name=\"phone\" value=\"\"> Phone<br>"
      "<input type=\"submit\" name=\"place\" value=\"Place order\">"
      "</form>";
  return HttpResponse::Ok("text/html", PageShell("Checkout", body));
}

HttpResponse ShopSite::CheckoutSubmit(const HttpRequest& request) {
  std::string session_id = CookieValueFrom(request, kSessionCookie);
  auto it = sessions_.find(session_id);
  if (session_id.empty() || it == sessions_.end()) {
    return HttpResponse::Forbidden("no session");
  }
  SessionState& session = it->second;
  auto fields = ParseFormUrlEncoded(request.body);
  for (const char* field : {"fullname", "street", "city", "state", "zip", "phone"}) {
    auto field_it = fields.find(field);
    if (field_it == fields.end() || field_it->second.empty()) {
      return HttpResponse::Ok(
          "text/html",
          PageShell("Checkout",
                    StrFormat("<h1 id=\"formerror\">Missing field: %s</h1>"
                              "<p><a href=\"/checkout\">back</a></p>",
                              field)));
    }
    session.shipping[field] = field_it->second;
  }
  session.checked_out = true;
  std::string body = StrFormat(
      "<h1 id=\"confirm\">Order placed</h1><p>%zu item(s) will ship to "
      "<span id=\"shipto\">%s, %s, %s %s</span>.</p>",
      session.cart.size(), HtmlEscape(session.shipping["street"]).c_str(),
      HtmlEscape(session.shipping["city"]).c_str(),
      HtmlEscape(session.shipping["state"]).c_str(),
      HtmlEscape(session.shipping["zip"]).c_str());
  return HttpResponse::Ok("text/html", PageShell("Order placed", body));
}

}  // namespace rcb
