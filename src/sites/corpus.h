// The 20-site evaluation corpus (Table 1 of the paper).
//
// The paper co-browses the homepages of 20 Alexa-top-50 websites; Table 1
// records each homepage's HTML size. Live 2009 pages are unavailable, so we
// regenerate each homepage synthetically: the HTML document is built to the
// exact Table 1 byte size with a realistic element mix (head children,
// styles, scripts, images, links, a form), and each site gets supplementary
// objects, a server latency reflecting rough geography (e.g. yahoo.co.jp,
// mail.ru, and free.fr are far), and a serving bandwidth. Content is
// deterministic per site seed.
#ifndef SRC_SITES_CORPUS_H_
#define SRC_SITES_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sites/site_server.h"
#include "src/util/sim_time.h"

namespace rcb {

struct SiteSpec {
  int index;               // 1-based position in Table 1
  std::string name;        // "yahoo.com" — as printed in the table
  std::string host;        // network host, "www.yahoo.com"
  double page_kb;          // homepage HTML size from Table 1
  int object_count;        // supplementary objects on the homepage
  double object_total_kb;  // combined size of those objects
  Duration server_latency; // one-way user<->server propagation delay
  int64_t server_bps;      // origin serving bandwidth
  // 2009-calibrated origin behaviour: time the origin spends generating the
  // homepage HTML (dynamic front pages were slow) and per-object time to
  // first byte for static assets. Calibrated so the WAN environment
  // reproduces the M1/M2 relationship of Fig. 7 (see DESIGN.md).
  Duration page_delay;
  Duration object_delay;
};

// The Table 1 corpus, in table order.
const std::vector<SiteSpec>& Table1Sites();

// Looks up a site by its printed name; nullptr if unknown.
const SiteSpec* FindSite(const std::string& name);

// A fully generated homepage.
struct GeneratedObject {
  std::string path;          // "/static/img3.png"
  std::string content_type;
  std::string body;
};
struct GeneratedSite {
  std::string html;
  std::vector<GeneratedObject> objects;
};

// Deterministically generates the homepage + objects for `spec`. The HTML is
// padded to within a few bytes of spec.page_kb.
GeneratedSite GenerateHomepage(const SiteSpec& spec);

// Registers spec.host in the network is the caller's job (see
// net/profiles.h); this creates the server and installs the generated
// homepage and objects on it.
std::unique_ptr<SiteServer> InstallSite(EventLoop* loop, Network* network,
                                        const SiteSpec& spec);

}  // namespace rcb

#endif  // SRC_SITES_CORPUS_H_
