#include "src/sites/corpus.h"

#include <cassert>

#include "src/util/rand.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

constexpr int64_t kMbps = 1'000'000;

std::vector<SiteSpec> BuildTable1() {
  // index, name, host, page_kb (Table 1), object_count, object_total_kb,
  // one-way latency ms, server bandwidth.
  // Object weights approximate 2009-era page compositions; latencies follow
  // rough geography from a US campus (yahoo.co.jp / mail.ru / free.fr far).
  struct Row {
    int index;
    const char* name;
    const char* host;
    double page_kb;
    int objects;
    double object_kb;
    int latency_ms;
    int64_t bps;
    int page_delay_ms;    // homepage generation time at the origin
    int object_delay_ms;  // per-object time to first byte
  };
  // page_delay reflects how slow the big 2009 front pages were to generate
  // and deliver their first byte from a home connection; the values are
  // calibrated so the WAN M1/M2 relationship of Fig. 7 reproduces (17/20
  // sites sync faster through RCB than a direct download, the three largest
  // pages — yahoo, amazon, nytimes — being the exceptions).
  static const Row kRows[] = {
      {1, "yahoo.com", "www.yahoo.com", 130.3, 28, 147.0, 24, 10 * kMbps, 2200, 180},
      {2, "google.com", "www.google.com", 6.8, 4, 36.0, 14, 12 * kMbps, 500, 120},
      {3, "youtube.com", "www.youtube.com", 69.2, 26, 92.0, 18, 10 * kMbps, 2400, 160},
      {4, "live.com", "www.live.com", 20.9, 8, 49.0, 28, 8 * kMbps, 1000, 160},
      {5, "msn.com", "www.msn.com", 49.6, 22, 75.0, 26, 8 * kMbps, 1800, 170},
      {6, "myspace.com", "www.myspace.com", 53.2, 24, 78.0, 34, 6 * kMbps, 1800, 190},
      {7, "wikipedia.org", "www.wikipedia.org", 51.7, 14, 77.0, 38, 7 * kMbps, 1700, 170},
      {8, "facebook.com", "www.facebook.com", 23.2, 10, 51.0, 24, 10 * kMbps, 900, 150},
      {9, "yahoo.co.jp", "www.yahoo.co.jp", 101.4, 30, 121.0, 88, 7 * kMbps, 2500, 200},
      {10, "ebay.com", "www.ebay.com", 50.5, 20, 75.0, 30, 8 * kMbps, 1700, 170},
      {11, "aol.com", "www.aol.com", 71.3, 24, 94.0, 33, 7 * kMbps, 2200, 180},
      {12, "mail.ru", "www.mail.ru", 83.8, 26, 105.0, 112, 5 * kMbps, 1600, 200},
      {13, "amazon.com", "www.amazon.com", 228.5, 40, 236.0, 29, 9 * kMbps, 3000, 170},
      {14, "cnn.com", "www.cnn.com", 109.4, 32, 128.0, 32, 8 * kMbps, 3300, 180},
      {15, "espn.go.com", "espn.go.com", 110.9, 30, 130.0, 31, 8 * kMbps, 3400, 180},
      {16, "free.fr", "www.free.fr", 70.0, 22, 93.0, 96, 6 * kMbps, 1300, 200},
      {17, "adobe.com", "www.adobe.com", 37.3, 14, 64.0, 23, 9 * kMbps, 1300, 160},
      {18, "apple.com", "www.apple.com", 10.0, 9, 39.0, 21, 10 * kMbps, 500, 140},
      {19, "about.com", "www.about.com", 35.8, 16, 62.0, 27, 8 * kMbps, 1200, 160},
      {20, "nytimes.com", "www.nytimes.com", 120.0, 34, 138.0, 28, 8 * kMbps, 2000, 180},
  };
  std::vector<SiteSpec> sites;
  sites.reserve(std::size(kRows));
  for (const Row& row : kRows) {
    SiteSpec spec;
    spec.index = row.index;
    spec.name = row.name;
    spec.host = row.host;
    spec.page_kb = row.page_kb;
    spec.object_count = row.objects;
    spec.object_total_kb = row.object_kb;
    spec.server_latency = Duration::Millis(row.latency_ms);
    spec.server_bps = row.bps;
    spec.page_delay = Duration::Millis(row.page_delay_ms);
    spec.object_delay = Duration::Millis(row.object_delay_ms);
    sites.push_back(std::move(spec));
  }
  return sites;
}

// Deterministic filler prose.
const char* const kWords[] = {
    "news",    "world",   "today",   "video",  "search",  "home",   "online",
    "service", "free",    "sign",    "account","market",  "sports", "weather",
    "travel",  "music",   "photo",   "share",  "friend",  "update", "local",
    "mobile",  "health",  "money",   "games",  "movies",  "style",  "tech",
    "science", "business","politics","culture","review",  "offer",  "deal",
    "shop",    "member",  "profile", "message","contact"};

std::string FillerSentence(Rng* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += kWords[rng->NextBelow(std::size(kWords))];
  }
  out += '.';
  return out;
}

std::string FillerCss(Rng* rng, int rules) {
  std::string out;
  for (int i = 0; i < rules; ++i) {
    out += StrFormat(".c%d{margin:%dpx;padding:%dpx;color:#%06x}", i,
                     static_cast<int>(rng->NextBelow(20)),
                     static_cast<int>(rng->NextBelow(12)),
                     static_cast<unsigned>(rng->NextBelow(0xFFFFFF)));
  }
  return out;
}

// Pseudo-binary payload of exactly `bytes` bytes.
std::string ObjectPayload(Rng* rng, size_t bytes) {
  return rng->NextBytes(bytes);
}

uint64_t SeedFor(const SiteSpec& spec) {
  uint64_t seed = 0x5e55;
  for (char c : spec.host) {
    seed = seed * 131 + static_cast<unsigned char>(c);
  }
  return seed + static_cast<uint64_t>(spec.index);
}

}  // namespace

const std::vector<SiteSpec>& Table1Sites() {
  static const std::vector<SiteSpec>* sites = new std::vector<SiteSpec>(BuildTable1());
  return *sites;
}

const SiteSpec* FindSite(const std::string& name) {
  for (const SiteSpec& spec : Table1Sites()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

GeneratedSite GenerateHomepage(const SiteSpec& spec) {
  Rng rng(SeedFor(spec));
  GeneratedSite site;

  // --- Supplementary objects -------------------------------------------
  // Mix: 2 stylesheets, 2-3 scripts, the rest images. Sizes split around the
  // mean with +-50% jitter, then the last object absorbs the remainder.
  size_t object_budget = static_cast<size_t>(spec.object_total_kb * 1024.0);
  int stylesheets = spec.object_count >= 6 ? 2 : 1;
  int scripts = spec.object_count >= 10 ? 3 : 1;
  int images = spec.object_count - stylesheets - scripts;
  if (images < 0) {
    images = 0;
  }
  size_t mean = object_budget / static_cast<size_t>(spec.object_count);
  size_t used = 0;
  auto next_size = [&](bool last) {
    if (last) {
      return object_budget > used ? object_budget - used : size_t{128};
    }
    size_t lo = mean / 2 > 64 ? mean / 2 : 64;
    size_t size = lo + rng.NextBelow(mean);
    return size;
  };
  int emitted = 0;
  for (int i = 0; i < stylesheets; ++i, ++emitted) {
    GeneratedObject object;
    object.path = StrFormat("/static/style%d.css", i);
    object.content_type = "text/css";
    size_t size = next_size(emitted + 1 == spec.object_count);
    object.body = FillerCss(&rng, 8);
    if (object.body.size() < size) {
      object.body += FillerCss(&rng, static_cast<int>((size - object.body.size()) / 44 + 1));
    }
    object.body.resize(size, ' ');
    used += object.body.size();
    site.objects.push_back(std::move(object));
  }
  for (int i = 0; i < scripts; ++i, ++emitted) {
    GeneratedObject object;
    object.path = StrFormat("/static/app%d.js", i);
    object.content_type = "application/javascript";
    size_t size = next_size(emitted + 1 == spec.object_count);
    object.body = StrFormat("/* %s */ function f%d(){return %d;}",
                            spec.name.c_str(), i,
                            static_cast<int>(rng.NextBelow(1000)));
    object.body.resize(size, ';');
    used += object.body.size();
    site.objects.push_back(std::move(object));
  }
  for (int i = 0; i < images; ++i, ++emitted) {
    GeneratedObject object;
    object.path = StrFormat("/static/img%d.png", i);
    object.content_type = "image/png";
    size_t size = next_size(emitted + 1 == spec.object_count);
    object.body = ObjectPayload(&rng, size);
    used += object.body.size();
    site.objects.push_back(std::move(object));
  }

  // --- HTML document -----------------------------------------------------
  size_t html_target = static_cast<size_t>(spec.page_kb * 1024.0);
  std::string head;
  head += StrFormat("<title>%s - homepage</title>", spec.name.c_str());
  head += "<meta http-equiv=\"content-type\" content=\"text/html; charset=utf-8\">";
  head += StrFormat("<meta name=\"description\" content=\"%s front page\">",
                    spec.name.c_str());
  for (int i = 0; i < stylesheets; ++i) {
    head += StrFormat("<link rel=\"stylesheet\" href=\"/static/style%d.css\">", i);
  }
  head += "<style>";
  head += FillerCss(&rng, 12);
  head += "</style>";
  head += "<script>var page={loaded:false};function init(){page.loaded=true;}</script>";

  std::string body;
  body += "<div id=\"hdr\"><h1>";
  body += spec.name;
  body += "</h1><ul id=\"nav\">";
  for (int i = 0; i < 8; ++i) {
    body += StrFormat("<li><a href=\"/section%d\">%s</a></li>", i,
                      kWords[rng.NextBelow(std::size(kWords))]);
  }
  body += "</ul></div>";
  body += "<form id=\"search\" action=\"/search\" method=\"get\">"
          "<input type=\"text\" name=\"q\" value=\"\">"
          "<input type=\"submit\" name=\"go\" value=\"Search\"></form>";

  // Interleave images into content sections, round-robin.
  int image_index = 0;
  int section = 0;
  auto add_section = [&] {
    body += StrFormat("<div class=\"c%d\" id=\"sec%d\"><h2>%s</h2>", section % 12,
                      section, kWords[rng.NextBelow(std::size(kWords))]);
    body += "<p>";
    body += FillerSentence(&rng, 18);
    body += ' ';
    body += FillerSentence(&rng, 14);
    body += "</p>";
    if (image_index < images) {
      body += StrFormat("<img src=\"/static/img%d.png\" alt=\"im%d\">",
                        image_index, image_index);
      ++image_index;
    }
    body += StrFormat("<p><a href=\"/story/%d\">%s</a> %s</p>", section,
                      kWords[rng.NextBelow(std::size(kWords))],
                      FillerSentence(&rng, 10).c_str());
    body += "</div>";
    ++section;
  };

  // Assemble until the target size is (nearly) reached, then pad exactly.
  auto assemble = [&](const std::string& head_html, const std::string& body_html,
                      const std::string& scripts_html) {
    std::string out = "<!DOCTYPE html><html><head>";
    out += head_html;
    out += "</head><body onload=\"init()\">";
    out += body_html;
    out += scripts_html;
    out += "</body></html>";
    return out;
  };
  std::string scripts_html;
  for (int i = 0; i < scripts; ++i) {
    scripts_html += StrFormat("<script src=\"/static/app%d.js\"></script>", i);
  }

  while (assemble(head, body, scripts_html).size() + 400 < html_target) {
    add_section();
    if (image_index >= images && section > 400) {
      break;  // degenerate target guard
    }
  }
  // Make sure every image is referenced even on tiny pages.
  while (image_index < images) {
    body += StrFormat("<img src=\"/static/img%d.png\" alt=\"im%d\">", image_index,
                      image_index);
    ++image_index;
  }
  std::string html = assemble(head, body, scripts_html);
  if (html.size() < html_target) {
    // Exact-size pad via a comment before </body></html>.
    size_t pad = html_target - html.size();
    std::string filler = pad > 9 ? std::string(pad - 9, 'x') : std::string();
    std::string comment = "<!--" + filler + "-->";
    size_t insert_at = html.rfind("</body>");
    html.insert(insert_at, comment);
  }
  site.html = std::move(html);
  return site;
}

std::unique_ptr<SiteServer> InstallSite(EventLoop* loop, Network* network,
                                        const SiteSpec& spec) {
  GeneratedSite generated = GenerateHomepage(spec);
  auto server = std::make_unique<SiteServer>(loop, network, spec.host);
  server->set_processing_delay(spec.object_delay);
  server->SetPathDelay("/", spec.page_delay);
  server->ServeStatic("/", "text/html", std::move(generated.html));
  for (auto& object : generated.objects) {
    server->ServeStatic(object.path, object.content_type, std::move(object.body));
  }
  // Section/story links resolve to small secondary pages so click-through
  // navigation works during co-browsing sessions.
  server->SetDefaultHandler([name = spec.name](const HttpRequest& request) {
    std::string page = StrFormat(
        "<html><head><title>%s%s</title></head><body><h1>%s</h1>"
        "<p>secondary page</p><p><a href=\"/\">back</a></p></body></html>",
        name.c_str(), request.Path().c_str(), request.Path().c_str());
    return HttpResponse::Ok("text/html", page);
  });
  return server;
}

}  // namespace rcb
