// HMAC-SHA256 (RFC 2104) and constant-time comparison.
//
// RCB-Agent authenticates every Ajax request by recomputing the HMAC over the
// request (minus the hmac parameter itself) with the shared session key and
// comparing it against the HMAC embedded in the request-URI (§3.4).
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include <string>
#include <string_view>

namespace rcb {

// Raw 32-byte MAC.
std::string HmacSha256(std::string_view key, std::string_view message);

// Lowercase-hex MAC, the form carried in request-URIs.
std::string HmacSha256Hex(std::string_view key, std::string_view message);

// Timing-safe equality: always touches every byte of both inputs.
bool ConstantTimeEquals(std::string_view a, std::string_view b);

}  // namespace rcb

#endif  // SRC_CRYPTO_HMAC_H_
