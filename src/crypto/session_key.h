// Session-key generation for co-browsing sessions.
//
// The paper (§3.4) generates a session-specific one-time secret on the host
// browser and shares it out of band (phone, IM). We model the key as a short
// human-typable token: enough entropy for a one-time session secret while
// staying realistic for the "type it into a password field" flow.
#ifndef SRC_CRYPTO_SESSION_KEY_H_
#define SRC_CRYPTO_SESSION_KEY_H_

#include <string>

#include "src/util/rand.h"

namespace rcb {

class SessionKeyGenerator {
 public:
  explicit SessionKeyGenerator(uint64_t seed) : rng_(seed) {}

  // A 20-char alphanumeric one-time key (~103 bits of entropy).
  std::string Generate();

  // Keys shorter than this are rejected by RcbAgent configuration.
  static constexpr size_t kMinKeyLength = 8;

 private:
  Rng rng_;
};

}  // namespace rcb

#endif  // SRC_CRYPTO_SESSION_KEY_H_
