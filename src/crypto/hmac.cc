#include "src/crypto/hmac.h"

#include "src/crypto/sha256.h"
#include "src/util/base64.h"

namespace rcb {

std::string HmacSha256(std::string_view key, std::string_view message) {
  std::string key_block(Sha256::kBlockSize, '\0');
  if (key.size() > Sha256::kBlockSize) {
    std::string hashed = Sha256::Digest(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::string inner_pad(Sha256::kBlockSize, '\0');
  std::string outer_pad(Sha256::kBlockSize, '\0');
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    inner_pad[i] = static_cast<char>(key_block[i] ^ 0x36);
    outer_pad[i] = static_cast<char>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.Update(inner_pad);
  inner.Update(message);
  auto inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(outer_pad);
  outer.Update(std::string_view(reinterpret_cast<const char*>(inner_digest.data()),
                                inner_digest.size()));
  auto digest = outer.Finish();
  return std::string(reinterpret_cast<const char*>(digest.data()), digest.size());
}

std::string HmacSha256Hex(std::string_view key, std::string_view message) {
  return HexEncode(HmacSha256(key, message));
}

bool ConstantTimeEquals(std::string_view a, std::string_view b) {
  // Fold the length difference into the accumulator so equal-length prefixes
  // of different-length strings do not compare equal, while still touching
  // every byte.
  unsigned char acc = static_cast<unsigned char>(a.size() ^ b.size());
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    acc |= static_cast<unsigned char>(a[i] ^ b[i]);
  }
  for (size_t i = n; i < a.size(); ++i) {
    acc |= static_cast<unsigned char>(a[i]);
  }
  for (size_t i = n; i < b.size(); ++i) {
    acc |= static_cast<unsigned char>(b[i]);
  }
  return acc == 0;
}

}  // namespace rcb
