// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The paper's request authentication (§3.4) uses keyed-hash MACs computed by
// a JavaScript crypto library; we provide the equivalent primitive here.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace rcb {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  // Streaming interface.
  void Update(std::string_view data);
  std::array<uint8_t, kDigestSize> Finish();

  // One-shot digest as raw bytes.
  static std::string Digest(std::string_view data);
  // One-shot digest as lowercase hex.
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);
  // Feeds padding bytes without advancing total_len_.
  void Update_Internal(const uint8_t* data, size_t len);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  bool finished_ = false;
};

}  // namespace rcb

#endif  // SRC_CRYPTO_SHA256_H_
