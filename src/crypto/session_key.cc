#include "src/crypto/session_key.h"

namespace rcb {

std::string SessionKeyGenerator::Generate() { return rng_.NextToken(20); }

}  // namespace rcb
