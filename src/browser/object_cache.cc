#include "src/browser/object_cache.h"

#include "src/util/strings.h"

namespace rcb {

std::string ObjectCache::Put(const Url& url, std::string_view content_type,
                             std::string_view body) {
  std::string canonical = url.ToString();
  auto it = by_url_.find(canonical);
  if (it != by_url_.end()) {
    total_bytes_ -= it->second.body.size();
    it->second.content_type = std::string(content_type);
    it->second.body = std::string(body);
    total_bytes_ += body.size();
    return it->second.cache_key;
  }
  CacheEntry entry;
  entry.cache_key = StrFormat("ck-%llu", static_cast<unsigned long long>(next_key_++));
  entry.url = canonical;
  entry.content_type = std::string(content_type);
  entry.body = std::string(body);
  total_bytes_ += entry.body.size();
  key_to_url_[entry.cache_key] = canonical;
  auto [inserted, ok] = by_url_.emplace(canonical, std::move(entry));
  (void)ok;
  return inserted->second.cache_key;
}

const CacheEntry* ObjectCache::Lookup(const Url& url) {
  auto it = by_url_.find(url.ToString());
  if (it == by_url_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

const CacheEntry* ObjectCache::LookupByKey(std::string_view cache_key) {
  auto it = key_to_url_.find(std::string(cache_key));
  if (it == key_to_url_.end()) {
    ++misses_;
    return nullptr;
  }
  auto jt = by_url_.find(it->second);
  if (jt == by_url_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &jt->second;
}

bool ObjectCache::Contains(const Url& url) const {
  return by_url_.contains(url.ToString());
}

void ObjectCache::Clear() {
  by_url_.clear();
  key_to_url_.clear();
  total_bytes_ = 0;
}

}  // namespace rcb
