#include "src/browser/object_cache.h"

#include "src/util/strings.h"

namespace rcb {

void ObjectCache::Touch(Slot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
}

void ObjectCache::EnforceBudget(const std::string& keep) {
  if (byte_budget_ == 0) {
    return;
  }
  while (total_bytes_ > byte_budget_ && !lru_.empty()) {
    const std::string& victim_url = lru_.back();
    if (victim_url == keep) {
      // The protected entry reached the tail; nothing older left to evict.
      break;
    }
    auto it = by_url_.find(victim_url);
    total_bytes_ -= it->second.entry.body.size();
    evicted_bytes_ += it->second.entry.body.size();
    ++evictions_;
    ++change_epoch_;
    key_to_url_.erase(it->second.entry.cache_key);
    by_url_.erase(it);
    lru_.pop_back();
  }
}

std::string ObjectCache::Put(const Url& url, std::string_view content_type,
                             std::string_view body) {
  std::string canonical = url.ToString();
  ++change_epoch_;
  auto it = by_url_.find(canonical);
  if (it != by_url_.end()) {
    total_bytes_ -= it->second.entry.body.size();
    it->second.entry.content_type = std::string(content_type);
    it->second.entry.body = std::string(body);
    total_bytes_ += body.size();
    Touch(it->second);
    EnforceBudget(canonical);
    return it->second.entry.cache_key;
  }
  Slot slot;
  slot.entry.cache_key =
      StrFormat("ck-%llu", static_cast<unsigned long long>(next_key_++));
  slot.entry.url = canonical;
  slot.entry.content_type = std::string(content_type);
  slot.entry.body = std::string(body);
  total_bytes_ += slot.entry.body.size();
  key_to_url_[slot.entry.cache_key] = canonical;
  lru_.push_front(canonical);
  slot.lru_pos = lru_.begin();
  auto [inserted, ok] = by_url_.emplace(canonical, std::move(slot));
  (void)ok;
  EnforceBudget(canonical);
  return inserted->second.entry.cache_key;
}

const CacheEntry* ObjectCache::Lookup(const Url& url) {
  auto it = by_url_.find(url.ToString());
  if (it == by_url_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  Touch(it->second);
  return &it->second.entry;
}

const CacheEntry* ObjectCache::LookupByKey(std::string_view cache_key) {
  auto it = key_to_url_.find(std::string(cache_key));
  if (it == key_to_url_.end()) {
    ++misses_;
    return nullptr;
  }
  auto jt = by_url_.find(it->second);
  if (jt == by_url_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  Touch(jt->second);
  return &jt->second.entry;
}

bool ObjectCache::Contains(const Url& url) const {
  return by_url_.contains(url.ToString());
}

void ObjectCache::set_byte_budget(uint64_t budget) {
  byte_budget_ = budget;
  EnforceBudget(std::string());
}

void ObjectCache::Clear() {
  by_url_.clear();
  key_to_url_.clear();
  lru_.clear();
  total_bytes_ = 0;
  ++change_epoch_;
}

}  // namespace rcb
