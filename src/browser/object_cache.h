// Browser object cache — the stand-in for Mozilla's cache service.
//
// RCB-Agent's cache mode (Fig. 2 "object request" path) keeps a mapping
// table from request-URIs to cache keys and serves cached supplementary
// objects (images, CSS, scripts) directly to participant browsers. This
// cache exposes exactly that interface: entries are keyed by URL, carry an
// opaque cache key, and can be looked up by either.
//
// An optional byte budget bounds the cache: when set, inserts that push
// total_bytes past the budget evict least-recently-used entries (Lookup,
// LookupByKey, and Put all count as use) until the cache fits again. The
// newest entry is never evicted, even when it alone exceeds the budget.
#ifndef SRC_BROWSER_OBJECT_CACHE_H_
#define SRC_BROWSER_OBJECT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <string_view>

#include "src/http/url.h"
#include "src/util/status.h"

namespace rcb {

struct CacheEntry {
  std::string cache_key;     // opaque key, stable for the entry's lifetime
  std::string url;           // canonical absolute URL
  std::string content_type;  // e.g. "image/png"
  std::string body;
};

class ObjectCache {
 public:
  ObjectCache() = default;

  // Inserts or replaces the entry for `url`; returns its cache key.
  // May evict LRU entries when a byte budget is configured.
  std::string Put(const Url& url, std::string_view content_type,
                  std::string_view body);

  // Lookup by canonical URL. nullptr on miss. Counts hit/miss stats and
  // refreshes the entry's LRU position.
  const CacheEntry* Lookup(const Url& url);
  // Lookup by cache key (the agent's mapping-table path).
  const CacheEntry* LookupByKey(std::string_view cache_key);

  bool Contains(const Url& url) const;

  void Clear();
  size_t size() const { return by_url_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }

  // 0 (default) disables eviction. Shrinking the budget evicts immediately.
  void set_byte_budget(uint64_t budget);
  uint64_t byte_budget() const { return byte_budget_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t evicted_bytes() const { return evicted_bytes_; }

  // Bumped whenever cache *contents* change (Put, eviction, Clear) — not by
  // lookups, which only reorder the LRU list. The serialization cache folds
  // this into its config fingerprint: cached rewritten spans embed
  // /obj/<key> URLs, so they are only reusable while the mapping table is
  // unchanged.
  uint64_t change_epoch() const { return change_epoch_; }

 private:
  struct Slot {
    CacheEntry entry;
    std::list<std::string>::iterator lru_pos;  // position in lru_ (MRU front)
  };

  void Touch(Slot& slot);
  // Evicts from the LRU tail until within budget; `keep` (if non-empty) names
  // a URL that must survive.
  void EnforceBudget(const std::string& keep);

  std::map<std::string, Slot> by_url_;
  std::map<std::string, std::string> key_to_url_;
  std::list<std::string> lru_;  // canonical URLs, most recently used first
  uint64_t byte_budget_ = 0;
  uint64_t next_key_ = 1;
  uint64_t total_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t evicted_bytes_ = 0;
  uint64_t change_epoch_ = 0;
};

}  // namespace rcb

#endif  // SRC_BROWSER_OBJECT_CACHE_H_
