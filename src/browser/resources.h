// Supplementary-object discovery.
//
// A webpage's HTML document references stylesheets, images, scripts, and
// frames; to render the same page a participant browser must fetch them all
// (§3.1 step 7/8). This helper walks a document and returns the resolved
// absolute URL of every such reference, in document order, deduplicated.
#ifndef SRC_BROWSER_RESOURCES_H_
#define SRC_BROWSER_RESOURCES_H_

#include <string>
#include <vector>

#include "src/html/dom.h"
#include "src/http/url.h"

namespace rcb {

struct ResourceRef {
  Url url;
  std::string kind;  // "image" | "stylesheet" | "script" | "frame"
  Element* element = nullptr;
};

// Collects supplementary-object references from `document`, resolving
// relative URLs against `base`. Unparsable URLs are skipped.
std::vector<ResourceRef> CollectResources(Document* document, const Url& base);

// True if `element` carries a URL-valued attribute RCB must rewrite, and
// which attribute that is ("src", "href", "action", "background").
// rel=stylesheet links, images, scripts, frames, forms, and body background
// qualify; anchors are navigation (not supplementary objects) but their href
// still needs absolutization, so they are included with attr "href".
bool UrlAttributeFor(const Element& element, std::string* attr_name);

// Resource kind ("image" | "stylesheet" | "script" | "frame") for elements
// that trigger a supplementary download, or "" for navigation-only URLs
// (anchors, form actions). Cache-mode URL rewriting applies only to
// downloadable kinds.
std::string SupplementaryKindFor(const Element& element);

}  // namespace rcb

#endif  // SRC_BROWSER_RESOURCES_H_
