// Simulated Web browser.
//
// This is the substitute for Firefox in the paper's artifact: it loads pages
// over the simulated network, parses them into a DOM, fetches supplementary
// objects through an object cache, maintains cookies per origin, records
// every resource download (the nsIObserverService analogue RCB-Agent relies
// on for URL rewriting), and exposes the user-gesture and scripted-mutation
// hooks that RCB instruments.
//
// All I/O is asynchronous on the shared EventLoop; callbacks fire in
// simulated time.
#ifndef SRC_BROWSER_BROWSER_H_
#define SRC_BROWSER_BROWSER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/browser/object_cache.h"
#include "src/browser/resources.h"
#include "src/html/dom.h"
#include "src/html/parser.h"
#include "src/http/cookie.h"
#include "src/http/http_parser.h"
#include "src/http/message.h"
#include "src/http/url.h"
#include "src/net/network.h"
#include "src/util/status.h"

namespace rcb {

// Outcome of a single resource fetch.
struct FetchResult {
  Status status;          // transport-level outcome
  HttpResponse response;  // valid when status.ok()
  Url final_url;          // after redirects
  bool from_cache = false;
  Duration elapsed;       // request issued -> response complete
};
using FetchCallback = std::function<void(FetchResult)>;

// Timing breakdown of a completed page load. html_time corresponds to the
// paper's M1 (document load) and objects_time to M3 (supplementary objects)
// when measured on a direct-to-origin load.
struct PageLoadStats {
  Duration html_time;
  Duration objects_time;
  size_t object_count = 0;
  size_t objects_from_cache = 0;
  uint64_t html_bytes = 0;
  uint64_t object_bytes = 0;
};
using NavigateCallback = std::function<void(const Status&, const PageLoadStats&)>;

class Browser {
 public:
  // `machine` must be a host registered in `network`.
  Browser(EventLoop* loop, Network* network, std::string machine);
  ~Browser();
  Browser(const Browser&) = delete;
  Browser& operator=(const Browser&) = delete;

  // -- Navigation ----------------------------------------------------------
  // Loads `url` as the current page: fetches the HTML document, parses it,
  // then fetches all supplementary objects (through the cache when enabled).
  // Follows up to 5 redirects. The callback fires when the page and all its
  // objects are loaded.
  void Navigate(const Url& url, NavigateCallback callback);

  // -- Raw fetches ---------------------------------------------------------
  // Issues a request on the per-origin persistent connection. Used by page
  // loads, by Ajax (XMLHttpRequest equivalent), and by form submission.
  void Fetch(HttpMethod method, const Url& url, std::string body,
             std::string content_type, FetchCallback callback);

  // GET that consults the object cache first; on miss, fetches and caches.
  void FetchCached(const Url& url, FetchCallback callback);

  // Tears down every connection to `url`'s origin and fails its in-flight
  // and queued fetches with kAborted. Used by recovery paths that must stop
  // waiting on a wedged link before re-handshaking.
  void AbortOriginConnections(const Url& url);

  // -- Current page --------------------------------------------------------
  Document* document() { return document_.get(); }
  const Url& current_url() const { return current_url_; }
  bool has_page() const { return document_ != nullptr; }
  const PageLoadStats& last_load_stats() const { return last_load_stats_; }

  // Resource downloads recorded during the current page's load, in request
  // order with absolute URLs — what RCB-Agent's observer consumes (Fig. 3
  // step 2).
  const std::vector<ResourceRef>& recorded_resources() const {
    return recorded_resources_;
  }

  // -- Scripted DOM mutation -----------------------------------------------
  // Runs `mutator` against the live document and fires the change listener;
  // models JavaScript/Ajax updating the page (Google-Maps-style DHTML).
  void MutateDocument(const std::function<void(Document*)>& mutator);

  // Replaces the whole document without any network activity (used by
  // Ajax-Snippet applying a snapshot on a participant browser).
  void ReplaceDocument(std::unique_ptr<Document> document, const Url& url);

  // Fires after every completed navigation and scripted mutation.
  void SetDocumentChangeListener(std::function<void()> listener) {
    change_listener_ = std::move(listener);
  }

  // -- User gestures (host side) -------------------------------------------
  // Click an anchor: resolves its href against the page URL and navigates.
  Status ClickLink(Element* anchor, NavigateCallback callback);
  // Fill a named input/textarea/select in `form` with `value`.
  static Status FillField(Element* form, std::string_view name,
                          std::string_view value);
  // Submit a form: collects its fields, applies method/action, navigates.
  Status SubmitForm(Element* form, NavigateCallback callback);

  // -- State ---------------------------------------------------------------
  CookieJar& cookies() { return cookies_; }
  ObjectCache& cache() {
    return shared_cache_ != nullptr ? *shared_cache_ : cache_;
  }
  // Redirects every cache access to `shared` (not owned; must outlive this
  // browser). RcbHost points all session browsers at one host-wide cache so
  // supplementary objects fetched for one session serve every session.
  // nullptr restores the built-in per-browser cache.
  void UseSharedCache(ObjectCache* shared) { shared_cache_ = shared; }
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  bool cache_enabled() const { return cache_enabled_; }

  EventLoop* loop() { return loop_; }
  Network* network() { return network_; }
  const std::string& machine() const { return machine_; }

  // Per-origin connection limit, matching the HTTP/1.1 guidance the paper's
  // browser generation followed (RFC 2616 §8.1.4: two connections). Requests
  // beyond the limit queue; each connection carries one request at a time.
  static constexpr size_t kMaxConnectionsPerOrigin = 2;

 private:
  struct PendingFetch {
    FetchCallback callback;
    SimTime start;
    Url url;
    std::string wire;  // serialized request, kept until dispatched
  };
  struct Connection {
    NetEndpoint* endpoint = nullptr;
    HttpResponseParser parser;
    std::optional<PendingFetch> in_flight;
  };
  struct OriginPool {
    std::vector<std::unique_ptr<Connection>> connections;
    std::deque<PendingFetch> queue;
  };

  // Assigns queued requests to idle (or newly opened) connections.
  void DispatchQueued(const std::string& origin);
  void OnConnectionData(const std::string& origin, Connection* conn,
                        std::string_view data);
  void OnConnectionClosed(const std::string& origin, Connection* conn);
  void FetchFollowingRedirects(const Url& url, int redirects_left,
                               SimTime started, FetchCallback callback);
  void LoadObjects(std::shared_ptr<struct PageLoadContext> context);
  void NotifyChange();

  EventLoop* loop_;
  Network* network_;
  std::string machine_;

  std::map<std::string, OriginPool> pools_;  // keyed by origin string

  std::unique_ptr<Document> document_;
  Url current_url_;
  PageLoadStats last_load_stats_;
  std::vector<ResourceRef> recorded_resources_;

  CookieJar cookies_;
  ObjectCache cache_;
  ObjectCache* shared_cache_ = nullptr;  // overrides cache_ when non-null
  bool cache_enabled_ = true;

  std::function<void()> change_listener_;
  uint64_t navigation_epoch_ = 0;  // invalidates in-flight loads
};

}  // namespace rcb

#endif  // SRC_BROWSER_BROWSER_H_
