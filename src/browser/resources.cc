#include "src/browser/resources.h"

#include <set>

#include "src/util/strings.h"

namespace rcb {

bool UrlAttributeFor(const Element& element, std::string* attr_name) {
  const std::string& tag = element.tag_name();
  if (tag == "img" || tag == "script" || tag == "frame" || tag == "iframe" ||
      tag == "embed" || tag == "source") {
    *attr_name = "src";
    return element.HasAttribute("src");
  }
  if (tag == "input") {
    // Only image inputs reference a resource.
    if (EqualsIgnoreCase(element.AttrOr("type"), "image") &&
        element.HasAttribute("src")) {
      *attr_name = "src";
      return true;
    }
    return false;
  }
  if (tag == "link" || tag == "a" || tag == "area") {
    *attr_name = "href";
    return element.HasAttribute("href");
  }
  if (tag == "form") {
    *attr_name = "action";
    return element.HasAttribute("action");
  }
  if (tag == "body" || tag == "table" || tag == "td") {
    *attr_name = "background";
    return element.HasAttribute("background");
  }
  return false;
}

std::string SupplementaryKindFor(const Element& element) {
  const std::string& tag = element.tag_name();
  if (tag == "img" || tag == "embed" || tag == "source") {
    return "image";
  }
  if (tag == "input") {
    return "image";
  }
  if (tag == "script") {
    return "script";
  }
  if (tag == "frame" || tag == "iframe") {
    return "frame";
  }
  if (tag == "link") {
    std::string rel = AsciiToLower(element.AttrOr("rel"));
    if (rel == "stylesheet") {
      return "stylesheet";
    }
    if (rel == "icon" || rel == "shortcut icon") {
      return "image";
    }
    return "";
  }
  if (tag == "body" || tag == "table" || tag == "td") {
    return "image";  // background attribute
  }
  return "";
}

std::vector<ResourceRef> CollectResources(Document* document, const Url& base) {
  std::vector<ResourceRef> out;
  std::set<std::string> seen;
  document->ForEachElement([&](Element* element) {
    std::string attr;
    if (!UrlAttributeFor(*element, &attr)) {
      return true;
    }
    std::string kind = SupplementaryKindFor(*element);
    if (kind.empty()) {
      return true;  // navigation URL, not a supplementary object
    }
    std::string value = element->AttrOr(attr);
    if (value.empty() || StartsWith(value, "javascript:") ||
        StartsWith(value, "data:") || StartsWith(value, "#")) {
      return true;
    }
    auto resolved = base.Resolve(value);
    if (!resolved.ok()) {
      return true;
    }
    std::string canonical = resolved->ToString();
    if (seen.insert(canonical).second) {
      out.push_back(ResourceRef{std::move(*resolved), kind, element});
    }
    return true;
  });
  return out;
}

}  // namespace rcb
