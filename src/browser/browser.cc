#include "src/browser/browser.h"

#include <cassert>

#include "src/http/form.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rcb {

// Book-keeping for one in-flight page load.
struct PageLoadContext {
  Url url;
  SimTime nav_start;
  SimTime objects_start;
  PageLoadStats stats;
  size_t outstanding = 0;
  uint64_t epoch = 0;
  NavigateCallback callback;
};

Browser::Browser(EventLoop* loop, Network* network, std::string machine)
    : loop_(loop), network_(network), machine_(std::move(machine)) {
  assert(network_->HasHost(machine_) && "browser machine must be a network host");
}

Browser::~Browser() {
  for (auto& [origin, pool] : pools_) {
    for (auto& conn : pool.connections) {
      if (conn->endpoint != nullptr) {
        conn->endpoint->Close();
      }
    }
  }
}

void Browser::DispatchQueued(const std::string& origin) {
  auto it = pools_.find(origin);
  if (it == pools_.end()) {
    return;
  }
  OriginPool& pool = it->second;
  while (!pool.queue.empty()) {
    // Prefer an idle existing connection.
    Connection* idle = nullptr;
    for (auto& conn : pool.connections) {
      if (!conn->in_flight.has_value()) {
        idle = conn.get();
        break;
      }
    }
    if (idle == nullptr) {
      if (pool.connections.size() >= kMaxConnectionsPerOrigin) {
        return;  // all busy; requests stay queued
      }
      // Open a new connection for this origin.
      const Url& url = pool.queue.front().url;
      auto endpoint_or = network_->Connect(machine_, url.host(), url.port());
      if (!endpoint_or.ok()) {
        // Connection refused: fail the whole queue.
        std::deque<PendingFetch> failed = std::move(pool.queue);
        pool.queue.clear();
        Status error = endpoint_or.status();
        for (auto& pending : failed) {
          FetchResult result;
          result.status = error;
          result.final_url = pending.url;
          result.elapsed = loop_->now() - pending.start;
          pending.callback(std::move(result));
        }
        return;
      }
      auto conn_owned = std::make_unique<Connection>();
      conn_owned->endpoint = *endpoint_or;
      Connection* conn = conn_owned.get();
      conn->endpoint->SetDataHandler([this, origin, conn](std::string_view data) {
        OnConnectionData(origin, conn, data);
      });
      conn->endpoint->SetCloseHandler(
          [this, origin, conn] { OnConnectionClosed(origin, conn); });
      pool.connections.push_back(std::move(conn_owned));
      idle = conn;
    }
    PendingFetch pending = std::move(pool.queue.front());
    pool.queue.pop_front();
    std::string wire = std::move(pending.wire);
    idle->in_flight = std::move(pending);
    idle->endpoint->Send(std::move(wire));
  }
}

void Browser::OnConnectionData(const std::string& origin, Connection* conn,
                               std::string_view data) {
  auto result = conn->parser.Feed(data);
  if (!result.ok()) {
    RCB_LOG(kWarning) << machine_ << ": bad response from " << origin << ": "
                      << result.status();
    conn->endpoint->Close();
    OnConnectionClosed(origin, conn);
    return;
  }
  if (!result->has_value()) {
    return;  // need more bytes
  }
  if (!conn->in_flight.has_value()) {
    RCB_LOG(kWarning) << machine_ << ": unsolicited response from " << origin;
    return;
  }
  PendingFetch pending = std::move(*conn->in_flight);
  conn->in_flight.reset();

  HttpResponse response = std::move(**result);
  // Store cookies before handing the response to the caller.
  for (const auto& set_cookie : response.headers.GetAll("Set-Cookie")) {
    cookies_.ApplySetCookie(pending.url, set_cookie, loop_->now());
  }
  FetchResult fetch_result;
  fetch_result.status = Status::Ok();
  fetch_result.response = std::move(response);
  fetch_result.final_url = pending.url;
  fetch_result.elapsed = loop_->now() - pending.start;
  pending.callback(std::move(fetch_result));
  // The connection is idle again; hand it the next queued request (the
  // callback may have enqueued more work or torn the pool down).
  DispatchQueued(origin);
}

void Browser::OnConnectionClosed(const std::string& origin, Connection* conn) {
  auto it = pools_.find(origin);
  if (it == pools_.end()) {
    return;
  }
  OriginPool& pool = it->second;
  std::optional<PendingFetch> failed;
  bool found = false;
  for (size_t i = 0; i < pool.connections.size(); ++i) {
    if (pool.connections[i].get() == conn) {
      failed = std::move(conn->in_flight);
      pool.connections.erase(pool.connections.begin() + static_cast<ptrdiff_t>(i));
      found = true;
      break;
    }
  }
  if (!found) {
    return;  // already removed
  }
  if (failed.has_value()) {
    FetchResult result;
    result.status = UnavailableError("connection to " + origin + " closed");
    result.final_url = failed->url;
    result.elapsed = loop_->now() - failed->start;
    failed->callback(std::move(result));
  }
  DispatchQueued(origin);
}

void Browser::AbortOriginConnections(const Url& url) {
  std::string origin = url.scheme() + "://" + url.Authority();
  auto it = pools_.find(origin);
  if (it == pools_.end()) {
    return;
  }
  // Detach the pool first: closing endpoints must not re-enter
  // OnConnectionClosed and the failed callbacks may immediately Fetch again,
  // which deserves a fresh pool.
  OriginPool pool = std::move(it->second);
  pools_.erase(it);
  std::vector<PendingFetch> failed;
  for (auto& conn : pool.connections) {
    if (conn->in_flight.has_value()) {
      failed.push_back(std::move(*conn->in_flight));
      conn->in_flight.reset();
    }
    if (conn->endpoint != nullptr) {
      conn->endpoint->SetDataHandler(nullptr);
      conn->endpoint->SetCloseHandler(nullptr);
      conn->endpoint->Close();
    }
  }
  for (auto& pending : pool.queue) {
    failed.push_back(std::move(pending));
  }
  pool.queue.clear();
  for (auto& pending : failed) {
    FetchResult result;
    result.status = AbortedError("connection to " + origin + " aborted");
    result.final_url = pending.url;
    result.elapsed = loop_->now() - pending.start;
    pending.callback(std::move(result));
  }
}

void Browser::Fetch(HttpMethod method, const Url& url, std::string body,
                    std::string content_type, FetchCallback callback) {
  HttpRequest request;
  request.method = method;
  request.target = url.PathAndQuery();
  request.headers.Set("Host", url.Authority());
  request.headers.Set("User-Agent", "rcb-sim-browser/1.0");
  std::string cookie = cookies_.CookieHeaderFor(url, loop_->now());
  if (!cookie.empty()) {
    request.headers.Set("Cookie", cookie);
  }
  if (!content_type.empty()) {
    request.headers.Set("Content-Type", content_type);
  }
  request.body = std::move(body);

  std::string origin = url.scheme() + "://" + url.Authority();
  PendingFetch pending;
  pending.callback = std::move(callback);
  pending.start = loop_->now();
  pending.url = url;
  pending.wire = request.Serialize();
  pools_[origin].queue.push_back(std::move(pending));
  DispatchQueued(origin);
}

void Browser::FetchCached(const Url& url, FetchCallback callback) {
  if (cache_enabled_) {
    const CacheEntry* entry = cache().Lookup(url);
    if (entry != nullptr) {
      FetchResult result;
      result.status = Status::Ok();
      result.response = HttpResponse::Ok(entry->content_type, entry->body);
      result.final_url = url;
      result.from_cache = true;
      result.elapsed = Duration::Zero();
      loop_->Schedule(Duration::Zero(),
                      [callback = std::move(callback),
                       result = std::move(result)]() mutable {
                        callback(std::move(result));
                      });
      return;
    }
  }
  Fetch(HttpMethod::kGet, url, "", "",
        [this, url, callback = std::move(callback)](FetchResult result) {
          if (result.status.ok() && result.response.status_code == 200 &&
              cache_enabled_) {
            std::string content_type =
                result.response.headers.Get("Content-Type").value_or(
                    "application/octet-stream");
            cache().Put(url, content_type, result.response.body);
          }
          callback(std::move(result));
        });
}

void Browser::FetchFollowingRedirects(const Url& url, int redirects_left,
                                      SimTime started, FetchCallback callback) {
  Fetch(HttpMethod::kGet, url, "", "",
        [this, url, redirects_left, started,
         callback = std::move(callback)](FetchResult result) {
          if (result.status.ok() &&
              (result.response.status_code == 301 ||
               result.response.status_code == 302)) {
            auto location = result.response.headers.Get("Location");
            if (location.has_value() && redirects_left > 0) {
              auto next = url.Resolve(*location);
              if (next.ok()) {
                FetchFollowingRedirects(*next, redirects_left - 1, started,
                                        std::move(callback));
                return;
              }
            }
            result.status = InternalError("bad redirect from " + url.ToString());
          }
          result.elapsed = loop_->now() - started;
          callback(std::move(result));
        });
}

void Browser::Navigate(const Url& url, NavigateCallback callback) {
  uint64_t epoch = ++navigation_epoch_;
  auto context = std::make_shared<PageLoadContext>();
  context->url = url;
  context->nav_start = loop_->now();
  context->epoch = epoch;
  context->callback = std::move(callback);

  FetchFollowingRedirects(
      url, /*redirects_left=*/5, loop_->now(),
      [this, context](FetchResult result) {
        if (context->epoch != navigation_epoch_) {
          return;  // superseded by a newer navigation
        }
        if (!result.status.ok()) {
          context->callback(result.status, context->stats);
          return;
        }
        if (result.response.status_code != 200) {
          context->callback(
              InternalError(StrFormat("HTTP %d for %s",
                                      result.response.status_code,
                                      context->url.ToString().c_str())),
              context->stats);
          return;
        }
        context->stats.html_time = loop_->now() - context->nav_start;
        context->stats.html_bytes = result.response.body.size();
        document_ = ParseDocument(result.response.body);
        current_url_ = result.final_url;
        recorded_resources_.clear();
        context->objects_start = loop_->now();
        LoadObjects(context);
      });
}

void Browser::LoadObjects(std::shared_ptr<PageLoadContext> context) {
  std::vector<ResourceRef> resources =
      CollectResources(document_.get(), current_url_);
  context->outstanding = resources.size();
  context->stats.object_count = resources.size();

  auto finish = [this, context] {
    context->stats.objects_time = loop_->now() - context->objects_start;
    last_load_stats_ = context->stats;
    NotifyChange();
    context->callback(Status::Ok(), context->stats);
  };

  if (resources.empty()) {
    finish();
    return;
  }
  for (const ResourceRef& resource : resources) {
    recorded_resources_.push_back(resource);
    FetchCached(resource.url,
                [this, context, finish](FetchResult result) {
                  if (context->epoch != navigation_epoch_) {
                    return;
                  }
                  if (result.status.ok()) {
                    context->stats.object_bytes += result.response.body.size();
                  }
                  if (result.from_cache) {
                    ++context->stats.objects_from_cache;
                  }
                  if (--context->outstanding == 0) {
                    finish();
                  }
                });
  }
}

void Browser::MutateDocument(const std::function<void(Document*)>& mutator) {
  assert(document_ != nullptr);
  mutator(document_.get());
  NotifyChange();
}

void Browser::ReplaceDocument(std::unique_ptr<Document> document, const Url& url) {
  document_ = std::move(document);
  current_url_ = url;
  NotifyChange();
}

void Browser::NotifyChange() {
  if (change_listener_) {
    change_listener_();
  }
}

Status Browser::ClickLink(Element* anchor, NavigateCallback callback) {
  if (anchor == nullptr || anchor->tag_name() != "a") {
    return InvalidArgumentError("ClickLink target is not an anchor");
  }
  std::string href = anchor->AttrOr("href");
  if (href.empty()) {
    return FailedPreconditionError("anchor has no href");
  }
  RCB_ASSIGN_OR_RETURN(Url target, current_url_.Resolve(href));
  Navigate(target, std::move(callback));
  return Status::Ok();
}

Status Browser::FillField(Element* form, std::string_view name,
                          std::string_view value) {
  if (form == nullptr) {
    return InvalidArgumentError("null form");
  }
  Element* found = nullptr;
  form->ForEachElement([&](Element* element) {
    const std::string& tag = element->tag_name();
    if ((tag == "input" || tag == "textarea" || tag == "select") &&
        element->AttrOr("name") == name) {
      found = element;
      return false;
    }
    return true;
  });
  if (found == nullptr) {
    return NotFoundError("no form field named " + std::string(name));
  }
  if (found->tag_name() == "textarea") {
    found->RemoveAllChildren();
    found->AppendChild(MakeText(std::string(value)));
  } else {
    found->SetAttribute("value", value);
  }
  return Status::Ok();
}

Status Browser::SubmitForm(Element* form, NavigateCallback callback) {
  if (form == nullptr || form->tag_name() != "form") {
    return InvalidArgumentError("SubmitForm target is not a form");
  }
  // Collect named fields in document order (buttons excluded).
  std::vector<std::pair<std::string, std::string>> fields;
  form->ForEachElement([&](Element* element) {
    const std::string& tag = element->tag_name();
    std::string name = element->AttrOr("name");
    if (name.empty()) {
      return true;
    }
    if (tag == "input") {
      std::string type = AsciiToLower(element->AttrOr("type", "text"));
      if (type == "submit" || type == "button" || type == "image") {
        return true;
      }
      if ((type == "checkbox" || type == "radio") &&
          !element->HasAttribute("checked")) {
        return true;
      }
      fields.emplace_back(name, element->AttrOr("value"));
    } else if (tag == "textarea") {
      fields.emplace_back(name, element->TextContent());
    } else if (tag == "select") {
      std::string selected;
      element->ForEachElement([&](Element* option) {
        if (option->tag_name() == "option" &&
            (selected.empty() || option->HasAttribute("selected"))) {
          selected = option->AttrOr("value", option->TextContent());
        }
        return true;
      });
      fields.emplace_back(name, selected);
    }
    return true;
  });

  std::string action = form->AttrOr("action");
  RCB_ASSIGN_OR_RETURN(Url target,
                       current_url_.Resolve(action.empty() ? "" : action));
  std::string method = AsciiToLower(form->AttrOr("method", "get"));
  std::string encoded = EncodeFormUrlEncoded(fields);

  if (method == "post") {
    uint64_t epoch = ++navigation_epoch_;
    auto context = std::make_shared<PageLoadContext>();
    context->url = target;
    context->nav_start = loop_->now();
    context->epoch = epoch;
    context->callback = std::move(callback);
    Fetch(HttpMethod::kPost, target, encoded, "application/x-www-form-urlencoded",
          [this, context, target](FetchResult result) {
            if (context->epoch != navigation_epoch_) {
              return;
            }
            if (!result.status.ok()) {
              context->callback(result.status, context->stats);
              return;
            }
            // Follow a post-redirect-get if the server asks for it.
            if (result.response.status_code == 301 ||
                result.response.status_code == 302) {
              auto location = result.response.headers.Get("Location");
              if (location.has_value()) {
                auto next = target.Resolve(*location);
                if (next.ok()) {
                  // Delegate to Navigate; restore epoch ownership to it.
                  Navigate(*next, std::move(context->callback));
                  return;
                }
              }
            }
            if (result.response.status_code != 200) {
              context->callback(InternalError(StrFormat(
                                    "HTTP %d on form submit",
                                    result.response.status_code)),
                                context->stats);
              return;
            }
            context->stats.html_time = loop_->now() - context->nav_start;
            context->stats.html_bytes = result.response.body.size();
            document_ = ParseDocument(result.response.body);
            current_url_ = result.final_url;
            recorded_resources_.clear();
            context->objects_start = loop_->now();
            LoadObjects(context);
          });
    return Status::Ok();
  }

  // GET: encode fields into the query string.
  Url get_target = Url::Make(target.scheme(), target.host(), target.port(),
                             target.path(), encoded);
  Navigate(get_target, std::move(callback));
  return Status::Ok();
}

}  // namespace rcb
