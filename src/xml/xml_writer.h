// Streaming XML writer producing the "application/xml" payloads of Fig. 4.
//
// The writer is deliberately small: elements, attributes, text, and CDATA
// sections are all RCB needs. CDATA payloads are split on "]]>" per the XML
// spec so arbitrary escaped innerHTML can be carried.
#ifndef SRC_XML_XML_WRITER_H_
#define SRC_XML_XML_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rcb {

class XmlWriter {
 public:
  XmlWriter();

  // Emits the <?xml version='1.0' encoding='utf-8'?> declaration.
  void WriteDeclaration();

  void StartElement(std::string_view name);
  void WriteAttribute(std::string_view name, std::string_view value);
  void WriteText(std::string_view text);    // XML-escaped
  void WriteCdata(std::string_view data);   // raw, "]]>"-safe
  void EndElement();

  // Convenience: <name>text</name> / <name><![CDATA[data]]></name>.
  void WriteTextElement(std::string_view name, std::string_view text);
  void WriteCdataElement(std::string_view name, std::string_view data);

  // Finishes the document (all elements must be closed) and returns it.
  std::string TakeString();

  // Number of currently open elements.
  size_t depth() const { return open_.size(); }

 private:
  void CloseStartTagIfOpen();

  std::string out_;
  std::vector<std::string> open_;
  bool start_tag_open_ = false;
};

}  // namespace rcb

#endif  // SRC_XML_XML_WRITER_H_
