// Small DOM-style XML parser for the Fig. 4 response payloads.
//
// Ajax-Snippet receives an "application/xml" body (responseXML in the paper)
// and walks it as a tree: newContent -> docTime / docContent / userActions.
// This parser supports exactly the XML subset our writer emits: elements,
// attributes, text with the five standard entities, and CDATA sections.
// It rejects malformed input with a Status rather than guessing.
#ifndef SRC_XML_XML_PARSER_H_
#define SRC_XML_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace rcb {

struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;  // concatenated character data + CDATA, in document order
  std::vector<std::unique_ptr<XmlNode>> children;

  // First child with the given element name, or nullptr.
  const XmlNode* FindChild(std::string_view child_name) const;

  // All children with the given element name.
  std::vector<const XmlNode*> FindChildren(std::string_view child_name) const;

  // Attribute lookup; returns empty view if absent.
  std::string_view Attr(std::string_view attr_name) const;
};

// Parses a complete XML document, returning its root element.
StatusOr<std::unique_ptr<XmlNode>> ParseXml(std::string_view input);

}  // namespace rcb

#endif  // SRC_XML_XML_PARSER_H_
