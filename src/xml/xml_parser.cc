#include "src/xml/xml_parser.h"

#include <cctype>

#include "src/util/escape.h"
#include "src/util/strings.h"

namespace rcb {

const XmlNode* XmlNode::FindChild(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) {
      return child.get();
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::FindChildren(std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children) {
    if (child->name == child_name) {
      out.push_back(child.get());
    }
  }
  return out;
}

std::string_view XmlNode::Attr(std::string_view attr_name) const {
  for (const auto& [name, value] : attributes) {
    if (name == attr_name) {
      return value;
    }
  }
  return {};
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  StatusOr<std::unique_ptr<XmlNode>> Parse() {
    SkipProlog();
    RCB_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return InvalidArgumentError("trailing content after XML root element");
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Consume(std::string_view token) {
    if (input_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Consume("<?")) {
      size_t end = input_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
    }
    SkipWhitespace();
    // Skip comments between prolog and root.
    while (Consume("<!--")) {
      size_t end = input_.find("-->", pos_);
      pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
      SkipWhitespace();
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
           c == ':' || c == '.';
  }

  StatusOr<std::string> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgumentError(
          StrFormat("expected XML name at offset %zu", start));
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  Status ParseAttributes(XmlNode* node) {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) {
        return InvalidArgumentError("unterminated start tag");
      }
      if (Peek() == '>' || Peek() == '/') {
        return Status::Ok();
      }
      RCB_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWhitespace();
      if (!Consume("=")) {
        return InvalidArgumentError("attribute missing '='");
      }
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return InvalidArgumentError("attribute value not quoted");
      }
      char quote = Peek();
      ++pos_;
      size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unterminated attribute value");
      }
      node->attributes.emplace_back(std::move(name),
                                    HtmlUnescape(input_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }
  }

  StatusOr<std::unique_ptr<XmlNode>> ParseElement() {
    if (!Consume("<")) {
      return InvalidArgumentError("expected '<' to open element");
    }
    auto node = std::make_unique<XmlNode>();
    RCB_ASSIGN_OR_RETURN(node->name, ParseName());
    RCB_RETURN_IF_ERROR(ParseAttributes(node.get()));
    if (Consume("/>")) {
      return node;
    }
    if (!Consume(">")) {
      return InvalidArgumentError("malformed start tag for <" + node->name + ">");
    }
    // Content loop.
    while (true) {
      if (AtEnd()) {
        return InvalidArgumentError("unexpected end inside <" + node->name + ">");
      }
      if (Consume("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return InvalidArgumentError("unterminated CDATA section");
        }
        node->text.append(input_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (Consume("<!--")) {
        size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return InvalidArgumentError("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (input_.substr(pos_, 2) == "</") {
        pos_ += 2;
        RCB_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != node->name) {
          return InvalidArgumentError("mismatched close tag </" + close_name +
                                      "> for <" + node->name + ">");
        }
        SkipWhitespace();
        if (!Consume(">")) {
          return InvalidArgumentError("malformed close tag");
        }
        return node;
      }
      if (Peek() == '<') {
        RCB_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        node->children.push_back(std::move(child));
        continue;
      }
      // Character data until the next markup.
      size_t end = input_.find('<', pos_);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unexpected end in character data");
      }
      node->text.append(HtmlUnescape(input_.substr(pos_, end - pos_)));
      pos_ = end;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<XmlNode>> ParseXml(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace rcb
