#include "src/xml/xml_writer.h"

#include <cassert>

#include "src/util/escape.h"

namespace rcb {

XmlWriter::XmlWriter() { out_.reserve(1024); }

void XmlWriter::WriteDeclaration() {
  assert(out_.empty());
  out_.append("<?xml version='1.0' encoding='utf-8'?>");
}

void XmlWriter::CloseStartTagIfOpen() {
  if (start_tag_open_) {
    out_.push_back('>');
    start_tag_open_ = false;
  }
}

void XmlWriter::StartElement(std::string_view name) {
  CloseStartTagIfOpen();
  out_.push_back('<');
  out_.append(name);
  open_.emplace_back(name);
  start_tag_open_ = true;
}

void XmlWriter::WriteAttribute(std::string_view name, std::string_view value) {
  assert(start_tag_open_ && "attributes must precede element content");
  out_.push_back(' ');
  out_.append(name);
  out_.append("=\"");
  out_.append(HtmlEscape(value));
  out_.push_back('"');
}

void XmlWriter::WriteText(std::string_view text) {
  CloseStartTagIfOpen();
  out_.append(HtmlEscape(text));
}

void XmlWriter::WriteCdata(std::string_view data) {
  CloseStartTagIfOpen();
  out_.append("<![CDATA[");
  // A literal "]]>" inside CDATA must be split across two sections.
  size_t start = 0;
  while (true) {
    size_t pos = data.find("]]>", start);
    if (pos == std::string_view::npos) {
      out_.append(data.substr(start));
      break;
    }
    out_.append(data.substr(start, pos - start));
    out_.append("]]");
    out_.append("]]><![CDATA[");
    out_.push_back('>');
    start = pos + 3;
  }
  out_.append("]]>");
}

void XmlWriter::EndElement() {
  assert(!open_.empty());
  std::string name = std::move(open_.back());
  open_.pop_back();
  if (start_tag_open_) {
    out_.append("/>");
    start_tag_open_ = false;
  } else {
    out_.append("</");
    out_.append(name);
    out_.push_back('>');
  }
}

void XmlWriter::WriteTextElement(std::string_view name, std::string_view text) {
  StartElement(name);
  WriteText(text);
  EndElement();
}

void XmlWriter::WriteCdataElement(std::string_view name, std::string_view data) {
  StartElement(name);
  WriteCdata(data);
  EndElement();
}

std::string XmlWriter::TakeString() {
  assert(open_.empty() && "unclosed XML elements");
  return std::move(out_);
}

}  // namespace rcb
