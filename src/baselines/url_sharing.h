// URL-sharing co-browsing baseline (§1).
//
// The simplest "co-browsing": the host pastes the current URL into an IM and
// the participant opens it with their own browser. The paper's two failure
// arguments are (1) session-protected pages come out different because the
// participant has different cookies, and (2) dynamically-updated pages
// (Google-Maps-style Ajax) are not captured by the URL at all. This baseline
// reproduces both failure modes and measures the participant's full page
// load time for comparison against RCB's M2.
#ifndef SRC_BASELINES_URL_SHARING_H_
#define SRC_BASELINES_URL_SHARING_H_

#include "src/browser/browser.h"
#include "src/net/event_loop.h"

namespace rcb {

class UrlSharingCoBrowse {
 public:
  UrlSharingCoBrowse(EventLoop* loop, Browser* host, Browser* participant)
      : loop_(loop), host_(host), participant_(participant) {}

  struct ShareResult {
    Status participant_status;    // participant's own load outcome
    bool content_matches = false; // participant sees what the host sees
    Duration participant_load_time;  // full load (HTML + objects)
  };

  // Shares the host's current URL; the participant loads it independently.
  // Runs the loop until the participant load settles.
  ShareResult ShareCurrentUrl();

  // Whether the two browsers currently display equivalent documents
  // (serialized body comparison, ignoring RCB bookkeeping attributes).
  bool ContentMatches() const;

 private:
  EventLoop* loop_;
  Browser* host_;
  Browser* participant_;
};

}  // namespace rcb

#endif  // SRC_BASELINES_URL_SHARING_H_
