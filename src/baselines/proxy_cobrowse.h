// Proxy-based co-browsing baseline (§2, CWB/Cabri-style).
//
// A dedicated proxy host sits between the users and the Web. The session
// leader asks the proxy to navigate; the proxy fetches the page from the
// origin, stores an identical copy, and every member (leader included) polls
// the proxy for the current copy. This reproduces the architecture RCB
// argues against: it needs third-party infrastructure, adds an extra network
// hop to every page, and funnels all traffic through a box every user must
// trust. The class exposes sync-time and relayed-byte measurements so the
// baseline bench can quantify those costs against RCB.
#ifndef SRC_BASELINES_PROXY_COBROWSE_H_
#define SRC_BASELINES_PROXY_COBROWSE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/browser/browser.h"
#include "src/sites/site_server.h"

namespace rcb {

// The proxy service process.
class CoBrowseProxy {
 public:
  // `proxy_machine` must already be a network host.
  CoBrowseProxy(EventLoop* loop, Network* network, std::string proxy_machine,
                uint16_t port = 8080);

  Url ProxyUrl() const;
  uint64_t bytes_relayed() const { return bytes_relayed_; }
  uint64_t origin_fetches() const { return origin_fetches_; }
  int64_t version() const { return version_; }

 private:
  HttpResponse HandleNavigate(const HttpRequest& request);
  HttpResponse HandlePage(const HttpRequest& request);

  EventLoop* loop_;
  std::string machine_;
  uint16_t port_;
  // The proxy fetches origin pages with its own browser stack.
  std::unique_ptr<Browser> fetcher_;
  std::unique_ptr<SiteServer> server_;

  int64_t version_ = 0;
  std::string current_html_;
  std::string current_url_;
  bool fetch_in_flight_ = false;
  uint64_t bytes_relayed_ = 0;
  uint64_t origin_fetches_ = 0;
};

// A session member's client: polls the proxy and loads page copies from it.
class ProxyCoBrowseClient {
 public:
  ProxyCoBrowseClient(Browser* browser, Url proxy_url, Duration poll_interval);
  ~ProxyCoBrowseClient();

  void Start();
  void Stop();

  // Leader gesture: asks the proxy to navigate the session.
  void Navigate(const Url& target, std::function<void(Status)> done);

  int64_t version() const { return version_; }
  // Simulated time from poll request to the new page copy fully applied.
  Duration last_sync_time() const { return last_sync_time_; }
  uint64_t updates_received() const { return updates_received_; }

 private:
  void PollOnce();
  void SchedulePoll();

  Browser* browser_;
  Url proxy_url_;
  Duration interval_;
  bool running_ = false;
  uint64_t epoch_ = 0;
  uint64_t timer_ = 0;
  int64_t version_ = -1;
  Duration last_sync_time_;
  uint64_t updates_received_ = 0;
};

}  // namespace rcb

#endif  // SRC_BASELINES_PROXY_COBROWSE_H_
