#include "src/baselines/url_sharing.h"

#include "src/html/serializer.h"

namespace rcb {
namespace {

// Serialized body with volatile attributes removed, for display-equivalence
// comparison.
std::string NormalizedBody(Browser* browser) {
  Document* document = browser->document();
  if (document == nullptr) {
    return "";
  }
  Element* body = document->body();
  if (body == nullptr) {
    return "";
  }
  std::unique_ptr<Node> clone = body->Clone();
  clone->AsElement()->RemoveAttribute("data-rcb-id");
  clone->ForEachElement([](Element* element) {
    element->RemoveAttribute("data-rcb-id");
    element->RemoveAttribute("onclick");
    element->RemoveAttribute("onsubmit");
    element->RemoveAttribute("onchange");
    return true;
  });
  return SerializeNode(*clone);
}

}  // namespace

bool UrlSharingCoBrowse::ContentMatches() const {
  return NormalizedBody(host_) == NormalizedBody(participant_);
}

UrlSharingCoBrowse::ShareResult UrlSharingCoBrowse::ShareCurrentUrl() {
  ShareResult result;
  if (!host_->has_page()) {
    result.participant_status = FailedPreconditionError("host has no page");
    return result;
  }
  Url shared = host_->current_url();
  bool done = false;
  SimTime start = loop_->now();
  participant_->Navigate(shared, [&](const Status& status, const PageLoadStats&) {
    result.participant_status = status;
    result.participant_load_time = loop_->now() - start;
    done = true;
  });
  loop_->RunUntilCondition([&] { return done; });
  result.content_matches =
      result.participant_status.ok() && ContentMatches();
  return result;
}

}  // namespace rcb
