#include "src/baselines/proxy_cobrowse.h"

#include "src/browser/resources.h"
#include "src/html/parser.h"
#include "src/http/form.h"
#include "src/util/escape.h"
#include "src/html/serializer.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace rcb {

CoBrowseProxy::CoBrowseProxy(EventLoop* loop, Network* network,
                             std::string proxy_machine, uint16_t port)
    : loop_(loop), machine_(std::move(proxy_machine)), port_(port) {
  fetcher_ = std::make_unique<Browser>(loop_, network, machine_);
  server_ = std::make_unique<SiteServer>(loop_, network, machine_, port_);
  server_->Route("/navigate",
                 [this](const HttpRequest& r) { return HandleNavigate(r); });
  server_->Route("/page", [this](const HttpRequest& r) { return HandlePage(r); });
}

Url CoBrowseProxy::ProxyUrl() const {
  return Url::Make("http", machine_, port_, "/");
}

HttpResponse CoBrowseProxy::HandleNavigate(const HttpRequest& request) {
  auto params = ParseFormUrlEncoded(request.body);
  auto it = params.find("url");
  if (it == params.end()) {
    return HttpResponse::BadRequest("missing url");
  }
  auto target = Url::Parse(it->second);
  if (!target.ok()) {
    return HttpResponse::BadRequest(target.status().message());
  }
  if (fetch_in_flight_) {
    return HttpResponse::Ok("text/plain", "busy");
  }
  fetch_in_flight_ = true;
  ++origin_fetches_;
  fetcher_->Navigate(*target, [this, url = target->ToString()](
                                  const Status& status, const PageLoadStats&) {
    fetch_in_flight_ = false;
    if (!status.ok()) {
      RCB_LOG(kWarning) << "cobrowse-proxy: origin fetch failed: " << status;
      return;
    }
    // Store the rendered copy with absolutized resource URLs so members can
    // fetch objects from the origins directly.
    Document* document = fetcher_->document();
    std::unique_ptr<Document> clone = document->CloneDocument();
    Url base = fetcher_->current_url();
    clone->ForEachElement([&](Element* element) {
      std::string attr;
      if (UrlAttributeFor(*element, &attr)) {
        std::string value = element->AttrOr(attr);
        if (!value.empty() && !IsAbsoluteUrl(value) &&
            !StartsWith(value, "javascript:") && !StartsWith(value, "#")) {
          auto resolved = base.Resolve(value);
          if (resolved.ok()) {
            element->SetAttribute(attr, resolved->ToStringWithFragment());
          }
        }
      }
      return true;
    });
    current_html_ = SerializeNode(*clone);
    current_url_ = url;
    ++version_;
  });
  return HttpResponse::Ok("text/plain", "accepted");
}

HttpResponse CoBrowseProxy::HandlePage(const HttpRequest& request) {
  auto params = request.QueryParams();
  int64_t have = -1;
  auto it = params.find("v");
  if (it != params.end()) {
    have = std::atoll(it->second.c_str());
  }
  if (version_ == 0 || have >= version_) {
    return HttpResponse::Ok("text/plain", "");
  }
  HttpResponse response = HttpResponse::Ok("text/html", current_html_);
  response.headers.Set("X-CoBrowse-Version", StrFormat("%lld",
                                                       static_cast<long long>(version_)));
  response.headers.Set("X-CoBrowse-Url", current_url_);
  bytes_relayed_ += current_html_.size();
  return response;
}

ProxyCoBrowseClient::ProxyCoBrowseClient(Browser* browser, Url proxy_url,
                                         Duration poll_interval)
    : browser_(browser), proxy_url_(std::move(proxy_url)), interval_(poll_interval) {}

ProxyCoBrowseClient::~ProxyCoBrowseClient() { Stop(); }

void ProxyCoBrowseClient::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++epoch_;
  PollOnce();
}

void ProxyCoBrowseClient::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  ++epoch_;
  if (timer_ != 0) {
    browser_->loop()->Cancel(timer_);
    timer_ = 0;
  }
}

void ProxyCoBrowseClient::Navigate(const Url& target,
                                   std::function<void(Status)> done) {
  Url navigate_url = Url::Make(proxy_url_.scheme(), proxy_url_.host(),
                               proxy_url_.port(), "/navigate");
  browser_->Fetch(HttpMethod::kPost, navigate_url,
                  "url=" + PercentEncode(target.ToString()),
                  "application/x-www-form-urlencoded",
                  [done = std::move(done)](FetchResult result) {
                    done(result.status);
                  });
}

void ProxyCoBrowseClient::SchedulePoll() {
  if (!running_) {
    return;
  }
  uint64_t epoch = epoch_;
  timer_ = browser_->loop()->Schedule(interval_, [this, epoch] {
    if (epoch != epoch_) {
      return;
    }
    timer_ = 0;
    PollOnce();
  });
}

void ProxyCoBrowseClient::PollOnce() {
  Url page_url =
      Url::Make(proxy_url_.scheme(), proxy_url_.host(), proxy_url_.port(), "/page",
                StrFormat("v=%lld", static_cast<long long>(version_)));
  SimTime sent = browser_->loop()->now();
  uint64_t epoch = epoch_;
  browser_->Fetch(
      HttpMethod::kGet, page_url, "", "",
      [this, epoch, sent](FetchResult result) {
        if (epoch != epoch_) {
          return;
        }
        if (!result.status.ok() || result.response.status_code != 200 ||
            result.response.body.empty()) {
          SchedulePoll();
          return;
        }
        auto version_header = result.response.headers.Get("X-CoBrowse-Version");
        int64_t new_version =
            version_header ? std::atoll(version_header->c_str()) : version_ + 1;
        auto url_header = result.response.headers.Get("X-CoBrowse-Url");
        Url page_base = proxy_url_;
        if (url_header.has_value()) {
          auto parsed = Url::Parse(*url_header);
          if (parsed.ok()) {
            page_base = *parsed;
          }
        }
        browser_->ReplaceDocument(ParseDocument(result.response.body), page_base);
        version_ = new_version;
        last_sync_time_ = browser_->loop()->now() - sent;
        ++updates_received_;
        SchedulePoll();
      });
}

}  // namespace rcb
