file(REMOVE_RECURSE
  "CMakeFiles/session_integration_test.dir/session_integration_test.cc.o"
  "CMakeFiles/session_integration_test.dir/session_integration_test.cc.o.d"
  "session_integration_test"
  "session_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
