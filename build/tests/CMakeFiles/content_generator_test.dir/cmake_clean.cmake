file(REMOVE_RECURSE
  "CMakeFiles/content_generator_test.dir/content_generator_test.cc.o"
  "CMakeFiles/content_generator_test.dir/content_generator_test.cc.o.d"
  "content_generator_test"
  "content_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
