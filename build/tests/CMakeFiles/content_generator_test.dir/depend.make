# Empty dependencies file for content_generator_test.
# This may be replaced when dependencies are built.
