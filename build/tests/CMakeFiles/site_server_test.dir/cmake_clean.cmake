file(REMOVE_RECURSE
  "CMakeFiles/site_server_test.dir/site_server_test.cc.o"
  "CMakeFiles/site_server_test.dir/site_server_test.cc.o.d"
  "site_server_test"
  "site_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
