# Empty compiler generated dependencies file for site_server_test.
# This may be replaced when dependencies are built.
