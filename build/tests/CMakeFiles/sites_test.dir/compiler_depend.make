# Empty compiler generated dependencies file for sites_test.
# This may be replaced when dependencies are built.
