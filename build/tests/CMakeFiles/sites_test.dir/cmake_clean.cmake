file(REMOVE_RECURSE
  "CMakeFiles/sites_test.dir/sites_test.cc.o"
  "CMakeFiles/sites_test.dir/sites_test.cc.o.d"
  "sites_test"
  "sites_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sites_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
