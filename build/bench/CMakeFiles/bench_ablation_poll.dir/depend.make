# Empty dependencies file for bench_ablation_poll.
# This may be replaced when dependencies are built.
