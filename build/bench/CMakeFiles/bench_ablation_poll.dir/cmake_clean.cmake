file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_poll.dir/bench_ablation_poll.cpp.o"
  "CMakeFiles/bench_ablation_poll.dir/bench_ablation_poll.cpp.o.d"
  "bench_ablation_poll"
  "bench_ablation_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
