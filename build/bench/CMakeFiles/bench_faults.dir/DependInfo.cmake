
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_faults.cpp" "bench/CMakeFiles/bench_faults.dir/bench_faults.cpp.o" "gcc" "bench/CMakeFiles/bench_faults.dir/bench_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rcb_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rcb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rcb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rcb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rcb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sites/CMakeFiles/rcb_sites.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/rcb_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rcb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/rcb_html.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
