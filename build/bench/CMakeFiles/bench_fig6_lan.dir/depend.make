# Empty dependencies file for bench_fig6_lan.
# This may be replaced when dependencies are built.
