file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_processing.dir/bench_table1_processing.cpp.o"
  "CMakeFiles/bench_table1_processing.dir/bench_table1_processing.cpp.o.d"
  "bench_table1_processing"
  "bench_table1_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
