# Empty dependencies file for bench_table4_usability.
# This may be replaced when dependencies are built.
