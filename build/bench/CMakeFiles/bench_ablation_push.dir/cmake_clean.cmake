file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_push.dir/bench_ablation_push.cpp.o"
  "CMakeFiles/bench_ablation_push.dir/bench_ablation_push.cpp.o.d"
  "bench_ablation_push"
  "bench_ablation_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
