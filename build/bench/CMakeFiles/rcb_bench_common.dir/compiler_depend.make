# Empty compiler generated dependencies file for rcb_bench_common.
# This may be replaced when dependencies are built.
