file(REMOVE_RECURSE
  "../lib/librcb_bench_common.a"
  "../lib/librcb_bench_common.pdb"
  "CMakeFiles/rcb_bench_common.dir/common.cc.o"
  "CMakeFiles/rcb_bench_common.dir/common.cc.o.d"
  "CMakeFiles/rcb_bench_common.dir/task_script.cc.o"
  "CMakeFiles/rcb_bench_common.dir/task_script.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
