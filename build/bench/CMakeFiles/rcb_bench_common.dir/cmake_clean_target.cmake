file(REMOVE_RECURSE
  "../lib/librcb_bench_common.a"
)
