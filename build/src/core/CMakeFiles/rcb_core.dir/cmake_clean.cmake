file(REMOVE_RECURSE
  "CMakeFiles/rcb_core.dir/ajax_snippet.cc.o"
  "CMakeFiles/rcb_core.dir/ajax_snippet.cc.o.d"
  "CMakeFiles/rcb_core.dir/content_generator.cc.o"
  "CMakeFiles/rcb_core.dir/content_generator.cc.o.d"
  "CMakeFiles/rcb_core.dir/protocol.cc.o"
  "CMakeFiles/rcb_core.dir/protocol.cc.o.d"
  "CMakeFiles/rcb_core.dir/rcb_agent.cc.o"
  "CMakeFiles/rcb_core.dir/rcb_agent.cc.o.d"
  "CMakeFiles/rcb_core.dir/session.cc.o"
  "CMakeFiles/rcb_core.dir/session.cc.o.d"
  "librcb_core.a"
  "librcb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
