file(REMOVE_RECURSE
  "librcb_core.a"
)
