# Empty dependencies file for rcb_core.
# This may be replaced when dependencies are built.
