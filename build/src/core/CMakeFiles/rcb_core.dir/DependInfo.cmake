
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ajax_snippet.cc" "src/core/CMakeFiles/rcb_core.dir/ajax_snippet.cc.o" "gcc" "src/core/CMakeFiles/rcb_core.dir/ajax_snippet.cc.o.d"
  "/root/repo/src/core/content_generator.cc" "src/core/CMakeFiles/rcb_core.dir/content_generator.cc.o" "gcc" "src/core/CMakeFiles/rcb_core.dir/content_generator.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/rcb_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/rcb_core.dir/protocol.cc.o.d"
  "/root/repo/src/core/rcb_agent.cc" "src/core/CMakeFiles/rcb_core.dir/rcb_agent.cc.o" "gcc" "src/core/CMakeFiles/rcb_core.dir/rcb_agent.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/rcb_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/rcb_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rcb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/rcb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rcb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/rcb_html.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/rcb_browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
