
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/base64.cc" "src/util/CMakeFiles/rcb_util.dir/base64.cc.o" "gcc" "src/util/CMakeFiles/rcb_util.dir/base64.cc.o.d"
  "/root/repo/src/util/escape.cc" "src/util/CMakeFiles/rcb_util.dir/escape.cc.o" "gcc" "src/util/CMakeFiles/rcb_util.dir/escape.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/rcb_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/rcb_util.dir/logging.cc.o.d"
  "/root/repo/src/util/rand.cc" "src/util/CMakeFiles/rcb_util.dir/rand.cc.o" "gcc" "src/util/CMakeFiles/rcb_util.dir/rand.cc.o.d"
  "/root/repo/src/util/sim_time.cc" "src/util/CMakeFiles/rcb_util.dir/sim_time.cc.o" "gcc" "src/util/CMakeFiles/rcb_util.dir/sim_time.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/rcb_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/rcb_util.dir/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/util/CMakeFiles/rcb_util.dir/strings.cc.o" "gcc" "src/util/CMakeFiles/rcb_util.dir/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
