file(REMOVE_RECURSE
  "librcb_util.a"
)
