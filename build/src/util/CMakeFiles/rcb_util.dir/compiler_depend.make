# Empty compiler generated dependencies file for rcb_util.
# This may be replaced when dependencies are built.
