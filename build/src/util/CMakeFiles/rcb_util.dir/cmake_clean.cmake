file(REMOVE_RECURSE
  "CMakeFiles/rcb_util.dir/base64.cc.o"
  "CMakeFiles/rcb_util.dir/base64.cc.o.d"
  "CMakeFiles/rcb_util.dir/escape.cc.o"
  "CMakeFiles/rcb_util.dir/escape.cc.o.d"
  "CMakeFiles/rcb_util.dir/logging.cc.o"
  "CMakeFiles/rcb_util.dir/logging.cc.o.d"
  "CMakeFiles/rcb_util.dir/rand.cc.o"
  "CMakeFiles/rcb_util.dir/rand.cc.o.d"
  "CMakeFiles/rcb_util.dir/sim_time.cc.o"
  "CMakeFiles/rcb_util.dir/sim_time.cc.o.d"
  "CMakeFiles/rcb_util.dir/status.cc.o"
  "CMakeFiles/rcb_util.dir/status.cc.o.d"
  "CMakeFiles/rcb_util.dir/strings.cc.o"
  "CMakeFiles/rcb_util.dir/strings.cc.o.d"
  "librcb_util.a"
  "librcb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
