file(REMOVE_RECURSE
  "librcb_crypto.a"
)
