# Empty dependencies file for rcb_crypto.
# This may be replaced when dependencies are built.
