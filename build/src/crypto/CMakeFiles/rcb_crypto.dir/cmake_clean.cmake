file(REMOVE_RECURSE
  "CMakeFiles/rcb_crypto.dir/hmac.cc.o"
  "CMakeFiles/rcb_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/rcb_crypto.dir/session_key.cc.o"
  "CMakeFiles/rcb_crypto.dir/session_key.cc.o.d"
  "CMakeFiles/rcb_crypto.dir/sha256.cc.o"
  "CMakeFiles/rcb_crypto.dir/sha256.cc.o.d"
  "librcb_crypto.a"
  "librcb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
