
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/cookie.cc" "src/http/CMakeFiles/rcb_http.dir/cookie.cc.o" "gcc" "src/http/CMakeFiles/rcb_http.dir/cookie.cc.o.d"
  "/root/repo/src/http/form.cc" "src/http/CMakeFiles/rcb_http.dir/form.cc.o" "gcc" "src/http/CMakeFiles/rcb_http.dir/form.cc.o.d"
  "/root/repo/src/http/headers.cc" "src/http/CMakeFiles/rcb_http.dir/headers.cc.o" "gcc" "src/http/CMakeFiles/rcb_http.dir/headers.cc.o.d"
  "/root/repo/src/http/http_parser.cc" "src/http/CMakeFiles/rcb_http.dir/http_parser.cc.o" "gcc" "src/http/CMakeFiles/rcb_http.dir/http_parser.cc.o.d"
  "/root/repo/src/http/message.cc" "src/http/CMakeFiles/rcb_http.dir/message.cc.o" "gcc" "src/http/CMakeFiles/rcb_http.dir/message.cc.o.d"
  "/root/repo/src/http/url.cc" "src/http/CMakeFiles/rcb_http.dir/url.cc.o" "gcc" "src/http/CMakeFiles/rcb_http.dir/url.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
