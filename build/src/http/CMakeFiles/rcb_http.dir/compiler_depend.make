# Empty compiler generated dependencies file for rcb_http.
# This may be replaced when dependencies are built.
