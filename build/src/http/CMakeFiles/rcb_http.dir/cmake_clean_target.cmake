file(REMOVE_RECURSE
  "librcb_http.a"
)
