file(REMOVE_RECURSE
  "CMakeFiles/rcb_http.dir/cookie.cc.o"
  "CMakeFiles/rcb_http.dir/cookie.cc.o.d"
  "CMakeFiles/rcb_http.dir/form.cc.o"
  "CMakeFiles/rcb_http.dir/form.cc.o.d"
  "CMakeFiles/rcb_http.dir/headers.cc.o"
  "CMakeFiles/rcb_http.dir/headers.cc.o.d"
  "CMakeFiles/rcb_http.dir/http_parser.cc.o"
  "CMakeFiles/rcb_http.dir/http_parser.cc.o.d"
  "CMakeFiles/rcb_http.dir/message.cc.o"
  "CMakeFiles/rcb_http.dir/message.cc.o.d"
  "CMakeFiles/rcb_http.dir/url.cc.o"
  "CMakeFiles/rcb_http.dir/url.cc.o.d"
  "librcb_http.a"
  "librcb_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
