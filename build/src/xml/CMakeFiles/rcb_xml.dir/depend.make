# Empty dependencies file for rcb_xml.
# This may be replaced when dependencies are built.
