file(REMOVE_RECURSE
  "librcb_xml.a"
)
