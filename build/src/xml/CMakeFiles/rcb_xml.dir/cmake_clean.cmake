file(REMOVE_RECURSE
  "CMakeFiles/rcb_xml.dir/xml_parser.cc.o"
  "CMakeFiles/rcb_xml.dir/xml_parser.cc.o.d"
  "CMakeFiles/rcb_xml.dir/xml_writer.cc.o"
  "CMakeFiles/rcb_xml.dir/xml_writer.cc.o.d"
  "librcb_xml.a"
  "librcb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
