# Empty dependencies file for rcb_html.
# This may be replaced when dependencies are built.
