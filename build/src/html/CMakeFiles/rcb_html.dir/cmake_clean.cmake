file(REMOVE_RECURSE
  "CMakeFiles/rcb_html.dir/dom.cc.o"
  "CMakeFiles/rcb_html.dir/dom.cc.o.d"
  "CMakeFiles/rcb_html.dir/parser.cc.o"
  "CMakeFiles/rcb_html.dir/parser.cc.o.d"
  "CMakeFiles/rcb_html.dir/selector.cc.o"
  "CMakeFiles/rcb_html.dir/selector.cc.o.d"
  "CMakeFiles/rcb_html.dir/serializer.cc.o"
  "CMakeFiles/rcb_html.dir/serializer.cc.o.d"
  "CMakeFiles/rcb_html.dir/tokenizer.cc.o"
  "CMakeFiles/rcb_html.dir/tokenizer.cc.o.d"
  "librcb_html.a"
  "librcb_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
