file(REMOVE_RECURSE
  "librcb_html.a"
)
