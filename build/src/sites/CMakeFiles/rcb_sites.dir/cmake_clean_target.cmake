file(REMOVE_RECURSE
  "librcb_sites.a"
)
