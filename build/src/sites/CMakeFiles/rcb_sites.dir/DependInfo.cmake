
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sites/corpus.cc" "src/sites/CMakeFiles/rcb_sites.dir/corpus.cc.o" "gcc" "src/sites/CMakeFiles/rcb_sites.dir/corpus.cc.o.d"
  "/root/repo/src/sites/maps_site.cc" "src/sites/CMakeFiles/rcb_sites.dir/maps_site.cc.o" "gcc" "src/sites/CMakeFiles/rcb_sites.dir/maps_site.cc.o.d"
  "/root/repo/src/sites/shop_site.cc" "src/sites/CMakeFiles/rcb_sites.dir/shop_site.cc.o" "gcc" "src/sites/CMakeFiles/rcb_sites.dir/shop_site.cc.o.d"
  "/root/repo/src/sites/site_server.cc" "src/sites/CMakeFiles/rcb_sites.dir/site_server.cc.o" "gcc" "src/sites/CMakeFiles/rcb_sites.dir/site_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rcb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/rcb_html.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/rcb_browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
