# Empty compiler generated dependencies file for rcb_sites.
# This may be replaced when dependencies are built.
