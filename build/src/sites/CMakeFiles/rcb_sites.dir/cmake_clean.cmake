file(REMOVE_RECURSE
  "CMakeFiles/rcb_sites.dir/corpus.cc.o"
  "CMakeFiles/rcb_sites.dir/corpus.cc.o.d"
  "CMakeFiles/rcb_sites.dir/maps_site.cc.o"
  "CMakeFiles/rcb_sites.dir/maps_site.cc.o.d"
  "CMakeFiles/rcb_sites.dir/shop_site.cc.o"
  "CMakeFiles/rcb_sites.dir/shop_site.cc.o.d"
  "CMakeFiles/rcb_sites.dir/site_server.cc.o"
  "CMakeFiles/rcb_sites.dir/site_server.cc.o.d"
  "librcb_sites.a"
  "librcb_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
