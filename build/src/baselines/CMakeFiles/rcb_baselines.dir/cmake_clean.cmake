file(REMOVE_RECURSE
  "CMakeFiles/rcb_baselines.dir/proxy_cobrowse.cc.o"
  "CMakeFiles/rcb_baselines.dir/proxy_cobrowse.cc.o.d"
  "CMakeFiles/rcb_baselines.dir/url_sharing.cc.o"
  "CMakeFiles/rcb_baselines.dir/url_sharing.cc.o.d"
  "librcb_baselines.a"
  "librcb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
