# Empty dependencies file for rcb_baselines.
# This may be replaced when dependencies are built.
