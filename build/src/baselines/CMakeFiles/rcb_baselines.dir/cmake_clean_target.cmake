file(REMOVE_RECURSE
  "librcb_baselines.a"
)
