file(REMOVE_RECURSE
  "CMakeFiles/rcb_net.dir/event_loop.cc.o"
  "CMakeFiles/rcb_net.dir/event_loop.cc.o.d"
  "CMakeFiles/rcb_net.dir/fault_injector.cc.o"
  "CMakeFiles/rcb_net.dir/fault_injector.cc.o.d"
  "CMakeFiles/rcb_net.dir/network.cc.o"
  "CMakeFiles/rcb_net.dir/network.cc.o.d"
  "CMakeFiles/rcb_net.dir/profiles.cc.o"
  "CMakeFiles/rcb_net.dir/profiles.cc.o.d"
  "librcb_net.a"
  "librcb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
