# Empty dependencies file for rcb_net.
# This may be replaced when dependencies are built.
