
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event_loop.cc" "src/net/CMakeFiles/rcb_net.dir/event_loop.cc.o" "gcc" "src/net/CMakeFiles/rcb_net.dir/event_loop.cc.o.d"
  "/root/repo/src/net/fault_injector.cc" "src/net/CMakeFiles/rcb_net.dir/fault_injector.cc.o" "gcc" "src/net/CMakeFiles/rcb_net.dir/fault_injector.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/rcb_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/rcb_net.dir/network.cc.o.d"
  "/root/repo/src/net/profiles.cc" "src/net/CMakeFiles/rcb_net.dir/profiles.cc.o" "gcc" "src/net/CMakeFiles/rcb_net.dir/profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rcb_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
