file(REMOVE_RECURSE
  "librcb_net.a"
)
