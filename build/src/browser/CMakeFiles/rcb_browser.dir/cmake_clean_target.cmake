file(REMOVE_RECURSE
  "librcb_browser.a"
)
