
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/browser.cc" "src/browser/CMakeFiles/rcb_browser.dir/browser.cc.o" "gcc" "src/browser/CMakeFiles/rcb_browser.dir/browser.cc.o.d"
  "/root/repo/src/browser/object_cache.cc" "src/browser/CMakeFiles/rcb_browser.dir/object_cache.cc.o" "gcc" "src/browser/CMakeFiles/rcb_browser.dir/object_cache.cc.o.d"
  "/root/repo/src/browser/resources.cc" "src/browser/CMakeFiles/rcb_browser.dir/resources.cc.o" "gcc" "src/browser/CMakeFiles/rcb_browser.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/rcb_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rcb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/rcb_html.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
