file(REMOVE_RECURSE
  "CMakeFiles/rcb_browser.dir/browser.cc.o"
  "CMakeFiles/rcb_browser.dir/browser.cc.o.d"
  "CMakeFiles/rcb_browser.dir/object_cache.cc.o"
  "CMakeFiles/rcb_browser.dir/object_cache.cc.o.d"
  "CMakeFiles/rcb_browser.dir/resources.cc.o"
  "CMakeFiles/rcb_browser.dir/resources.cc.o.d"
  "librcb_browser.a"
  "librcb_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
