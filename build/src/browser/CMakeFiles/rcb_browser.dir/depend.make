# Empty dependencies file for rcb_browser.
# This may be replaced when dependencies are built.
