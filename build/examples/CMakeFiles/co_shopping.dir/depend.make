# Empty dependencies file for co_shopping.
# This may be replaced when dependencies are built.
