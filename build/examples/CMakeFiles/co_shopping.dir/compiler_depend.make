# Empty compiler generated dependencies file for co_shopping.
# This may be replaced when dependencies are built.
