file(REMOVE_RECURSE
  "CMakeFiles/co_shopping.dir/co_shopping.cpp.o"
  "CMakeFiles/co_shopping.dir/co_shopping.cpp.o.d"
  "co_shopping"
  "co_shopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/co_shopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
