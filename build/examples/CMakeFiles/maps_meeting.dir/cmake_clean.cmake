file(REMOVE_RECURSE
  "CMakeFiles/maps_meeting.dir/maps_meeting.cpp.o"
  "CMakeFiles/maps_meeting.dir/maps_meeting.cpp.o.d"
  "maps_meeting"
  "maps_meeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_meeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
