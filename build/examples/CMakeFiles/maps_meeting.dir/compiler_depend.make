# Empty compiler generated dependencies file for maps_meeting.
# This may be replaced when dependencies are built.
