file(REMOVE_RECURSE
  "CMakeFiles/multi_participant.dir/multi_participant.cpp.o"
  "CMakeFiles/multi_participant.dir/multi_participant.cpp.o.d"
  "multi_participant"
  "multi_participant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_participant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
