# Empty compiler generated dependencies file for multi_participant.
# This may be replaced when dependencies are built.
