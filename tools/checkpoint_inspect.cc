// Inspects the durability artifacts of src/persist (DESIGN.md §13):
// checkpoint files ("RCBCKPT1") and write-ahead logs ("RCBWAL01").
//
// Usage:
//   checkpoint_inspect [--json] dump FILE...     decode and print contents
//   checkpoint_inspect [--json] verify FILE...   run every integrity gate;
//                                                exit 0 iff all files pass
//   checkpoint_inspect make-sample DIR           write a deterministic
//                                                sample.ckpt + sample.wal
//                                                (CI builds its torn-write
//                                                corpus by truncating them)
//
// verify never crashes on hostile input — a torn, truncated, or bit-flipped
// file is reported as INVALID with the gate that fired. A WAL whose tail is
// torn is still OK (recovery cuts the tail); a WAL with a bad magic or
// header is INVALID (recovery drops the whole log).
//
// --json emits one machine-readable report object (schema_version 1):
//   {"schema_version":1,"tool":"checkpoint_inspect","files":[
//     {"path":...,"kind":"checkpoint"|"wal"|"unknown","valid":bool,
//      "error":"..."?,                         // when !valid
//      "session_id":...,"epoch":N,             // decoded kinds
//      checkpoint: "doc_time_ms":N,"participants":N,"pending_actions":N,
//                  "document_bytes":N,"port":N,
//      wal:        "base_doc_time_ms":N,"records":N,"tail_discarded":bool,
//                  "bytes_replayed":N}]}
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/persist/checkpoint.h"
#include "src/persist/session_store.h"
#include "src/persist/wal.h"
#include "src/util/json.h"
#include "src/util/status.h"

namespace {

using rcb::persist::DecodeCheckpoint;
using rcb::persist::DecodeWal;
using rcb::persist::SessionCheckpoint;
using rcb::persist::WalReplay;

constexpr int kSchemaVersion = 1;

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  if (!*ok) {
    return "";
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

const char* WalRecordTypeName(rcb::persist::WalRecordType type) {
  switch (type) {
    case rcb::persist::WalRecordType::kHeader:
      return "header";
    case rcb::persist::WalRecordType::kDocVersion:
      return "doc_version";
    case rcb::persist::WalRecordType::kSeq:
      return "seq";
    case rcb::persist::WalRecordType::kAction:
      return "action";
    case rcb::persist::WalRecordType::kJoin:
      return "join";
    case rcb::persist::WalRecordType::kLeave:
      return "leave";
  }
  return "unknown";
}

// One file's inspection outcome, shared by dump/verify and both output
// modes.
struct FileReport {
  std::string path;
  std::string kind = "unknown";  // checkpoint | wal | unknown
  bool valid = false;
  std::string error;
  SessionCheckpoint checkpoint;  // kind == checkpoint && valid
  WalReplay wal;                 // kind == wal && valid
};

FileReport Inspect(const std::string& path) {
  FileReport report;
  report.path = path;
  bool ok = false;
  std::string bytes = ReadFile(path, &ok);
  if (!ok) {
    report.error = "cannot open file";
    return report;
  }
  if (bytes.rfind(rcb::persist::kCheckpointMagic, 0) == 0) {
    report.kind = "checkpoint";
    auto decoded = DecodeCheckpoint(bytes);
    if (decoded.ok()) {
      report.valid = true;
      report.checkpoint = std::move(*decoded);
    } else {
      report.error = decoded.status().ToString();
    }
    return report;
  }
  if (bytes.rfind(rcb::persist::kWalMagic, 0) == 0) {
    report.kind = "wal";
    auto decoded = DecodeWal(bytes);
    if (decoded.ok()) {
      report.valid = true;  // a torn tail is recoverable, not invalid
      report.wal = std::move(*decoded);
    } else {
      report.error = decoded.status().ToString();
    }
    return report;
  }
  report.error = "unrecognized magic (not a checkpoint or WAL)";
  return report;
}

void PrintHuman(const FileReport& report, bool dump) {
  if (!report.valid) {
    std::printf("INVALID %-10s %s: %s\n", report.kind.c_str(),
                report.path.c_str(), report.error.c_str());
    return;
  }
  if (report.kind == "checkpoint") {
    const SessionCheckpoint& c = report.checkpoint;
    std::printf(
        "ok      checkpoint %s: session=%s epoch=%llu doc_time_ms=%lld "
        "participants=%zu pending=%zu document_bytes=%zu port=%u\n",
        report.path.c_str(), c.session_id.c_str(),
        static_cast<unsigned long long>(c.epoch),
        static_cast<long long>(c.state.doc_time_ms), c.state.participants.size(),
        c.state.pending_actions.size(), c.state.document_html.size(),
        c.config.port);
    if (dump) {
      std::printf("  config: poll_interval_ms=%lld cache_mode=%d "
                  "enable_delta=%d enable_trace=%d sync_model=%d key_bytes=%zu\n",
                  static_cast<long long>(c.config.poll_interval_ms),
                  c.config.cache_mode ? 1 : 0, c.config.enable_delta ? 1 : 0,
                  c.config.enable_trace ? 1 : 0, c.config.sync_model,
                  c.config.session_key.size());
      for (const auto& participant : c.state.participants) {
        std::printf("  participant %s: doc_time_ms=%lld last_seq=%llu "
                    "polls=%llu\n",
                    participant.pid.c_str(),
                    static_cast<long long>(participant.doc_time_ms),
                    static_cast<unsigned long long>(participant.last_seq),
                    static_cast<unsigned long long>(participant.polls));
      }
      for (const auto& pending : c.state.pending_actions) {
        std::printf("  pending %s: action\n", pending.pid.c_str());
      }
    }
    return;
  }
  const WalReplay& w = report.wal;
  std::printf(
      "ok      wal        %s: session=%s epoch=%llu base_doc_time_ms=%lld "
      "records=%zu tail_discarded=%d bytes_replayed=%zu\n",
      report.path.c_str(), w.session_id.c_str(),
      static_cast<unsigned long long>(w.epoch),
      static_cast<long long>(w.base_doc_time_ms), w.records.size(),
      w.tail_discarded ? 1 : 0, w.bytes_replayed);
  if (dump) {
    for (const auto& record : w.records) {
      std::printf("  record %-11s pid=%s seq=%llu doc_time_ms=%lld\n",
                  WalRecordTypeName(record.type), record.pid.c_str(),
                  static_cast<unsigned long long>(record.seq),
                  static_cast<long long>(record.doc_time_ms));
    }
  }
}

std::string ToJson(const std::vector<FileReport>& reports) {
  std::string out = "{\"schema_version\":" + std::to_string(kSchemaVersion) +
                    ",\"tool\":\"checkpoint_inspect\",\"files\":[";
  bool first = true;
  for (const FileReport& report : reports) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"path\":\"" + rcb::JsonEscape(report.path) + "\",\"kind\":\"" +
           report.kind + "\",\"valid\":" + (report.valid ? "true" : "false");
    if (!report.valid) {
      out += ",\"error\":\"" + rcb::JsonEscape(report.error) + "\"";
    } else if (report.kind == "checkpoint") {
      const SessionCheckpoint& c = report.checkpoint;
      out += ",\"session_id\":\"" + rcb::JsonEscape(c.session_id) +
             "\",\"epoch\":" + std::to_string(c.epoch) +
             ",\"doc_time_ms\":" + std::to_string(c.state.doc_time_ms) +
             ",\"participants\":" +
             std::to_string(c.state.participants.size()) +
             ",\"pending_actions\":" +
             std::to_string(c.state.pending_actions.size()) +
             ",\"document_bytes\":" +
             std::to_string(c.state.document_html.size()) +
             ",\"port\":" + std::to_string(c.config.port);
    } else if (report.kind == "wal") {
      const WalReplay& w = report.wal;
      out += ",\"session_id\":\"" + rcb::JsonEscape(w.session_id) +
             "\",\"epoch\":" + std::to_string(w.epoch) +
             ",\"base_doc_time_ms\":" + std::to_string(w.base_doc_time_ms) +
             ",\"records\":" + std::to_string(w.records.size()) +
             ",\"tail_discarded\":" +
             (w.tail_discarded ? "true" : "false") +
             ",\"bytes_replayed\":" + std::to_string(w.bytes_replayed);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// Deterministic sample artifacts for the CI recovery gate: a checkpoint with
// a roster + pending action and a WAL with one record of every replayable
// type. CI truncates and bit-flips copies of these to build its torn-write
// corpus.
int WriteSample(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);

  SessionCheckpoint checkpoint;
  checkpoint.session_id = "sample";
  checkpoint.epoch = 3;
  checkpoint.created_at_us = 1234567;
  checkpoint.config.session_key = "sample&key=1";
  checkpoint.config.poll_interval_ms = 250;
  checkpoint.config.cache_mode = true;
  checkpoint.config.enable_delta = true;
  checkpoint.config.port = 3004;
  checkpoint.state.doc_time_ms = 9001;
  checkpoint.state.has_version = true;
  checkpoint.state.next_pid = 3;
  checkpoint.state.document_html =
      "<html><head><title>Sample</title></head>"
      "<body><p id=\"status\">durable</p></body></html>";
  checkpoint.state.document_url = "http://host-pc:3004/doc";
  rcb::ParticipantExport p1;
  p1.pid = "p1";
  p1.doc_time_ms = 9001;
  p1.last_seq = 17;
  p1.polls = 42;
  checkpoint.state.participants.push_back(p1);
  rcb::ParticipantExport p2;
  p2.pid = "p2";
  p2.doc_time_ms = -1;
  p2.last_seq = 5;
  checkpoint.state.participants.push_back(p2);
  rcb::PendingActionExport pending;
  pending.pid = "p1";
  pending.action.type = rcb::ActionType::kNavigate;
  pending.action.data = "http://example.com/next";
  checkpoint.state.pending_actions.push_back(pending);

  std::string wal =
      rcb::persist::EncodeWalFileHeader("sample", checkpoint.epoch, 9001);
  rcb::persist::WalRecord doc_version;
  doc_version.type = rcb::persist::WalRecordType::kDocVersion;
  doc_version.doc_time_ms = 9500;
  wal += rcb::persist::EncodeWalRecord(doc_version);
  rcb::persist::WalRecord seq;
  seq.type = rcb::persist::WalRecordType::kSeq;
  seq.pid = "p1";
  seq.seq = 18;
  wal += rcb::persist::EncodeWalRecord(seq);
  rcb::persist::WalRecord join;
  join.type = rcb::persist::WalRecordType::kJoin;
  join.pid = "p3";
  wal += rcb::persist::EncodeWalRecord(join);
  rcb::persist::WalRecord leave;
  leave.type = rcb::persist::WalRecordType::kLeave;
  leave.pid = "p2";
  wal += rcb::persist::EncodeWalRecord(leave);

  const std::string ckpt_path = dir + "/sample.ckpt";
  const std::string wal_path = dir + "/sample.wal";
  std::ofstream ckpt_out(ckpt_path, std::ios::binary | std::ios::trunc);
  ckpt_out << rcb::persist::EncodeCheckpoint(checkpoint);
  std::ofstream wal_out(wal_path, std::ios::binary | std::ios::trunc);
  wal_out << wal;
  if (!ckpt_out || !wal_out) {
    std::fprintf(stderr, "checkpoint_inspect: cannot write samples in %s\n",
                 dir.c_str());
    return 2;
  }
  std::printf("wrote %s\nwrote %s\n", ckpt_path.c_str(), wal_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool json = false;
  if (!args.empty() && args[0] == "--json") {
    json = true;
    args.erase(args.begin());
  }
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s [--json] dump|verify FILE... | make-sample DIR\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = args[0];
  if (mode == "make-sample") {
    return WriteSample(args[1]);
  }
  if (mode != "dump" && mode != "verify") {
    std::fprintf(stderr, "checkpoint_inspect: unknown mode '%s'\n",
                 mode.c_str());
    return 2;
  }

  std::vector<FileReport> reports;
  int failures = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    reports.push_back(Inspect(args[i]));
    if (!reports.back().valid) {
      ++failures;
    }
  }
  if (json) {
    std::printf("%s\n", ToJson(reports).c_str());
  } else {
    for (const FileReport& report : reports) {
      PrintHuman(report, mode == "dump");
    }
  }
  return failures == 0 ? 0 : 1;
}
