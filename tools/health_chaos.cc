// health_chaos: deterministic scenario driver for the health plane
// (DESIGN.md §16). Builds a small multi-session RcbHost on a simulated
// network, runs one fault scenario, and writes the host's /host/health
// snapshot — scripts/ci.sh check_health asserts the calm run double-runs
// bit-identically and that each fault scenario trips exactly the SLO burn
// alert it injects.
//
// Usage: health_chaos --scenario calm|delay|auth|waste [--out FILE]
//   calm   long-poll transport, regular mutations: parked polls flush the
//          instant content exists, so sync latency is ~network RTT and every
//          session stays green.
//   delay  classic 500 ms interval polling against the same mutation load:
//          content waits for the next poll, so serve latency is interval-
//          bound (~250 ms mean >> the 20 ms target) -> sync_p99 burn alert.
//   auth   pollers sign every request with the wrong key -> auth_failure_rate
//          burn alert (and the per-session flight recorder fires).
//   waste  idle classic polling under a streamed-transport waste budget
//          (10%): every poll comes back empty -> wasted_poll_ratio alert.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/ajax_snippet.h"
#include "src/crypto/hmac.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/util/strings.h"

using namespace rcb;

namespace {

constexpr size_t kSessions = 4;
constexpr size_t kParticipants = 2;
constexpr int kFirstRoundMs = 2000;
constexpr int kRoundSpacingMs = 1500;
constexpr int64_t kRunMs = 70'000;  // > the slow window, so slow burns settle
// Mutations run the whole scenario so the final fast window is never idle.
constexpr int kRounds = (kRunMs - kFirstRoundMs) / kRoundSpacingMs;
constexpr const char* kSessionKey = "chaos-session-key";

struct Scenario {
  bool long_poll = false;      // snippet advertises stream=1, agent grants
  bool mutations = false;      // document rounds (content to sync)
  bool bad_auth = false;       // raw wrongly-signed polls instead of snippets
  bool tight_waste_budget = false;  // wasted_poll_budget 0.90 -> 0.10
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "health_chaos: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      scenario_name = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s --scenario calm|delay|auth|waste [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  Scenario scenario;
  if (scenario_name == "calm") {
    scenario.long_poll = true;
    scenario.mutations = true;
  } else if (scenario_name == "delay") {
    scenario.mutations = true;
  } else if (scenario_name == "auth") {
    scenario.bad_auth = true;
  } else if (scenario_name == "waste") {
    scenario.tight_waste_budget = true;
  } else {
    std::fprintf(stderr,
                 "usage: %s --scenario calm|delay|auth|waste [--out FILE]\n",
                 argv[0]);
    return 2;
  }

  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  for (size_t p = 0; p < kParticipants; ++p) {
    std::string machine = "poller-pc-" + std::to_string(p + 1);
    network.AddHost(machine, {});
    network.SetLatency("host-pc", machine, Duration::Millis(1));
  }

  HostConfig config;
  config.base_port = 3000;
  config.limits.max_sessions = 0;
  config.agent_defaults.poll_interval = Duration::Millis(500);
  if (scenario.long_poll) {
    config.agent_defaults.transport.enable_stream = true;
  }
  if (scenario.bad_auth) {
    config.agent_defaults.session_key = kSessionKey;
  }
  if (scenario.tight_waste_budget) {
    // A deployment that opted into streamed-transport efficiency: classic
    // idle polling wastes ~100% of round trips, burning this budget ~10x.
    config.agent_defaults.health_slo.wasted_poll_budget = 0.10;
  }
  RcbHost host(&loop, &network, config);
  if (Status status = host.Start(); !status.ok()) {
    return Fail(status.ToString());
  }

  std::vector<HostSession*> hosted(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    auto session = host.CreateSession("s" + std::to_string(s));
    if (!session.ok()) {
      return Fail(session.status().ToString());
    }
    hosted[s] = *session;
    hosted[s]->browser->ReplaceDocument(
        ParseDocument(StrFormat(
            "<html><head><title>chaos %zu</title></head>"
            "<body><p id=\"status\">round 0</p></body></html>", s)),
        Url::Make("http", "host-pc", hosted[s]->port, "/doc"));
  }

  struct Poller {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  std::vector<Poller> pollers;
  size_t joined = 0;
  if (!scenario.bad_auth) {
    pollers.reserve(kSessions * kParticipants);
    for (size_t s = 0; s < kSessions; ++s) {
      for (size_t p = 0; p < kParticipants; ++p) {
        Poller poller;
        poller.browser = std::make_unique<Browser>(
            &loop, &network, "poller-pc-" + std::to_string(p + 1));
        SnippetConfig snippet_config;
        snippet_config.fetch_objects = false;
        if (scenario.long_poll) {
          snippet_config.stream_mode = transport::kStreamLongPoll;
        }
        poller.snippet = std::make_unique<AjaxSnippet>(poller.browser.get(),
                                                       snippet_config);
        poller.snippet->Join(hosted[s]->agent->AgentUrl(),
                             [&joined](Status status) {
                               if (status.ok()) {
                                 ++joined;
                               }
                             });
        pollers.push_back(std::move(poller));
      }
    }
    loop.RunUntilCondition(
        [&] { return joined == kSessions * kParticipants; });
    if (joined != kSessions * kParticipants) {
      return Fail("pollers never joined");
    }
  } else {
    // Wrongly-signed polls straight at the front door, on the poll cadence:
    // every one is counted, 403'd, and sampled into the auth-failure window.
    for (int64_t at_ms = 1000; at_ms < kRunMs; at_ms += 500) {
      loop.Schedule(Duration::Millis(at_ms) - (loop.now() - SimTime()),
                    [&host] {
        for (size_t s = 0; s < kSessions; ++s) {
          HttpRequest request;
          request.method = HttpMethod::kPost;
          request.target = StrFormat("/s/s%zu/poll?hmac=%s", s,
                                     std::string(64, '0').c_str());
          request.body = "pid=intruder&docTime=0";
          host.Route(request);
        }
      });
    }
  }

  if (scenario.mutations) {
    const SimTime epoch;
    for (int round = 1; round <= kRounds; ++round) {
      SimTime fire = epoch + Duration::Millis(kFirstRoundMs +
                                              (round - 1) * kRoundSpacingMs);
      loop.Schedule(fire - loop.now(), [&hosted, round] {
        for (HostSession* session : hosted) {
          session->browser->MutateDocument([round](Document* document) {
            Element* status = document->ById("status");
            status->RemoveAllChildren();
            status->AppendChild(MakeText("round " + std::to_string(round)));
          });
        }
      });
    }
  }

  loop.RunUntil(SimTime() + Duration::Millis(kRunMs));

  HttpRequest health_request;
  health_request.method = HttpMethod::kGet;
  health_request.target = "/host/health";
  if (scenario.bad_auth) {
    // The host shares the agents' key; sign the snapshot request properly.
    std::string mac =
        HmacSha256Hex(kSessionKey, "GET /host/health\n");
    health_request.target += "?hmac=" + mac;
  }
  HttpResponse response = host.Route(health_request);
  if (response.status_code != 200) {
    return Fail(StrFormat("/host/health -> %d: %s", response.status_code,
                          response.body.c_str()));
  }
  if (out_path.empty()) {
    std::fputs(response.body.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail("cannot open " + out_path);
    }
    out << response.body;
    if (!out.good()) {
      return Fail("short write to " + out_path);
    }
  }
  host.Stop();
  return 0;
}
