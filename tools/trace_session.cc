// CI driver for the causal-tracing gate (scripts/ci.sh): runs one short,
// fully deterministic co-browsing session with tracing and HMAC auth on,
// drives a navigation, two host-side mutations, and a participant gesture so
// every critical-path segment appears at least once, then forges an unsigned
// poll to fire the agent's auth_failure flight trigger — with the dump
// directory set, that writes a FLIGHT_agent_*.jsonl artifact. Finally the
// agent and snippet trace rings are exported as TRACE_session.jsonl plus a
// Chrome trace-event file for Perfetto.
//
// Usage: trace_session OUT_DIR
// Exit 0 iff the session synced, the flight dump was written, and the trace
// artifacts were exported.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/net/profiles.h"
#include "src/obs/trace_export.h"
#include "src/sites/corpus.h"

using namespace rcb;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s OUT_DIR\n", argv[0]);
    return 2;
  }
  std::string out_dir = argv[1];

  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = LanProfile();
  options.participant_count = 2;
  options.enable_auth = true;
  options.enable_delta = true;
  options.enable_trace = true;
  options.flight_dir = out_dir;
  options.poll_interval = Duration::Millis(250);

  const SiteSpec* spec = FindSite("google.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  network.SetLatency(options.participant_machine_prefix + "-2", spec->host,
                     spec->server_latency + options.profile.access_latency);
  auto server = InstallSite(&loop, &network, *spec);

  CoBrowsingSession session(&loop, &network, options);
  if (Status status = session.Start(); !status.ok()) {
    std::fprintf(stderr, "trace_session: start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  auto stats = session.CoNavigate(Url::Make("http", spec->host, 80, "/"));
  if (!stats.ok()) {
    std::fprintf(stderr, "trace_session: navigation failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  // A participant gesture, so a snippet.action_queue -> agent.merge.actions
  // chain rides the next poll.
  session.snippet(0)->SendMouseMove(17, 23);
  session.snippet(0)->PollNow();

  // Two host-side mutations: the first full update after the gesture, then a
  // small second edit the delta path ships as a newPatch (agent.delta.diff).
  for (int round = 1; round <= 2; ++round) {
    session.host_browser()->MutateDocument([round](Document* document) {
      Element* status = document->ById("trace-session-status");
      if (status == nullptr) {
        auto fresh = MakeElement("p");
        fresh->SetAttribute("id", "trace-session-status");
        document->body()->AppendChild(std::move(fresh));
        status = document->ById("trace-session-status");
      }
      status->RemoveAllChildren();
      status->AppendChild(MakeText("round " + std::to_string(round)));
    });
    if (Status status = session.WaitForSync(); !status.ok()) {
      std::fprintf(stderr, "trace_session: sync %d failed: %s\n", round,
                   status.ToString().c_str());
      return 1;
    }
  }

  // Forged unsigned poll from the participant machine: HMAC verification
  // fails, the agent counts an auth_failure, and — because flight_dir is set
  // — the flight recorder dumps its ring + sim metrics to JSONL.
  bool forged_done = false;
  session.participant_browser(0)->Fetch(
      HttpMethod::kPost, session.agent()->AgentUrl(), "pid=evil&ts=-1",
      "application/x-www-form-urlencoded",
      [&forged_done](FetchResult result) {
        forged_done = true;
        if (result.status.ok() && result.response.status_code != 403) {
          std::fprintf(stderr,
                       "trace_session: forged poll got HTTP %d, wanted 403\n",
                       result.response.status_code);
        }
      });
  loop.RunUntilCondition([&] { return forged_done; });

  if (session.agent()->flight_recorder().dumps_written() == 0) {
    std::fprintf(stderr, "trace_session: no flight dump was written\n");
    return 1;
  }

  // Export both rings: the interchange JSONL trace_report ingests, and the
  // Chrome trace-event view for chrome://tracing / ui.perfetto.dev.
  std::string jsonl =
      obs::ExportTraceJsonl(session.agent()->trace_log(), "agent");
  std::vector<std::pair<std::string, std::vector<obs::TraceEvent>>> components;
  components.emplace_back("agent", session.agent()->trace_log().Events());
  for (size_t i = 0; i < session.participant_count(); ++i) {
    std::string component = "snippet-" + session.snippet(i)->participant_id();
    jsonl += obs::ExportTraceJsonl(session.snippet(i)->trace_log(), component);
    components.emplace_back(component, session.snippet(i)->trace_log().Events());
  }
  if (Status status =
          obs::WriteFile(out_dir + "/TRACE_session.jsonl", jsonl);
      !status.ok()) {
    std::fprintf(stderr, "trace_session: %s\n", status.ToString().c_str());
    return 1;
  }
  if (Status status = obs::WriteFile(out_dir + "/TRACE_session_chrome.json",
                                     obs::ExportChromeTrace(components));
      !status.ok()) {
    std::fprintf(stderr, "trace_session: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("trace_session: agent spans %zu (dropped %llu), flight dumps "
              "%llu, last %s\n",
              session.agent()->trace_log().size(),
              static_cast<unsigned long long>(
                  session.agent()->trace_log().dropped()),
              static_cast<unsigned long long>(
                  session.agent()->flight_recorder().dumps_written()),
              session.agent()->flight_recorder().last_dump_path().c_str());
  return 0;
}
