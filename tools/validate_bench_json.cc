// Validates BENCH_*.json artifacts against the schema in
// src/obs/bench_report.h (schema_version 1). Exit 0 iff every file parses
// and validates; one diagnostic line per file either way.
//
// Usage: validate_bench_json FILE...
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/bench_report.h"
#include "src/util/json.h"
#include "src/util/status.h"

namespace {

rcb::Status ValidateFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return rcb::UnavailableError("cannot open " + path);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  RCB_ASSIGN_OR_RETURN(rcb::JsonValue document,
                       rcb::ParseJson(contents.str()));
  return rcb::obs::ValidateBenchReportJson(document);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_file.json...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    rcb::Status status = ValidateFile(argv[i]);
    if (status.ok()) {
      std::printf("ok      %s\n", argv[i]);
    } else {
      std::printf("INVALID %s: %s\n", argv[i], status.ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
