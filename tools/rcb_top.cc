// rcb_top: a top(1)-style terminal view over /host/health snapshots
// (DESIGN.md §16). The host emits sessions worst-first; this renders the
// header summary plus the top-N rows — score, fast-window sync latency,
// hottest burn, active alerts, and the worst exemplar trace id (feed that id
// to `trace_report --trace-id` to pull the offending round trip).
//
// Usage: rcb_top [--top N] [--watch SECONDS] FILE
//   FILE            a /host/health JSON snapshot ("-" reads stdin once)
//   --top N         rows to show (default 10)
//   --watch SECONDS re-read FILE every SECONDS and repaint (wall clock; this
//                   is an operator tool, the only wall-time consumer outside
//                   the harness)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/util/json.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace {

using rcb::JsonValue;
using rcb::StrFormat;

double NumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

std::string StringOr(const JsonValue* value, const std::string& fallback) {
  return value != nullptr && value->is_string() ? value->string_value
                                                : fallback;
}

// Worst exemplar with a resolvable trace id (the host already keeps at most
// one per bucket; "worst" = largest observed value).
std::string WorstExemplarTrace(const JsonValue& session) {
  const JsonValue* exemplars = session.Find("exemplars");
  if (exemplars == nullptr || !exemplars->is_array()) {
    return "";
  }
  std::string best;
  double best_value = -1.0;
  for (const JsonValue& entry : exemplars->items) {
    std::string trace_id = StringOr(entry.Find("trace_id"), "");
    if (trace_id.empty()) {
      continue;
    }
    double value = NumberOr(entry.Find("value_us"), 0.0);
    if (value > best_value) {
      best_value = value;
      best = trace_id;
    }
  }
  return best;
}

struct BurnPeak {
  std::string objective;
  double fast = 0.0;
  double slow = 0.0;
};

BurnPeak HottestObjective(const JsonValue& session) {
  BurnPeak peak;
  const JsonValue* objectives = session.Find("objectives");
  if (objectives == nullptr || !objectives->is_array()) {
    return peak;
  }
  for (const JsonValue& objective : objectives->items) {
    double slow = NumberOr(objective.Find("slow_burn"), 0.0);
    if (peak.objective.empty() || slow > peak.slow) {
      peak.objective = StringOr(objective.Find("name"), "?");
      peak.slow = slow;
      peak.fast = NumberOr(objective.Find("fast_burn"), 0.0);
    }
  }
  return peak;
}

std::string JoinAlerts(const JsonValue& session) {
  const JsonValue* alerts = session.Find("alerts");
  if (alerts == nullptr || !alerts->is_array() || alerts->items.empty()) {
    return "-";
  }
  std::string joined;
  for (const JsonValue& alert : alerts->items) {
    if (!joined.empty()) {
      joined += ",";
    }
    joined += StringOr(&alert, "?");
  }
  return joined;
}

int Render(const std::string& text, size_t top_n, const std::string& source) {
  auto doc_or = rcb::ParseJson(text);
  if (!doc_or.ok()) {
    std::fprintf(stderr, "rcb_top: %s: %s\n", source.c_str(),
                 doc_or.status().ToString().c_str());
    return 1;
  }
  const JsonValue& doc = *doc_or;
  double sim_us = NumberOr(doc.Find("sim_time_us"), 0.0);
  double total = NumberOr(doc.Find("sessions_total"), 0.0);
  const JsonValue* summary = doc.Find("summary");
  std::printf(
      "rcb_top — sim t=%.3fs — %.0f session(s): %.0f green, %.0f degraded, "
      "%.0f unhealthy\n",
      sim_us / 1e6, total,
      summary != nullptr ? NumberOr(summary->Find("green"), 0.0) : 0.0,
      summary != nullptr ? NumberOr(summary->Find("degraded"), 0.0) : 0.0,
      summary != nullptr ? NumberOr(summary->Find("unhealthy"), 0.0) : 0.0);
  if (const JsonValue* alerts = doc.Find("alerts");
      alerts != nullptr && alerts->is_array() && !alerts->items.empty()) {
    std::string joined;
    for (const JsonValue& alert : alerts->items) {
      if (!joined.empty()) {
        joined += " ";
      }
      joined += StringOr(&alert, "?");
    }
    std::printf("ALERTS: %s\n", joined.c_str());
  }
  std::printf("%-20s %-10s %7s %9s %9s %-18s %11s %-22s %s\n", "session",
              "score", "sync_n", "p50_us", "p99_us", "hottest", "burn f/s",
              "alerts", "exemplar");
  const JsonValue* sessions = doc.Find("sessions");
  if (sessions == nullptr || !sessions->is_array()) {
    std::fprintf(stderr, "rcb_top: %s: no sessions array\n", source.c_str());
    return 1;
  }
  size_t shown = 0;
  for (const JsonValue& session : sessions->items) {
    if (shown >= top_n) {
      break;
    }
    ++shown;
    const JsonValue* sync = session.Find("sync");
    BurnPeak peak = HottestObjective(session);
    std::string exemplar = WorstExemplarTrace(session);
    std::printf(
        "%-20s %-10s %7.0f %9.0f %9.0f %-18s %5.1f/%5.1f %-22s %s\n",
        StringOr(session.Find("id"), "?").c_str(),
        StringOr(session.Find("score"), "?").c_str(),
        sync != nullptr ? NumberOr(sync->Find("count"), 0.0) : 0.0,
        sync != nullptr ? NumberOr(sync->Find("p50_us"), 0.0) : 0.0,
        sync != nullptr ? NumberOr(sync->Find("p99_us"), 0.0) : 0.0,
        peak.objective.empty() ? "-" : peak.objective.c_str(), peak.fast,
        peak.slow, JoinAlerts(session).c_str(),
        exemplar.empty() ? "-" : exemplar.c_str());
  }
  if (sessions->items.size() > shown) {
    std::printf("... %zu more session(s)\n", sessions->items.size() - shown);
  }
  return 0;
}

rcb::StatusOr<std::string> ReadSource(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return rcb::UnavailableError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  size_t top_n = 10;
  double watch_seconds = 0.0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--watch" && i + 1 < argc) {
      watch_seconds = std::atof(argv[++i]);
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "usage: %s [--top N] [--watch SECONDS] FILE\n",
                   argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: %s [--top N] [--watch SECONDS] FILE\n",
                   argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [--top N] [--watch SECONDS] FILE\n",
                 argv[0]);
    return 2;
  }
  if (watch_seconds <= 0.0 || path == "-") {
    auto text_or = ReadSource(path);
    if (!text_or.ok()) {
      std::fprintf(stderr, "rcb_top: %s\n",
                   text_or.status().ToString().c_str());
      return 1;
    }
    return Render(*text_or, top_n, path);
  }
  // Watch mode: repaint from the file on a wall-clock cadence until killed.
  for (;;) {
    auto text_or = ReadSource(path);
    std::printf("\x1b[H\x1b[2J");
    if (!text_or.ok()) {
      std::printf("rcb_top: %s (retrying)\n",
                  text_or.status().ToString().c_str());
    } else {
      Render(*text_or, top_n, path);
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int64_t>(watch_seconds * 1000.0)));
  }
}
