// Reconstructs per-action critical paths from causal trace JSONL artifacts
// (DESIGN.md §11): the span lines written by ExportTraceJsonl / the flight
// recorder / the env-gated bench dumps. Joins agent- and snippet-side spans
// on their shared trace id (trace=<pid>-<seq>) and reports
//   * the queue / merge / generate / diff / wire / apply segment
//     distributions of the poll round trip,
//   * completeness: the fraction of content-carrying responses whose chain
//     closes with a participant-side apply span,
//   * per-session (participant) timelines, and
//   * the top-N slowest round trips.
//
// Usage: trace_report [--json] [--sim-only] [--top N] [--chrome OUT]
//                     [--trace-id ID] [--fail-on-incomplete] FILE...
//   --json      machine-readable report (schema_version 1) instead of text
//   --sim-only  suppress wall-clock durations so the output is bit-identical
//               across runs of the same simulated schedule (span *presence*
//               is deterministic either way; only wall durations vary)
//   --chrome    additionally write a Chrome trace-event / Perfetto JSON file
//               rebuilt from the ingested spans
//   --trace-id  print the span listing of one trace and exit 0; exit 4 when
//               the id resolves to no ingested span (the ci.sh check_health
//               gate resolves bench exemplar ids this way)
//   --fail-on-incomplete
//               exit 3 when content-chain completeness < 100% — the CI trace
//               gate consumes the exit code instead of grepping the report
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/util/json.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace {

using rcb::JsonValue;
using rcb::StrFormat;

struct Span {
  std::string component;
  std::string name;
  bool wall = false;
  int64_t sim_start_us = 0;
  int64_t duration_us = 0;
  uint64_t seq = 0;
  std::string trace_id;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

// The six critical-path segments, in pipeline order. Wall segments carry CPU
// durations and are suppressed (presence only) under --sim-only.
struct SegmentDef {
  const char* key;
  const char* span_name;
  bool wall;
};
constexpr SegmentDef kSegments[] = {
    {"queue", "snippet.action_queue", false},
    {"merge", "agent.merge.actions", true},
    {"generate", "agent.generate", true},
    {"diff", "agent.delta.diff", true},
    {"wire", "snippet.poll_rtt", false},
    {"apply", "snippet.apply", true},  // or snippet.apply_patch, see below
};

bool IsApplySpan(const std::string& name) {
  return name == "snippet.apply" || name == "snippet.apply_patch";
}

bool IsContentResponse(const std::string& name) {
  return name == "agent.response.patch" || name == "agent.response.snapshot";
}

// Session key for per-participant timelines: the pid prefix of
// trace=<pid>-<seq>. Falls back to the whole id when no '-' is present.
std::string SessionOf(const std::string& trace_id) {
  size_t dash = trace_id.rfind('-');
  return dash == std::string::npos ? trace_id : trace_id.substr(0, dash);
}

int64_t Percentile(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

struct SegmentStats {
  uint64_t count = 0;
  bool suppressed = false;  // wall segment under --sim-only
  std::vector<int64_t> durations;
};

struct SessionStats {
  uint64_t traces = 0;
  uint64_t content = 0;
  uint64_t timeouts = 0;
  uint64_t overloads = 0;
  int64_t first_us = 0;
  int64_t last_us = 0;
  bool seen = false;
};

rcb::Status IngestFile(const std::string& path, std::vector<Span>* spans) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return rcb::UnavailableError("cannot open " + path);
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    auto doc_or = rcb::ParseJson(line);
    if (!doc_or.ok()) {
      return rcb::InvalidArgumentError(StrFormat(
          "%s:%zu: %s", path.c_str(), line_no,
          doc_or.status().ToString().c_str()));
    }
    const JsonValue& doc = *doc_or;
    const JsonValue* type = doc.Find("type");
    if (type == nullptr || !type->is_string() ||
        type->string_value != "span") {
      continue;  // flight headers, metrics snapshots, foreign lines
    }
    Span span;
    auto str = [&doc](const char* key) -> std::string {
      const JsonValue* v = doc.Find(key);
      return v != nullptr && v->is_string() ? v->string_value : "";
    };
    auto num = [&doc](const char* key) -> int64_t {
      const JsonValue* v = doc.Find(key);
      return v != nullptr && v->is_number()
                 ? static_cast<int64_t>(v->number_value)
                 : 0;
    };
    span.component = str("component");
    span.name = str("name");
    span.wall = str("prov") == "wall";
    span.sim_start_us = num("sim_start_us");
    span.duration_us = num("duration_us");
    span.seq = static_cast<uint64_t>(num("seq"));
    span.trace_id = str("trace");
    span.span_id = static_cast<uint64_t>(num("span"));
    span.parent_span_id = static_cast<uint64_t>(num("parent"));
    if (const JsonValue* attrs = doc.Find("attrs");
        attrs != nullptr && attrs->is_object()) {
      for (const auto& [key, value] : attrs->members) {
        if (value.is_string()) {
          span.attrs.emplace_back(key, value.string_value);
        }
      }
    }
    spans->push_back(std::move(span));
  }
  return rcb::Status::Ok();
}

std::string SegmentStatsJson(const SegmentDef& def, const SegmentStats& stats) {
  std::string out = StrFormat(
      "{\"name\":\"%s\",\"prov\":\"%s\",\"count\":%llu", def.key,
      def.wall ? "wall" : "sim",
      static_cast<unsigned long long>(stats.count));
  if (stats.suppressed) {
    out += ",\"durations_suppressed\":true";
  } else {
    std::vector<int64_t> sorted = stats.durations;
    std::sort(sorted.begin(), sorted.end());
    int64_t total = 0;
    for (int64_t d : sorted) {
      total += d;
    }
    out += StrFormat(
        ",\"total_us\":%lld,\"min_us\":%lld,\"p50_us\":%lld,\"p95_us\":%lld,"
        "\"p99_us\":%lld,\"max_us\":%lld",
        static_cast<long long>(total),
        static_cast<long long>(sorted.empty() ? 0 : sorted.front()),
        static_cast<long long>(Percentile(sorted, 0.50)),
        static_cast<long long>(Percentile(sorted, 0.95)),
        static_cast<long long>(Percentile(sorted, 0.99)),
        static_cast<long long>(sorted.empty() ? 0 : sorted.back()));
  }
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_output = false;
  bool sim_only = false;
  bool fail_on_incomplete = false;
  size_t top_n = 5;
  std::string chrome_path;
  std::string trace_id_query;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_output = true;
    } else if (arg == "--sim-only") {
      sim_only = true;
    } else if (arg == "--fail-on-incomplete") {
      fail_on_incomplete = true;
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--chrome" && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (arg == "--trace-id" && i + 1 < argc) {
      trace_id_query = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--json] [--sim-only] [--top N] [--chrome OUT] "
                   "[--trace-id ID] [--fail-on-incomplete] FILE...\n",
                   argv[0]);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json] [--sim-only] [--top N] [--chrome OUT] "
                 "[--trace-id ID] [--fail-on-incomplete] FILE...\n",
                 argv[0]);
    return 2;
  }

  std::vector<Span> spans;
  for (const std::string& file : files) {
    rcb::Status status = IngestFile(file, &spans);
    if (!status.ok()) {
      std::fprintf(stderr, "trace_report: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Optional Chrome trace-event / Perfetto conversion, before --sim-only
  // filtering: the visual timeline wants the wall durations.
  if (!chrome_path.empty()) {
    std::vector<std::pair<std::string, std::vector<rcb::obs::TraceEvent>>>
        components;
    std::map<std::string, size_t> index;
    for (const Span& span : spans) {
      auto [it, inserted] = index.emplace(span.component, components.size());
      if (inserted) {
        components.emplace_back(span.component,
                                std::vector<rcb::obs::TraceEvent>{});
      }
      rcb::obs::TraceEvent event;
      event.name = span.name;
      event.provenance = span.wall ? rcb::obs::Provenance::kWall
                                   : rcb::obs::Provenance::kSim;
      event.sim_start_us = span.sim_start_us;
      event.duration_us = span.duration_us;
      event.seq = span.seq;
      event.trace_id = span.trace_id;
      event.span_id = span.span_id;
      event.parent_span_id = span.parent_span_id;
      event.attrs = span.attrs;
      components[it->second].second.push_back(std::move(event));
    }
    rcb::Status status = rcb::obs::WriteFile(
        chrome_path, rcb::obs::ExportChromeTrace(components));
    if (!status.ok()) {
      std::fprintf(stderr, "trace_report: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Group causal spans by trace id; sorted map = deterministic iteration.
  std::map<std::string, std::vector<const Span*>> traces;
  size_t causal_spans = 0;
  for (const Span& span : spans) {
    if (span.trace_id.empty()) {
      continue;
    }
    ++causal_spans;
    traces[span.trace_id].push_back(&span);
  }

  // Single-trace lookup: print the span listing (exit 0) or report the miss
  // (exit 4 — distinct from usage/ingest errors so callers can tell "bad id"
  // from "bad invocation").
  if (!trace_id_query.empty()) {
    auto it = traces.find(trace_id_query);
    if (it == traces.end()) {
      std::fprintf(stderr, "trace_report: no spans for trace %s\n",
                   trace_id_query.c_str());
      return 4;
    }
    std::vector<const Span*> listing = it->second;
    std::stable_sort(listing.begin(), listing.end(),
                     [](const Span* a, const Span* b) {
                       if (a->sim_start_us != b->sim_start_us) {
                         return a->sim_start_us < b->sim_start_us;
                       }
                       return a->seq < b->seq;
                     });
    std::printf("trace %s: %zu span(s)\n", trace_id_query.c_str(),
                listing.size());
    for (const Span* span : listing) {
      std::printf("  %10lld us %-8s %-28s %s%lld us\n",
                  static_cast<long long>(span->sim_start_us),
                  span->component.c_str(), span->name.c_str(),
                  span->wall ? "wall " : "sim ",
                  static_cast<long long>(sim_only && span->wall
                                             ? 0
                                             : span->duration_us));
    }
    return 0;
  }

  SegmentStats segment_stats[6];
  std::map<std::string, SessionStats> sessions;
  uint64_t content_traces = 0, complete_content = 0;
  uint64_t action_traces = 0, merged_actions = 0;
  uint64_t complete_traces = 0;
  struct SlowTrace {
    int64_t wire_us = 0;
    std::string id;
    std::string segments;
  };
  std::vector<SlowTrace> slow;

  for (const auto& [trace_id, trace_spans] : traces) {
    bool has_content = false, has_apply = false, has_rtt = false;
    bool has_agent = false, has_queue = false, has_merge = false;
    bool has_timeout = false, has_overload = false;
    int64_t wire_us = 0;
    int64_t seg_us[6] = {};
    bool seg_present[6] = {};
    int64_t first_us = 0, last_us = 0;
    bool seen_time = false;
    for (const Span* span : trace_spans) {
      if (IsContentResponse(span->name)) {
        has_content = true;
      }
      if (IsApplySpan(span->name)) {
        has_apply = true;
      }
      if (span->name == "snippet.poll_rtt") {
        has_rtt = true;
        wire_us = span->duration_us;
      }
      if (span->name == "snippet.poll_timeout") {
        has_timeout = true;
      }
      if (span->name == "snippet.overload_deferral") {
        has_overload = true;
      }
      if (span->component.rfind("agent", 0) == 0) {
        has_agent = true;
      }
      if (span->name == "snippet.action_queue") {
        has_queue = true;
      }
      if (span->name == "agent.merge.actions") {
        has_merge = true;
      }
      for (size_t i = 0; i < 6; ++i) {
        bool match = i == 5 ? IsApplySpan(span->name)
                            : span->name == kSegments[i].span_name;
        if (match) {
          seg_present[i] = true;
          seg_us[i] += span->duration_us;
        }
      }
      if (!seen_time || span->sim_start_us < first_us) {
        first_us = span->sim_start_us;
      }
      int64_t end = span->sim_start_us + (span->wall ? 0 : span->duration_us);
      if (!seen_time || end > last_us) {
        last_us = end;
      }
      seen_time = true;
    }
    for (size_t i = 0; i < 6; ++i) {
      if (seg_present[i]) {
        ++segment_stats[i].count;
        segment_stats[i].durations.push_back(
            sim_only && kSegments[i].wall ? 0 : seg_us[i]);
      }
    }
    if (has_content) {
      ++content_traces;
      if (has_apply && has_rtt) {
        ++complete_content;
      }
    }
    if (has_queue) {
      ++action_traces;
      if (has_merge) {
        ++merged_actions;
      }
    }
    if (has_rtt && has_agent) {
      ++complete_traces;
    }
    SessionStats& session = sessions[SessionOf(trace_id)];
    ++session.traces;
    session.content += has_content ? 1 : 0;
    session.timeouts += has_timeout ? 1 : 0;
    session.overloads += has_overload ? 1 : 0;
    if (!session.seen || first_us < session.first_us) {
      session.first_us = first_us;
    }
    if (!session.seen || last_us > session.last_us) {
      session.last_us = last_us;
    }
    session.seen = true;

    if (has_rtt) {
      SlowTrace entry;
      entry.wire_us = wire_us;
      entry.id = trace_id;
      for (size_t i = 0; i < 6; ++i) {
        if (!seg_present[i]) {
          continue;
        }
        if (!entry.segments.empty()) {
          entry.segments += ",";
        }
        int64_t us = sim_only && kSegments[i].wall ? 0 : seg_us[i];
        entry.segments += StrFormat("\"%s\":%lld", kSegments[i].key,
                                    static_cast<long long>(us));
      }
      slow.push_back(std::move(entry));
    }
  }
  for (size_t i = 0; i < 6; ++i) {
    segment_stats[i].suppressed = sim_only && kSegments[i].wall;
  }
  // Slowest by wire time; ties broken by trace id so the order (and the
  // --sim-only output bytes) never depend on map internals.
  std::stable_sort(slow.begin(), slow.end(),
                   [](const SlowTrace& a, const SlowTrace& b) {
                     if (a.wire_us != b.wire_us) {
                       return a.wire_us > b.wire_us;
                     }
                     return a.id < b.id;
                   });
  if (slow.size() > top_n) {
    slow.resize(top_n);
  }
  double completeness =
      content_traces == 0
          ? 1.0
          : static_cast<double>(complete_content) /
                static_cast<double>(content_traces);

  if (json_output) {
    std::string out = StrFormat(
        "{\"schema_version\":1,\"sim_only\":%s,\"files\":%zu,"
        "\"spans_total\":%zu,\"causal_spans\":%zu,\"traces\":%zu,"
        "\"complete_traces\":%llu,\"content_traces\":%llu,"
        "\"complete_content_traces\":%llu,\"content_completeness\":%.6f,"
        "\"action_traces\":%llu,\"merged_action_traces\":%llu",
        sim_only ? "true" : "false", files.size(), spans.size(), causal_spans,
        traces.size(), static_cast<unsigned long long>(complete_traces),
        static_cast<unsigned long long>(content_traces),
        static_cast<unsigned long long>(complete_content), completeness,
        static_cast<unsigned long long>(action_traces),
        static_cast<unsigned long long>(merged_actions));
    out += ",\"segments\":[";
    for (size_t i = 0; i < 6; ++i) {
      if (i > 0) {
        out += ",";
      }
      out += SegmentStatsJson(kSegments[i], segment_stats[i]);
    }
    out += "],\"sessions\":[";
    bool first = true;
    for (const auto& [id, session] : sessions) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += StrFormat(
          "{\"id\":\"%s\",\"traces\":%llu,\"content\":%llu,"
          "\"timeouts\":%llu,\"overloads\":%llu,\"first_us\":%lld,"
          "\"last_us\":%lld}",
          rcb::JsonEscape(id).c_str(),
          static_cast<unsigned long long>(session.traces),
          static_cast<unsigned long long>(session.content),
          static_cast<unsigned long long>(session.timeouts),
          static_cast<unsigned long long>(session.overloads),
          static_cast<long long>(session.first_us),
          static_cast<long long>(session.last_us));
    }
    out += "],\"slowest\":[";
    for (size_t i = 0; i < slow.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += StrFormat("{\"trace\":\"%s\",\"wire_us\":%lld,\"segments\":{%s}}",
                       rcb::JsonEscape(slow[i].id).c_str(),
                       static_cast<long long>(slow[i].wire_us),
                       slow[i].segments.c_str());
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return fail_on_incomplete && completeness < 1.0 ? 3 : 0;
  }

  std::printf("trace_report: %zu spans (%zu causal) from %zu file(s)%s\n",
              spans.size(), causal_spans, files.size(),
              sim_only ? " [sim-only]" : "");
  std::printf("traces: %zu total, %llu complete round trips\n", traces.size(),
              static_cast<unsigned long long>(complete_traces));
  std::printf("content chains: %llu/%llu closed with an apply (%.1f%%)\n",
              static_cast<unsigned long long>(complete_content),
              static_cast<unsigned long long>(content_traces),
              completeness * 100.0);
  std::printf("action chains: %llu queued, %llu merged by the agent\n",
              static_cast<unsigned long long>(action_traces),
              static_cast<unsigned long long>(merged_actions));
  std::printf("%-9s %-5s %8s %10s %10s %10s %10s\n", "segment", "prov",
              "count", "p50_us", "p95_us", "p99_us", "max_us");
  for (size_t i = 0; i < 6; ++i) {
    const SegmentStats& stats = segment_stats[i];
    if (stats.suppressed) {
      std::printf("%-9s %-5s %8llu %10s %10s %10s %10s\n", kSegments[i].key,
                  "wall", static_cast<unsigned long long>(stats.count), "-",
                  "-", "-", "-");
      continue;
    }
    std::vector<int64_t> sorted = stats.durations;
    std::sort(sorted.begin(), sorted.end());
    std::printf("%-9s %-5s %8llu %10lld %10lld %10lld %10lld\n",
                kSegments[i].key, kSegments[i].wall ? "wall" : "sim",
                static_cast<unsigned long long>(stats.count),
                static_cast<long long>(Percentile(sorted, 0.50)),
                static_cast<long long>(Percentile(sorted, 0.95)),
                static_cast<long long>(Percentile(sorted, 0.99)),
                static_cast<long long>(sorted.empty() ? 0 : sorted.back()));
  }
  std::printf("sessions:\n");
  for (const auto& [id, session] : sessions) {
    std::printf("  %-16s %6llu traces, %llu content, %llu timeouts, "
                "%llu overloads, sim %lld..%lld us\n",
                id.c_str(), static_cast<unsigned long long>(session.traces),
                static_cast<unsigned long long>(session.content),
                static_cast<unsigned long long>(session.timeouts),
                static_cast<unsigned long long>(session.overloads),
                static_cast<long long>(session.first_us),
                static_cast<long long>(session.last_us));
  }
  std::printf("slowest round trips:\n");
  for (const SlowTrace& entry : slow) {
    std::printf("  %-20s wire %lld us  {%s}\n", entry.id.c_str(),
                static_cast<long long>(entry.wire_us),
                entry.segments.c_str());
  }
  if (fail_on_incomplete && completeness < 1.0) {
    std::fprintf(stderr,
                 "trace_report: content completeness %.1f%% < 100%%\n",
                 completeness * 100.0);
    return 3;
  }
  return 0;
}
