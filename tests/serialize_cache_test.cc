// Hot-path correctness: the arena, the tag interner, DOM revision tracking,
// and — the load-bearing property — that cached incremental serialization is
// byte-identical to a cold full serialization for random mutation schedules
// over corpus pages (docs/PERF_MODEL.md).
//
// The property test runs a persistent incremental generator against a fresh
// cold generator (incremental off) after every mutation and compares the
// serialized snapshot XML byte for byte, including the spliced pre-escaped
// CDATA path. Under the RCB_SANITIZE (ASan) build the same schedules double
// as a dangling-span detector: every arena allocation is an individual
// malloc freed at Reset, so a cached span pointing into a reset arena is a
// hard heap-use-after-free instead of silent corruption.
#include <gtest/gtest.h>

#include <cstring>

#include "src/core/content_generator.h"
#include "src/html/intern.h"
#include "src/html/parser.h"
#include "src/html/serializer.h"
#include "src/sites/corpus.h"
#include "src/sites/site_server.h"
#include "src/util/arena.h"
#include "src/util/escape.h"
#include "src/util/rand.h"

namespace rcb {
namespace {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(ArenaTest, AllocationsAreCountedAndAligned) {
  Arena arena(4096);
  void* a = nullptr;
  void* b = nullptr;
  {
    ArenaScope scope(&arena);
    a = ArenaAllocRaw(10);
    b = ArenaAllocRaw(100);
  }
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 16, 0u);
  Arena::Stats stats = arena.stats();
  EXPECT_EQ(stats.allocations, 2u);
  EXPECT_GE(stats.allocated_bytes, 110u);  // requests plus per-alloc headers
  EXPECT_EQ(stats.live, 2u);
  ArenaFreeRaw(a);
  ArenaFreeRaw(b);
  EXPECT_EQ(arena.stats().live, 0u);
}

TEST(ArenaTest, ResetWithLiveAllocationsQuarantines) {
  Arena arena(4096);
  char* p = nullptr;
  {
    ArenaScope scope(&arena);
    p = static_cast<char*>(ArenaAllocRaw(64));
  }
  std::memset(p, 0xAB, 64);
  arena.Reset();  // p is still live: blocks must be parked, not reused
  EXPECT_EQ(arena.stats().quarantines, 1u);
  EXPECT_EQ(arena.stats().live, 1u);
  // The escapee's memory stays exactly as written.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(p[i]), 0xABu);
  }
  ArenaFreeRaw(p);  // last holder: quarantined blocks become reclaimable
  EXPECT_EQ(arena.stats().live, 0u);
}

TEST(ArenaTest, CleanResetRewindsWithoutQuarantine) {
  Arena arena(4096);
  {
    ArenaScope scope(&arena);
    void* p = ArenaAllocRaw(128);
    ArenaFreeRaw(p);
  }
  arena.Reset();
  Arena::Stats stats = arena.stats();
  EXPECT_EQ(stats.resets, 1u);
  EXPECT_EQ(stats.quarantines, 0u);
  EXPECT_EQ(stats.live, 0u);
}

TEST(ArenaTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(ArenaScope::Current(), nullptr);
  Arena outer_arena, inner_arena;
  {
    ArenaScope outer(&outer_arena);
    EXPECT_EQ(ArenaScope::Current(), &outer_arena);
    {
      ArenaScope inner(&inner_arena);
      EXPECT_EQ(ArenaScope::Current(), &inner_arena);
    }
    EXPECT_EQ(ArenaScope::Current(), &outer_arena);
  }
  EXPECT_EQ(ArenaScope::Current(), nullptr);
}

TEST(ArenaTest, NodeOutlivingArenaIsSurvivable) {
  // The control record outlives the Arena while allocations are live: the
  // node below stays readable after the Arena dies, and its delete releases
  // the memory. Under ASan either ordering bug would be a hard report.
  auto arena = std::make_unique<Arena>();
  std::unique_ptr<Element> node;
  {
    ArenaScope scope(arena.get());
    node = MakeElement("div");
    node->SetAttribute("id", "escapee");
  }
  arena->Reset();  // quarantines: the node is still live
  arena.reset();   // arena dies before the allocation
  EXPECT_EQ(node->tag_name(), "div");
  EXPECT_EQ(node->GetAttribute("id").value_or(""), "escapee");
  node.reset();  // last holder frees the control record
}

TEST(ArenaTest, NodesWithoutScopeUseTheHeap) {
  ASSERT_EQ(ArenaScope::Current(), nullptr);
  auto node = MakeElement("span");  // malloc-headered path
  node->AppendChild(MakeText("x"));
  node.reset();
}

// ---------------------------------------------------------------------------
// Tag interner
// ---------------------------------------------------------------------------

TEST(InternTest, RepeatedNamesShareOnePointer) {
  StringInterner interner;
  const std::string* a = interner.Intern("div");
  const std::string* b = interner.Intern("div");
  const std::string* c = interner.Intern("span");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternTest, CapStopsGrowthWithoutInvalidating) {
  StringInterner interner;
  interner.set_max_entries(2);
  const std::string* a = interner.Intern("one");
  const std::string* b = interner.Intern("two");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(interner.Intern("three"), nullptr);  // full: caller owns the copy
  EXPECT_EQ(interner.Intern("one"), a);          // existing entries still hit
  EXPECT_EQ(*a, "one");
  EXPECT_EQ(*b, "two");
}

TEST(InternTest, ElementsShareCanonicalTagStorage) {
  auto upper = MakeElement("DIV");
  auto lower = MakeElement("div");
  EXPECT_EQ(upper->tag_name(), "div");
  // Both canonical names resolve to the same interned string object.
  EXPECT_EQ(&upper->tag_name(), &lower->tag_name());
}

// ---------------------------------------------------------------------------
// DOM revision tracking
// ---------------------------------------------------------------------------

TEST(DomRevTest, MutationRestampsNodeAndAncestorsDistinctly) {
  auto root = MakeElement("div");
  auto middle = MakeElement("p");
  auto leaf = MakeElement("span");
  Element* leaf_ptr = leaf.get();
  Element* middle_ptr = middle.get();
  middle->AppendChild(std::move(leaf));
  root->AppendChild(std::move(middle));
  auto sibling = MakeElement("em");
  Element* sibling_ptr = sibling.get();
  root->AppendChild(std::move(sibling));

  uint64_t root_before = root->rev();
  uint64_t sibling_before = sibling_ptr->rev();
  leaf_ptr->SetAttribute("class", "hot");
  EXPECT_GT(leaf_ptr->rev(), root_before);
  EXPECT_GT(middle_ptr->rev(), root_before);
  EXPECT_GT(root->rev(), root_before);
  // Fresh and distinct per node: a rev uniquely identifies (node, state).
  EXPECT_NE(leaf_ptr->rev(), middle_ptr->rev());
  EXPECT_NE(middle_ptr->rev(), root->rev());
  // Untouched siblings keep their rev — that is the incremental win.
  EXPECT_EQ(sibling_ptr->rev(), sibling_before);
}

TEST(DomRevTest, UnchangedAttributeWriteDoesNotTouch) {
  auto element = MakeElement("div");
  element->SetAttribute("id", "x");
  uint64_t before = element->rev();
  element->SetAttribute("id", "x");  // same value: no restamp
  EXPECT_EQ(element->rev(), before);
  element->SetAttribute("id", "y");
  EXPECT_GT(element->rev(), before);
}

TEST(DomRevTest, KeepRevWritesDoNotRestamp) {
  auto element = MakeElement("a");
  element->SetAttribute("href", "/x");
  uint64_t before = element->rev();
  element->SetAttributeKeepRev("href", "http://origin.test/x");
  EXPECT_EQ(element->rev(), before);
  EXPECT_EQ(element->GetAttribute("href").value_or(""), "http://origin.test/x");
}

TEST(DomRevTest, ClonePreservesRevsRecursively) {
  auto root = MakeElement("div");
  auto child = MakeElement("p");
  child->AppendChild(MakeText("hello"));
  root->AppendChild(std::move(child));
  std::unique_ptr<Node> copy = root->Clone();
  EXPECT_EQ(copy->rev(), root->rev());
  ASSERT_EQ(copy->child_count(), root->child_count());
  EXPECT_EQ(copy->child_at(0)->rev(), root->child_at(0)->rev());
  EXPECT_EQ(copy->child_at(0)->child_at(0)->rev(),
            root->child_at(0)->child_at(0)->rev());
}

// ---------------------------------------------------------------------------
// Incremental-vs-cold byte identity (the correctness gate)
// ---------------------------------------------------------------------------

// One deterministic mutation drawn from `rng`. The mix deliberately includes
// the hazards the cache must survive: inserting an interactive element early
// in the body shifts every later data-rcb-id (id_base validation), removals
// restructure the tree, and text/attribute edits dirty deep subtrees.
void ApplyRandomMutation(Document* document, Rng* rng, int step) {
  Element* body = document->body();
  ASSERT_NE(body, nullptr);
  std::vector<Element*> elements;
  std::function<void(Element*)> collect = [&](Element* element) {
    elements.push_back(element);
    for (const auto& child : element->children()) {
      if (Element* child_element = child->AsElement()) {
        collect(child_element);
      }
    }
  };
  collect(body);
  Element* target = elements[rng->NextBelow(elements.size())];
  switch (rng->NextBelow(6)) {
    case 0:  // text edit inside an element
      target->AppendChild(MakeText("step " + std::to_string(step)));
      break;
    case 1:  // attribute write
      target->SetAttribute("data-step", std::to_string(step));
      break;
    case 2: {  // interactive element at the front: shifts all later ids
      auto link = MakeElement("a");
      link->SetAttribute("href", "/mut" + std::to_string(step));
      link->AppendChild(MakeText("m" + std::to_string(step)));
      body->InsertBefore(std::move(link),
                         body->child_count() > 0 ? body->child_at(0) : nullptr);
      break;
    }
    case 3:  // removal (keep the body itself)
      if (target != body && target->parent() != nullptr) {
        target->parent()->RemoveChild(target);
      }
      break;
    case 4:  // attribute removal
      target->RemoveAttribute("data-step");
      break;
    default: {  // plain subtree insertion
      auto div = MakeElement("div");
      div->SetAttribute("class", "mut");
      div->AppendChild(MakeText("item " + std::to_string(step)));
      target->AppendChild(std::move(div));
      break;
    }
  }
}

class SerializeCachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeCachePropertyTest, IncrementalMatchesColdFullSerialization) {
  const uint64_t seed = GetParam();
  const std::vector<SiteSpec>& sites = Table1Sites();
  const SiteSpec& spec = sites[seed % sites.size()];

  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  network.AddHost(spec.host, {});
  auto server = InstallSite(&loop, &network, spec);
  Browser browser(&loop, &network, "host-pc");
  bool done = false;
  Status status;
  browser.Navigate(Url::Make("http", spec.host, 80, "/"),
                   [&](const Status& s, const PageLoadStats&) {
                     status = s;
                     done = true;
                   });
  ASSERT_TRUE(loop.RunUntilCondition([&] { return done; }));
  ASSERT_TRUE(status.ok()) << status;

  ContentGenOptions options;
  options.cache_mode = (seed % 2) == 0;
  options.agent_url = Url::Make("http", "host-pc", 3000, "/");

  GeneratorTuning incremental_tuning;  // defaults: incremental on
  ContentGenerator incremental(&browser, incremental_tuning);
  GeneratorTuning cold_tuning;
  cold_tuning.incremental_serialize = false;

  Rng rng(seed * 0x9E3779B9u + 1);
  // First pass serializes the whole page (all misses); each later pass
  // reuses every subtree the mutation left clean.
  std::string previous_first;
  for (int step = 0; step < 10; ++step) {
    if (step > 0) {
      browser.MutateDocument([&](Document* document) {
        ApplyRandomMutation(document, &rng, step);
      });
    }
    GenerationResult warm = incremental.Generate(1000 + step, options);
    // A brand-new generator with incremental off is the cold reference: no
    // cache, no arena reuse, the pre-PR serialization path.
    ContentGenerator cold(&browser, cold_tuning);
    GenerationResult reference = cold.Generate(1000 + step, options);

    const std::string warm_xml = SerializeSnapshotXml(warm.snapshot);
    const std::string cold_xml = SerializeSnapshotXml(reference.snapshot);
    ASSERT_EQ(warm_xml, cold_xml)
        << spec.name << " diverged at step " << step << " (seed " << seed
        << ")";
    // The spliced pre-escaped path must produce the same bytes as a fresh
    // escape of the same snapshot.
    ASSERT_TRUE(warm.escaped.Matches(warm.snapshot));
    SnapshotSerializeStats spliced_stats, fresh_stats;
    const std::string spliced = SerializeSnapshotXml(
        warm.snapshot, &spliced_stats, &warm.escaped, nullptr);
    ASSERT_EQ(spliced, SerializeSnapshotXml(warm.snapshot, &fresh_stats));
    EXPECT_EQ(spliced_stats.payload_raw_bytes, fresh_stats.payload_raw_bytes);
    EXPECT_EQ(spliced_stats.payload_escaped_bytes,
              fresh_stats.payload_escaped_bytes);
    EXPECT_EQ(reference.interactive_elements, warm.interactive_elements);
  }
  // The schedules leave most of the page untouched, so the cache must have
  // done real splicing work — this is the perf half of the contract.
  const SerializeCache::Stats& stats = incremental.serialize_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.hit_bytes, 0u);
  // Arena hygiene: every generation reset cleanly (no escaped allocations).
  EXPECT_EQ(incremental.arena_stats().quarantines, 0u);
  EXPECT_EQ(incremental.arena_stats().live, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeCachePropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Targeted cache-identity hazards
// ---------------------------------------------------------------------------

class SerializeCacheTest : public ::testing::Test {
 protected:
  SerializeCacheTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    network_.AddHost("www.origin.test", {});
    server_ =
        std::make_unique<SiteServer>(&loop_, &network_, "www.origin.test");
    browser_ = std::make_unique<Browser>(&loop_, &network_, "host-pc");
  }

  void Load(const std::string& html,
            const std::map<std::string, std::string>& objects = {}) {
    server_->ServeStatic("/", "text/html", html);
    for (const auto& [path, body] : objects) {
      server_->ServeStatic(path, "application/octet-stream", body);
    }
    bool done = false;
    Status status;
    browser_->Navigate(Url::Make("http", "www.origin.test", 80, "/"),
                       [&](const Status& s, const PageLoadStats&) {
                         status = s;
                         done = true;
                       });
    ASSERT_TRUE(loop_.RunUntilCondition([&] { return done; }));
    ASSERT_TRUE(status.ok()) << status;
  }

  ContentGenOptions Options(bool cache_mode) {
    ContentGenOptions options;
    options.cache_mode = cache_mode;
    options.agent_url = Url::Make("http", "host-pc", 3000, "/");
    return options;
  }

  // Cold reference bytes for the browser's current document.
  std::string ColdXml(int64_t doc_time_ms, const ContentGenOptions& options) {
    GeneratorTuning tuning;
    tuning.incremental_serialize = false;
    ContentGenerator cold(browser_.get(), tuning);
    return SerializeSnapshotXml(cold.Generate(doc_time_ms, options).snapshot);
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> server_;
  std::unique_ptr<Browser> browser_;
};

TEST_F(SerializeCacheTest, UnchangedRegenerationHitsTheCache) {
  Load("<html><head><title>T</title></head><body>"
       "<div id=\"a\"><p>alpha content long enough to clear the minimum "
       "cacheable span size threshold</p></div>"
       "<div id=\"b\"><p>beta content long enough to clear the minimum "
       "cacheable span size threshold</p></div>"
       "</body></html>");
  ContentGenerator generator(browser_.get());
  ContentGenOptions options = Options(/*cache_mode=*/false);
  GenerationResult first = generator.Generate(1000, options);
  uint64_t misses_after_first = generator.serialize_cache_stats().misses;
  GenerationResult second = generator.Generate(2000, options);
  EXPECT_EQ(first.snapshot.body->inner_html, second.snapshot.body->inner_html);
  // The second pass re-serialized nothing below the payload roots.
  EXPECT_GT(generator.serialize_cache_stats().hits, 0u);
  EXPECT_EQ(generator.serialize_cache_stats().misses, misses_after_first);
}

TEST_F(SerializeCacheTest, InsertedInteractiveElementShiftsTrailingIds) {
  // Two forms after the insertion point: their data-rcb-id values must shift
  // when a new anchor lands before them, even though their subtrees are
  // byte-identical otherwise — the id_base check forces the re-serialization.
  Load("<html><body><div id=\"top\">x</div>"
       "<form id=\"f1\"><input name=\"q\"></form>"
       "<form id=\"f2\"><input name=\"r\"></form></body></html>");
  ContentGenerator generator(browser_.get());
  ContentGenOptions options = Options(/*cache_mode=*/false);
  GenerationResult before = generator.Generate(1000, options);
  EXPECT_NE(before.snapshot.body->inner_html.find("data-rcb-id=\"0\""),
            std::string::npos);

  browser_->MutateDocument([](Document* document) {
    auto link = MakeElement("a");
    link->SetAttribute("href", "/first");
    link->AppendChild(MakeText("now first"));
    document->body()->InsertBefore(std::move(link),
                                   document->body()->child_at(0));
  });
  GenerationResult after = generator.Generate(2000, options);
  EXPECT_EQ(SerializeSnapshotXml(after.snapshot), ColdXml(2000, options));
  EXPECT_EQ(after.interactive_elements, before.interactive_elements + 1);
}

TEST_F(SerializeCacheTest, ObjectCacheChangeInvalidatesCacheModeBytes) {
  // Cache-mode output depends on which URLs the ObjectCache can serve; its
  // change_epoch is folded into the config fingerprint, so clearing the
  // cache must change the generated bytes back to origin URLs.
  Load("<html><body><img src=\"/img/a.png\"><p>text</p></body></html>",
       {{"/img/a.png", "PIXELS"}});
  ContentGenerator generator(browser_.get());
  ContentGenOptions options = Options(/*cache_mode=*/true);
  GenerationResult cached = generator.Generate(1000, options);
  EXPECT_NE(cached.snapshot.body->inner_html.find("/obj/"), std::string::npos);

  browser_->cache().Clear();
  GenerationResult cleared = generator.Generate(2000, options);
  EXPECT_EQ(cleared.snapshot.body->inner_html.find("/obj/"),
            std::string::npos);
  EXPECT_EQ(SerializeSnapshotXml(cleared.snapshot), ColdXml(2000, options));
}

TEST_F(SerializeCacheTest, ModeSwitchKeepsBothFingerprintsCorrect) {
  Load("<html><body><img src=\"/img/a.png\"><div>stable</div></body></html>",
       {{"/img/a.png", "PIXELS"}});
  ContentGenerator generator(browser_.get());
  ContentGenOptions cache_on = Options(/*cache_mode=*/true);
  ContentGenOptions cache_off = Options(/*cache_mode=*/false);
  // Alternating modes on one generator: entries for both fingerprints
  // coexist and neither serves the other's bytes.
  for (int round = 0; round < 3; ++round) {
    GenerationResult on = generator.Generate(1000 + round, cache_on);
    EXPECT_EQ(SerializeSnapshotXml(on.snapshot), ColdXml(1000 + round, cache_on));
    GenerationResult off = generator.Generate(1000 + round, cache_off);
    EXPECT_EQ(SerializeSnapshotXml(off.snapshot),
              ColdXml(1000 + round, cache_off));
  }
}

TEST_F(SerializeCacheTest, BudgetIsEnforcedByEviction) {
  Load("<html><body>"
       "<div><p>block one with enough bytes to be cacheable as a span</p></div>"
       "<div><p>block two with enough bytes to be cacheable as a span</p></div>"
       "<div><p>block three with enough bytes to be cacheable as a span</p>"
       "</div></body></html>");
  GeneratorTuning tuning;
  tuning.serialize_cache_budget = 256;  // tiny: forces eviction churn
  ContentGenerator generator(browser_.get(), tuning);
  ContentGenOptions options = Options(/*cache_mode=*/false);
  for (int step = 0; step < 4; ++step) {
    browser_->MutateDocument([&](Document* document) {
      document->body()->SetAttribute("data-step", std::to_string(step));
    });
    GenerationResult result = generator.Generate(1000 + step, options);
    EXPECT_EQ(SerializeSnapshotXml(result.snapshot),
              ColdXml(1000 + step, options));
    EXPECT_LE(generator.serialize_cache_stats().bytes,
              generator.tuning().serialize_cache_budget);
  }
  EXPECT_GT(generator.serialize_cache_stats().evictions, 0u);
}

TEST_F(SerializeCacheTest, ResultsRemainValidAfterArenaReuse) {
  // Dangling-span regression: everything a Generate returns must be owned
  // copies, never views into the arena'd clone or the cache. Reading the
  // first result after later generations have reset and reused the arena is
  // a heap-use-after-free under the RCB_SANITIZE build if any span escaped.
  Load("<html><head><title>T</title></head><body>"
       "<div id=\"a\"><p>alpha content that fills a cacheable span nicely"
       "</p></div><a href=\"/x\">go</a></body></html>");
  ContentGenerator generator(browser_.get());
  ContentGenOptions options = Options(/*cache_mode=*/false);
  GenerationResult first = generator.Generate(1000, options);
  const std::string first_xml =
      SerializeSnapshotXml(first.snapshot, nullptr, &first.escaped, nullptr);
  for (int step = 0; step < 5; ++step) {
    browser_->MutateDocument([&](Document* document) {
      document->ById("a")->AppendChild(
          MakeText("more " + std::to_string(step)));
    });
    generator.Generate(2000 + step, options);
  }
  // Re-read every byte of the first result; must equal a fresh serialization
  // of the retained snapshot (both are heap copies if the contract holds).
  EXPECT_EQ(SerializeSnapshotXml(first.snapshot, nullptr, &first.escaped,
                                 nullptr),
            first_xml);
  EXPECT_EQ(first.snapshot.body->inner_html.find("more"), std::string::npos);
}

TEST_F(SerializeCacheTest, TinySpansAreNotCached) {
  // Every subtree below serializes under min_span_bytes: tracking them would
  // cost more than re-serializing, so the cache must stay empty while the
  // output stays correct.
  Load("<html><body><b>a</b><i>b</i><u>c</u></body></html>");
  ContentGenerator generator(browser_.get());
  ContentGenOptions options = Options(/*cache_mode=*/false);
  GenerationResult result = generator.Generate(1000, options);
  EXPECT_EQ(SerializeSnapshotXml(result.snapshot), ColdXml(1000, options));
  EXPECT_EQ(generator.serialize_cache_stats().spans, 0u);
}

}  // namespace
}  // namespace rcb
