// Unit tests for the HTML substrate: tokenizer, parser, DOM, serializer.
#include <gtest/gtest.h>

#include "src/html/dom.h"
#include "src/html/parser.h"
#include "src/html/serializer.h"
#include "src/html/tokenizer.h"

namespace rcb {
namespace {

// -------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, SimpleTags) {
  HtmlTokenizer tokenizer("<p>hi</p>");
  HtmlToken open = tokenizer.Next();
  EXPECT_EQ(open.type, HtmlToken::Type::kStartTag);
  EXPECT_EQ(open.tag_name, "p");
  HtmlToken text = tokenizer.Next();
  EXPECT_EQ(text.type, HtmlToken::Type::kText);
  EXPECT_EQ(text.data, "hi");
  HtmlToken close = tokenizer.Next();
  EXPECT_EQ(close.type, HtmlToken::Type::kEndTag);
  EXPECT_EQ(close.tag_name, "p");
  EXPECT_EQ(tokenizer.Next().type, HtmlToken::Type::kEndOfFile);
}

TEST(TokenizerTest, AttributesQuotedAndUnquoted) {
  HtmlTokenizer tokenizer(
      "<img src=\"a.png\" alt='pic' width=10 ismap>");
  HtmlToken token = tokenizer.Next();
  ASSERT_EQ(token.attributes.size(), 4u);
  EXPECT_EQ(token.attributes[0], (std::pair<std::string, std::string>{"src", "a.png"}));
  EXPECT_EQ(token.attributes[1], (std::pair<std::string, std::string>{"alt", "pic"}));
  EXPECT_EQ(token.attributes[2], (std::pair<std::string, std::string>{"width", "10"}));
  EXPECT_EQ(token.attributes[3], (std::pair<std::string, std::string>{"ismap", ""}));
}

TEST(TokenizerTest, TagNamesLowercased) {
  HtmlTokenizer tokenizer("<DIV CLASS=\"X\"></DIV>");
  HtmlToken token = tokenizer.Next();
  EXPECT_EQ(token.tag_name, "div");
  EXPECT_EQ(token.attributes[0].first, "class");
  EXPECT_EQ(token.attributes[0].second, "X");  // value case preserved
}

TEST(TokenizerTest, SelfClosing) {
  HtmlTokenizer tokenizer("<br/>");
  HtmlToken token = tokenizer.Next();
  EXPECT_TRUE(token.self_closing);
}

TEST(TokenizerTest, Comment) {
  HtmlTokenizer tokenizer("<!-- a < b -->x");
  HtmlToken comment = tokenizer.Next();
  EXPECT_EQ(comment.type, HtmlToken::Type::kComment);
  EXPECT_EQ(comment.data, " a < b ");
  EXPECT_EQ(tokenizer.Next().data, "x");
}

TEST(TokenizerTest, Doctype) {
  HtmlTokenizer tokenizer("<!DOCTYPE html><html></html>");
  HtmlToken doctype = tokenizer.Next();
  EXPECT_EQ(doctype.type, HtmlToken::Type::kDoctype);
  EXPECT_EQ(doctype.data, "DOCTYPE html");
}

TEST(TokenizerTest, ScriptContentIsRawText) {
  HtmlTokenizer tokenizer("<script>if (a<b && c>d) {}</script>");
  EXPECT_EQ(tokenizer.Next().type, HtmlToken::Type::kStartTag);
  HtmlToken content = tokenizer.Next();
  EXPECT_EQ(content.type, HtmlToken::Type::kText);
  EXPECT_EQ(content.data, "if (a<b && c>d) {}");
  EXPECT_EQ(tokenizer.Next().type, HtmlToken::Type::kEndTag);
}

TEST(TokenizerTest, RawTextCaseInsensitiveClose) {
  HtmlTokenizer tokenizer("<style>a{}</STYLE>");
  tokenizer.Next();
  EXPECT_EQ(tokenizer.Next().data, "a{}");
  EXPECT_EQ(tokenizer.Next().type, HtmlToken::Type::kEndTag);
}

TEST(TokenizerTest, EntitiesDecodedInText) {
  HtmlTokenizer tokenizer("<p>a &amp; b &lt;c&gt;</p>");
  tokenizer.Next();
  EXPECT_EQ(tokenizer.Next().data, "a & b <c>");
}

TEST(TokenizerTest, StrayLessThanIsText) {
  HtmlTokenizer tokenizer("a < b");
  HtmlToken token = tokenizer.Next();
  EXPECT_EQ(token.type, HtmlToken::Type::kText);
  EXPECT_EQ(token.data, "a < b");
}

TEST(TokenizerTest, UnterminatedTagAtEof) {
  HtmlTokenizer tokenizer("<div class=\"x");
  HtmlToken token = tokenizer.Next();
  EXPECT_EQ(token.type, HtmlToken::Type::kStartTag);
  EXPECT_EQ(tokenizer.Next().type, HtmlToken::Type::kEndOfFile);
}

// ------------------------------------------------------------------- DOM --

TEST(DomTest, AppendRemoveChildren) {
  auto parent = MakeElement("div");
  Node* a = parent->AppendChild(MakeElement("a"));
  Node* b = parent->AppendChild(MakeElement("b"));
  EXPECT_EQ(parent->child_count(), 2u);
  EXPECT_EQ(a->parent(), parent.get());
  auto removed = parent->RemoveChild(a);
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(parent->child_count(), 1u);
  EXPECT_EQ(parent->first_child(), b);
}

TEST(DomTest, InsertBefore) {
  auto parent = MakeElement("div");
  Node* b = parent->AppendChild(MakeElement("b"));
  parent->InsertBefore(MakeElement("a"), b);
  EXPECT_EQ(parent->child_at(0)->AsElement()->tag_name(), "a");
  EXPECT_EQ(parent->child_at(1)->AsElement()->tag_name(), "b");
  // nullptr reference appends.
  parent->InsertBefore(MakeElement("c"), nullptr);
  EXPECT_EQ(parent->child_at(2)->AsElement()->tag_name(), "c");
}

TEST(DomTest, AttributesOrderedAndCaseInsensitive) {
  Element element("div");
  element.SetAttribute("B", "2");
  element.SetAttribute("a", "1");
  EXPECT_EQ(element.GetAttribute("b").value(), "2");
  EXPECT_EQ(element.attributes()[0].first, "b");
  element.SetAttribute("b", "3");  // replace keeps position
  EXPECT_EQ(element.attributes()[0].second, "3");
  element.RemoveAttribute("B");
  EXPECT_FALSE(element.HasAttribute("b"));
  EXPECT_EQ(element.AttrOr("missing", "dflt"), "dflt");
}

TEST(DomTest, CloneIsDeepAndDetached) {
  auto tree = MakeElement("div");
  tree->SetAttribute("id", "root");
  Node* child = tree->AppendChild(MakeElement("span"));
  child->AppendChild(MakeText("hello"));
  auto clone = tree->Clone();
  Element* clone_element = clone->AsElement();
  EXPECT_EQ(clone_element->id(), "root");
  EXPECT_EQ(clone->child_count(), 1u);
  EXPECT_EQ(clone->TextContent(), "hello");
  EXPECT_EQ(clone->parent(), nullptr);
  // Mutating the clone leaves the original untouched.
  clone_element->SetAttribute("id", "changed");
  clone->RemoveAllChildren();
  EXPECT_EQ(tree->id(), "root");
  EXPECT_EQ(tree->child_count(), 1u);
}

TEST(DomTest, TextContentConcatenatesDescendants) {
  auto div = MakeElement("div");
  div->AppendChild(MakeText("a"));
  Node* span = div->AppendChild(MakeElement("span"));
  span->AppendChild(MakeText("b"));
  div->AppendChild(MakeText("c"));
  EXPECT_EQ(div->TextContent(), "abc");
}

TEST(DomTest, FindHelpers) {
  auto doc = ParseDocument(
      "<html><body><div id=\"x\"><p>1</p></div><p>2</p></body></html>");
  EXPECT_NE(doc->ById("x"), nullptr);
  EXPECT_EQ(doc->ById("nope"), nullptr);
  EXPECT_EQ(doc->FindAll("p").size(), 2u);
  EXPECT_EQ(doc->FindFirst("p")->TextContent(), "1");
}

TEST(DomTest, ForEachElementEarlyStop) {
  auto doc = ParseDocument("<html><body><a></a><b></b><c></c></body></html>");
  int visited = 0;
  doc->ForEachElement([&](Element* element) {
    ++visited;
    return element->tag_name() != "b";
  });
  // html, head, body, a, b -> stop.
  EXPECT_EQ(visited, 5);
}

TEST(DomTest, DetachFromParent) {
  auto parent = MakeElement("div");
  Node* child = parent->AppendChild(MakeElement("span"));
  auto owned = child->Detach();
  EXPECT_EQ(owned.get(), child);
  EXPECT_EQ(parent->child_count(), 0u);
  // Detaching an orphan is a no-op.
  EXPECT_EQ(owned->Detach(), nullptr);
}

// ---------------------------------------------------------------- Parser --

TEST(ParserTest, FullDocumentScaffold) {
  auto doc = ParseDocument(
      "<!DOCTYPE html><html><head><title>T</title></head>"
      "<body><p>x</p></body></html>");
  ASSERT_NE(doc->document_element(), nullptr);
  ASSERT_NE(doc->head(), nullptr);
  ASSERT_NE(doc->body(), nullptr);
  EXPECT_EQ(doc->Title(), "T");
}

TEST(ParserTest, MissingScaffoldCreated) {
  auto doc = ParseDocument("<p>bare content</p>");
  ASSERT_NE(doc->document_element(), nullptr);
  ASSERT_NE(doc->head(), nullptr);
  ASSERT_NE(doc->body(), nullptr);
  EXPECT_EQ(doc->body()->FindFirst("p")->TextContent(), "bare content");
}

TEST(ParserTest, HeadContentRelocated) {
  auto doc = ParseDocument("<html><title>T</title><p>b</p></html>");
  EXPECT_EQ(doc->Title(), "T");
  ASSERT_NE(doc->head(), nullptr);
  EXPECT_NE(doc->head()->FindFirst("title"), nullptr);
  EXPECT_NE(doc->body()->FindFirst("p"), nullptr);
}

TEST(ParserTest, FramesetDocument) {
  auto doc = ParseDocument(
      "<html><head><title>F</title></head>"
      "<frameset cols=\"50%,50%\"><frame src=\"a.html\">"
      "<frame src=\"b.html\"></frameset>"
      "<noframes><p>no frames</p></noframes></html>");
  EXPECT_NE(doc->frameset(), nullptr);
  EXPECT_EQ(doc->body(), nullptr);  // no body synthesized for frame pages
  EXPECT_NE(doc->noframes(), nullptr);
  EXPECT_EQ(doc->frameset()->FindAll("frame").size(), 2u);
}

TEST(ParserTest, VoidElementsDontNest) {
  auto doc = ParseDocument("<html><body><img src=\"a\"><p>after</p></body></html>");
  Element* img = doc->FindFirst("img");
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->child_count(), 0u);
  // <p> is a sibling of <img>, not its child.
  EXPECT_EQ(img->parent(), doc->body());
  EXPECT_EQ(doc->FindFirst("p")->parent(), doc->body());
}

TEST(ParserTest, MismatchedEndTagsRecovered) {
  auto doc = ParseDocument("<html><body><div><span>x</div></body></html>");
  // </div> closes both span and div (pop-to-match).
  Element* div = doc->FindFirst("div");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->TextContent(), "x");
}

TEST(ParserTest, StrayEndTagIgnored) {
  auto doc = ParseDocument("<html><body></table><p>ok</p></body></html>");
  EXPECT_EQ(doc->FindFirst("p")->TextContent(), "ok");
}

TEST(ParserTest, UnclosedListItemsBecomeSiblings) {
  auto doc = ParseDocument(
      "<html><body><ul><li>one<li>two<li>three</ul></body></html>");
  Element* ul = doc->FindFirst("ul");
  ASSERT_NE(ul, nullptr);
  auto items = ul->ChildElements();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0]->TextContent(), "one");
  EXPECT_EQ(items[2]->TextContent(), "three");
  // No nesting: each li has no li descendants.
  EXPECT_EQ(items[0]->FindAll("li").size(), 0u);
}

TEST(ParserTest, UnclosedParagraphs) {
  auto doc = ParseDocument("<html><body><p>a<p>b<div>c</div></body></html>");
  auto paragraphs = doc->FindAll("p");
  ASSERT_EQ(paragraphs.size(), 2u);
  EXPECT_EQ(paragraphs[0]->TextContent(), "a");
  EXPECT_EQ(paragraphs[1]->TextContent(), "b");
  // The div is a sibling, not a child of <p>b.
  EXPECT_EQ(doc->FindFirst("div")->parent(), doc->body());
}

TEST(ParserTest, UnclosedTableCells) {
  auto doc = ParseDocument(
      "<html><body><table><tr><td>a<td>b<tr><td>c</table></body></html>");
  auto rows = doc->FindAll("tr");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->FindAll("td").size(), 2u);
  EXPECT_EQ(rows[1]->FindAll("td").size(), 1u);
}

TEST(ParserTest, UnclosedOptionsAndDefinitions) {
  auto doc = ParseDocument(
      "<html><body><select><option>x<option>y</select>"
      "<dl><dt>term<dd>def<dt>term2</dl></body></html>");
  EXPECT_EQ(doc->FindFirst("select")->ChildElements().size(), 2u);
  Element* dl = doc->FindFirst("dl");
  ASSERT_NE(dl, nullptr);
  EXPECT_EQ(dl->ChildElements().size(), 3u);
}

TEST(ParserTest, NestedListsStillNest) {
  // An explicit nested list must not be flattened by the li rule: the inner
  // <ul> is INSIDE the first li, so the second li of the inner list closes
  // only the inner li.
  auto doc = ParseDocument(
      "<html><body><ul><li>outer<ul><li>inner1</li><li>inner2</li></ul></li>"
      "</ul></body></html>");
  Element* outer_ul = doc->FindFirst("ul");
  auto outer_items = outer_ul->ChildElements();
  ASSERT_EQ(outer_items.size(), 1u);
  EXPECT_EQ(outer_items[0]->FindAll("li").size(), 2u);
}

TEST(ParserTest, FragmentParsing) {
  auto nodes = ParseFragment("<b>bold</b> and <i>italic</i>");
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0]->AsElement()->tag_name(), "b");
  EXPECT_EQ(nodes[1]->TextContent(), " and ");
  EXPECT_EQ(nodes[2]->AsElement()->tag_name(), "i");
}

TEST(ParserTest, InnerHtmlRoundTrip) {
  auto div = MakeElement("div");
  div->SetInnerHtml("<p class=\"c\">one</p><p>two</p>");
  EXPECT_EQ(div->child_count(), 2u);
  EXPECT_EQ(div->InnerHtml(), "<p class=\"c\">one</p><p>two</p>");
}

TEST(ParserTest, SetInnerHtmlReplacesChildren) {
  auto div = MakeElement("div");
  div->SetInnerHtml("<a></a><b></b>");
  div->SetInnerHtml("<c></c>");
  EXPECT_EQ(div->child_count(), 1u);
  EXPECT_EQ(div->first_child()->AsElement()->tag_name(), "c");
}

TEST(ParserTest, EmptyDocument) {
  auto doc = ParseDocument("");
  ASSERT_NE(doc->document_element(), nullptr);
  EXPECT_NE(doc->head(), nullptr);
  EXPECT_NE(doc->body(), nullptr);
}

// -------------------------------------------------------------- Serializer --

TEST(SerializerTest, EscapesTextAndAttributes) {
  auto div = MakeElement("div");
  div->SetAttribute("title", "a\"b<c>");
  div->AppendChild(MakeText("x < y & z"));
  EXPECT_EQ(SerializeNode(*div),
            "<div title=\"a&quot;b&lt;c&gt;\">x &lt; y &amp; z</div>");
}

TEST(SerializerTest, ScriptContentNotEscaped) {
  auto doc = ParseDocument(
      "<html><head><script>var x = 1 < 2 && 3 > 2;</script></head></html>");
  Element* script = doc->FindFirst("script");
  ASSERT_NE(script, nullptr);
  std::string out = SerializeNode(*script);
  EXPECT_EQ(out, "<script>var x = 1 < 2 && 3 > 2;</script>");
}

TEST(SerializerTest, VoidElementsNoCloseTag) {
  auto doc = ParseDocument("<html><body><br><img src=\"x\"></body></html>");
  std::string out = SerializeNode(*doc->body());
  EXPECT_EQ(out, "<body><br><img src=\"x\"></body>");
}

TEST(SerializerTest, CommentsAndDoctypePreserved) {
  auto doc = ParseDocument("<!DOCTYPE html><!-- note --><html></html>");
  std::string out = SerializeNode(*doc);
  EXPECT_NE(out.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(out.find("<!-- note -->"), std::string::npos);
}

TEST(SerializerTest, ParseSerializeStable) {
  // Serializing a parsed document and reparsing yields the same serialization
  // (idempotent normalization) — the property RCB relies on for innerHTML
  // round trips.
  std::string html =
      "<!DOCTYPE html><html><head><title>T&amp;T</title>"
      "<style>.a{color:red}</style></head>"
      "<body class=\"main\"><div id=\"d\"><p>para 1</p>"
      "<img src=\"/i.png\" alt=\"x&lt;y\"><a href=\"/go?a=1&amp;b=2\">link</a>"
      "</div><script>if(a&&b){go();}</script></body></html>";
  auto doc1 = ParseDocument(html);
  std::string out1 = SerializeNode(*doc1);
  auto doc2 = ParseDocument(out1);
  std::string out2 = SerializeNode(*doc2);
  EXPECT_EQ(out1, out2);
}

TEST(SerializerTest, InnerHtmlOfRawTextElement) {
  auto doc = ParseDocument("<html><head><style>a>b{}</style></head></html>");
  Element* style = doc->FindFirst("style");
  EXPECT_EQ(style->InnerHtml(), "a>b{}");
}

}  // namespace
}  // namespace rcb
